#include "parallel/wavefront.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace flsa {

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kBarrierStaged: return "barrier-staged";
    case SchedulerKind::kDependencyCounter: return "dependency-counter";
  }
  return "?";
}

void WavefrontExecutor::run(std::size_t tile_rows, std::size_t tile_cols,
                            const TileSkipFn& skip, const TileWorkFn& work,
                            TilePhase phase) {
  if (tile_rows == 0 || tile_cols == 0) return;
  // A single tile (or a single worker) needs no scheduling machinery.
  if (pool_.size() == 1 || tile_rows * tile_cols == 1) {
    for (std::size_t ti = 0; ti < tile_rows; ++ti) {
      for (std::size_t tj = 0; tj < tile_cols; ++tj) {
        if (skip && skip(ti, tj)) continue;
        run_tile(work, ti, tj, 0, phase);
      }
    }
    return;
  }
  if (kind_ == SchedulerKind::kBarrierStaged) {
    run_barrier(tile_rows, tile_cols, skip, work, phase);
  } else {
    run_dependency(tile_rows, tile_cols, skip, work, phase);
  }
}

void WavefrontExecutor::run_barrier(std::size_t tile_rows,
                                    std::size_t tile_cols,
                                    const TileSkipFn& skip,
                                    const TileWorkFn& work,
                                    TilePhase phase) {
  // One parallel stage per wavefront line (anti-diagonal), exactly the
  // paper's three-phase schedule: lines grow from 1 tile to full width and
  // shrink again. Each line also gets a trace span on the scheduler lane,
  // so ramp-up / saturation / ramp-down is visible at a glance.
  obs::TraceRecorder* recorder = obs::active_trace();
  std::vector<std::pair<std::size_t, std::size_t>> line;
  for (std::size_t d = 0; d + 1 < tile_rows + tile_cols; ++d) {
    line.clear();
    const std::size_t ti_begin = d >= tile_cols ? d - tile_cols + 1 : 0;
    const std::size_t ti_end = std::min(d, tile_rows - 1);
    for (std::size_t ti = ti_begin; ti <= ti_end; ++ti) {
      const std::size_t tj = d - ti;
      if (skip && skip(ti, tj)) continue;
      line.emplace_back(ti, tj);
    }
    if (line.empty()) continue;
    const auto line_start = recorder != nullptr
                                ? obs::TraceRecorder::now()
                                : obs::TraceRecorder::Clock::time_point{};
    if (line.size() == 1) {
      run_tile(work, line[0].first, line[0].second, 0, phase);
    } else {
      std::atomic<std::size_t> next{0};
      pool_.parallel_run([&](unsigned worker) {
        while (true) {
          const std::size_t index =
              next.fetch_add(1, std::memory_order_relaxed);
          if (index >= line.size()) break;
          run_tile(work, line[index].first, line[index].second, worker,
                   phase);
        }
      });
    }
    if (recorder != nullptr) {
      obs::TraceSpan span;
      span.name = "wavefront-line";
      span.category = to_string(phase);
      span.tid = obs::kSchedulerLane;
      span.line = static_cast<std::int64_t>(d);
      span.tiles = static_cast<std::int64_t>(line.size());
      recorder->record(span, line_start, obs::TraceRecorder::now());
    }
  }
}

void WavefrontExecutor::run_dependency(std::size_t tile_rows,
                                       std::size_t tile_cols,
                                       const TileSkipFn& skip,
                                       const TileWorkFn& work,
                                       TilePhase phase) {
  const std::size_t total_slots = tile_rows * tile_cols;
  auto index_of = [tile_cols](std::size_t ti, std::size_t tj) {
    return ti * tile_cols + tj;
  };

  // Remaining-dependency counters; skipped tiles never run.
  std::vector<std::atomic<int>> deps(total_slots);
  std::size_t runnable_total = 0;
  for (std::size_t ti = 0; ti < tile_rows; ++ti) {
    for (std::size_t tj = 0; tj < tile_cols; ++tj) {
      if (skip && skip(ti, tj)) {
        deps[index_of(ti, tj)].store(-1, std::memory_order_relaxed);
        continue;
      }
      ++runnable_total;
      // Down-right-closed skip region => existing neighbours of a runnable
      // tile are themselves runnable.
      const int count = (ti > 0 ? 1 : 0) + (tj > 0 ? 1 : 0);
      deps[index_of(ti, tj)].store(count, std::memory_order_relaxed);
    }
  }
  if (runnable_total == 0) return;

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::pair<std::size_t, std::size_t>> ready;
  std::size_t completed = 0;
  ready.emplace_back(0, 0);
  FLSA_ASSERT(!(skip && skip(0, 0)));

  pool_.parallel_run([&](unsigned worker) {
    std::unique_lock<std::mutex> lock(mutex);
    while (true) {
      cv.wait(lock,
              [&] { return !ready.empty() || completed == runnable_total; });
      if (ready.empty()) break;  // all done
      const auto [ti, tj] = ready.front();
      ready.pop_front();
      lock.unlock();

      run_tile(work, ti, tj, worker, phase);

      std::size_t newly_ready = 0;
      auto release = [&](std::size_t ri, std::size_t rj) {
        std::atomic<int>& d = deps[index_of(ri, rj)];
        if (d.load(std::memory_order_relaxed) < 0) return;  // skipped
        if (d.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          ++newly_ready;
          std::lock_guard<std::mutex> g(mutex);
          ready.emplace_back(ri, rj);
        }
      };
      if (ti + 1 < tile_rows) release(ti + 1, tj);
      if (tj + 1 < tile_cols) release(ti, tj + 1);

      lock.lock();
      ++completed;
      if (completed == runnable_total) {
        cv.notify_all();
      } else if (newly_ready > 0) {
        if (newly_ready > 1) {
          cv.notify_all();
        } else {
          cv.notify_one();
        }
      }
    }
  });
  FLSA_ASSERT(completed == runnable_total);
}

}  // namespace flsa
