#include "parallel/wavefront.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace flsa {

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kBarrierStaged: return "barrier-staged";
    case SchedulerKind::kDependencyCounter: return "dependency-counter";
    case SchedulerKind::kWorkStealing: return "work-stealing";
  }
  return "?";
}

bool parse_scheduler_kind(std::string_view name, SchedulerKind* out) {
  if (name == "barrier" || name == "barrier-staged") {
    *out = SchedulerKind::kBarrierStaged;
  } else if (name == "dependency" || name == "dependency-counter") {
    *out = SchedulerKind::kDependencyCounter;
  } else if (name == "stealing" || name == "work-stealing") {
    *out = SchedulerKind::kWorkStealing;
  } else {
    return false;
  }
  return true;
}

std::atomic<int>* WavefrontExecutor::ensure_deps(std::size_t count) {
  if (deps_capacity_ < count) {
    deps_ = std::make_unique<std::atomic<int>[]>(count);
    deps_capacity_ = count;
  }
  return deps_.get();
}

void WavefrontExecutor::run(std::size_t tile_rows, std::size_t tile_cols,
                            TileSkipFn skip, TileWorkFn work,
                            TilePhase phase) {
  if (tile_rows == 0 || tile_cols == 0) return;
  // A single tile (or a single worker) needs no scheduling machinery.
  if (pool_.size() == 1 || tile_rows * tile_cols == 1) {
    const char* tag = to_string(kind_);
    for (std::size_t ti = 0; ti < tile_rows; ++ti) {
      for (std::size_t tj = 0; tj < tile_cols; ++tj) {
        if (skip && skip(ti, tj)) continue;
        run_tile(work, ti, tj, 0, phase, tag);
      }
    }
    return;
  }
  switch (kind_) {
    case SchedulerKind::kBarrierStaged:
      run_barrier(tile_rows, tile_cols, skip, work, phase);
      break;
    case SchedulerKind::kDependencyCounter:
      run_dependency(tile_rows, tile_cols, skip, work, phase);
      break;
    case SchedulerKind::kWorkStealing:
      run_work_stealing(tile_rows, tile_cols, skip, work, phase);
      break;
  }
}

void WavefrontExecutor::run_barrier(std::size_t tile_rows,
                                    std::size_t tile_cols, TileSkipFn skip,
                                    TileWorkFn work, TilePhase phase) {
  // One parallel stage per wavefront line (anti-diagonal), exactly the
  // paper's three-phase schedule: lines grow from 1 tile to full width and
  // shrink again. Each line also gets a trace span on the scheduler lane,
  // so ramp-up / saturation / ramp-down is visible at a glance.
  const char* tag = to_string(SchedulerKind::kBarrierStaged);
  obs::TraceRecorder* recorder = obs::active_trace();
  std::vector<std::pair<std::size_t, std::size_t>> line;
  for (std::size_t d = 0; d + 1 < tile_rows + tile_cols; ++d) {
    line.clear();
    const std::size_t ti_begin = d >= tile_cols ? d - tile_cols + 1 : 0;
    const std::size_t ti_end = std::min(d, tile_rows - 1);
    for (std::size_t ti = ti_begin; ti <= ti_end; ++ti) {
      const std::size_t tj = d - ti;
      if (skip && skip(ti, tj)) continue;
      line.emplace_back(ti, tj);
    }
    if (line.empty()) continue;
    const auto line_start = recorder != nullptr
                                ? obs::TraceRecorder::now()
                                : obs::TraceRecorder::Clock::time_point{};
    if (line.size() == 1) {
      run_tile(work, line[0].first, line[0].second, 0, phase, tag);
    } else {
      std::atomic<std::size_t> next{0};
      pool_.parallel_run([&](unsigned worker) {
        while (true) {
          const std::size_t index =
              next.fetch_add(1, std::memory_order_relaxed);
          if (index >= line.size()) break;
          run_tile(work, line[index].first, line[index].second, worker,
                   phase, tag);
        }
      });
    }
    if (recorder != nullptr) {
      obs::TraceSpan span;
      span.name = "wavefront-line";
      span.category = to_string(phase);
      span.tid = obs::kSchedulerLane;
      span.line = static_cast<std::int64_t>(d);
      span.tiles = static_cast<std::int64_t>(line.size());
      span.scheduler = tag;
      recorder->record(span, line_start, obs::TraceRecorder::now());
    }
  }
}

void WavefrontExecutor::run_dependency(std::size_t tile_rows,
                                       std::size_t tile_cols,
                                       TileSkipFn skip, TileWorkFn work,
                                       TilePhase phase) {
  const char* tag = to_string(SchedulerKind::kDependencyCounter);
  const std::size_t total_slots = tile_rows * tile_cols;
  auto index_of = [tile_cols](std::size_t ti, std::size_t tj) {
    return ti * tile_cols + tj;
  };

  // Remaining-dependency counters; skipped tiles never run.
  std::atomic<int>* deps = ensure_deps(total_slots);
  std::size_t runnable_total = 0;
  for (std::size_t ti = 0; ti < tile_rows; ++ti) {
    for (std::size_t tj = 0; tj < tile_cols; ++tj) {
      if (skip && skip(ti, tj)) {
        deps[index_of(ti, tj)].store(-1, std::memory_order_relaxed);
        continue;
      }
      ++runnable_total;
      // Down-right-closed skip region => existing neighbours of a runnable
      // tile are themselves runnable.
      const int count = (ti > 0 ? 1 : 0) + (tj > 0 ? 1 : 0);
      deps[index_of(ti, tj)].store(count, std::memory_order_relaxed);
    }
  }
  if (runnable_total == 0) return;

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::pair<std::size_t, std::size_t>> ready;
  std::size_t completed = 0;
  ready.emplace_back(0, 0);
  FLSA_ASSERT(!(skip && skip(0, 0)));

  pool_.parallel_run([&](unsigned worker) {
    std::unique_lock<std::mutex> lock(mutex);
    while (true) {
      cv.wait(lock,
              [&] { return !ready.empty() || completed == runnable_total; });
      if (ready.empty()) break;  // all done
      const auto [ti, tj] = ready.front();
      ready.pop_front();
      lock.unlock();

      run_tile(work, ti, tj, worker, phase, tag);

      std::size_t newly_ready = 0;
      auto release = [&](std::size_t ri, std::size_t rj) {
        std::atomic<int>& d = deps[index_of(ri, rj)];
        if (d.load(std::memory_order_relaxed) < 0) return;  // skipped
        if (d.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          ++newly_ready;
          std::lock_guard<std::mutex> g(mutex);
          ready.emplace_back(ri, rj);
        }
      };
      if (ti + 1 < tile_rows) release(ti + 1, tj);
      if (tj + 1 < tile_cols) release(ti, tj + 1);

      lock.lock();
      ++completed;
      if (completed == runnable_total) {
        cv.notify_all();
      } else if (newly_ready > 0) {
        if (newly_ready > 1) {
          cv.notify_all();
        } else {
          cv.notify_one();
        }
      }
    }
  });
  FLSA_ASSERT(completed == runnable_total);
}

void WavefrontExecutor::run_work_stealing(std::size_t tile_rows,
                                          std::size_t tile_cols,
                                          TileSkipFn skip, TileWorkFn work,
                                          TilePhase phase) {
  const char* tag = to_string(SchedulerKind::kWorkStealing);
  const std::size_t total_slots = tile_rows * tile_cols;
  FLSA_ASSERT(total_slots <= UINT32_MAX);  // deques hold 32-bit tile ids
  auto index_of = [tile_cols](std::size_t ti, std::size_t tj) {
    return ti * tile_cols + tj;
  };

  // Same dependency-counter initialization as run_dependency.
  std::atomic<int>* deps = ensure_deps(total_slots);
  std::size_t runnable_total = 0;
  for (std::size_t ti = 0; ti < tile_rows; ++ti) {
    for (std::size_t tj = 0; tj < tile_cols; ++tj) {
      if (skip && skip(ti, tj)) {
        deps[index_of(ti, tj)].store(-1, std::memory_order_relaxed);
        continue;
      }
      ++runnable_total;
      const int count = (ti > 0 ? 1 : 0) + (tj > 0 ? 1 : 0);
      deps[index_of(ti, tj)].store(count, std::memory_order_relaxed);
    }
  }
  if (runnable_total == 0) return;

  const unsigned workers = pool_.size();
  for (unsigned w = 0; w < workers; ++w) {
    WorkerSlot& slot = slots_[w];
    // In the worst case one deque holds every currently-runnable tile
    // (bounded by one full anti-diagonal plus releases, <= total tiles).
    slot.deque.prepare(total_slots);
    slot.steals = 0;
    slot.steal_attempts = 0;
    slot.max_depth = 0;
  }
  FLSA_ASSERT(!(skip && skip(0, 0)));
  slots_[0].deque.push(0);  // tile (0, 0) seeds worker 0

  // Quiescence: no barrier, no lock — workers run until every runnable
  // tile has been counted completed. A tile that throws still counts (and
  // raises the abort flag) so the other workers cannot spin forever; the
  // pool delivers the first exception to the caller.
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> abort{false};

  pool_.parallel_run([&](unsigned worker) {
    WorkerSlot& self = slots_[worker];
    unsigned spins = 0;
    while (true) {
      if (abort.load(std::memory_order_acquire) ||
          completed.load(std::memory_order_acquire) == runnable_total) {
        return;
      }
      std::uint32_t id = 0;
      bool have = self.deque.pop(&id);
      if (!have) {
        for (unsigned i = 1; i < workers && !have; ++i) {
          ++self.steal_attempts;
          have = slots_[(worker + i) % workers].deque.steal(&id);
        }
        if (have) ++self.steals;
      }
      if (!have) {
        // Out of work everywhere (for now): tiles may still be in flight
        // on other workers; spin briefly, then yield the core.
        if (++spins >= 64) {
          std::this_thread::yield();
          spins = 0;
        }
        continue;
      }
      spins = 0;

      const std::size_t ti = id / tile_cols;
      const std::size_t tj = id % tile_cols;
      try {
        run_tile(work, ti, tj, worker, phase, tag);
      } catch (...) {
        abort.store(true, std::memory_order_release);
        completed.fetch_add(1, std::memory_order_release);
        throw;  // the pool records the first error per generation
      }

      // Release neighbours onto *this* worker's deque: down first, then
      // right, so the owner's LIFO pop continues with the right-hand
      // neighbour (whose shared boundary line it just wrote — still
      // cache-hot) while thieves FIFO-steal the down neighbour, spreading
      // the wavefront across workers.
      auto release = [&](std::size_t ri, std::size_t rj) {
        std::atomic<int>& d = deps[index_of(ri, rj)];
        if (d.load(std::memory_order_relaxed) < 0) return;  // skipped
        if (d.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          self.deque.push(static_cast<std::uint32_t>(index_of(ri, rj)));
        }
      };
      if (ti + 1 < tile_rows) release(ti + 1, tj);
      if (tj + 1 < tile_cols) release(ti, tj + 1);
      self.max_depth = std::max(self.max_depth, self.deque.depth_hint());
      completed.fetch_add(1, std::memory_order_release);
    }
  });

  if (!abort.load(std::memory_order_relaxed)) {
    FLSA_ASSERT(completed.load(std::memory_order_relaxed) ==
                runnable_total);
  }

  std::uint64_t steals = 0;
  std::uint64_t attempts = 0;
  std::int64_t max_depth = 0;
  for (unsigned w = 0; w < workers; ++w) {
    steals += slots_[w].steals;
    attempts += slots_[w].steal_attempts;
    max_depth = std::max(max_depth, slots_[w].max_depth);
  }
  FLSA_OBS_COUNT("wavefront.steals", steals);
  FLSA_OBS_COUNT("wavefront.steal_attempts", attempts);
  FLSA_OBS_OBSERVE("wavefront.deque_depth_max",
                   static_cast<double>(max_depth));
}

}  // namespace flsa
