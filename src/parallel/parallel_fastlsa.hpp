// Parallel FastLSA: the paper's Section 5.
//
// The recursion of FastLSA is inherently sequential (each sub-problem is
// chosen by the path found so far), so parallelism lives inside the two
// dominant phases — Fill Grid Cache and Base Case — both of which are tile
// grids executed as wavefronts on P threads. The fill rectangle is
// partitioned into R x C tiles (R = C = k * tiles_per_block), of which the
// u x v = tiles_per_block^2 tiles of the bottom-right sub-problem are
// skipped, matching the paper's Figure 13.
#pragma once

#include <cstdint>
#include <thread>

#include "core/fastlsa.hpp"
#include "parallel/wavefront.hpp"

namespace flsa {

/// Parallel execution parameters.
struct ParallelOptions {
  /// Worker threads (P). 0 = hardware concurrency.
  unsigned threads = 0;

  SchedulerKind scheduler = SchedulerKind::kDependencyCounter;

  /// Tiles per block and dimension in the fill phase; 0 = auto
  /// (enough tiles that a full wavefront line exceeds 2 * threads).
  std::size_t tiles_per_block = 0;

  /// Tile grid per dimension for the base case; 0 = auto (4 * threads).
  std::size_t base_case_tiles = 0;

  /// Minimum tile extent; sub-problems are never tiled finer. 0 = auto
  /// (64 residues — tiles stay large enough to amortize dispatch costs).
  std::size_t min_tile_extent = 0;

  /// Resolves the auto (zero) values against `k`.
  ParallelOptions resolved(unsigned k) const;
};

/// Optimal global alignment via Parallel FastLSA (linear gaps). Produces
/// exactly the same alignment as the sequential algorithm.
Alignment parallel_fastlsa_align(const Sequence& a, const Sequence& b,
                                 const ScoringScheme& scheme,
                                 const FastLsaOptions& options = {},
                                 const ParallelOptions& parallel = {},
                                 FastLsaStats* stats = nullptr);

/// Affine-gap Parallel FastLSA.
Alignment parallel_fastlsa_align_affine(const Sequence& a, const Sequence& b,
                                        const ScoringScheme& scheme,
                                        const FastLsaOptions& options = {},
                                        const ParallelOptions& parallel = {},
                                        FastLsaStats* stats = nullptr);

}  // namespace flsa
