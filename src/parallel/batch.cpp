#include "parallel/batch.hpp"

#include <algorithm>
#include <atomic>

#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace flsa {

namespace {

std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown (non-std::exception) error";
  }
}

}  // namespace

std::vector<BatchResult> align_batch(const std::vector<AlignJob>& jobs,
                                     const ScoringScheme& scheme,
                                     const AlignOptions& options,
                                     unsigned threads) {
  for (const AlignJob& job : jobs) {
    FLSA_REQUIRE(job.a != nullptr && job.b != nullptr);
  }
  std::vector<BatchResult> results(jobs.size());
  if (jobs.empty()) return results;
  if (threads == 0) threads = default_thread_count();
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, jobs.size()));

  // One reusable Aligner (and thus one arena workspace) per worker: the
  // whole batch after each worker's first job runs allocation-free inside
  // the engine.
  std::vector<Aligner> aligners;
  aligners.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) aligners.emplace_back(options);

  std::atomic<std::size_t> cursor{0};
  std::atomic<std::uint64_t> failed{0};
  auto worker_fn = [&]([[maybe_unused]] unsigned worker) {
    Aligner& aligner = aligners[worker];
    while (true) {
      const std::size_t index =
          cursor.fetch_add(1, std::memory_order_relaxed);
      if (index >= jobs.size()) break;
      BatchResult& result = results[index];
      FLSA_OBS_PHASE(obs_job, obs::Phase::kBatchJob, worker);
      try {
        result.alignment = aligner.align(*jobs[index].a, *jobs[index].b,
                                         scheme, &result.report);
        FLSA_OBS_PHASE_CELLS(obs_job,
                             result.report.stats.counters.total_cells());
      } catch (...) {
        result.error = std::current_exception();
        result.error_message = describe_current_exception();
        failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  if (threads == 1) {
    worker_fn(0);
  } else {
    ThreadPool pool(threads);
    pool.parallel_run(worker_fn);
  }
  FLSA_OBS_COUNT("batch.jobs", jobs.size());
  FLSA_OBS_COUNT("batch.jobs_failed", failed.load(std::memory_order_relaxed));
  return results;
}

std::vector<BatchResult> align_one_vs_many(
    const Sequence& query, const std::vector<Sequence>& targets,
    const ScoringScheme& scheme, const AlignOptions& options,
    unsigned threads) {
  std::vector<AlignJob> jobs;
  jobs.reserve(targets.size());
  for (const Sequence& target : targets) {
    jobs.push_back(AlignJob{&query, &target});
  }
  return align_batch(jobs, scheme, options, threads);
}

}  // namespace flsa
