#include "parallel/batch.hpp"

#include <atomic>
#include <thread>

#include "support/assert.hpp"

namespace flsa {

std::vector<BatchResult> align_batch(const std::vector<AlignJob>& jobs,
                                     const ScoringScheme& scheme,
                                     const AlignOptions& options,
                                     unsigned threads) {
  for (const AlignJob& job : jobs) {
    FLSA_REQUIRE(job.a != nullptr && job.b != nullptr);
  }
  std::vector<BatchResult> results(jobs.size());
  if (jobs.empty()) return results;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, jobs.size()));

  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker_fn = [&](unsigned) {
    while (true) {
      const std::size_t index =
          cursor.fetch_add(1, std::memory_order_relaxed);
      if (index >= jobs.size()) break;
      try {
        results[index].alignment =
            align(*jobs[index].a, *jobs[index].b, scheme, options,
                  &results[index].report);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  if (threads == 1) {
    worker_fn(0);
  } else {
    ThreadPool pool(threads);
    pool.parallel_run(worker_fn);
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::vector<BatchResult> align_one_vs_many(
    const Sequence& query, const std::vector<Sequence>& targets,
    const ScoringScheme& scheme, const AlignOptions& options,
    unsigned threads) {
  std::vector<AlignJob> jobs;
  jobs.reserve(targets.size());
  for (const Sequence& target : targets) {
    jobs.push_back(AlignJob{&query, &target});
  }
  return align_batch(jobs, scheme, options, threads);
}

}  // namespace flsa
