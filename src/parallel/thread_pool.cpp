#include "parallel/thread_pool.hpp"

#include "support/assert.hpp"

namespace flsa {

ThreadPool::ThreadPool(unsigned threads) {
  FLSA_REQUIRE(threads >= 1);
  workers_.reserve(threads);
  for (unsigned id = 0; id < threads; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::parallel_run(const std::function<void(unsigned)>& fn) {
  std::unique_lock<std::mutex> lock(mutex_);
  FLSA_REQUIRE(job_ == nullptr);  // no concurrent parallel_run calls
  job_ = &fn;
  remaining_ = size();
  first_error_ = nullptr;
  ++generation_;
  start_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::worker_loop(unsigned id) {
  std::uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    std::exception_ptr error;
    try {
      (*job)(id);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace flsa
