#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace flsa {

namespace {

/// True on any thread that is a ThreadPool worker (of any pool). Used to
/// detect re-entrant parallel_run calls, which must not block on the
/// pool's own workers.
thread_local bool t_pool_worker = false;

}  // namespace

unsigned default_thread_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads) {
  FLSA_REQUIRE(threads >= 1);
  workers_.reserve(threads);
  for (unsigned id = 0; id < threads; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::parallel_run(FunctionRef<void(unsigned)> fn) {
  // Nested call from a worker thread: dispatching to the pool would
  // deadlock (same pool) or oversubscribe (another pool); run inline.
  if (t_pool_worker) {
    run_serial(fn);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (job_active_) {
    // Another thread's collective call is in flight; don't wedge into its
    // generation accounting — run this one serially instead.
    lock.unlock();
    run_serial(fn);
    return;
  }
  job_ = fn;
  job_active_ = true;
  remaining_ = size();
  first_error_ = nullptr;
  ++generation_;
  start_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  job_active_ = false;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::run_serial(FunctionRef<void(unsigned)> fn) {
  FLSA_OBS_COUNT("thread_pool.serial_fallbacks", 1);
  // Same contract as the parallel path: every worker slot runs exactly
  // once, the first exception wins, and the remaining slots still run.
  std::exception_ptr first_error;
  for (unsigned id = 0; id < size(); ++id) {
    try {
      fn(id);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop(unsigned id) {
  t_pool_worker = true;
  std::uint64_t seen_generation = 0;
  while (true) {
    FunctionRef<void(unsigned)> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;  // two-pointer copy; the submitter blocks until done
    }
    std::exception_ptr error;
    try {
      job(id);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace flsa
