// Batch alignment: many independent pairs on a thread pool.
//
// Complements Parallel FastLSA's intra-alignment wavefront parallelism
// with the orthogonal, embarrassingly parallel axis: homology search
// workloads align one query against many targets. Each worker runs the
// sequential memory-adaptive aligner on its own pairs; results land in
// input order.
#pragma once

#include <exception>
#include <string>
#include <vector>

#include "core/aligner.hpp"
#include "parallel/thread_pool.hpp"

namespace flsa {

/// One batch work item (sequences are borrowed, not copied).
struct AlignJob {
  const Sequence* a = nullptr;
  const Sequence* b = nullptr;
};

/// Per-job outcome. A failed job carries its error here instead of
/// aborting the batch: `alignment`/`report` are only meaningful when
/// ok() is true.
struct BatchResult {
  Alignment alignment;
  AlignReport report;
  /// The exception the job's aligner threw, or nullptr on success.
  /// std::rethrow_exception(error) recovers the original type.
  std::exception_ptr error;
  /// what() of the failure (or a fallback for non-std exceptions);
  /// empty on success.
  std::string error_message;

  bool ok() const { return error == nullptr; }
};

/// Aligns every job under `options` using `threads` workers (0 = hardware
/// concurrency). The `options.memory_limit_bytes` budget applies per
/// worker, so total memory is bounded by threads * limit.
/// Jobs are dealt dynamically (atomic cursor), so skewed size mixes
/// balance automatically. Results are positionally aligned with `jobs`.
///
/// Error handling is per job: a job whose aligner throws records the
/// exception in its BatchResult (and in the metrics registry as
/// batch.jobs_failed, when metrics are enabled) while every other job
/// still completes and is returned. Only a malformed batch itself — a
/// null sequence pointer — throws, before any work starts.
std::vector<BatchResult> align_batch(const std::vector<AlignJob>& jobs,
                                     const ScoringScheme& scheme,
                                     const AlignOptions& options = {},
                                     unsigned threads = 0);

/// Convenience: all-vs-one (one query against many targets).
std::vector<BatchResult> align_one_vs_many(
    const Sequence& query, const std::vector<Sequence>& targets,
    const ScoringScheme& scheme, const AlignOptions& options = {},
    unsigned threads = 0);

}  // namespace flsa
