// Fixed-size worker pool used by the wavefront schedulers.
//
// The pool supports one collective operation: parallel_run(fn) invokes
// fn(worker_id) once on every worker and returns when all have finished.
// Schedulers build wavefront execution on top of this by sharing a work
// queue among the workers. Keeping the pool alive across FastLSA's many
// fill/base-case phases avoids per-phase thread creation.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "support/function_ref.hpp"

namespace flsa {

/// Worker count to use when a caller passes 0 ("use the hardware"):
/// std::thread::hardware_concurrency() with the mandatory >= 1 guard for
/// targets where it reports 0. Every "0 = auto" thread knob in the
/// library resolves through here so no call site can forget the guard.
unsigned default_thread_count();

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(unsigned threads);

  /// Joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(worker_id) on every worker; blocks until all calls return.
  /// Exceptions thrown by fn propagate to the caller (the first one wins;
  /// remaining workers still complete the generation).
  ///
  /// Re-entrant and concurrent calls degrade gracefully instead of
  /// failing: when the calling thread is itself a pool worker (of this or
  /// any pool — e.g. a parallel engine invoked from inside an align_batch
  /// job), or when another thread's parallel_run is already in flight on
  /// this pool, fn(0) .. fn(size()-1) run serially on the calling thread.
  /// That preserves the collective-call contract (each worker slot runs
  /// exactly once, per-slot scratch is never shared) while avoiding both
  /// deadlock and thread oversubscription.
  ///
  /// Takes a FunctionRef, not a std::function: the engine calls this once
  /// per fill/base-case phase with a fat capturing lambda, and the
  /// std::function conversion heap-allocated a closure copy every time.
  /// The callable only needs to outlive the (blocking) call.
  void parallel_run(FunctionRef<void(unsigned)> fn);

 private:
  void worker_loop(unsigned id);
  void run_serial(FunctionRef<void(unsigned)> fn);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  FunctionRef<void(unsigned)> job_;  ///< valid only while job_active_
  bool job_active_ = false;
  std::uint64_t generation_ = 0;
  unsigned remaining_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace flsa
