// Fixed-size worker pool used by the wavefront schedulers.
//
// The pool supports one collective operation: parallel_run(fn) invokes
// fn(worker_id) once on every worker and returns when all have finished.
// Schedulers build wavefront execution on top of this by sharing a work
// queue among the workers. Keeping the pool alive across FastLSA's many
// fill/base-case phases avoids per-phase thread creation.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flsa {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(unsigned threads);

  /// Joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(worker_id) on every worker; blocks until all calls return.
  /// Exceptions thrown by fn propagate to the caller (the first one wins;
  /// remaining workers still complete the generation).
  void parallel_run(const std::function<void(unsigned)>& fn);

 private:
  void worker_loop(unsigned id);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned remaining_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace flsa
