#include "parallel/parallel_fastlsa.hpp"

#include <algorithm>

#include "core/engine.hpp"
#include "obs/obs.hpp"

namespace flsa {

ParallelOptions ParallelOptions::resolved(unsigned k) const {
  ParallelOptions r = *this;
  if (r.threads == 0) {
    r.threads = default_thread_count();
  }
  if (r.tiles_per_block == 0) {
    // Aim for wavefront lines of at least 2P tiles at full width so the
    // saturated middle phase dominates (the paper's second phase).
    r.tiles_per_block =
        std::max<std::size_t>(1, (2 * r.threads + k - 1) / k);
  }
  if (r.base_case_tiles == 0) {
    r.base_case_tiles = std::max<std::size_t>(1, 4 * r.threads);
  }
  if (r.min_tile_extent == 0) {
    r.min_tile_extent = 64;
  }
  return r;
}

namespace {

template <bool Affine>
Alignment run_parallel(const Sequence& a, const Sequence& b,
                       const ScoringScheme& scheme,
                       const FastLsaOptions& options,
                       const ParallelOptions& parallel, FastLsaStats* stats) {
  validate(options);
  const ParallelOptions resolved = parallel.resolved(options.k);
  FLSA_OBS_GAUGE("parallel.threads", resolved.threads);
  FLSA_OBS_GAUGE("parallel.tiles_per_block",
                 static_cast<double>(resolved.tiles_per_block));
  ThreadPool pool(resolved.threads);
  WavefrontExecutor executor(pool, resolved.scheduler);
  detail::EnginePlan plan;
  plan.executor = &executor;
  plan.tiles_per_block = resolved.tiles_per_block;
  plan.base_case_tiles = resolved.base_case_tiles;
  plan.min_tile_extent = resolved.min_tile_extent;
  detail::FastLsaEngine<Affine> engine(a, b, scheme, options, plan, stats);
  return engine.run();
}

}  // namespace

Alignment parallel_fastlsa_align(const Sequence& a, const Sequence& b,
                                 const ScoringScheme& scheme,
                                 const FastLsaOptions& options,
                                 const ParallelOptions& parallel,
                                 FastLsaStats* stats) {
  return run_parallel<false>(a, b, scheme, options, parallel, stats);
}

Alignment parallel_fastlsa_align_affine(const Sequence& a, const Sequence& b,
                                        const ScoringScheme& scheme,
                                        const FastLsaOptions& options,
                                        const ParallelOptions& parallel,
                                        FastLsaStats* stats) {
  return run_parallel<true>(a, b, scheme, options, parallel, stats);
}

}  // namespace flsa
