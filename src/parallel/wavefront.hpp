// Wavefront tile schedulers: the parallel execution policies behind
// Parallel FastLSA's Fill Grid Cache and Base Case phases.
//
// Tiles on the same anti-diagonal are independent (the paper's "wavefront
// lines"); three policies realize this:
//   kBarrierStaged      — the paper's formulation: process one wavefront
//                         line at a time, with a barrier between lines.
//   kDependencyCounter  — each tile becomes runnable as soon as its up and
//                         left neighbours finish; runnable tiles go through
//                         one mutex-protected shared queue. No barriers, so
//                         ragged diagonals and uneven tile costs overlap
//                         across lines, but every hand-off contends on the
//                         one lock.
//   kWorkStealing       — dependency-driven like kDependencyCounter, but
//                         each worker owns a Chase–Lev-style deque
//                         (parallel/steal_deque.hpp): finishing a tile
//                         pushes its newly-runnable down/right neighbours
//                         onto the finishing worker's own deque (locality —
//                         the shared boundary line is still in that
//                         worker's cache), idle workers steal from victims
//                         round-robin, and quiescence is a shared completed
//                         counter rather than any barrier or lock.
//                         Ablation E11 compares the three.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/tile_executor.hpp"
#include "parallel/steal_deque.hpp"
#include "parallel/thread_pool.hpp"

namespace flsa {

enum class SchedulerKind : std::uint8_t {
  kBarrierStaged,
  kDependencyCounter,
  kWorkStealing,
};

const char* to_string(SchedulerKind kind);

/// Parses a CLI scheduler name. Accepts the full to_string() names plus
/// the short forms "barrier", "dependency" and "stealing". Returns false
/// (leaving *out untouched) on anything else.
bool parse_scheduler_kind(std::string_view name, SchedulerKind* out);

/// TileExecutor running tiles on a shared ThreadPool.
///
/// Contract inherited from TileExecutor, plus: the skipped region must be
/// "down-right closed" (if (i, j) is skipped, so are (i+1, j) and
/// (i, j+1) within the grid) — true of FastLSA's bottom-right sub-problem
/// skip — so a runnable tile never waits on a skipped one.
///
/// The executor owns per-worker deques and the dependency-counter array
/// and reuses them across run() calls (grow-only), so FastLSA's many fill
/// and base-case phases do not re-allocate scheduler state.
class WavefrontExecutor final : public TileExecutor {
 public:
  WavefrontExecutor(ThreadPool& pool, SchedulerKind kind)
      : pool_(pool), kind_(kind), slots_(pool.size()) {}

  unsigned worker_count() const override { return pool_.size(); }
  SchedulerKind kind() const { return kind_; }

  void run(std::size_t tile_rows, std::size_t tile_cols, TileSkipFn skip,
           TileWorkFn work, TilePhase phase) override;

 private:
  /// One worker's scheduling state, cache-line separated so a worker's
  /// deque top/bottom traffic does not false-share with its neighbours'.
  struct alignas(64) WorkerSlot {
    StealDeque deque;
    // Owner-written statistics, harvested after each run.
    std::uint64_t steals = 0;          ///< successful steals by this worker
    std::uint64_t steal_attempts = 0;  ///< victim probes by this worker
    std::int64_t max_depth = 0;        ///< deepest own-deque depth observed
  };

  void run_barrier(std::size_t tile_rows, std::size_t tile_cols,
                   TileSkipFn skip, TileWorkFn work, TilePhase phase);
  void run_dependency(std::size_t tile_rows, std::size_t tile_cols,
                      TileSkipFn skip, TileWorkFn work, TilePhase phase);
  void run_work_stealing(std::size_t tile_rows, std::size_t tile_cols,
                         TileSkipFn skip, TileWorkFn work, TilePhase phase);

  /// Grow-only dependency-counter array shared by the dependency and
  /// work-stealing policies; contents are re-initialized per run.
  std::atomic<int>* ensure_deps(std::size_t count);

  ThreadPool& pool_;
  SchedulerKind kind_;
  std::vector<WorkerSlot> slots_;  ///< sized once; WorkerSlot is immovable
  std::unique_ptr<std::atomic<int>[]> deps_;
  std::size_t deps_capacity_ = 0;
};

}  // namespace flsa
