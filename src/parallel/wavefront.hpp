// Wavefront tile schedulers: the parallel execution policies behind
// Parallel FastLSA's Fill Grid Cache and Base Case phases.
//
// Tiles on the same anti-diagonal are independent (the paper's "wavefront
// lines"); two policies realize this:
//   kBarrierStaged      — the paper's formulation: process one wavefront
//                         line at a time, with a barrier between lines.
//   kDependencyCounter  — each tile becomes runnable as soon as its up and
//                         left neighbours finish; no barriers, so ragged
//                         diagonals and uneven tile costs overlap across
//                         lines. Ablation E11 compares the two.
#pragma once

#include "core/tile_executor.hpp"
#include "parallel/thread_pool.hpp"

namespace flsa {

enum class SchedulerKind : std::uint8_t {
  kBarrierStaged,
  kDependencyCounter,
};

const char* to_string(SchedulerKind kind);

/// TileExecutor running tiles on a shared ThreadPool.
///
/// Contract inherited from TileExecutor, plus: the skipped region must be
/// "down-right closed" (if (i, j) is skipped, so are (i+1, j) and
/// (i, j+1) within the grid) — true of FastLSA's bottom-right sub-problem
/// skip — so a runnable tile never waits on a skipped one.
class WavefrontExecutor final : public TileExecutor {
 public:
  WavefrontExecutor(ThreadPool& pool, SchedulerKind kind)
      : pool_(pool), kind_(kind) {}

  unsigned worker_count() const override { return pool_.size(); }

  void run(std::size_t tile_rows, std::size_t tile_cols,
           const TileSkipFn& skip, const TileWorkFn& work,
           TilePhase phase) override;

 private:
  void run_barrier(std::size_t tile_rows, std::size_t tile_cols,
                   const TileSkipFn& skip, const TileWorkFn& work,
                   TilePhase phase);
  void run_dependency(std::size_t tile_rows, std::size_t tile_cols,
                      const TileSkipFn& skip, const TileWorkFn& work,
                      TilePhase phase);

  ThreadPool& pool_;
  SchedulerKind kind_;
};

}  // namespace flsa
