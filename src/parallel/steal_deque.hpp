// Chase–Lev-style work-stealing deque of tile ids.
//
// Each wavefront worker owns one deque: the owner pushes and pops at the
// bottom (LIFO — the tile it just made runnable is the one whose boundary
// lines are still hot in its cache), thieves steal from the top (FIFO —
// the oldest tile, farthest along the anti-diagonal from the owner's
// position, which is exactly the tile that spreads the wavefront).
//
// Differences from the textbook Chase–Lev deque, both deliberate:
//   * Fixed capacity. A wavefront run knows its tile count up front, so
//     prepare() sizes the ring once per run (grow-only, reused across
//     runs) and push() never needs the concurrent-resize protocol.
//   * Conservative memory orders, no standalone fences. The classic
//     formulation (Le et al., PPoPP'13) uses std::atomic_thread_fence,
//     which ThreadSanitizer does not model and flags as false races.
//     Tiles are >= min_tile_extent^2 cells of DP work each, so the few
//     extra seq_cst operations per tile are far below measurement noise,
//     and the TSan CI job can verify the scheduler for real.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace flsa {

class StealDeque {
 public:
  /// Readies the deque for a run needing up to `capacity` queued entries.
  /// Grows (to a power of two) only when a larger run arrives; otherwise
  /// just resets the indices. Must be called with no concurrent access —
  /// the scheduler calls it before handing workers to the pool.
  void prepare(std::size_t capacity) {
    std::size_t want = 1;
    while (want < capacity) want *= 2;
    if (want > ring_.size()) {
      ring_ = std::vector<std::atomic<std::uint32_t>>(want);
      mask_ = want - 1;
    }
    top_.store(0, std::memory_order_relaxed);
    bottom_.store(0, std::memory_order_relaxed);
  }

  /// Owner only. Capacity is guaranteed by prepare(), so no resize path.
  void push(std::uint32_t value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    FLSA_ASSERT(static_cast<std::size_t>(
                    b - top_.load(std::memory_order_relaxed)) <= mask_);
    ring_[static_cast<std::size_t>(b) & mask_].store(
        value, std::memory_order_relaxed);
    // Publishes the slot: a thief that observes bottom > b also observes
    // the slot store (release/acquire pairing on bottom_).
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only. LIFO; loses the race for the last element to a thief's
  /// concurrent steal at most once per run.
  bool pop(std::uint32_t* out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty (a thief may have just taken the last entry)
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    *out = ring_[static_cast<std::size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it via the CAS on top_.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }

  /// Thieves. FIFO; returns false when empty or when another thief (or the
  /// owner's last-element pop) won the CAS — callers just move on to the
  /// next victim.
  bool steal(std::uint32_t* out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    *out = ring_[static_cast<std::size_t>(t) & mask_].load(
        std::memory_order_relaxed);
    return top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
  }

  /// Approximate current depth, for the owner's own statistics. Racy by
  /// nature; never used for scheduling decisions.
  std::int64_t depth_hint() const {
    return bottom_.load(std::memory_order_relaxed) -
           top_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::vector<std::atomic<std::uint32_t>> ring_;
  std::size_t mask_ = 0;
};

}  // namespace flsa
