// Chrome-trace span recorder.
//
// Collects duration spans — per-worker tile executions, engine phases,
// wavefront lines — and serializes them as the Trace Event JSON that
// chrome://tracing / Perfetto load directly. Loading a parallel run's
// trace shows one lane per worker, which makes the wavefront's
// ramp-up / saturation / ramp-down (the shape behind the paper's alpha
// model, Eq. 32) directly visible.
//
// Recording is pull-based: sites check active_trace() (one relaxed atomic
// pointer load, nullptr when no trace is being collected) and only then
// timestamp and record. record() appends under a mutex; spans are tile- or
// phase-granular (microseconds to seconds of work each), so the lock is
// far off any per-cell path.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

namespace flsa {
namespace obs {

/// One completed duration span. Negative optional args are omitted from
/// the JSON. `name` / `category` must point at static-lifetime strings.
struct TraceSpan {
  const char* name = "";
  const char* category = "";
  std::uint32_t tid = 0;   ///< lane: worker id, kPhaseLane or kSchedulerLane
  double ts_us = 0.0;      ///< start, microseconds since the recorder epoch
  double dur_us = 0.0;
  std::int64_t tile_row = -1;
  std::int64_t tile_col = -1;
  std::int64_t cells = -1;
  std::int64_t depth = -1;
  std::int64_t line = -1;
  std::int64_t tiles = -1;
  /// Scheduling policy that ran the tile (static string, e.g.
  /// "work-stealing"); nullptr when not applicable, omitted from JSON.
  const char* scheduler = nullptr;
};

/// Display lanes for spans that do not belong to a DP worker.
inline constexpr std::uint32_t kPhaseLane = 1000;      ///< engine phases
inline constexpr std::uint32_t kSchedulerLane = 1001;  ///< wavefront lines

class TraceRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  TraceRecorder() : epoch_(Clock::now()) {}

  static Clock::time_point now() { return Clock::now(); }

  /// Completes `span` with timestamps derived from [start, end) and
  /// appends it. Thread-safe.
  void record(TraceSpan span, Clock::time_point start, Clock::time_point end);

  std::size_t size() const;
  std::vector<TraceSpan> spans() const;  ///< copy, for tests/tools

  /// Writes the whole trace as Chrome Trace Event JSON ("traceEvents"
  /// array of complete "X" events plus thread-name metadata).
  void write_chrome_trace(std::ostream& os) const;

 private:
  Clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceSpan> spans_;
};

#if defined(FLSA_OBS_OFF)
constexpr TraceRecorder* active_trace() { return nullptr; }
inline void set_active_trace(TraceRecorder*) {}
#else
/// The recorder instrumentation currently records into (nullptr = none).
TraceRecorder* active_trace();
void set_active_trace(TraceRecorder* recorder);
#endif

}  // namespace obs
}  // namespace flsa
