#include "obs/obs.hpp"

#include <chrono>

namespace flsa {
namespace obs {

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kAlign: return "align";
    case Phase::kFillGrid: return "fill-grid";
    case Phase::kBaseCase: return "base-case";
    case Phase::kRecursion: return "recursion";
    case Phase::kHirschberg: return "hirschberg";
    case Phase::kBatchJob: return "batch-job";
  }
  return "?";
}

namespace {

/// Per-phase instruments, resolved once per process so PhaseTimer's
/// destructor touches only atomics and one histogram lock.
struct PhaseInstruments {
  Counter& invocations;
  Counter& cells;
  Histogram& seconds;
  Histogram& cells_per_s;

  explicit PhaseInstruments(Phase phase)
      : invocations(metrics().counter(name(phase, "invocations"))),
        cells(metrics().counter(name(phase, "cells"))),
        seconds(metrics().histogram(name(phase, "seconds"))),
        cells_per_s(metrics().histogram(name(phase, "cells_per_s"))) {}

  static std::string name(Phase phase, const char* suffix) {
    return std::string("phase.") + to_string(phase) + "." + suffix;
  }
};

const PhaseInstruments& instruments(Phase phase) {
  static PhaseInstruments table[] = {
      PhaseInstruments(Phase::kAlign),      PhaseInstruments(Phase::kFillGrid),
      PhaseInstruments(Phase::kBaseCase),   PhaseInstruments(Phase::kRecursion),
      PhaseInstruments(Phase::kHirschberg), PhaseInstruments(Phase::kBatchJob),
  };
  return table[static_cast<std::size_t>(phase)];
}

}  // namespace

PhaseTimer::PhaseTimer(Phase phase, std::uint32_t lane, std::int64_t depth,
                       bool record_metrics)
    : phase_(phase), lane_(lane), depth_(depth),
      record_metrics_(record_metrics && enabled()), trace_(active_trace()) {
  if (record_metrics_ || trace_ != nullptr) {
    start_ = TraceRecorder::now();
  }
}

PhaseTimer::~PhaseTimer() {
  if (!record_metrics_ && trace_ == nullptr) return;
  const TraceRecorder::Clock::time_point end = TraceRecorder::now();
  if (record_metrics_) {
    const double seconds =
        std::chrono::duration<double>(end - start_).count();
    const PhaseInstruments& pi = instruments(phase_);
    pi.invocations.add(1);
    pi.seconds.observe(seconds);
    if (cells_ > 0) {
      pi.cells.add(cells_);
      if (seconds > 0.0) {
        pi.cells_per_s.observe(static_cast<double>(cells_) / seconds);
      }
    }
  }
  if (trace_ != nullptr) {
    TraceSpan span;
    span.name = to_string(phase_);
    span.category = "phase";
    span.tid = lane_;
    span.cells = cells_ > 0 ? static_cast<std::int64_t>(cells_) : -1;
    span.depth = depth_;
    trace_->record(span, start_, end);
  }
}

void count(std::string_view name, std::uint64_t n) {
  if (!enabled()) return;
  metrics().counter(name).add(n);
}

void observe(std::string_view name, double value) {
  if (!enabled()) return;
  metrics().histogram(name).observe(value);
}

void set_gauge(std::string_view name, double value) {
  if (!enabled()) return;
  metrics().gauge(name).set(value);
}

}  // namespace obs
}  // namespace flsa
