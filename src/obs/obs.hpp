// Observability umbrella: FastLSA phase timers on top of the metrics
// registry (obs/metrics.hpp) and the Chrome-trace recorder (obs/trace.hpp).
//
// Instrumentation contract
// ------------------------
// Call sites use the FLSA_OBS_* macros below. Each expands to a check of
// the runtime switches (obs::enabled() for metrics, obs::active_trace()
// for spans — both one relaxed atomic load) and, when the tree is
// configured with -DFLSA_OBS=OFF, to nothing at all, so the SIMD hot
// paths pay zero cost with observability disabled. Per-cell code is never
// instrumented; the finest granularity is one tile (>= min_tile_extent^2
// cells of work).
//
// A PhaseTimer keyed by Phase::kFillGrid, for example, feeds four
// registry instruments on destruction:
//   phase.fill-grid.invocations  (counter)
//   phase.fill-grid.cells        (counter, from add_cells)
//   phase.fill-grid.seconds      (histogram, per-invocation)
//   phase.fill-grid.cells_per_s  (histogram — throughput accounting)
// and, when a trace is being collected, one span on the "phases" lane.
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flsa {
namespace obs {

/// The FastLSA run phases the per-phase timers are keyed by.
enum class Phase : std::uint8_t {
  kAlign,       ///< one whole engine run (any strategy)
  kFillGrid,    ///< one Fill Grid Cache wavefront sweep
  kBaseCase,    ///< one stored full-matrix Base Case solve
  kRecursion,   ///< one solve() sub-problem (spans nest by depth)
  kHirschberg,  ///< one Hirschberg divide-and-conquer alignment
  kBatchJob,    ///< one job of align_batch (lane = batch worker)
};

const char* to_string(Phase phase);

/// RAII per-phase timer; see the header comment for what it records.
/// Metrics recording can be suppressed (record_metrics = false) for
/// phases that nest within themselves — kRecursion — where summed
/// per-invocation seconds would double-count wall time; those still emit
/// trace spans, which nest meaningfully.
class PhaseTimer {
 public:
  explicit PhaseTimer(Phase phase, std::uint32_t lane = kPhaseLane,
                      std::int64_t depth = -1, bool record_metrics = true);
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Attributes DPM cells to this phase invocation (throughput = cells
  /// over the scope's lifetime).
  void add_cells(std::uint64_t cells) { cells_ += cells; }

 private:
  Phase phase_;
  std::uint32_t lane_;
  std::int64_t depth_;
  std::uint64_t cells_ = 0;
  bool record_metrics_;
  TraceRecorder* trace_;
  TraceRecorder::Clock::time_point start_;
};

/// Convenience recorders, gated on enabled(). They look the instrument up
/// by name on every call — fine for per-run or per-failure events; hot
/// sites should cache a Counter& / Histogram& from metrics() instead.
void count(std::string_view name, std::uint64_t n = 1);
void observe(std::string_view name, double value);
void set_gauge(std::string_view name, double value);

}  // namespace obs
}  // namespace flsa

// Call-site macros: compile-time no-ops under -DFLSA_OBS=OFF. The `var`
// of FLSA_OBS_PHASE is only ever referenced through FLSA_OBS_PHASE_CELLS,
// so both vanish together.
#if defined(FLSA_OBS_OFF)
#define FLSA_OBS_PHASE(var, ...) ((void)0)
#define FLSA_OBS_PHASE_CELLS(var, n) ((void)0)
#define FLSA_OBS_COUNT(name, n) ((void)0)
#define FLSA_OBS_OBSERVE(name, value) ((void)0)
#define FLSA_OBS_GAUGE(name, value) ((void)0)
#else
#define FLSA_OBS_PHASE(var, ...) ::flsa::obs::PhaseTimer var(__VA_ARGS__)
#define FLSA_OBS_PHASE_CELLS(var, n) (var).add_cells(n)
#define FLSA_OBS_COUNT(name, n) ::flsa::obs::count((name), (n))
#define FLSA_OBS_OBSERVE(name, value) ::flsa::obs::observe((name), (value))
#define FLSA_OBS_GAUGE(name, value) ::flsa::obs::set_gauge((name), (value))
#endif
