#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <vector>

namespace flsa {
namespace obs {

int Histogram::bucket_index(double value) {
  if (!(value > 0.0)) return 0;
  int exp = 0;
  std::frexp(value, &exp);  // value = mantissa * 2^exp, mantissa in [0.5, 1)
  return std::clamp(exp + kBucketBias, 0, kBucketCount - 1);
}

double Histogram::bucket_upper_bound(int index) {
  return std::ldexp(1.0, index - kBucketBias);
}

void Histogram::observe(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.count == 0) {
    stats_.min = value;
    stats_.max = value;
  } else {
    stats_.min = std::min(stats_.min, value);
    stats_.max = std::max(stats_.max, value);
  }
  ++stats_.count;
  stats_.sum += value;
  ++buckets_[static_cast<std::size_t>(bucket_index(value))];
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

double Histogram::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.count == 0) return 0.0;
  const double target = q * static_cast<double>(stats_.count);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[static_cast<std::size_t>(i)];
    if (static_cast<double>(cumulative) >= target) {
      return std::min(bucket_upper_bound(i), stats_.max);
    }
  }
  return stats_.max;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = Snapshot{};
  buckets_.fill(0);
}

namespace {

template <typename Map>
auto& lookup(Map& map, std::string_view name, std::mutex& mutex) {
  std::lock_guard<std::mutex> lock(mutex);
  const auto it = map.find(name);
  if (it != map.end()) return *it->second;
  using Instrument = typename Map::mapped_type::element_type;
  return *map.emplace(std::string(name), std::make_unique<Instrument>())
              .first->second;
}

}  // namespace

MetricsRegistry::MetricsRegistry()
    : start_(std::chrono::steady_clock::now()) {}

std::uint64_t MetricsRegistry::uptime_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return lookup(counters_, name, mutex_);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return lookup(gauges_, name, mutex_);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return lookup(histograms_, name, mutex_);
}

void MetricsRegistry::report(std::ostream& os) const {
  // Snapshot the name lists under the lock, then read the instruments
  // lock-free / per-instrument so a concurrent observe() cannot deadlock.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_)
      histograms.emplace_back(name, h.get());
  }
  os << "-- metrics "
        "--------------------------------------------------------------\n";
  for (const auto& [name, c] : counters) {
    os << "counter    " << name << " = " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges) {
    os << "gauge      " << name << " = " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms) {
    const Histogram::Snapshot s = h->snapshot();
    os << "histogram  " << name << " : count=" << s.count
       << " sum=" << s.sum << " mean=" << s.mean() << " min=" << s.min
       << " max=" << s.max << " p50~" << h->quantile(0.5) << " p99~"
       << h->quantile(0.99) << "\n";
  }
  os << "-----------------------------------------------------------------"
        "--------\n";
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  // Same locking discipline as report(): copy the instrument lists under
  // the registry lock, then sample each instrument through its own
  // synchronization.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_)
      histograms.emplace_back(name, h.get());
  }
  std::vector<Sample> samples;
  samples.reserve(1 + counters.size() + gauges.size() +
                  6 * histograms.size());
  // Synthetic, always-present, monotonic: survives reset() so a STATS
  // poller can order snapshots and detect restarts.
  samples.push_back({"uptime_ms", static_cast<double>(uptime_ms())});
  for (const auto& [name, c] : counters) {
    samples.push_back({name, static_cast<double>(c->value())});
  }
  for (const auto& [name, g] : gauges) {
    samples.push_back({name, g->value()});
  }
  for (const auto& [name, h] : histograms) {
    const Histogram::Snapshot s = h->snapshot();
    samples.push_back({name + ".count", static_cast<double>(s.count)});
    samples.push_back({name + ".mean", s.mean()});
    samples.push_back({name + ".p50", h->quantile(0.5)});
    samples.push_back({name + ".p95", h->quantile(0.95)});
    samples.push_back({name + ".p99", h->quantile(0.99)});
    samples.push_back({name + ".max", s.max});
  }
  return samples;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) entry.second->reset();
  for (auto& entry : gauges_) entry.second->reset();
  for (auto& entry : histograms_) entry.second->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

#if !defined(FLSA_OBS_OFF)

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

#endif  // !FLSA_OBS_OFF

}  // namespace obs
}  // namespace flsa
