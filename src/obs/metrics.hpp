// Thread-safe metrics primitives and the process-wide registry.
//
// The registry answers "where did the time and the cells go" for a run:
// counters accumulate monotonically (jobs, failures, cells), gauges hold
// the latest value of a quantity (resolved worker counts, the last run's
// cells/s), histograms record distributions (per-phase seconds, per-phase
// cells/s throughput). All primitives may be updated from concurrent
// workers; registry lookups return references that stay valid for the
// process lifetime, so hot paths resolve a name once and then touch only
// the instrument itself.
//
// Observability is off by default: every recording site first checks
// enabled(), one relaxed atomic load. Compiling with FLSA_OBS_OFF (CMake
// -DFLSA_OBS=OFF) turns enabled() into a constant false so the
// instrumentation folds away entirely — see obs/obs.hpp.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace flsa {
namespace obs {

/// Monotonic counter (events, cells, failures).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Latest-value gauge (worker counts, last-run throughput).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution of non-negative samples: count / sum / min / max plus
/// power-of-two buckets wide enough for both microsecond timings and
/// gigacell/s throughputs, so approximate quantiles come out of one
/// fixed-size table. observe() takes a short lock; callers record per
/// phase or per grid, not per cell, so contention is negligible.
class Histogram {
 public:
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean() const { return count == 0 ? 0.0 : sum / double(count); }
  };

  void observe(double value);
  Snapshot snapshot() const;

  /// Upper bound of the bucket where the cumulative count first reaches
  /// `q` (0 < q <= 1) of the total; 0 when empty. Approximate by design.
  double quantile(double q) const;

  void reset();

 private:
  // Bucket i covers [2^(i - kBucketBias - 1), 2^(i - kBucketBias)).
  static constexpr int kBucketCount = 96;
  static constexpr int kBucketBias = 32;  // resolves down to ~2^-32
  static int bucket_index(double value);
  static double bucket_upper_bound(int index);

  mutable std::mutex mutex_;
  Snapshot stats_;
  std::array<std::uint64_t, kBucketCount> buckets_{};
};

/// Name -> instrument registry. Instruments are created on first lookup
/// and never destroyed, so returned references are stable; reset() zeroes
/// values but keeps the objects (and outstanding references) alive.
class MetricsRegistry {
 public:
  MetricsRegistry();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Human-readable dump, sorted by kind then name.
  void report(std::ostream& os) const;

  /// One sampled instrument value. Counters and gauges yield their name
  /// as-is; each histogram expands into `<name>.count`, `<name>.mean`,
  /// `<name>.p50`, `<name>.p95`, `<name>.p99` and `<name>.max` entries.
  struct Sample {
    std::string name;
    double value = 0.0;
  };

  /// Flat machine-readable snapshot of every instrument, sorted by name
  /// within each kind (counters, then gauges, then histogram expansions).
  /// This is what the alignment service's STATS verb ships over the wire.
  /// Always includes a synthetic `uptime_ms` sample (see uptime_ms()).
  std::vector<Sample> snapshot() const;

  /// Milliseconds since the registry was constructed, from a steady
  /// clock. Monotonic across reset(): a router health-checking a backend
  /// via STATS can tell "freshly restarted" from "counters were zeroed",
  /// and two consecutive snapshots always order correctly.
  std::uint64_t uptime_ms() const;

  /// Zeroes every instrument (bench reruns / tests). uptime_ms is
  /// deliberately not reset.
  void reset();

 private:
  const std::chrono::steady_clock::time_point start_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry every instrumentation site records into.
MetricsRegistry& metrics();

#if defined(FLSA_OBS_OFF)
constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
#else
/// Runtime switch for metrics recording (default off).
bool enabled();
void set_enabled(bool on);
#endif

}  // namespace obs
}  // namespace flsa
