#include "obs/trace.hpp"

#include <atomic>
#include <ostream>
#include <set>

namespace flsa {
namespace obs {

namespace {

double micros_between(TraceRecorder::Clock::time_point from,
                      TraceRecorder::Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Minimal JSON string escaper (span names are static strings under our
/// control, but keep the writer safe regardless).
void write_escaped(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      const unsigned u = static_cast<unsigned char>(c);
      os << "\\u00" << "0123456789abcdef"[(u >> 4) & 0xfu]
         << "0123456789abcdef"[u & 0xfu];
    } else {
      os << c;
    }
  }
  os << '"';
}

void write_arg(std::ostream& os, bool& first, const char* key,
               std::int64_t value) {
  if (value < 0) return;
  os << (first ? "" : ",") << '"' << key << "\":" << value;
  first = false;
}

}  // namespace

void TraceRecorder::record(TraceSpan span, Clock::time_point start,
                           Clock::time_point end) {
  span.ts_us = micros_between(epoch_, start);
  span.dur_us = micros_between(start, end);
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(span);
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::vector<TraceSpan> TraceRecorder::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceSpan> spans = this->spans();

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first_event = true;

  // Thread-name metadata: one lane per worker plus the engine lanes, so
  // the viewer labels rows "worker 3" instead of bare tids.
  std::set<std::uint32_t> tids;
  for (const TraceSpan& s : spans) tids.insert(s.tid);
  for (const std::uint32_t tid : tids) {
    os << (first_event ? "" : ",")
       << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"name\":\"";
    if (tid == kPhaseLane) {
      os << "phases";
    } else if (tid == kSchedulerLane) {
      os << "wavefront lines";
    } else {
      os << "worker " << tid;
    }
    os << "\"}}";
    first_event = false;
  }

  const std::streamsize precision = os.precision();
  os.precision(3);
  os << std::fixed;
  for (const TraceSpan& s : spans) {
    os << (first_event ? "" : ",") << "{\"name\":";
    write_escaped(os, s.name);
    os << ",\"cat\":";
    write_escaped(os, s.category);
    os << ",\"ph\":\"X\",\"pid\":0,\"tid\":" << s.tid << ",\"ts\":" << s.ts_us
       << ",\"dur\":" << s.dur_us << ",\"args\":{";
    bool first_arg = true;
    write_arg(os, first_arg, "tile_row", s.tile_row);
    write_arg(os, first_arg, "tile_col", s.tile_col);
    write_arg(os, first_arg, "cells", s.cells);
    write_arg(os, first_arg, "depth", s.depth);
    write_arg(os, first_arg, "line", s.line);
    write_arg(os, first_arg, "tiles", s.tiles);
    if (s.scheduler != nullptr) {
      os << (first_arg ? "" : ",") << "\"sched\":\"" << s.scheduler << "\"";
      first_arg = false;
    }
    os << "}}";
    first_event = false;
  }
  os << "]}";
  os.unsetf(std::ios_base::fixed);
  os.precision(precision);
}

#if !defined(FLSA_OBS_OFF)

namespace {
std::atomic<TraceRecorder*> g_active_trace{nullptr};
}  // namespace

TraceRecorder* active_trace() {
  return g_active_trace.load(std::memory_order_acquire);
}

void set_active_trace(TraceRecorder* recorder) {
  g_active_trace.store(recorder, std::memory_order_release);
}

#endif  // !FLSA_OBS_OFF

}  // namespace obs
}  // namespace flsa
