// Configuration advisor: the paper's tuning methodology as code.
//
// A recurring theme of the paper is that FastLSA is *parameterizable*: k
// and BM should be chosen from the machine's cache and memory sizes, and k
// also drives parallel speedup. recommend() encodes that reasoning — it
// scores candidate configurations with the paper's own cost model
// (simexec/model.hpp) under the machine's constraints and explains its
// choice.
#pragma once

#include <string>

#include "core/aligner.hpp"
#include "parallel/parallel_fastlsa.hpp"

namespace flsa {

/// What the advisor knows about the machine.
struct MachineProfile {
  /// Effective cache size the Base Case buffer should live in.
  std::size_t cache_bytes = 1u << 20;
  /// Total memory available for DPM state; 0 = unbounded.
  std::size_t memory_bytes = 0;
  /// Worker threads available (the paper's P).
  unsigned processors = 1;
};

/// Advisor output: a full configuration plus the reasoning.
struct Recommendation {
  Strategy strategy = Strategy::kFastLsa;
  FastLsaOptions fastlsa;
  ParallelOptions parallel;
  /// Predicted cost in cell units under the paper's model (Eq. 36-style).
  double predicted_cost = 0.0;
  std::string rationale;
};

/// Recommends a configuration for aligning an m x n pair on `machine`.
Recommendation recommend(std::size_t m, std::size_t n, bool affine,
                         const MachineProfile& machine);

}  // namespace flsa
