#include "core/budget.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"

namespace flsa {

void MemoryTracker::allocate(std::size_t bytes) {
  current_ += bytes;
  peak_ = std::max(peak_, current_);
  ++allocations_;
}

void MemoryTracker::release(std::size_t bytes) {
  FLSA_REQUIRE(bytes <= current_);
  current_ -= bytes;
}

MemoryCharge::MemoryCharge(MemoryTracker* tracker, std::size_t bytes)
    : tracker_(tracker), bytes_(bytes) {
  if (tracker_) tracker_->allocate(bytes_);
}

MemoryCharge::~MemoryCharge() {
  if (tracker_) tracker_->release(bytes_);
}

MemoryCharge::MemoryCharge(MemoryCharge&& other) noexcept
    : tracker_(std::exchange(other.tracker_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)) {}

MemoryCharge& MemoryCharge::operator=(MemoryCharge&& other) noexcept {
  if (this != &other) {
    if (tracker_) tracker_->release(bytes_);
    tracker_ = std::exchange(other.tracker_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
  }
  return *this;
}

void MemoryCharge::resize(std::size_t bytes) {
  if (tracker_) {
    tracker_->release(bytes_);
    tracker_->allocate(bytes);
  }
  bytes_ = bytes;
}

}  // namespace flsa
