#include "core/advisor.hpp"

#include <algorithm>
#include <sstream>

#include "dp/gotoh.hpp"
#include "simexec/model.hpp"
#include "support/assert.hpp"

namespace flsa {

Recommendation recommend(std::size_t m, std::size_t n, bool affine,
                         const MachineProfile& machine) {
  FLSA_REQUIRE(machine.processors >= 1);
  FLSA_REQUIRE(machine.cache_bytes >= 1024);
  const std::size_t cell = affine ? sizeof(AffineCell) : sizeof(Score);
  Recommendation rec;
  rec.parallel.threads = machine.processors;

  // Whole DPM in cache: the full matrix is unbeatable (no recomputation,
  // perfectly streaming access).
  const std::size_t fm_bytes = (m + 1) * (n + 1) * cell;
  if (fm_bytes <= machine.cache_bytes) {
    rec.strategy = Strategy::kFullMatrix;
    rec.predicted_cost = static_cast<double>(m) * static_cast<double>(n);
    rec.rationale = "full DPM fits in cache (" +
                    std::to_string(fm_bytes / 1024) + " KiB)";
    return rec;
  }

  // Base Case buffer: half the cache, so the score row, grid-line slices
  // and sequence segments share the rest.
  std::size_t bm = 16;
  while (bm * 2 * cell <= machine.cache_bytes / 2) bm *= 2;
  rec.fastlsa.base_case_cells = bm;

  // Score candidate k with the paper's model: parallel fill cost factor
  // alpha (Eq. 32) times the sequential work bound (Eq. 35), subject to
  // grid memory k * (m + n) cells fitting the memory budget.
  const unsigned p = machine.processors;
  // Top-level fill tiling the parallel driver would use for a given k
  // (mirrors ParallelOptions::resolved without depending on it).
  auto top_tiles = [p](unsigned k) {
    const std::size_t per_block =
        std::max<std::size_t>(1, (2 * p + k - 1) / k);
    return k * per_block;
  };
  double best_cost = 0.0;
  unsigned best_k = 0;
  for (unsigned k = 2; k <= 64; ++k) {
    const std::size_t grid_cells = static_cast<std::size_t>(k) * (m + n + 2);
    if (machine.memory_bytes != 0 &&
        grid_cells * cell + bm * cell > machine.memory_bytes) {
      continue;
    }
    const std::size_t tiles = top_tiles(k);
    const double cost =
        model::total_time_bound(m, n, k, p, tiles, tiles);
    if (best_k == 0 || cost < best_cost) {
      best_cost = cost;
      best_k = k;
    }
  }
  if (best_k == 0) {
    // Memory budget below even k = 2 grid lines: take k = 2 anyway (the
    // library still runs; the budget was physically infeasible).
    best_k = 2;
    best_cost = model::total_time_bound(m, n, 2, p, top_tiles(2),
                                        top_tiles(2));
  }

  rec.strategy = Strategy::kFastLsa;
  rec.fastlsa.k = best_k;
  rec.predicted_cost = best_cost;
  std::ostringstream why;
  why << "DPM (" << fm_bytes / (1024 * 1024)
      << " MiB) exceeds cache; k=" << best_k << " minimizes the Eq.36 cost"
      << " model at P=" << p << ", BM=" << bm
      << " cells keeps base cases cache-resident";
  rec.rationale = why.str();
  return rec;
}

}  // namespace flsa
