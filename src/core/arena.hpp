// Allocation-recycling arena for the FastLSA recursion hot path.
//
// The engine used to allocate at every recursion level — grid-row/column
// caches, tile boundary lines, cut vectors — and at every align() call —
// base-case buffer, per-worker scratch, boundary rows, path storage. The
// deeper FastLSA recurses (the very thing that makes it beat Hirschberg's
// 2x operation count), the more of its time went to the allocator instead
// of DPM cells. This header removes that cost in two layers:
//
//   * VectorPool<T> — a size-bucketed free list of std::vector<T> buffers.
//     acquire(n) returns a vector resized to n whose capacity is a power
//     of two >= n; release() files the buffer under floor(log2(capacity)),
//     so any buffer in bucket b satisfies any request with
//     ceil(log2(n)) == b. Grid lines of the many different sub-problem
//     sizes along the optimal path all recycle through the same buckets.
//   * EngineArena<CellT> — everything FastLsaEngine needs across one
//     align() call: the pool, per-recursion-depth LevelScratch (cut
//     vectors and line handles, reused each time the recursion re-enters
//     that depth), the Base Case buffer, per-worker sweep scratch, global
//     boundary rows, and the traceback path's storage.
//
// A FastLsaWorkspace bundles the linear and affine arenas and can be
// passed to align calls via FastLsaOptions::workspace. Reusing one
// workspace across calls makes every steady-state align() heap-allocation
// free inside the engine: after the first (warm-up) call every acquire is
// a pool hit. A workspace must not be shared by concurrent align calls;
// it is only ever touched from the coordinating thread (tile workers see
// pre-acquired buffers, never the pool).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "dp/counters.hpp"
#include "dp/gotoh.hpp"
#include "dp/matrix.hpp"
#include "dp/path.hpp"
#include "scoring/matrix.hpp"
#include "support/assert.hpp"

namespace flsa {
namespace detail {

/// Size-bucketed free list of vector buffers (see the header comment).
template <typename T>
class VectorPool {
 public:
  /// A buffer of exactly `size` elements with capacity >= size. Freshly
  /// grown elements are value-initialized; recycled buffers keep stale
  /// contents (every consumer in the engine writes before reading).
  std::vector<T> acquire(std::size_t size) {
    const unsigned bucket = bucket_ceil(size);
    auto& shelf = shelves_[bucket];
    if (shelf.empty()) {
      ++misses_;
      std::vector<T> fresh;
      fresh.reserve(std::size_t{1} << bucket);
      fresh.resize(size);
      return fresh;
    }
    ++hits_;
    std::vector<T> v = std::move(shelf.back());
    shelf.pop_back();
    v.resize(size);
    return v;
  }

  /// Returns a buffer to the pool. Capacity-less vectors are dropped.
  void release(std::vector<T>&& v) {
    if (v.capacity() == 0) return;
    shelves_[bucket_floor(v.capacity())].push_back(std::move(v));
  }

  /// Fresh heap growths / recycled reuses since construction. A reused
  /// workspace reaches misses() == 0 per call after warm-up, which the
  /// arena tests and FastLsaStats::arena_pool_misses assert.
  std::uint64_t misses() const { return misses_; }
  std::uint64_t hits() const { return hits_; }

 private:
  static constexpr unsigned kBuckets = 48;

  static unsigned bucket_ceil(std::size_t n) {
    unsigned b = 0;
    while ((std::size_t{1} << b) < n) ++b;
    FLSA_ASSERT(b < kBuckets);
    return b;
  }
  static unsigned bucket_floor(std::size_t capacity) {
    unsigned b = 0;
    while ((std::size_t{2} << b) <= capacity) ++b;
    FLSA_ASSERT(b < kBuckets);
    return b;
  }

  std::array<std::vector<std::vector<T>>, kBuckets> shelves_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// RAII handle on a pooled buffer: returns it to its pool on destruction,
/// release(), or when overwritten. Move-only.
template <typename T>
class PooledVector {
 public:
  PooledVector() = default;
  PooledVector(std::vector<T>&& v, VectorPool<T>* pool)
      : v_(std::move(v)), pool_(pool) {}

  PooledVector(PooledVector&& other) noexcept
      : v_(std::move(other.v_)), pool_(other.pool_) {
    other.pool_ = nullptr;
    other.v_.clear();
  }
  PooledVector& operator=(PooledVector&& other) noexcept {
    if (this != &other) {
      release();
      v_ = std::move(other.v_);
      pool_ = other.pool_;
      other.pool_ = nullptr;
      other.v_.clear();
    }
    return *this;
  }
  PooledVector(const PooledVector&) = delete;
  PooledVector& operator=(const PooledVector&) = delete;
  ~PooledVector() { release(); }

  void release() {
    if (pool_ != nullptr) {
      pool_->release(std::move(v_));
      pool_ = nullptr;
    }
    v_.clear();
  }

  std::vector<T>& vec() { return v_; }
  const std::vector<T>& vec() const { return v_; }

 private:
  std::vector<T> v_;
  VectorPool<T>* pool_ = nullptr;
};

/// Per-recursion-depth scratch. solve() at depth d always uses level d's
/// scratch; the recursion is sequential (one active sub-problem per
/// depth), so each level's cut vectors and line-handle tables are reused
/// every time the recursion re-enters that depth, keeping their capacity.
template <typename CellT>
struct LevelScratch {
  // Block and tile cut positions (interior cuts; see engine.hpp).
  std::vector<std::size_t> block_rows, block_cols;
  std::vector<std::size_t> tile_rows, tile_cols;
  // Tile boundary lines during the fill; the block-cut subset is moved
  // into grid_rows/grid_cols for the recursion phase, the rest released.
  std::vector<PooledVector<CellT>> line_rows, line_cols;
  std::vector<PooledVector<CellT>> grid_rows, grid_cols;

  /// Grows a handle table, never shrinks it (empty handles are cheap).
  static void ensure(std::vector<PooledVector<CellT>>& handles,
                     std::size_t count) {
    if (handles.size() < count) handles.resize(count);
  }
};

/// Everything one FastLsaEngine<CellT> run needs from the heap.
template <typename CellT>
struct EngineArena {
  VectorPool<CellT> cell_pool;
  // Deque, not vector: level d's scratch stays referenced while deeper
  // levels are appended, and deque growth never moves existing elements.
  std::deque<LevelScratch<CellT>> level_storage;
  Matrix2D<CellT> base_buffer;
  std::vector<std::size_t> base_row_cuts, base_col_cuts;
  std::vector<std::vector<CellT>> scratch_bottom, scratch_right;
  std::vector<DpCounters> worker_counters;
  std::vector<CellT> boundary_top, boundary_left;
  std::vector<Move> path_storage;

  /// LevelScratch for recursion depth `depth` (created on first use).
  LevelScratch<CellT>& level(std::size_t depth) {
    while (level_storage.size() <= depth) level_storage.emplace_back();
    return level_storage[depth];
  }
};

}  // namespace detail

/// Reusable scratch for align calls (see the header comment). Not
/// thread-safe: one workspace per concurrently-aligning thread.
class FastLsaWorkspace {
 public:
  template <typename CellT>
  detail::EngineArena<CellT>& arena() {
    if constexpr (std::is_same_v<CellT, Score>) {
      return linear_;
    } else {
      static_assert(std::is_same_v<CellT, AffineCell>);
      return affine_;
    }
  }

  /// Aggregate pool statistics across both gap models (fresh heap growths
  /// vs recycled buffers; see VectorPool).
  std::uint64_t pool_misses() const {
    return linear_.cell_pool.misses() + affine_.cell_pool.misses();
  }
  std::uint64_t pool_hits() const {
    return linear_.cell_pool.hits() + affine_.cell_pool.hits();
  }

 private:
  detail::EngineArena<Score> linear_;
  detail::EngineArena<AffineCell> affine_;
};

}  // namespace flsa
