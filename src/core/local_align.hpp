// Linear-space local alignment (extension).
//
// Smith-Waterman in linear space by composition: a forward score-only pass
// locates the end of the best local alignment, a reverse pass from that end
// locates its start, and the enclosed rectangle — now a *global* alignment
// problem — is solved with FastLSA. Total memory stays linear while the
// full-matrix Smith-Waterman needs m*n.
#pragma once

#include "core/fastlsa.hpp"
#include "dp/alignment.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// Optimal local alignment (linear gaps) in linear space. Produces the same
/// score as local_align_full_matrix; the aligned region may differ among
/// co-optimal alignments but is deterministic.
Alignment local_align(const Sequence& a, const Sequence& b,
                      const ScoringScheme& scheme,
                      const FastLsaOptions& options = {},
                      FastLsaStats* stats = nullptr);

}  // namespace flsa
