// Sequential FastLSA (the paper's core contribution).
//
// FastLSA generalizes Hirschberg's linear-space alignment: instead of
// halving one sequence, it divides *both* sequences into k parts, caching
// the k-1 interior grid rows and k-1 interior grid columns of the logical
// DPM (the Grid Cache). It then recurses on the sub-matrix at the current
// end of the optimal path — bottom-right first, then the successive
// "up-left" sub-matrices the path enters — re-deriving interior values only
// for blocks the optimal path actually visits. Sub-problems whose DPM fits
// in the reserved Base Case buffer (BM cells) are solved with the stored
// full-matrix algorithm.
//
// Space: O(k * (m + n)) for grid lines along the recursion, plus BM.
// Operations: between 1.0x and ~(k/(k-1))^2 x the full-matrix algorithm's
// m*n, per the paper's theorems; k and BM tune the space/time trade-off.
#pragma once

#include <cstdint>

#include "core/budget.hpp"
#include "dp/alignment.hpp"
#include "dp/counters.hpp"
#include "dp/kernel.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

class FastLsaWorkspace;  // core/arena.hpp

/// Tuning parameters of FastLSA (the paper's k and BM).
struct FastLsaOptions {
  /// Number of segments each dimension of a sub-problem is divided into
  /// (k >= 2). Larger k stores more grid lines and recomputes less.
  unsigned k = 8;

  /// Base Case buffer size in DPM *cells* (a cell is one Score for linear
  /// schemes, one (D, Ix, Iy) triple for affine ones). A sub-problem with
  /// (rows+1)*(cols+1) <= base_case_cells is solved with a full matrix.
  /// Minimum 16.
  std::size_t base_case_cells = 1u << 20;

  /// DP sweep implementation for the Fill Grid Cache tiles (and every
  /// other boundary sweep). kAuto picks the fastest kernel the CPU
  /// supports; all kernels produce identical scores and alignments.
  KernelKind kernel = KernelKind::kAuto;

  /// Score-bound band pruning of the Fill Grid Cache phase. When enabled,
  /// the engine seeds an incumbent from a greedy main-diagonal alignment
  /// (a real alignment, hence a lower bound of the optimum) and skips any
  /// grid tile whose admissible upper bound — best boundary value plus
  /// max(0, best substitution score) per remaining diagonal step — cannot
  /// reach it, publishing -inf sentinel boundary lines instead. The
  /// optimal score and alignment are unchanged (cells on any optimal path
  /// always pass the bound test); only off-band work is dropped, counted
  /// in FastLsaStats as tiles_pruned. Default off: the exact sweep of
  /// every tile stays the reference behaviour, and counter-based golden
  /// fingerprints (cells_scored) only hold with pruning off.
  bool prune = false;

  /// Optional reusable scratch (core/arena.hpp). When set, the engine
  /// draws every internal buffer — grid/line caches, base-case matrix,
  /// per-worker scratch, path storage — from this workspace instead of the
  /// heap, so repeated align calls with the same workspace stop allocating
  /// once warm. Not thread-safe: one workspace per aligning thread. When
  /// null the engine creates a private (single-use) workspace.
  FastLsaWorkspace* workspace = nullptr;
};

/// Per-run observability: operation counters plus FastLSA-specific shape
/// and memory statistics.
struct FastLsaStats {
  DpCounters counters;
  /// Peak bytes of DPM state (grid caches + base-case buffer + boundaries).
  std::size_t peak_bytes = 0;
  std::uint64_t grid_allocations = 0;
  std::uint64_t base_case_invocations = 0;
  std::uint64_t recursive_splits = 0;
  std::uint64_t max_recursion_depth = 0;
  /// Arena buffer recycling during this run: misses are fresh heap
  /// growths, hits are recycled buffers. With a reused workspace, misses
  /// drops to 0 once warm (the allocation-free steady state).
  std::uint64_t arena_pool_hits = 0;
  std::uint64_t arena_pool_misses = 0;
  /// The sweep kernel the run actually executed with (kAuto resolved).
  KernelKind kernel_used = KernelKind::kScalar;
};

/// Validates options (throws std::invalid_argument on nonsense).
void validate(const FastLsaOptions& options);

/// Optimal global alignment with linear gaps via sequential FastLSA.
/// Produces exactly the same optimal score as the FM and Hirschberg
/// algorithms (and, with the shared deterministic tie-breaking, the same
/// path).
Alignment fastlsa_align(const Sequence& a, const Sequence& b,
                        const ScoringScheme& scheme,
                        const FastLsaOptions& options = {},
                        FastLsaStats* stats = nullptr);

/// Affine-gap FastLSA: grid lines cache (D, Ix, Iy) triples and the
/// traceback carries its gap lane across block boundaries.
Alignment fastlsa_align_affine(const Sequence& a, const Sequence& b,
                               const ScoringScheme& scheme,
                               const FastLsaOptions& options = {},
                               FastLsaStats* stats = nullptr);

/// Optimal score only (linear scheme), using FastLSA's FindScore phase —
/// one row sweep, no grid caches. Provided for completeness/benchmarks.
Score fastlsa_score(const Sequence& a, const Sequence& b,
                    const ScoringScheme& scheme,
                    FastLsaStats* stats = nullptr);

}  // namespace flsa
