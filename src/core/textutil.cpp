#include "core/textutil.hpp"

#include <algorithm>
#include <stdexcept>

#include "dp/kernel.hpp"
#include "scoring/builtin.hpp"
#include "support/assert.hpp"

namespace flsa {

namespace {

/// Synthesizes a case-sensitive alphabet covering every character of both
/// strings (at most 64 distinct).
Alphabet make_text_alphabet(std::string_view a, std::string_view b) {
  bool seen[256] = {};
  std::string letters;
  auto collect = [&](std::string_view s) {
    for (char c : s) {
      if (!seen[static_cast<unsigned char>(c)]) {
        seen[static_cast<unsigned char>(c)] = true;
        letters.push_back(c);
      }
    }
  };
  collect(a);
  collect(b);
  FLSA_ASSERT(!letters.empty());  // callers handle empty inputs
  if (letters.size() > 64) {
    throw std::invalid_argument(
        "edit_distance/LCS support at most 64 distinct characters, got " +
        std::to_string(letters.size()));
  }
  return Alphabet(letters, "text", /*case_sensitive=*/true);
}

}  // namespace

std::size_t edit_distance(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  const Alphabet alphabet = make_text_alphabet(a, b);
  const SubstitutionMatrix matrix =
      scoring::identity(alphabet, /*match=*/0, /*mismatch=*/-1);
  const ScoringScheme scheme(matrix, /*gap=*/-1);
  const Sequence sa(alphabet, a);
  const Sequence sb(alphabet, b);
  const Score score = global_score_linear(
      KernelKind::kAuto, sa.residues(), sb.residues(), scheme);
  FLSA_ASSERT(score <= 0);
  return static_cast<std::size_t>(-score);
}

LcsResult longest_common_subsequence(std::string_view a, std::string_view b,
                                     const FastLsaOptions& options) {
  LcsResult result;
  if (a.empty() || b.empty()) return result;
  const Alphabet alphabet = make_text_alphabet(a, b);
  // Match +1, gaps free; mismatching diagonals (-1) are never optimal
  // because skipping both characters costs 0 — so every diagonal of the
  // optimal path is a real match and the score is the LCS length.
  const SubstitutionMatrix matrix =
      scoring::identity(alphabet, /*match=*/1, /*mismatch=*/-1);
  const ScoringScheme scheme(matrix, /*gap=*/0);
  const Sequence sa(alphabet, a);
  const Sequence sb(alphabet, b);
  const Alignment aln = fastlsa_align(sa, sb, scheme, options);
  result.length = static_cast<std::size_t>(aln.score);
  for (std::size_t i = 0; i < aln.gapped_a.size(); ++i) {
    if (aln.gapped_a[i] != '-' && aln.gapped_a[i] == aln.gapped_b[i]) {
      result.subsequence.push_back(aln.gapped_a[i]);
    }
  }
  FLSA_ASSERT(result.subsequence.size() == result.length);
  return result;
}

}  // namespace flsa
