// Text utilities on top of the alignment engine.
//
// Hirschberg's 1975 algorithm was originally stated for the longest common
// subsequence problem; Myers and Miller transplanted it to sequence
// alignment (paper Section 1). These helpers close the loop: LCS and
// Levenshtein edit distance over arbitrary strings, computed in linear
// space by the library's own machinery (an alphabet is synthesized from
// the characters actually present).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/fastlsa.hpp"

namespace flsa {

/// Levenshtein distance (unit-cost substitutions, insertions, deletions),
/// computed score-only in O(min(m, n)) space.
/// Throws std::invalid_argument if the two strings use more than 64
/// distinct characters (the alphabet limit).
std::size_t edit_distance(std::string_view a, std::string_view b);

/// Longest-common-subsequence result.
struct LcsResult {
  std::size_t length = 0;
  std::string subsequence;  ///< one witness LCS (deterministic)
};

/// LCS of two strings via FastLSA (linear space, path recovered).
LcsResult longest_common_subsequence(std::string_view a, std::string_view b,
                                     const FastLsaOptions& options = {});

}  // namespace flsa
