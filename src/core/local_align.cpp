#include "core/local_align.hpp"

#include <algorithm>
#include <vector>

#include "dp/local.hpp"
#include "support/assert.hpp"

namespace flsa {

namespace {

/// Global (Needleman-Wunsch) score pass that records the maximum entry of
/// the whole DPM and its first position in row-major order. Used as the
/// anchored reverse pass: the maximizing cell marks where the optimal local
/// alignment, pinned to end at the anchor, starts.
LocalScoreResult global_argmax_pass(std::span<const Residue> a,
                                    std::span<const Residue> b,
                                    const ScoringScheme& scheme,
                                    DpCounters* counters) {
  const Score gap = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();
  std::vector<Score> row(b.size() + 1);
  LocalScoreResult best;
  best.score = 0;  // the empty alignment at (0, 0)
  row[0] = 0;
  for (std::size_t c = 1; c <= b.size(); ++c) {
    row[c] = static_cast<Score>(c) * gap;
  }
  for (std::size_t r = 1; r <= a.size(); ++r) {
    Score diag = row[0];
    row[0] = static_cast<Score>(r) * gap;
    const Residue ar = a[r - 1];
    for (std::size_t c = 1; c <= b.size(); ++c) {
      const Score up = row[c];
      const Score value = std::max(
          diag + sub.at(ar, b[c - 1]), std::max(up, row[c - 1]) + gap);
      diag = up;
      row[c] = value;
      if (value > best.score) {
        best.score = value;
        best.row = r;
        best.col = c;
      }
    }
  }
  if (counters) {
    counters->cells_scored += static_cast<std::uint64_t>(a.size()) * b.size();
  }
  return best;
}

}  // namespace

Alignment local_align(const Sequence& a, const Sequence& b,
                      const ScoringScheme& scheme,
                      const FastLsaOptions& options, FastLsaStats* stats) {
  FLSA_REQUIRE(scheme.is_linear());
  FastLsaStats local_stats;
  FastLsaStats& st = stats ? *stats : local_stats;

  // 1. Forward local pass: locate the end of the best local alignment.
  const LocalScoreResult fwd = local_score_linear(
      a.residues(), b.residues(), scheme, &st.counters);
  Alignment out;
  out.score = fwd.score;
  if (fwd.score == 0) return out;  // empty optimal local alignment

  // 2. Anchored reverse pass over the reversed prefixes: the first cell
  // attaining the local score marks the start of the alignment.
  const Sequence a_rev = a.subsequence(0, fwd.row).reversed();
  const Sequence b_rev = b.subsequence(0, fwd.col).reversed();
  const LocalScoreResult rev = global_argmax_pass(
      a_rev.residues(), b_rev.residues(), scheme, &st.counters);
  FLSA_ASSERT(rev.score == fwd.score);
  const std::size_t a_begin = fwd.row - rev.row;
  const std::size_t b_begin = fwd.col - rev.col;

  // 3. The located rectangle is a global problem; solve it with FastLSA.
  const Sequence a_sub = a.subsequence(a_begin, fwd.row - a_begin);
  const Sequence b_sub = b.subsequence(b_begin, fwd.col - b_begin);
  Alignment inner = fastlsa_align(a_sub, b_sub, scheme, options, &st);
  FLSA_ASSERT(inner.score == fwd.score);

  out.gapped_a = std::move(inner.gapped_a);
  out.gapped_b = std::move(inner.gapped_b);
  out.a_begin = a_begin;
  out.a_end = fwd.row;
  out.b_begin = b_begin;
  out.b_end = fwd.col;
  return out;
}

}  // namespace flsa
