// Memory accounting for the paper's RM/BM model.
//
// The paper parameterizes FastLSA by the memory actually available (RM,
// which may model cache or main memory) and a Base Case buffer of BM units
// reserved from it. This tracker measures what the algorithms really
// allocate for DPM state (grid caches, base-case buffers, full matrices,
// row buffers) so the space experiments (E5) report observed peaks rather
// than formulas.
#pragma once

#include <cstddef>
#include <cstdint>

namespace flsa {

/// Byte-granular high-water-mark tracker. Not thread-safe; parallel code
/// charges from the coordinating thread.
class MemoryTracker {
 public:
  /// Records an allocation of `bytes`.
  void allocate(std::size_t bytes);

  /// Records a release; must not exceed the outstanding total.
  void release(std::size_t bytes);

  std::size_t current_bytes() const { return current_; }
  std::size_t peak_bytes() const { return peak_; }
  std::uint64_t allocation_count() const { return allocations_; }

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t allocations_ = 0;
};

/// RAII charge against a tracker (released on destruction). The tracker may
/// be null, in which case the guard is a no-op.
class MemoryCharge {
 public:
  MemoryCharge(MemoryTracker* tracker, std::size_t bytes);
  ~MemoryCharge();

  MemoryCharge(const MemoryCharge&) = delete;
  MemoryCharge& operator=(const MemoryCharge&) = delete;
  MemoryCharge(MemoryCharge&& other) noexcept;
  MemoryCharge& operator=(MemoryCharge&& other) noexcept;

  /// Adjusts the charge to a new size (e.g. a buffer grew).
  void resize(std::size_t bytes);

 private:
  MemoryTracker* tracker_;
  std::size_t bytes_;
};

}  // namespace flsa
