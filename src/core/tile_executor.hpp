// Execution interface for FastLSA's two data-parallel inner phases.
//
// Both the Fill Grid Cache phase and the (tiled) Base Case phase reduce to
// the same pattern: a grid of tiles where tile (i, j) depends on tiles
// (i-1, j) and (i, j-1) — the paper's wavefront. The engine describes the
// grid and the per-tile work; an executor decides *how* the tiles run:
//   - SequentialExecutor (here): row-major loop on the calling thread;
//   - parallel/wavefront.hpp: P worker threads, barrier-staged or
//     dependency-counter scheduling;
//   - simexec/recording.hpp: sequential execution that also records the
//     tile DAG and per-tile costs for virtual-time replay.
#pragma once

#include <cstdint>

#include "obs/trace.hpp"
#include "support/function_ref.hpp"

namespace flsa {

/// Which FastLSA phase a tile grid belongs to (recorders label phases).
enum class TilePhase : std::uint8_t { kFillCache, kBaseCase };

/// Trace-span category label of a tile phase.
inline const char* to_string(TilePhase phase) {
  return phase == TilePhase::kFillCache ? "fill-grid" : "base-case";
}

/// Decides whether a tile is skipped (the fill phase skips the tiles of the
/// bottom-right FastLSA sub-problem, the paper's u x v tiles).
///
/// Non-owning (support/function_ref.hpp): executors receive these per
/// phase on the engine's hot path, where the std::function conversion
/// used to heap-allocate a closure copy every call. The callables only
/// need to outlive the (synchronous) run() call that takes them.
using TileSkipFn = FunctionRef<bool(std::size_t ti, std::size_t tj)>;

/// Performs one tile on worker slot `worker` and returns its cost in DPM
/// cells (recorders use the cost; other executors ignore it).
using TileWorkFn =
    FunctionRef<std::uint64_t(std::size_t ti, std::size_t tj,
                              unsigned worker)>;

/// Invokes `work` for one tile, recording a per-worker trace span (tile
/// coordinates, cells, wall time on lane `worker`, plus the scheduling
/// policy when the executor passes its static-string tag) when a trace is
/// being collected. Every executor funnels tile execution through here so
/// the trace sees all scheduling policies identically; without an active
/// trace this is a direct call.
inline std::uint64_t run_tile(TileWorkFn work, std::size_t ti,
                              std::size_t tj, unsigned worker,
                              TilePhase phase,
                              const char* scheduler = nullptr) {
  obs::TraceRecorder* recorder = obs::active_trace();
  if (recorder == nullptr) return work(ti, tj, worker);
  const auto start = obs::TraceRecorder::now();
  const std::uint64_t cells = work(ti, tj, worker);
  obs::TraceSpan span;
  span.name = "tile";
  span.category = to_string(phase);
  span.tid = worker;
  span.tile_row = static_cast<std::int64_t>(ti);
  span.tile_col = static_cast<std::int64_t>(tj);
  span.cells = static_cast<std::int64_t>(cells);
  span.scheduler = scheduler;
  recorder->record(span, start, obs::TraceRecorder::now());
  return cells;
}

/// Abstract tile-grid runner. Implementations must guarantee that `work`
/// for tile (i, j) happens-after `work` for (i-1, j) and (i, j-1) (when
/// those exist and are not skipped) and that all effects are visible to the
/// caller when run() returns.
class TileExecutor {
 public:
  virtual ~TileExecutor() = default;

  /// Number of worker slots; the engine allocates per-worker scratch
  /// accordingly, and `work` receives worker ids < worker_count().
  virtual unsigned worker_count() const = 0;

  /// Runs every non-skipped tile of a tile_rows x tile_cols grid.
  /// `skip` may be null (no skips).
  virtual void run(std::size_t tile_rows, std::size_t tile_cols,
                   TileSkipFn skip, TileWorkFn work, TilePhase phase) = 0;
};

/// Default executor: one worker, row-major order (exactly the sequential
/// FastLSA of the paper's Section 3).
class SequentialExecutor final : public TileExecutor {
 public:
  unsigned worker_count() const override { return 1; }

  void run(std::size_t tile_rows, std::size_t tile_cols, TileSkipFn skip,
           TileWorkFn work, TilePhase phase) override {
    for (std::size_t ti = 0; ti < tile_rows; ++ti) {
      for (std::size_t tj = 0; tj < tile_cols; ++tj) {
        if (skip && skip(ti, tj)) continue;
        run_tile(work, ti, tj, 0, phase);
      }
    }
  }
};

}  // namespace flsa
