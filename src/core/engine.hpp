// FastLSA recursion engine (internal header).
//
// Implements the paper's pseudo-code (its Figure 2) generically over the
// gap model and the tile execution policy:
//
//   FastLSA(problem, cacheRow, cacheColumn, path):
//     if problem fits in the Base Case buffer: solveFullMatrix(...)
//     grid  = allocateGrid(problem)            -> GridLines
//     fillGridCache(problem, grid)             -> tiled wavefront sweep,
//                                                 skipping the bottom-right
//                                                 sub-problem's tiles
//     path += FastLSA(problem.bottomRight,...) -> first loop iteration
//     while path not fully extended:
//       sub = UpLeft(grid, path)               -> rectangle bounded by the
//                                                 nearest grid lines above
//                                                 and left of the path end
//       path += FastLSA(sub, CachedRow(sub), CachedColumn(sub), path)
//     deallocateGrid(grid)
//
// The template parameter selects the cell type: plain scores for linear
// gaps, (D, Ix, Iy) triples for affine gaps, in which case the traceback
// lane is carried across sub-problem boundaries.
//
// This header is internal to the library (the public entry points are in
// core/fastlsa.hpp and parallel/parallel_fastlsa.hpp) but is shared by the
// parallel driver and the virtual-time recorder, which plug in their own
// TileExecutor.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "core/arena.hpp"
#include "core/budget.hpp"
#include "core/fastlsa.hpp"
#include "core/tile_executor.hpp"
#include "dp/fullmatrix.hpp"
#include "dp/gotoh.hpp"
#include "dp/kernel.hpp"
#include "dp/matrix.hpp"
#include "dp/path.hpp"
#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace flsa {
namespace detail {

/// Interior cut positions dividing [0, extent) into min(parts, extent)
/// near-equal segments; empty when extent <= 1 or parts <= 1. The out
/// parameter is cleared and refilled, keeping its capacity — the recursion
/// hot path reuses one vector per level instead of reallocating.
inline void split_cuts_into(std::vector<std::size_t>& cuts,
                            std::size_t extent, std::size_t parts) {
  const std::size_t segments = std::max<std::size_t>(
      1, std::min<std::size_t>(parts, extent));
  cuts.clear();
  cuts.reserve(segments - 1);
  for (std::size_t i = 1; i < segments; ++i) {
    cuts.push_back(extent * i / segments);
  }
}

inline std::vector<std::size_t> split_cuts(std::size_t extent,
                                           std::size_t parts) {
  std::vector<std::size_t> cuts;
  split_cuts_into(cuts, extent, parts);
  return cuts;
}

/// Largest tile count for an extent that keeps every tile at least
/// `min_extent` long (always >= 1).
inline std::size_t clamp_tiles(std::size_t desired, std::size_t extent,
                               std::size_t min_extent) {
  const std::size_t cap =
      min_extent <= 1 ? extent : std::max<std::size_t>(1, extent / min_extent);
  return std::max<std::size_t>(1, std::min(desired, cap));
}

/// Refines block cuts by subdividing every block segment into up to
/// `tiles_per_block` tiles of at least `min_tile_extent` residues each.
/// Fills `tile_cuts` (cleared first, capacity kept) with interior tile
/// cuts (a superset of `block_cuts`).
inline void refine_cuts_into(std::vector<std::size_t>& tile_cuts,
                             std::size_t extent,
                             const std::vector<std::size_t>& block_cuts,
                             std::size_t tiles_per_block,
                             std::size_t min_tile_extent = 1) {
  tile_cuts.clear();
  tile_cuts.reserve((block_cuts.size() + 1) * tiles_per_block);
  std::size_t start = 0;
  auto refine_segment = [&](std::size_t end) {
    const std::size_t parts =
        clamp_tiles(tiles_per_block, end - start, min_tile_extent);
    for (std::size_t cut : split_cuts(end - start, parts)) {
      tile_cuts.push_back(start + cut);
    }
    if (end != extent) tile_cuts.push_back(end);
    start = end;
  };
  for (std::size_t cut : block_cuts) refine_segment(cut);
  refine_segment(extent);
}

inline std::vector<std::size_t> refine_cuts(
    std::size_t extent, const std::vector<std::size_t>& block_cuts,
    std::size_t tiles_per_block, std::size_t min_tile_extent = 1) {
  std::vector<std::size_t> tile_cuts;
  refine_cuts_into(tile_cuts, extent, block_cuts, tiles_per_block,
                   min_tile_extent);
  return tile_cuts;
}

/// Execution plan: which executor runs the tile grids and how finely each
/// phase is tiled. Sequential FastLSA uses one tile per block.
struct EnginePlan {
  TileExecutor* executor = nullptr;
  /// Fill Grid Cache tiles per block and dimension (the paper's finer
  /// R x C tiling; its u x v skipped tiles are one block's worth).
  std::size_t tiles_per_block = 1;
  /// Tile grid per dimension for the stored base-case matrix.
  std::size_t base_case_tiles = 1;
  /// Minimum tile extent (residues per dimension): sub-problems are never
  /// tiled finer than this, so fixed per-tile costs stay amortized.
  std::size_t min_tile_extent = 1;
};

template <bool Affine>
class FastLsaEngine {
 public:
  using CellT = std::conditional_t<Affine, AffineCell, Score>;

  FastLsaEngine(const Sequence& a, const Sequence& b,
                const ScoringScheme& scheme, const FastLsaOptions& options,
                const EnginePlan& plan, FastLsaStats* stats)
      : a_(a), b_(b), scheme_(scheme), options_(options), plan_(plan),
        stats_(stats ? *stats : local_stats_),
        kernel_(resolve_kernel(options.kernel)),
        owned_workspace_(options.workspace ? nullptr
                                           : new FastLsaWorkspace()),
        arena_((options.workspace ? *options.workspace : *owned_workspace_)
                   .template arena<CellT>()),
        path_(Cell{a.size(), b.size()}, std::move(arena_.path_storage)) {
    validate(options_);
    stats_.kernel_used = kernel_;
    FLSA_REQUIRE(plan_.executor != nullptr);
    FLSA_REQUIRE(plan_.tiles_per_block >= 1);
    FLSA_REQUIRE(plan_.base_case_tiles >= 1);
    if constexpr (Affine) {
      // Nothing extra; linear schemes also run correctly in affine mode.
    } else {
      FLSA_REQUIRE(scheme.is_linear());
    }
    workers_ = plan_.executor->worker_count();
    arena_.worker_counters.assign(workers_, DpCounters{});
    if (arena_.scratch_bottom.size() < workers_) {
      arena_.scratch_bottom.resize(workers_);
    }
    if (arena_.scratch_right.size() < workers_) {
      arena_.scratch_right.resize(workers_);
    }
  }

  FastLsaEngine(const FastLsaEngine&) = delete;
  FastLsaEngine& operator=(const FastLsaEngine&) = delete;

  Alignment run() {
    FLSA_OBS_PHASE(obs_align, obs::Phase::kAlign);
    FLSA_OBS_GAUGE("fastlsa.workers", static_cast<double>(workers_));
    const std::size_t m = a_.size();
    const std::size_t n = b_.size();
    const std::uint64_t pool_hits0 = arena_.cell_pool.hits();
    const std::uint64_t pool_misses0 = arena_.cell_pool.misses();

    // Reserve the Base Case buffer (the paper reserves BM units up front).
    arena_.base_buffer.reserve(options_.base_case_cells);
    MemoryCharge base_charge(&tracker_,
                             options_.base_case_cells * sizeof(CellT));

    // Per-worker scratch rows/columns used by fill tiles.
    const std::size_t scratch_len = std::max(m, n) + 1;
    for (unsigned w = 0; w < workers_; ++w) {
      arena_.scratch_bottom[w].resize(scratch_len);
      arena_.scratch_right[w].resize(scratch_len);
    }
    MemoryCharge scratch_charge(
        &tracker_, 2 * scratch_len * sizeof(CellT) * workers_);

    if (options_.prune && m > 0 && n > 0) {
      incumbent_ = greedy_incumbent();
      prune_slack_ = std::max<std::int64_t>(0, scheme_.matrix().max_score());
    }

    if (m > 0 && n > 0) {
      // Global DPM boundary (the initial cacheRow / cacheColumn).
      std::vector<CellT>& top = arena_.boundary_top;
      std::vector<CellT>& left = arena_.boundary_left;
      top.resize(n + 1);
      left.resize(m + 1);
      init_boundary(top, /*horizontal=*/true);
      init_boundary(left, /*horizontal=*/false);
      MemoryCharge boundary_charge(&tracker_, (m + n + 2) * sizeof(CellT));
      solve({0, 0, m, n}, top, left, 0);
    }
    extend_path_to_origin(path_);
    FLSA_ASSERT(path_.reaches_origin() && path_.is_consistent());

    for (unsigned w = 0; w < workers_; ++w) {
      stats_.counters += arena_.worker_counters[w];
    }
    stats_.peak_bytes = tracker_.peak_bytes();
    stats_.arena_pool_hits = arena_.cell_pool.hits() - pool_hits0;
    stats_.arena_pool_misses = arena_.cell_pool.misses() - pool_misses0;
    FLSA_OBS_COUNT("fastlsa.arena.pool_hits", stats_.arena_pool_hits);
    FLSA_OBS_COUNT("fastlsa.arena.pool_misses", stats_.arena_pool_misses);
    FLSA_OBS_COUNT("fastlsa.tiles.pruned", stats_.counters.tiles_pruned);
    FLSA_OBS_PHASE_CELLS(obs_align, stats_.counters.total_cells());
    Alignment result = alignment_from_path(a_, b_, path_, scheme_);
    // Hand the traceback storage back for the next run on this workspace.
    arena_.path_storage = std::move(path_).reclaim_storage();
    return result;
  }

 private:
  struct Rect {
    std::size_t row0, col0, rows, cols;
  };

  static CellT zero_cell() {
    if constexpr (Affine) {
      return AffineCell{0, kNegInf, kNegInf};
    } else {
      return 0;
    }
  }

  /// Score of the greedy main-diagonal alignment (pair residue i with
  /// residue i, then gap out the length difference): a real alignment,
  /// hence a lower bound of the optimum — the pruning incumbent.
  std::int64_t greedy_incumbent() const {
    const std::span<const Residue> a = a_.residues();
    const std::span<const Residue> b = b_.residues();
    const SubstitutionMatrix& sub = scheme_.matrix();
    const std::size_t diag = std::min(a.size(), b.size());
    std::int64_t score = 0;
    for (std::size_t i = 0; i < diag; ++i) score += sub.at(a[i], b[i]);
    const std::size_t excess = std::max(a.size(), b.size()) - diag;
    if (excess > 0) score += scheme_.gap_cost(excess);
    return score;
  }

  static Score cell_best(const CellT& cell) {
    if constexpr (Affine) {
      return std::max(cell.d, std::max(cell.ix, cell.iy));
    } else {
      return cell;
    }
  }

  static CellT sentinel_cell() {
    if constexpr (Affine) {
      return AffineCell{kNegInf, kNegInf, kNegInf};
    } else {
      return kNegInf;
    }
  }

  /// Admissible tile bound: no path through this tile's input boundary can
  /// beat the incumbent. From any boundary cell (r, c) with DP value v the
  /// final score is at most v + slack * min(m - r, n - c) (each remaining
  /// step scores at most slack >= 0, and the bound drops the gap cost);
  /// taking the tile's best boundary value and the tile's top-left corner
  /// (which maximizes the remaining-step term over the whole boundary)
  /// upper-bounds every path through the tile. Boundary entries that are
  /// themselves pruned sentinels only lower the bound, so pruning
  /// propagates but can never cut a cell of an optimal path: such a cell's
  /// boundary value is exact by induction and pushes the bound to at least
  /// the true optimum >= incumbent.
  bool can_prune(const Rect& rect, std::size_t rs, std::size_t cs,
                 std::span<const CellT> tile_top,
                 std::span<const CellT> tile_left) const {
    std::int64_t best = kNegInf;
    for (const CellT& cell : tile_top) {
      best = std::max<std::int64_t>(best, cell_best(cell));
    }
    for (const CellT& cell : tile_left) {
      best = std::max<std::int64_t>(best, cell_best(cell));
    }
    const std::size_t dr = a_.size() - (rect.row0 + rs);
    const std::size_t dc = b_.size() - (rect.col0 + cs);
    const std::int64_t bound =
        best + prune_slack_ * static_cast<std::int64_t>(std::min(dr, dc));
    return bound < incumbent_;
  }

  void init_boundary(std::span<CellT> boundary, bool horizontal) {
    if constexpr (Affine) {
      init_global_boundary_affine(scheme_, boundary, horizontal);
    } else {
      (void)horizontal;
      init_global_boundary_linear(scheme_, boundary);
    }
  }

  void solve(const Rect& rect, std::span<const CellT> top,
             std::span<const CellT> left, unsigned depth) {
    FLSA_ASSERT(rect.rows >= 1 && rect.cols >= 1);
    FLSA_ASSERT(top.size() == rect.cols + 1);
    FLSA_ASSERT(left.size() == rect.rows + 1);
    FLSA_ASSERT(path_.front() ==
                (Cell{rect.row0 + rect.rows, rect.col0 + rect.cols}));
    stats_.max_recursion_depth =
        std::max<std::uint64_t>(stats_.max_recursion_depth, depth);
    // Trace-only scope (metrics suppressed): solve() nests within itself,
    // so per-invocation seconds would double-count; the nested trace
    // spans, by contrast, render as the recursion's flame graph.
    FLSA_OBS_PHASE(obs_solve, obs::Phase::kRecursion, obs::kPhaseLane,
                   static_cast<std::int64_t>(depth),
                   /*record_metrics=*/false);
    FLSA_OBS_OBSERVE("fastlsa.recursion.depth", depth);
    if ((rect.rows + 1) * (rect.cols + 1) <= options_.base_case_cells) {
      base_case(rect, top, left);
    } else {
      general_case(rect, top, left, depth);
    }
  }

  void base_case(const Rect& rect, std::span<const CellT> top,
                 std::span<const CellT> left) {
    ++stats_.base_case_invocations;
    const std::size_t rows = rect.rows;
    const std::size_t cols = rect.cols;
    FLSA_OBS_PHASE(obs_phase, obs::Phase::kBaseCase);
    FLSA_OBS_PHASE_CELLS(obs_phase,
                         static_cast<std::uint64_t>(rows) * cols);
    Matrix2D<CellT>& base_buffer = arena_.base_buffer;
    base_buffer.resize(rows + 1, cols + 1);
    std::copy(top.begin(), top.end(), base_buffer.row(0));
    for (std::size_t r = 0; r <= rows; ++r) base_buffer(r, 0) = left[r];

    const std::span<const Residue> a_sub =
        a_.residues().subspan(rect.row0, rows);
    const std::span<const Residue> b_sub =
        b_.residues().subspan(rect.col0, cols);

    // Tiled interior fill (one tile sequentially; a wavefront in parallel).
    // Base cases are recursion leaves, so one pair of cut vectors in the
    // arena serves every invocation.
    std::vector<std::size_t>& row_cuts = arena_.base_row_cuts;
    std::vector<std::size_t>& col_cuts = arena_.base_col_cuts;
    split_cuts_into(
        row_cuts, rows,
        clamp_tiles(plan_.base_case_tiles, rows, plan_.min_tile_extent));
    split_cuts_into(
        col_cuts, cols,
        clamp_tiles(plan_.base_case_tiles, cols, plan_.min_tile_extent));
    auto seg = [](const std::vector<std::size_t>& cuts, std::size_t extent,
                  std::size_t t) {
      const std::size_t s = t == 0 ? 0 : cuts[t - 1];
      const std::size_t e = t == cuts.size() ? extent : cuts[t];
      return std::pair<std::size_t, std::size_t>{s, e};
    };
    plan_.executor->run(
        row_cuts.size() + 1, col_cuts.size() + 1, nullptr,
        [&](std::size_t ti, std::size_t tj, unsigned /*worker*/) {
          const auto [rs, re] = seg(row_cuts, rows, ti);
          const auto [cs, ce] = seg(col_cuts, cols, tj);
          if constexpr (Affine) {
            fill_matrix_region_affine(a_sub, b_sub, scheme_, base_buffer,
                                      rs + 1, cs + 1, re - rs, ce - cs);
          } else {
            fill_matrix_region_linear(a_sub, b_sub, scheme_, base_buffer,
                                      rs + 1, cs + 1, re - rs, ce - cs);
          }
          return static_cast<std::uint64_t>(re - rs) * (ce - cs);
        },
        TilePhase::kBaseCase);
    arena_.worker_counters[0].cells_stored +=
        static_cast<std::uint64_t>(rows) * cols;

    if constexpr (Affine) {
      affine_state_ = traceback_rectangle_affine(
          a_sub, b_sub, scheme_, base_buffer, rows, cols, affine_state_,
          path_, &arena_.worker_counters[0]);
    } else {
      traceback_rectangle_linear(a_sub, b_sub, scheme_, base_buffer, rows,
                                 cols, path_, &arena_.worker_counters[0]);
    }
  }

  void general_case(const Rect& rect, std::span<const CellT> top,
                    std::span<const CellT> left, unsigned depth) {
    ++stats_.recursive_splits;
    const std::size_t rows = rect.rows;
    const std::size_t cols = rect.cols;

    // All per-level storage comes from the arena: the recursion is
    // sequential (one active sub-problem per depth), so every re-entry at
    // this depth reuses the same cut vectors and line handles, and the
    // pooled cell buffers recycle across depths and re-entries. The deque
    // behind level() keeps `lvl` valid while deeper levels are created.
    LevelScratch<CellT>& lvl = arena_.level(depth);

    // Block grid (the paper's k x k split) and its tile refinement.
    split_cuts_into(lvl.block_rows, rows, options_.k);
    split_cuts_into(lvl.block_cols, cols, options_.k);
    refine_cuts_into(lvl.tile_rows, rows, lvl.block_rows,
                     plan_.tiles_per_block, plan_.min_tile_extent);
    refine_cuts_into(lvl.tile_cols, cols, lvl.block_cols,
                     plan_.tiles_per_block, plan_.min_tile_extent);
    const std::vector<std::size_t>& block_rows = lvl.block_rows;
    const std::vector<std::size_t>& block_cols = lvl.block_cols;
    const std::vector<std::size_t>& tile_rows = lvl.tile_rows;
    const std::vector<std::size_t>& tile_cols = lvl.tile_cols;
    const std::size_t tr = tile_rows.size() + 1;
    const std::size_t tc = tile_cols.size() + 1;

    // Tile boundary line storage (grid lines are the subset of these that
    // fall on block cuts; the rest exist only during the fill). Recycled
    // buffers carry stale data, which is safe: the wavefront dependency
    // order guarantees every read slot was written by this fill first.
    LevelScratch<CellT>::ensure(lvl.line_rows, tr - 1);
    LevelScratch<CellT>::ensure(lvl.line_cols, tc - 1);
    for (std::size_t i = 0; i + 1 < tr; ++i) {
      lvl.line_rows[i] = PooledVector<CellT>(
          arena_.cell_pool.acquire(cols + 1), &arena_.cell_pool);
    }
    for (std::size_t j = 0; j + 1 < tc; ++j) {
      lvl.line_cols[j] = PooledVector<CellT>(
          arena_.cell_pool.acquire(rows + 1), &arena_.cell_pool);
    }
    ++stats_.grid_allocations;
    MemoryCharge grid_charge(
        &tracker_, ((tr - 1) * (cols + 1) + (tc - 1) * (rows + 1)) *
                       sizeof(CellT));

    fill_grid_cache(rect, top, left, block_rows, block_cols, tile_rows,
                    tile_cols, lvl.line_rows, lvl.line_cols);

    // Keep only the block grid lines for the recursion phase; the rest go
    // straight back to the pool.
    LevelScratch<CellT>::ensure(lvl.grid_rows, block_rows.size());
    LevelScratch<CellT>::ensure(lvl.grid_cols, block_cols.size());
    for (std::size_t i = 0; i < block_rows.size(); ++i) {
      const auto it = std::lower_bound(tile_rows.begin(), tile_rows.end(),
                                       block_rows[i]);
      FLSA_ASSERT(it != tile_rows.end() && *it == block_rows[i]);
      lvl.grid_rows[i] = std::move(
          lvl.line_rows[static_cast<std::size_t>(it - tile_rows.begin())]);
    }
    for (std::size_t j = 0; j < block_cols.size(); ++j) {
      const auto it = std::lower_bound(tile_cols.begin(), tile_cols.end(),
                                       block_cols[j]);
      FLSA_ASSERT(it != tile_cols.end() && *it == block_cols[j]);
      lvl.grid_cols[j] = std::move(
          lvl.line_cols[static_cast<std::size_t>(it - tile_cols.begin())]);
    }
    for (std::size_t i = 0; i + 1 < tr; ++i) lvl.line_rows[i].release();
    for (std::size_t j = 0; j + 1 < tc; ++j) lvl.line_cols[j].release();
    grid_charge.resize((block_rows.size() * (cols + 1) +
                        block_cols.size() * (rows + 1)) *
                       sizeof(CellT));

    // Successive up-left sub-problems along the optimal path (the first
    // iteration is the bottom-right block).
    while (true) {
      const Cell front = path_.front();
      FLSA_ASSERT(front.row >= rect.row0 && front.col >= rect.col0);
      const std::size_t fr = front.row - rect.row0;
      const std::size_t fc = front.col - rect.col0;
      if (fr == 0 || fc == 0) break;  // reached this problem's boundary

      // Nearest grid lines strictly above and left of the path end.
      const auto row_it =
          std::lower_bound(block_rows.begin(), block_rows.end(), fr);
      const std::size_t row_top =
          row_it == block_rows.begin() ? 0 : *(row_it - 1);
      const auto col_it =
          std::lower_bound(block_cols.begin(), block_cols.end(), fc);
      const std::size_t col_left =
          col_it == block_cols.begin() ? 0 : *(col_it - 1);

      const std::span<const CellT> sub_top =
          (row_top == 0
               ? top
               : std::span<const CellT>(
                     lvl.grid_rows[static_cast<std::size_t>(
                                       (row_it - 1) - block_rows.begin())]
                         .vec()))
              .subspan(col_left, fc - col_left + 1);
      const std::span<const CellT> sub_left =
          (col_left == 0
               ? left
               : std::span<const CellT>(
                     lvl.grid_cols[static_cast<std::size_t>(
                                       (col_it - 1) - block_cols.begin())]
                         .vec()))
              .subspan(row_top, fr - row_top + 1);

      solve({rect.row0 + row_top, rect.col0 + col_left, fr - row_top,
             fc - col_left},
            sub_top, sub_left, depth + 1);
    }

    // Grid lines go back to the pool for reuse by other depths/re-entries.
    for (std::size_t i = 0; i < block_rows.size(); ++i) {
      lvl.grid_rows[i].release();
    }
    for (std::size_t j = 0; j < block_cols.size(); ++j) {
      lvl.grid_cols[j].release();
    }
  }

  /// The Fill Grid Cache phase: wavefront-orderable sweep of every tile
  /// except those covering the bottom-right block.
  void fill_grid_cache(const Rect& rect, std::span<const CellT> top,
                       std::span<const CellT> left,
                       const std::vector<std::size_t>& block_rows,
                       const std::vector<std::size_t>& block_cols,
                       const std::vector<std::size_t>& tile_rows,
                       const std::vector<std::size_t>& tile_cols,
                       std::vector<PooledVector<CellT>>& line_rows,
                       std::vector<PooledVector<CellT>>& line_cols) {
    const std::size_t rows = rect.rows;
    const std::size_t cols = rect.cols;
    const std::size_t tr = tile_rows.size() + 1;
    const std::size_t tc = tile_cols.size() + 1;
    // The bottom-right block starts at the last block cut (or at 0 when the
    // dimension has a single block, i.e. the block spans everything).
    const std::size_t skip_row = block_rows.empty() ? 0 : block_rows.back();
    const std::size_t skip_col = block_cols.empty() ? 0 : block_cols.back();

    // Filled cells = whole rectangle minus the skipped bottom-right block.
    FLSA_OBS_PHASE(obs_phase, obs::Phase::kFillGrid);
    FLSA_OBS_PHASE_CELLS(
        obs_phase, static_cast<std::uint64_t>(rows) * cols -
                       static_cast<std::uint64_t>(rows - skip_row) *
                           (cols - skip_col));

    auto row_seg = [&](std::size_t ti) {
      return std::pair<std::size_t, std::size_t>{
          ti == 0 ? 0 : tile_rows[ti - 1],
          ti == tile_rows.size() ? rows : tile_rows[ti]};
    };
    auto col_seg = [&](std::size_t tj) {
      return std::pair<std::size_t, std::size_t>{
          tj == 0 ? 0 : tile_cols[tj - 1],
          tj == tile_cols.size() ? cols : tile_cols[tj]};
    };

    plan_.executor->run(
        tr, tc,
        [&](std::size_t ti, std::size_t tj) {
          return row_seg(ti).first >= skip_row &&
                 col_seg(tj).first >= skip_col;
        },
        [&](std::size_t ti, std::size_t tj, unsigned worker) {
          const auto [rs, re] = row_seg(ti);
          const auto [cs, ce] = col_seg(tj);
          const std::size_t trows = re - rs;
          const std::size_t tcols = ce - cs;

          const std::span<const CellT> tile_top =
              (ti == 0 ? top
                       : std::span<const CellT>(line_rows[ti - 1].vec()))
                  .subspan(cs, tcols + 1);
          const std::span<const CellT> tile_left =
              (tj == 0 ? left
                       : std::span<const CellT>(line_cols[tj - 1].vec()))
                  .subspan(rs, trows + 1);

          const bool need_right_line = tj + 1 < tc;
          if (options_.prune &&
              can_prune(rect, rs, cs, tile_top, tile_left)) {
            // Publish sentinel lines instead of sweeping: downstream tiles
            // see -inf and (by the bound's induction argument) either prune
            // too or compute values that never exceed the true ones. The
            // corner entries stay exact — same single-writer discipline as
            // the real lines below.
            ++arena_.worker_counters[worker].tiles_pruned;
            if (ti + 1 < tr) {
              CellT* dst = line_rows[ti].vec().data() + cs;
              std::fill(dst + 1, dst + 1 + tcols, sentinel_cell());
              if (tj == 0) dst[0] = tile_left[trows];
            }
            if (need_right_line) {
              CellT* dst = line_cols[tj].vec().data() + rs;
              std::fill(dst + 1, dst + 1 + trows, sentinel_cell());
              if (ti == 0) dst[0] = tile_top[tcols];
            }
            return std::uint64_t{0};
          }

          std::span<CellT> bottom(arena_.scratch_bottom[worker].data(),
                                  tcols + 1);
          const bool need_right = need_right_line;
          std::span<CellT> right =
              need_right ? std::span<CellT>(
                               arena_.scratch_right[worker].data(),
                               trows + 1)
                         : std::span<CellT>{};

          const std::span<const Residue> a_sub =
              a_.residues().subspan(rect.row0 + rs, trows);
          const std::span<const Residue> b_sub =
              b_.residues().subspan(rect.col0 + cs, tcols);
          if constexpr (Affine) {
            sweep_rectangle_affine(kernel_, a_sub, b_sub, scheme_, tile_top,
                                   tile_left, bottom, right,
                                   &arena_.worker_counters[worker]);
          } else {
            sweep_rectangle_linear(kernel_, a_sub, b_sub, scheme_, tile_top,
                                   tile_left, bottom, right,
                                   &arena_.worker_counters[worker]);
          }

          // Publish boundary lines. Each shared corner entry has exactly one
          // writer: a tile writes indices [1..len] of its own output lines
          // and index 0 only on the grid's outer edge, so concurrent tiles
          // never store to the same location.
          if (ti + 1 < tr) {
            CellT* dst = line_rows[ti].vec().data() + cs;
            std::copy(bottom.begin() + 1, bottom.end(), dst + 1);
            if (tj == 0) dst[0] = bottom[0];
          }
          if (need_right) {
            CellT* dst = line_cols[tj].vec().data() + rs;
            std::copy(right.begin() + 1, right.end(), dst + 1);
            if (ti == 0) dst[0] = right[0];
          }
          return static_cast<std::uint64_t>(trows) * tcols;
        },
        TilePhase::kFillCache);
  }

  const Sequence& a_;
  const Sequence& b_;
  const ScoringScheme& scheme_;
  FastLsaOptions options_;
  EnginePlan plan_;
  FastLsaStats local_stats_;
  FastLsaStats& stats_;
  KernelKind kernel_;  ///< resolved (never kAuto)
  MemoryTracker tracker_;
  // Declared before arena_/path_: arena_ binds to it when the caller did
  // not supply a workspace, and path_ adopts the arena's move storage.
  std::unique_ptr<FastLsaWorkspace> owned_workspace_;
  EngineArena<CellT>& arena_;
  Path path_;
  AffineState affine_state_ = AffineState::kD;
  unsigned workers_ = 1;
  std::int64_t incumbent_ = 0;    ///< pruning lower bound (options_.prune)
  std::int64_t prune_slack_ = 0;  ///< max(0, best substitution score)
};

}  // namespace detail
}  // namespace flsa
