// Top-level alignment API with the paper's memory-adaptive strategy
// selection: "If RM > m x n, then a full matrix algorithm can be used ...
// [otherwise] FastLSA adapts to the amount of space available."
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/fastlsa.hpp"
#include "dp/alignment.hpp"
#include "hirschberg/hirschberg.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// Which algorithm aligns the pair.
enum class Strategy : std::uint8_t {
  kAuto,        ///< pick by memory_limit_bytes (FM if the DPM fits, else FastLSA)
  kFullMatrix,  ///< Needleman-Wunsch / Gotoh storing the whole DPM
  kHirschberg,  ///< linear-space divide and conquer
  kFastLsa,     ///< the paper's algorithm
};

const char* to_string(Strategy s);

/// Options of the top-level align() call.
struct AlignOptions {
  Strategy strategy = Strategy::kAuto;

  /// The paper's RM: memory the aligner may use for DPM state, in bytes.
  /// 0 means "unbounded" (kAuto then always picks the full matrix).
  std::size_t memory_limit_bytes = 0;

  /// FastLSA tuning; base_case_cells is treated as a maximum — kAuto
  /// shrinks it to fit memory_limit_bytes when one is set.
  FastLsaOptions fastlsa;

  /// Hirschberg tuning (only used when strategy == kHirschberg).
  HirschbergOptions hirschberg;
};

/// Outcome metadata accompanying an alignment.
struct AlignReport {
  Strategy chosen = Strategy::kAuto;
  FastLsaStats stats;  ///< counters filled for every strategy
};

/// Aligns `a` and `b` globally under `scheme`. Linear schemes run the
/// linear-gap kernels; affine schemes the Gotoh/affine-FastLSA ones
/// (Hirschberg uses the Myers-Miller affine variant).
/// The two sequences must share an alphabet.
Alignment align(const Sequence& a, const Sequence& b,
                const ScoringScheme& scheme, const AlignOptions& options = {},
                AlignReport* report = nullptr);

/// Reusable aligner: identical results to the free align(), but owns a
/// FastLsaWorkspace (core/arena.hpp) that persists across calls, so every
/// FastLSA buffer — grid/line caches, base-case matrix, per-worker
/// scratch, path storage — is recycled instead of re-allocated. After the
/// first (warm-up) call, steady-state align() calls perform no engine
/// heap allocations (only the returned Alignment allocates).
///
/// Not thread-safe: use one Aligner per aligning thread (align_batch does
/// exactly that). Movable, not copyable.
class Aligner {
 public:
  explicit Aligner(AlignOptions options = {});
  ~Aligner();
  Aligner(Aligner&&) noexcept;
  Aligner& operator=(Aligner&&) noexcept;

  /// Same contract as the free align(), drawing scratch from workspace().
  Alignment align(const Sequence& a, const Sequence& b,
                  const ScoringScheme& scheme,
                  AlignReport* report = nullptr);

  const AlignOptions& options() const { return options_; }
  FastLsaWorkspace& workspace() { return *workspace_; }

 private:
  AlignOptions options_;
  std::unique_ptr<FastLsaWorkspace> workspace_;
};

/// The strategy kAuto would choose for this problem size and limit.
Strategy choose_strategy(std::size_t m, std::size_t n, bool affine,
                         std::size_t memory_limit_bytes);

/// FastLSA options fitted to a memory limit: picks the largest base-case
/// buffer (power of two, >= 16 cells) such that buffer + grid lines fit in
/// memory_limit_bytes for an m x n problem with the given k.
FastLsaOptions fit_fastlsa_options(std::size_t m, std::size_t n, bool affine,
                                   std::size_t memory_limit_bytes,
                                   unsigned k = 8);

}  // namespace flsa
