#include "core/semiglobal.hpp"

#include <algorithm>
#include <vector>

#include "dp/kernel.hpp"
#include "support/assert.hpp"

namespace flsa {

namespace {

/// Runs FastLSA on the located rectangle and stitches region metadata.
Alignment solve_window(const Sequence& a, std::size_t a_begin,
                       std::size_t a_end, const Sequence& b,
                       std::size_t b_begin, std::size_t b_end, Score score,
                       const ScoringScheme& scheme,
                       const FastLsaOptions& options, FastLsaStats& stats) {
  const Sequence a_sub = a.subsequence(a_begin, a_end - a_begin);
  const Sequence b_sub = b.subsequence(b_begin, b_end - b_begin);
  Alignment inner = fastlsa_align(a_sub, b_sub, scheme, options, &stats);
  FLSA_ASSERT(inner.score == score);
  Alignment out;
  out.gapped_a = std::move(inner.gapped_a);
  out.gapped_b = std::move(inner.gapped_b);
  out.score = score;
  out.a_begin = a_begin;
  out.a_end = a_end;
  out.b_begin = b_begin;
  out.b_end = b_end;
  return out;
}

}  // namespace

Alignment fitting_align(const Sequence& a, const Sequence& b,
                        const ScoringScheme& scheme,
                        const FastLsaOptions& options, FastLsaStats* stats) {
  FLSA_REQUIRE(scheme.is_linear());
  FastLsaStats local_stats;
  FastLsaStats& st = stats ? *stats : local_stats;

  // 1. Forward fitting pass: optimal window end in b.
  const SemiGlobalEnd end = fitting_score_linear(a.residues(), b.residues(),
                                                 scheme, &st.counters);

  // 2. Reverse global pass over the reversed prefix rectangle: the first
  // column attaining the fitting score marks the window start.
  const Sequence a_rev = a.reversed();
  const Sequence b_rev = b.subsequence(0, end.col).reversed();
  const std::vector<Score> rev_row =
      last_row_linear(KernelKind::kAuto, a_rev.residues(), b_rev.residues(),
                      scheme, &st.counters);
  std::size_t rev_cols = 0;
  while (rev_row[rev_cols] != end.score) {
    ++rev_cols;
    FLSA_REQUIRE(rev_cols < rev_row.size());
  }
  const std::size_t b_begin = end.col - rev_cols;

  // 3. The window is a global problem; FastLSA solves it.
  return solve_window(a, 0, a.size(), b, b_begin, end.col, end.score, scheme,
                      options, st);
}

Alignment overlap_align(const Sequence& a, const Sequence& b,
                        const ScoringScheme& scheme,
                        const FastLsaOptions& options, FastLsaStats* stats) {
  FLSA_REQUIRE(scheme.is_linear());
  FastLsaStats local_stats;
  FastLsaStats& st = stats ? *stats : local_stats;

  // 1. Forward overlap pass: end of the matched prefix of b.
  const SemiGlobalEnd end = overlap_score_linear(a.residues(), b.residues(),
                                                 scheme, &st.counters);

  // 2. Reverse global pass; the right-column values score each suffix of a
  // against all of b[0..end.col). The first row attaining the overlap
  // score marks the suffix start.
  const Sequence a_rev = a.reversed();
  const Sequence b_rev = b.subsequence(0, end.col).reversed();
  std::vector<Score> top(b_rev.size() + 1), left(a_rev.size() + 1);
  init_global_boundary_linear(scheme, top);
  init_global_boundary_linear(scheme, left);
  std::vector<Score> bottom(b_rev.size() + 1), right(a_rev.size() + 1);
  sweep_rectangle_linear(KernelKind::kAuto, a_rev.residues(),
                         b_rev.residues(), scheme, top, left, bottom, right,
                         &st.counters);
  std::size_t rev_rows = 0;
  while (right[rev_rows] != end.score) {
    ++rev_rows;
    FLSA_REQUIRE(rev_rows < right.size());
  }
  const std::size_t a_begin = a.size() - rev_rows;

  return solve_window(a, a_begin, a.size(), b, 0, end.col, end.score, scheme,
                      options, st);
}

}  // namespace flsa
