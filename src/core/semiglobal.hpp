// Linear-space semi-global alignment (fitting and overlap) built on
// FastLSA, by the same locate-then-solve composition as the local aligner:
// a score-only pass finds the optimal end point, a reverse pass the start
// point, and the enclosed rectangle — now an ordinary global problem — is
// solved with FastLSA.
#pragma once

#include "core/fastlsa.hpp"
#include "dp/semiglobal.hpp"

namespace flsa {

/// Fitting alignment (all of `a` inside a window of `b`) in linear space.
/// Same score as fitting_align_full_matrix.
Alignment fitting_align(const Sequence& a, const Sequence& b,
                        const ScoringScheme& scheme,
                        const FastLsaOptions& options = {},
                        FastLsaStats* stats = nullptr);

/// Overlap (dovetail) alignment (suffix of `a` against prefix of `b`) in
/// linear space. Same score as overlap_align_full_matrix.
Alignment overlap_align(const Sequence& a, const Sequence& b,
                        const ScoringScheme& scheme,
                        const FastLsaOptions& options = {},
                        FastLsaStats* stats = nullptr);

}  // namespace flsa
