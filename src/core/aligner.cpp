#include "core/aligner.hpp"

#include <algorithm>

#include "core/arena.hpp"
#include "dp/fullmatrix.hpp"
#include "dp/gotoh.hpp"
#include "hirschberg/hirschberg_affine.hpp"
#include "support/assert.hpp"

namespace flsa {

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::kAuto: return "auto";
    case Strategy::kFullMatrix: return "full-matrix";
    case Strategy::kHirschberg: return "hirschberg";
    case Strategy::kFastLsa: return "fastlsa";
  }
  return "?";
}

Strategy choose_strategy(std::size_t m, std::size_t n, bool affine,
                         std::size_t memory_limit_bytes) {
  if (memory_limit_bytes == 0) return Strategy::kFullMatrix;
  const std::size_t cell = affine ? sizeof(AffineCell) : sizeof(Score);
  // Full matrix needs (m+1)*(n+1) stored cells.
  const std::size_t fm_bytes = (m + 1) * (n + 1) * cell;
  return fm_bytes <= memory_limit_bytes ? Strategy::kFullMatrix
                                        : Strategy::kFastLsa;
}

FastLsaOptions fit_fastlsa_options(std::size_t m, std::size_t n, bool affine,
                                   std::size_t memory_limit_bytes,
                                   unsigned k) {
  FastLsaOptions options;
  options.k = std::max(2u, k);
  if (memory_limit_bytes == 0) return options;

  const std::size_t cell = affine ? sizeof(AffineCell) : sizeof(Score);
  // Grid lines across the recursion: each level stores (k-1) rows of
  // (cols+1) cells and (k-1) columns of (rows+1); levels shrink by k, so
  // the total is bounded by (k-1)(m+n+2) * k/(k-1) = k*(m+n+2). Scratch and
  // boundaries add ~3*(m+n+2).
  const std::size_t overhead_cells =
      (static_cast<std::size_t>(options.k) + 3) * (m + n + 2);
  const std::size_t overhead_bytes = overhead_cells * cell;
  std::size_t budget_cells = 16;
  if (memory_limit_bytes > overhead_bytes) {
    budget_cells =
        std::max<std::size_t>(16, (memory_limit_bytes - overhead_bytes) / cell);
  }
  // Round down to a power of two for stable, reportable configurations.
  std::size_t buffer = 16;
  while (buffer * 2 <= budget_cells) buffer *= 2;
  options.base_case_cells = buffer;
  return options;
}

Alignment align(const Sequence& a, const Sequence& b,
                const ScoringScheme& scheme, const AlignOptions& options,
                AlignReport* report) {
  FLSA_REQUIRE(&a.alphabet() == &b.alphabet());
  FLSA_REQUIRE(&scheme.alphabet() == &a.alphabet());
  const bool affine = !scheme.is_linear();

  Strategy chosen = options.strategy;
  if (chosen == Strategy::kAuto) {
    chosen = choose_strategy(a.size(), b.size(), affine,
                             options.memory_limit_bytes);
  }

  FastLsaStats stats;
  Alignment result;
  switch (chosen) {
    case Strategy::kFullMatrix:
      result = affine
                   ? full_matrix_align_affine(a, b, scheme, &stats.counters)
                   : full_matrix_align(a, b, scheme, &stats.counters);
      stats.peak_bytes = (a.size() + 1) * (b.size() + 1) *
                         (affine ? sizeof(AffineCell) : sizeof(Score));
      break;
    case Strategy::kHirschberg:
      result = affine ? hirschberg_align_affine(a, b, scheme,
                                                options.hirschberg,
                                                &stats.counters)
                      : hirschberg_align(a, b, scheme, options.hirschberg,
                                         &stats.counters);
      stats.kernel_used = resolve_kernel(options.hirschberg.kernel);
      break;
    case Strategy::kFastLsa: {
      FastLsaOptions fl = options.fastlsa;
      if (options.memory_limit_bytes != 0) {
        const FastLsaOptions fitted = fit_fastlsa_options(
            a.size(), b.size(), affine, options.memory_limit_bytes, fl.k);
        fl.base_case_cells =
            std::min(fl.base_case_cells, fitted.base_case_cells);
      }
      result = affine ? fastlsa_align_affine(a, b, scheme, fl, &stats)
                      : fastlsa_align(a, b, scheme, fl, &stats);
      break;
    }
    case Strategy::kAuto:
      FLSA_ASSERT(false);
      break;
  }

  if (report) {
    report->chosen = chosen;
    report->stats = stats;
  }
  return result;
}

Aligner::Aligner(AlignOptions options)
    : options_(std::move(options)),
      workspace_(std::make_unique<FastLsaWorkspace>()) {}

Aligner::~Aligner() = default;
Aligner::Aligner(Aligner&&) noexcept = default;
Aligner& Aligner::operator=(Aligner&&) noexcept = default;

Alignment Aligner::align(const Sequence& a, const Sequence& b,
                         const ScoringScheme& scheme, AlignReport* report) {
  AlignOptions options = options_;
  options.fastlsa.workspace = workspace_.get();
  return flsa::align(a, b, scheme, options, report);
}

}  // namespace flsa
