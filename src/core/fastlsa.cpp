#include "core/fastlsa.hpp"

#include <stdexcept>

#include "core/engine.hpp"
#include "dp/kernel.hpp"

namespace flsa {

void validate(const FastLsaOptions& options) {
  if (options.k < 2) {
    throw std::invalid_argument("FastLSA requires k >= 2");
  }
  if (options.base_case_cells < 16) {
    throw std::invalid_argument(
        "FastLSA requires a base-case buffer of at least 16 cells");
  }
}

Alignment fastlsa_align(const Sequence& a, const Sequence& b,
                        const ScoringScheme& scheme,
                        const FastLsaOptions& options, FastLsaStats* stats) {
  SequentialExecutor executor;
  detail::EnginePlan plan;
  plan.executor = &executor;
  detail::FastLsaEngine<false> engine(a, b, scheme, options, plan, stats);
  return engine.run();
}

Alignment fastlsa_align_affine(const Sequence& a, const Sequence& b,
                               const ScoringScheme& scheme,
                               const FastLsaOptions& options,
                               FastLsaStats* stats) {
  SequentialExecutor executor;
  detail::EnginePlan plan;
  plan.executor = &executor;
  detail::FastLsaEngine<true> engine(a, b, scheme, options, plan, stats);
  return engine.run();
}

Score fastlsa_score(const Sequence& a, const Sequence& b,
                    const ScoringScheme& scheme, FastLsaStats* stats) {
  DpCounters counters;
  const Score score = global_score_linear(
      KernelKind::kAuto, a.residues(), b.residues(), scheme, &counters);
  if (stats) {
    stats->counters += counters;
    stats->kernel_used = resolve_kernel(KernelKind::kAuto);
    stats->peak_bytes =
        std::max(stats->peak_bytes,
                 (a.size() + b.size() + 2) * sizeof(Score));
  }
  return score;
}

// Explicit instantiations shared with the parallel driver and recorders.
template class detail::FastLsaEngine<false>;
template class detail::FastLsaEngine<true>;

}  // namespace flsa
