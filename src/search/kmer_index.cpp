#include "search/kmer_index.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace flsa {
namespace search {

const std::vector<std::uint32_t> KmerIndex::kEmpty;

SubjectTooLarge::SubjectTooLarge(std::size_t residues)
    : std::length_error("subject has " + std::to_string(residues) +
                        " residues; k-mer index positions are uint32_t, "
                        "max " +
                        std::to_string(KmerIndex::kMaxSubjectResidues)),
      residues_(residues) {}

void KmerIndex::require_indexable(std::size_t residues) {
  if (residues > kMaxSubjectResidues) throw SubjectTooLarge(residues);
}

KmerIndex::KmerIndex(SequenceView subject, std::size_t k)
    : subject_(std::move(subject)),
      k_(k),
      radix_(subject_.alphabet().size()) {
  FLSA_REQUIRE(k >= 1);
  require_indexable(subject_.size());
  // |A|^k must fit comfortably in 64 bits.
  double bits = static_cast<double>(k) * std::log2(static_cast<double>(radix_));
  FLSA_REQUIRE(bits < 62.0);
  if (subject_.size() < k) return;

  // Rolling pack over the subject (reads through the view, so a 2-bit
  // packed store record is indexed without decompressing it).
  std::uint64_t key = 0;
  std::uint64_t high = 1;
  for (std::size_t i = 0; i + 1 < k; ++i) high *= radix_;
  for (std::size_t i = 0; i < subject_.size(); ++i) {
    if (i < k) {
      key = key * radix_ + subject_[i];
      if (i + 1 < k) continue;
    } else {
      key = (key - subject_[i - k] * high) * radix_ + subject_[i];
    }
    positions_[key].push_back(static_cast<std::uint32_t>(i + 1 - k));
  }
}

KmerIndex::KmerIndex(std::shared_ptr<const Sequence> subject, std::size_t k)
    : KmerIndex(SequenceView(std::move(subject)), k) {}

KmerIndex::KmerIndex(const Sequence& subject, std::size_t k)
    : KmerIndex(std::make_shared<const Sequence>(subject), k) {}

std::uint64_t KmerIndex::pack(std::span<const Residue> kmer) const {
  FLSA_REQUIRE(kmer.size() == k_);
  std::uint64_t key = 0;
  for (Residue r : kmer) key = key * radix_ + r;
  return key;
}

const std::vector<std::uint32_t>& KmerIndex::lookup(
    std::span<const Residue> kmer) const {
  const auto it = positions_.find(pack(kmer));
  return it == positions_.end() ? kEmpty : it->second;
}

}  // namespace search
}  // namespace flsa
