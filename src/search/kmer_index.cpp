#include "search/kmer_index.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace flsa {
namespace search {

const std::vector<std::uint32_t> KmerIndex::kEmpty;

KmerIndex::KmerIndex(const Sequence& subject, std::size_t k)
    : subject_(&subject), k_(k), radix_(subject.alphabet().size()) {
  FLSA_REQUIRE(k >= 1);
  // |A|^k must fit comfortably in 64 bits.
  double bits = static_cast<double>(k) * std::log2(static_cast<double>(radix_));
  FLSA_REQUIRE(bits < 62.0);
  if (subject.size() < k) return;

  // Rolling pack over the subject.
  std::uint64_t key = 0;
  std::uint64_t high = 1;
  for (std::size_t i = 0; i + 1 < k; ++i) high *= radix_;
  for (std::size_t i = 0; i < subject.size(); ++i) {
    if (i < k) {
      key = key * radix_ + subject[i];
      if (i + 1 < k) continue;
    } else {
      key = (key - subject[i - k] * high) * radix_ + subject[i];
    }
    positions_[key].push_back(static_cast<std::uint32_t>(i + 1 - k));
  }
}

std::uint64_t KmerIndex::pack(std::span<const Residue> kmer) const {
  FLSA_REQUIRE(kmer.size() == k_);
  std::uint64_t key = 0;
  for (Residue r : kmer) key = key * radix_ + r;
  return key;
}

const std::vector<std::uint32_t>& KmerIndex::lookup(
    std::span<const Residue> kmer) const {
  const auto it = positions_.find(pack(kmer));
  return it == positions_.end() ? kEmpty : it->second;
}

}  // namespace search
}  // namespace flsa
