// Exact k-mer index over a subject sequence.
//
// The first stage of seed-and-extend homology search (search/seed_extend):
// every length-k word of the subject is hashed to its positions, so query
// words find their exact matches in O(1). Works for any alphabet with
// |A|^k packable into 64 bits.
//
// The subject is held as a SequenceView, so the index reads equally from
// an owned Sequence (shared ownership keeps it alive) or an mmap'd
// packed-store record — the service keeps one index per registered
// reference and hands it to many workers concurrently without ever
// inflating the packed bytes. Subject positions are stored as uint32_t;
// subjects with 2^32 or more residues are rejected with SubjectTooLarge
// instead of silently truncating.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "sequence/sequence.hpp"
#include "sequence/sequence_view.hpp"

namespace flsa {
namespace search {

/// Thrown when a subject has too many residues for the uint32_t position
/// encoding (>= 2^32). A typed subclass so callers (the service's REF_PUT
/// path) can map it to a wire error instead of a generic bad-request.
class SubjectTooLarge : public std::length_error {
 public:
  explicit SubjectTooLarge(std::size_t residues);
  std::size_t residues() const { return residues_; }

 private:
  std::size_t residues_;
};

class KmerIndex {
 public:
  /// Largest indexable subject: positions must fit in uint32_t.
  static constexpr std::size_t kMaxSubjectResidues =
      (std::uint64_t{1} << 32) - 1;

  /// Throws SubjectTooLarge when `residues` exceeds kMaxSubjectResidues.
  /// Exposed so the limit is testable without materializing 4 GiB.
  static void require_indexable(std::size_t residues);

  /// Indexes every k-mer of the viewed subject. The view's shared owner
  /// (a Sequence or an mmap'd store) keeps the residues alive. Requires
  /// 1 <= k, |A|^k < 2^62, and subject size <= kMaxSubjectResidues.
  KmerIndex(SequenceView subject, std::size_t k);

  /// Indexes `subject`, sharing ownership (the index never dangles).
  KmerIndex(std::shared_ptr<const Sequence> subject, std::size_t k);

  /// Convenience: copies `subject` into shared ownership. Safe with
  /// temporaries.
  KmerIndex(const Sequence& subject, std::size_t k);

  std::size_t k() const { return k_; }
  const SequenceView& subject() const { return subject_; }

  /// Number of distinct k-mers present.
  std::size_t distinct_kmers() const { return positions_.size(); }

  /// Positions (0-based) where the k-mer starting at query[pos] occurs in
  /// the subject; empty when absent.
  const std::vector<std::uint32_t>& lookup(
      std::span<const Residue> kmer) const;

  /// Packs a k-mer into its integer key (exposed for tests).
  std::uint64_t pack(std::span<const Residue> kmer) const;

 private:
  SequenceView subject_;
  std::size_t k_;
  std::uint64_t radix_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> positions_;
  static const std::vector<std::uint32_t> kEmpty;
};

}  // namespace search
}  // namespace flsa
