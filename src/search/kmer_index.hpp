// Exact k-mer index over a subject sequence.
//
// The first stage of seed-and-extend homology search (search/seed_extend):
// every length-k word of the subject is hashed to its positions, so query
// words find their exact matches in O(1). Works for any alphabet with
// |A|^k packable into 64 bits.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "sequence/sequence.hpp"

namespace flsa {
namespace search {

class KmerIndex {
 public:
  /// Indexes every k-mer of `subject`. Requires 1 <= k <= subject length
  /// practical bound and |A|^k < 2^62.
  KmerIndex(const Sequence& subject, std::size_t k);

  std::size_t k() const { return k_; }
  const Sequence& subject() const { return *subject_; }

  /// Number of distinct k-mers present.
  std::size_t distinct_kmers() const { return positions_.size(); }

  /// Positions (0-based) where the k-mer starting at query[pos] occurs in
  /// the subject; empty when absent.
  const std::vector<std::uint32_t>& lookup(
      std::span<const Residue> kmer) const;

  /// Packs a k-mer into its integer key (exposed for tests).
  std::uint64_t pack(std::span<const Residue> kmer) const;

 private:
  const Sequence* subject_;
  std::size_t k_;
  std::uint64_t radix_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> positions_;
  static const std::vector<std::uint32_t> kEmpty;
};

}  // namespace search
}  // namespace flsa
