#include "search/chain.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <optional>
#include <string>
#include <unordered_map>

#include "dp/banded.hpp"
#include "support/assert.hpp"

namespace flsa {
namespace search {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

}  // namespace

std::vector<Anchor> collect_anchors(const Sequence& query,
                                    const ReferenceIndex& index,
                                    const ScoringScheme& scheme,
                                    std::size_t max_positions_per_kmer) {
  const std::size_t k = index.k();
  const SequenceView& subject = index.subject();
  FLSA_REQUIRE(&query.alphabet() == &subject.alphabet());
  const SubstitutionMatrix& sub = scheme.matrix();

  std::vector<Anchor> anchors;
  if (query.size() < k) return anchors;

  // Diagonal substitution scores, so exact runs score without re-probing
  // the full matrix per position.
  std::vector<Score> self(query.alphabet().size());
  for (std::size_t r = 0; r < self.size(); ++r) {
    self[r] = sub.at(static_cast<Residue>(r), static_cast<Residue>(r));
  }

  // The open (still extendable) run per diagonal: an index into `anchors`.
  // Because the outer loop advances q monotonically, a k-mer match at
  // (q, s) either overlaps/abuts its diagonal's open run (merge) or
  // starts a new run.
  std::unordered_map<std::ptrdiff_t, std::size_t> open;
  for (std::size_t q = 0; q + k <= query.size(); ++q) {
    const std::vector<std::uint32_t>& positions =
        index.kmers().lookup(query.residues().subspan(q, k));
    if (positions.empty()) continue;
    if (max_positions_per_kmer != 0 &&
        positions.size() > max_positions_per_kmer) {
      continue;  // repeat-masked: this word is too common to seed on
    }
    for (const std::uint32_t s32 : positions) {
      const auto s = static_cast<std::size_t>(s32);
      const std::ptrdiff_t diagonal = static_cast<std::ptrdiff_t>(s) -
                                      static_cast<std::ptrdiff_t>(q);
      const auto it = open.find(diagonal);
      if (it != open.end()) {
        Anchor& run = anchors[it->second];
        if (q <= run.q_end) {
          // Overlapping or abutting on the same diagonal: one exact run.
          for (std::size_t i = run.q_end; i < q + k; ++i) {
            run.score += self[query[i]];
          }
          run.q_end = std::max(run.q_end, q + k);
          run.s_end = s + (run.q_end - q);
          continue;
        }
      }
      Anchor run{q, q + k, s, s + k, 0};
      for (std::size_t i = q; i < q + k; ++i) run.score += self[query[i]];
      open[diagonal] = anchors.size();
      anchors.push_back(run);
    }
  }
  return anchors;
}

std::vector<Chain> chain_anchors(std::span<const Anchor> anchors,
                                 const ChainParams& params) {
  FLSA_REQUIRE(params.gap_weight >= 0);
  std::vector<Chain> chains;
  if (anchors.empty()) return chains;
  const std::size_t n = anchors.size();
  const Score wg = params.gap_weight;
  const std::size_t overlap = params.max_overlap;
  for (const Anchor& a : anchors) {
    FLSA_REQUIRE(a.length() > overlap);
  }

  // Precedence prev -> next requires prev.q_end <= next.q_begin + overlap
  // and prev.s_end <= next.s_begin + overlap. The L1 gap cost
  //   wg * ((next.q_begin - prev.q_end) + (next.s_begin - prev.s_end))
  // decomposes: maximizing total[prev] - cost over predecessors is a
  // prefix-max query of adjusted[prev] = total[prev] + wg*(prev.q_end +
  // prev.s_end) over prev with q_end <= next.q_begin + overlap — swept in
  // subject order so only anchors with s_end <= next.s_begin + overlap
  // are in the frontier when next is queried.
  struct Event {
    std::size_t x = 0;        // subject coordinate
    bool is_query = false;    // inserts sort before queries at equal x
    std::size_t anchor = 0;
  };
  std::vector<Event> events;
  events.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    events.push_back({anchors[i].s_end, false, i});
    events.push_back({anchors[i].s_begin + overlap, true, i});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              if (a.x != b.x) return a.x < b.x;
              if (a.is_query != b.is_query) return !a.is_query;
              return a.anchor < b.anchor;
            });

  std::vector<Score> total(n);
  std::vector<std::size_t> pred(n, kNone);
  for (std::size_t i = 0; i < n; ++i) total[i] = anchors[i].score;

  // Monotone frontier: q_end -> (adjusted, anchor), adjusted strictly
  // increasing with q_end (dominated entries are pruned), so the best
  // predecessor with q_end <= key is the greatest key not above it.
  std::map<std::size_t, std::pair<Score, std::size_t>> frontier;
  const auto frontier_insert = [&](std::size_t key, Score adjusted,
                                   std::size_t anchor) {
    auto it = frontier.upper_bound(key);
    if (it != frontier.begin() &&
        std::prev(it)->second.first >= adjusted) {
      return;  // dominated by an entry at or below this key
    }
    it = frontier.insert_or_assign(key, std::make_pair(adjusted, anchor))
             .first;
    auto next = std::next(it);
    while (next != frontier.end() && next->second.first <= adjusted) {
      next = frontier.erase(next);
    }
  };

  for (const Event& event : events) {
    const Anchor& a = anchors[event.anchor];
    if (event.is_query) {
      const auto it = frontier.upper_bound(a.q_begin + overlap);
      if (it == frontier.begin()) continue;
      const auto& [adjusted, prev] = std::prev(it)->second;
      if (prev == event.anchor) continue;  // degenerate self-link guard
      const Score candidate =
          a.score + adjusted -
          wg * static_cast<Score>(a.q_begin + a.s_begin);
      if (candidate > total[event.anchor]) {
        total[event.anchor] = candidate;
        pred[event.anchor] = prev;
      }
    } else {
      const Score adjusted =
          total[event.anchor] +
          wg * static_cast<Score>(a.q_end + a.s_end);
      frontier_insert(a.q_end, adjusted, event.anchor);
    }
  }

  // Extract chains best-first; an anchor joins at most one chain, and a
  // chain whose tail is already claimed by a better chain is dropped
  // (its survivors resurface as shorter candidate chains).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (total[x] != total[y]) return total[x] > total[y];
    if (anchors[x].s_begin != anchors[y].s_begin) {
      return anchors[x].s_begin < anchors[y].s_begin;
    }
    return x < y;
  });
  std::vector<char> used(n, 0);
  for (const std::size_t terminal : order) {
    if (total[terminal] < params.min_chain_score) break;
    if (chains.size() >= params.max_chains) break;
    std::vector<std::size_t> members;
    bool conflict = false;
    for (std::size_t a = terminal;;) {
      if (used[a]) {
        conflict = true;
        break;
      }
      members.push_back(a);
      if (pred[a] == kNone) break;
      a = pred[a];
    }
    if (conflict) continue;
    for (const std::size_t a : members) used[a] = 1;
    std::reverse(members.begin(), members.end());
    chains.push_back(Chain{std::move(members), total[terminal]});
  }
  return chains;
}

namespace {

/// A corner-anchored gapped extension: the best-scoring alignment of a
/// prefix of the query flank against a prefix of the subject flank, with
/// gaps charged from the corner and both ends free. The gapped strings
/// are in traceback order (from the far end towards the corner) — the
/// caller reverses them for a rightward flank.
struct FlankExtension {
  Score score = 0;
  std::size_t q_used = 0;  ///< query residues consumed
  std::size_t s_used = 0;  ///< subject residues consumed
  std::string gapped_q, gapped_s;
};

/// Gapped X-drop extension over a flank rectangle. `q_at(i)` / `s_at(j)`
/// map flank offsets to residues (reversed for a leftward flank). Rows
/// stop once a whole row falls more than `x_drop` below the best cell —
/// the gapped analogue of the ungapped BLAST-style cutoff.
template <typename QAt, typename SAt>
FlankExtension extend_flank(std::size_t nq, std::size_t ns, QAt q_at,
                            SAt s_at, const ScoringScheme& scheme,
                            const Alphabet& alphabet, Score x_drop) {
  FlankExtension out;
  if (nq == 0 || ns == 0) return out;
  const SubstitutionMatrix& sub = scheme.matrix();
  const Score gap = scheme.gap_extend();

  enum : std::uint8_t { kStop = 0, kDiag = 1, kUp = 2, kLeft = 3 };
  std::vector<std::uint8_t> trace((nq + 1) * (ns + 1), kStop);
  std::vector<Score> prev(ns + 1), cur(ns + 1);
  for (std::size_t j = 1; j <= ns; ++j) {
    prev[j] = prev[j - 1] + gap;
    trace[j] = kLeft;
  }
  Score best = 0;
  std::size_t best_i = 0, best_j = 0;
  for (std::size_t i = 1; i <= nq; ++i) {
    std::uint8_t* row = trace.data() + i * (ns + 1);
    cur[0] = prev[0] + gap;
    row[0] = kUp;
    Score row_best = cur[0];
    for (std::size_t j = 1; j <= ns; ++j) {
      const Score diag = prev[j - 1] + sub.at(q_at(i - 1), s_at(j - 1));
      const Score up = prev[j] + gap;
      const Score left = cur[j - 1] + gap;
      Score value = diag;
      std::uint8_t dir = kDiag;
      if (up > value) {
        value = up;
        dir = kUp;
      }
      if (left > value) {
        value = left;
        dir = kLeft;
      }
      cur[j] = value;
      row[j] = dir;
      if (value > row_best) row_best = value;
      if (value > best) {
        best = value;
        best_i = i;
        best_j = j;
      }
    }
    if (row_best < best - x_drop) break;  // gapped X-drop: give up the row
    std::swap(prev, cur);
  }

  out.score = best;
  out.q_used = best_i;
  out.s_used = best_j;
  std::size_t i = best_i, j = best_j;
  while (i != 0 || j != 0) {
    switch (trace[i * (ns + 1) + j]) {
      case kDiag:
        out.gapped_q += alphabet.letter(q_at(i - 1));
        out.gapped_s += alphabet.letter(s_at(j - 1));
        --i;
        --j;
        break;
      case kUp:
        out.gapped_q += alphabet.letter(q_at(i - 1));
        out.gapped_s += '-';
        --i;
        break;
      default:
        out.gapped_q += '-';
        out.gapped_s += alphabet.letter(s_at(j - 1));
        --j;
        break;
    }
  }
  return out;
}

/// Composes the final gapped alignment of one chain: exact anchor columns,
/// banded DP in the inter-anchor gaps, gapped X-drop extension past the
/// chain ends. Returns nullopt when trimming swallows the whole chain.
std::optional<Alignment> fill_chain(const Sequence& query,
                                    const SequenceView& subject,
                                    std::span<const Anchor> anchors,
                                    const Chain& chain,
                                    const ScoringScheme& scheme,
                                    const ChainedSearchParams& params) {
  // Trim overlaps so consecutive parts are strictly colinear
  // (prev.q_end <= part.q_begin and prev.s_end <= part.s_begin).
  std::vector<Anchor> parts;
  parts.reserve(chain.anchors.size());
  for (const std::size_t idx : chain.anchors) {
    Anchor a = anchors[idx];
    if (!parts.empty()) {
      const Anchor& prev = parts.back();
      std::size_t trim = 0;
      if (prev.q_end > a.q_begin) trim = prev.q_end - a.q_begin;
      if (prev.s_end > a.s_begin) {
        trim = std::max(trim, prev.s_end - a.s_begin);
      }
      if (trim >= a.length()) continue;  // swallowed by its predecessor
      a.q_begin += trim;
      a.s_begin += trim;
    }
    parts.push_back(a);
  }
  if (parts.empty()) return std::nullopt;

  const SubstitutionMatrix& sub = scheme.matrix();
  const Alphabet& alphabet = query.alphabet();

  // Gapped X-drop extension outward from the chain's ends. The flank
  // rectangle is banded by construction: the subject side is capped at
  // the query side plus band_pad, the indel tolerance everywhere else in
  // the pipeline.
  const std::size_t q_front = parts.front().q_begin;
  const std::size_t s_front = parts.front().s_begin;
  const FlankExtension left = extend_flank(
      q_front, std::min(s_front, q_front + params.band_pad),
      [&](std::size_t i) { return query[q_front - 1 - i]; },
      [&](std::size_t j) { return subject[s_front - 1 - j]; }, scheme,
      alphabet, params.x_drop);
  const std::size_t q_back = parts.back().q_end;
  const std::size_t s_back = parts.back().s_end;
  const std::size_t q_tail = query.size() - q_back;
  FlankExtension right = extend_flank(
      q_tail, std::min(subject.size() - s_back, q_tail + params.band_pad),
      [&](std::size_t i) { return query[q_back + i]; },
      [&](std::size_t j) { return subject[s_back + j]; }, scheme, alphabet,
      params.x_drop);
  // The right flank's traceback runs far-end-to-corner; the output reads
  // corner-outward. (The left flank's traceback order is already right.)
  std::reverse(right.gapped_q.begin(), right.gapped_q.end());
  std::reverse(right.gapped_s.begin(), right.gapped_s.end());

  Alignment out;
  out.a_begin = q_front - left.q_used;
  out.a_end = q_back + right.q_used;
  out.b_begin = s_front - left.s_used;
  out.b_end = s_back + right.s_used;

  Score total = 0;
  const auto emit_diagonal = [&](std::size_t qb, std::size_t qe,
                                 std::size_t sb) {
    for (std::size_t i = qb; i < qe; ++i) {
      out.gapped_a += alphabet.letter(query[i]);
      out.gapped_b += alphabet.letter(subject[sb + (i - qb)]);
      total += sub.at(query[i], subject[sb + (i - qb)]);
    }
  };
  const auto emit_gap = [&](std::size_t prev_q, std::size_t prev_s,
                            std::size_t next_q, std::size_t next_s) {
    const std::size_t dq = next_q - prev_q;
    const std::size_t ds = next_s - prev_s;
    if (dq == 0 && ds == 0) return;
    if (dq == 0 || ds == 0) {
      // Pure gap: no DP needed.
      for (std::size_t i = 0; i < dq; ++i) {
        out.gapped_a += alphabet.letter(query[prev_q + i]);
        out.gapped_b += '-';
      }
      for (std::size_t i = 0; i < ds; ++i) {
        out.gapped_a += '-';
        out.gapped_b += alphabet.letter(subject[prev_s + i]);
      }
      total += static_cast<Score>(dq + ds) * scheme.gap_extend();
      return;
    }
    // Mixed gap: banded global DP over just the gap rectangle. The band
    // half-width covers the diagonal offset between the flanking anchors
    // plus padding, so the optimum stays inside for realistic indels.
    const std::size_t skew = dq > ds ? dq - ds : ds - dq;
    const std::size_t half_width = std::max<std::size_t>(
        1, skew + params.band_pad);
    const Alignment gap = banded_align(query.subsequence(prev_q, dq),
                                       subject.materialize(prev_s, ds),
                                       scheme, half_width);
    out.gapped_a += gap.gapped_a;
    out.gapped_b += gap.gapped_b;
    total += gap.score;
  };

  out.gapped_a += left.gapped_q;
  out.gapped_b += left.gapped_s;
  total += left.score;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    if (p > 0) {
      emit_gap(parts[p - 1].q_end, parts[p - 1].s_end, parts[p].q_begin,
               parts[p].s_begin);
    }
    emit_diagonal(parts[p].q_begin, parts[p].q_end, parts[p].s_begin);
  }
  out.gapped_a += right.gapped_q;
  out.gapped_b += right.gapped_s;
  total += right.score;

  out.score = total;
  return out;
}

}  // namespace

std::vector<SearchHit> chained_search(const Sequence& query,
                                      const ReferenceIndex& index,
                                      const ScoringScheme& scheme,
                                      const ChainedSearchParams& params,
                                      ChainedSearchStats* stats) {
  FLSA_REQUIRE(scheme.is_linear());
  FLSA_REQUIRE(&scheme.alphabet() == &query.alphabet());
  const SequenceView& subject = index.subject();

  std::vector<SearchHit> hits;
  const std::vector<Anchor> anchors = collect_anchors(
      query, index, scheme, params.max_positions_per_kmer);
  ChainParams chain_params = params.chain;
  // Anchors are at least k long, so clamping keeps every anchor eligible.
  chain_params.max_overlap =
      std::min(chain_params.max_overlap, index.k() - 1);
  const std::vector<Chain> chains = chain_anchors(anchors, chain_params);
  if (stats != nullptr) {
    stats->anchors = anchors.size();
    stats->chains = chains.size();
  }

  // Fill best-estimate-first; drop candidates whose *final* subject
  // extent overlaps an already-reported hit.
  std::vector<std::pair<std::size_t, std::size_t>> reported;
  for (const Chain& chain : chains) {
    if (hits.size() >= params.max_hits) break;
    std::optional<Alignment> aln =
        fill_chain(query, subject, anchors, chain, scheme, params);
    if (stats != nullptr) ++stats->filled;
    if (!aln.has_value() || aln->length() == 0 ||
        aln->score < chain_params.min_chain_score) {
      continue;
    }
    bool overlaps = false;
    for (const auto& [rb, re] : reported) {
      if (aln->b_begin < re && rb < aln->b_end) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;
    reported.emplace_back(aln->b_begin, aln->b_end);
    hits.push_back(SearchHit{std::move(*aln)});
  }
  std::sort(hits.begin(), hits.end(),
            [](const SearchHit& x, const SearchHit& y) {
              if (x.alignment.score != y.alignment.score) {
                return x.alignment.score > y.alignment.score;
              }
              return x.alignment.b_begin < y.alignment.b_begin;
            });
  return hits;
}

}  // namespace search
}  // namespace flsa
