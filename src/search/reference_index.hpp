// A reference prepared for many searches: the packed subject plus its
// k-mer index, built once and shared read-only.
//
// This is the unit the service's REF_PUT verb registers and SEARCH aligns
// against by id: construction is the only mutating phase, so a single
// shared_ptr<const ReferenceIndex> can be handed to every worker thread
// without locks. The subject itself is shared (not copied) with the inner
// KmerIndex, so a multi-megabase chromosome is stored exactly once.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "search/kmer_index.hpp"
#include "sequence/sequence.hpp"

namespace flsa {
namespace search {

class ReferenceIndex {
 public:
  /// Indexes `subject` with seed length `k`, sharing ownership. Same
  /// preconditions as KmerIndex (throws SubjectTooLarge past 2^32-1
  /// residues).
  ReferenceIndex(std::shared_ptr<const Sequence> subject, std::size_t k)
      : kmers_(std::move(subject), k) {}

  /// Convenience for in-process callers: adopts a by-value subject.
  ReferenceIndex(Sequence subject, std::size_t k)
      : ReferenceIndex(
            std::make_shared<const Sequence>(std::move(subject)), k) {}

  const Sequence& subject() const { return kmers_.subject(); }
  const std::shared_ptr<const Sequence>& subject_ptr() const {
    return kmers_.subject_ptr();
  }
  std::size_t size() const { return subject().size(); }
  std::size_t k() const { return kmers_.k(); }
  const KmerIndex& kmers() const { return kmers_; }

 private:
  KmerIndex kmers_;
};

}  // namespace search
}  // namespace flsa
