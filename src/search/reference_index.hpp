// A reference prepared for many searches: the packed subject plus its
// k-mer index, built once and shared read-only.
//
// This is the unit the service's REF_PUT/SEQ_END verbs register and
// SEARCH aligns against by id: construction is the only mutating phase,
// so a single shared_ptr<const ReferenceIndex> can be handed to every
// worker thread without locks. The subject is a SequenceView — shared
// ownership of an owned Sequence, or a zero-copy window into an mmap'd
// packed store — so a multi-megabase chromosome is stored exactly once,
// possibly at 2 bits per base.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "search/kmer_index.hpp"
#include "sequence/sequence.hpp"
#include "sequence/sequence_view.hpp"

namespace flsa {
namespace search {

class ReferenceIndex {
 public:
  /// Indexes the viewed subject with seed length `k`. Same
  /// preconditions as KmerIndex (throws SubjectTooLarge past 2^32-1
  /// residues).
  ReferenceIndex(SequenceView subject, std::size_t k)
      : kmers_(std::move(subject), k) {}

  /// Indexes `subject` with seed length `k`, sharing ownership.
  ReferenceIndex(std::shared_ptr<const Sequence> subject, std::size_t k)
      : kmers_(std::move(subject), k) {}

  /// Convenience for in-process callers: adopts a by-value subject.
  ReferenceIndex(Sequence subject, std::size_t k)
      : ReferenceIndex(
            std::make_shared<const Sequence>(std::move(subject)), k) {}

  const SequenceView& subject() const { return kmers_.subject(); }
  std::size_t size() const { return subject().size(); }
  std::size_t k() const { return kmers_.k(); }
  const KmerIndex& kmers() const { return kmers_; }

 private:
  KmerIndex kmers_;
};

}  // namespace search
}  // namespace flsa
