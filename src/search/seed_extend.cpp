#include "search/seed_extend.hpp"

#include <algorithm>
#include <map>

#include "core/local_align.hpp"
#include "support/assert.hpp"

namespace flsa {
namespace search {

UngappedHit xdrop_extend(const Sequence& query, std::size_t q,
                         const SequenceView& subject, std::size_t s,
                         std::size_t k, const ScoringScheme& scheme,
                         Score x_drop) {
  FLSA_REQUIRE(q + k <= query.size() && s + k <= subject.size());
  FLSA_REQUIRE(x_drop >= 0);
  const SubstitutionMatrix& sub = scheme.matrix();

  Score score = 0;
  for (std::size_t i = 0; i < k; ++i) {
    score += sub.at(query[q + i], subject[s + i]);
  }
  UngappedHit hit{q, q + k, s, s + k, score};

  // Right extension.
  Score running = score;
  Score best = score;
  std::size_t qi = q + k, si = s + k;
  std::size_t best_q = qi, best_s = si;
  while (qi < query.size() && si < subject.size()) {
    running += sub.at(query[qi], subject[si]);
    ++qi;
    ++si;
    if (running > best) {
      best = running;
      best_q = qi;
      best_s = si;
    } else if (running < best - x_drop) {
      break;
    }
  }
  hit.q_end = best_q;
  hit.s_end = best_s;
  hit.score = best;

  // Left extension from the seed start.
  running = best;
  Score best_total = best;
  std::size_t lq = q, ls = s;
  std::size_t best_lq = q, best_ls = s;
  while (lq > 0 && ls > 0) {
    --lq;
    --ls;
    running += sub.at(query[lq], subject[ls]);
    if (running > best_total) {
      best_total = running;
      best_lq = lq;
      best_ls = ls;
    } else if (running < best_total - x_drop) {
      break;
    }
  }
  hit.q_begin = best_lq;
  hit.s_begin = best_ls;
  hit.score = best_total;
  return hit;
}

std::vector<SearchHit> seed_and_extend(const Sequence& query,
                                       const KmerIndex& index,
                                       const ScoringScheme& scheme,
                                       const SearchParams& params) {
  FLSA_REQUIRE(scheme.is_linear());
  FLSA_REQUIRE(params.k == index.k());
  const SequenceView& subject = index.subject();
  std::vector<SearchHit> hits;
  if (query.size() < params.k) return hits;

  // Stage 1+2: seeds, deduplicated per diagonal (skip seeds inside a
  // region some earlier seed on the same diagonal already extended over).
  std::map<std::ptrdiff_t, std::size_t> diagonal_frontier;
  std::vector<UngappedHit> ungapped;
  for (std::size_t q = 0; q + params.k <= query.size(); ++q) {
    for (std::uint32_t s : index.lookup(
             query.residues().subspan(q, params.k))) {
      const std::ptrdiff_t diagonal = static_cast<std::ptrdiff_t>(s) -
                                      static_cast<std::ptrdiff_t>(q);
      const auto frontier = diagonal_frontier.find(diagonal);
      if (frontier != diagonal_frontier.end() && q < frontier->second) {
        continue;  // already covered by an earlier extension
      }
      const UngappedHit hit = xdrop_extend(query, q, subject, s, params.k,
                                           scheme, params.x_drop);
      diagonal_frontier[diagonal] = hit.q_end;
      if (hit.score >= params.min_ungapped_score) {
        ungapped.push_back(hit);
      }
    }
  }
  std::sort(ungapped.begin(), ungapped.end(),
            [](const UngappedHit& x, const UngappedHit& y) {
              if (x.score != y.score) return x.score > y.score;
              return x.s_begin < y.s_begin;
            });

  // Stage 3: gapped local alignment of a padded window per candidate,
  // best-first, dropping candidates overlapping an already-reported hit.
  const std::size_t candidate_cap = params.max_hits * 4;
  std::vector<std::pair<std::size_t, std::size_t>> reported;  // subject ranges
  for (std::size_t i = 0;
       i < std::min(candidate_cap, ungapped.size()) &&
       hits.size() < params.max_hits;
       ++i) {
    const UngappedHit& u = ungapped[i];
    // Subject window sized so the *whole* query fits alongside the seed's
    // diagonal, plus padding for gaps.
    const std::size_t left_need = u.q_begin + params.window_pad;
    const std::size_t s_begin =
        u.s_begin > left_need ? u.s_begin - left_need : 0;
    const std::size_t right_need =
        (query.size() - u.q_end) + params.window_pad;
    const std::size_t s_end = std::min(subject.size(), u.s_end + right_need);

    const Sequence s_window =
        subject.materialize(s_begin, s_end - s_begin);
    // Linear-space local alignment (forward/reverse score passes +
    // FastLSA on the located rectangle) — same score as the full-matrix
    // Smith-Waterman without the O(|query| * window) matrix. The base
    // case is capped proportionally to the perimeter so total memory
    // stays linear in |query| + window instead of their product.
    FastLsaOptions fastlsa;
    fastlsa.base_case_cells = std::max<std::size_t>(
        1024, 8 * (query.size() + s_window.size()));
    Alignment aln = local_align(query, s_window, scheme, fastlsa);
    if (aln.length() == 0) continue;
    // Re-anchor the subject region to global coordinates.
    aln.b_begin += s_begin;
    aln.b_end += s_begin;
    // Dedup on the *final* gapped extent: the aligner is free to land
    // anywhere in the window, so the ungapped candidate extent says
    // nothing about where the reported alignment actually sits.
    bool overlaps = false;
    for (const auto& [rb, re] : reported) {
      if (aln.b_begin < re && rb < aln.b_end) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;
    reported.emplace_back(aln.b_begin, aln.b_end);
    hits.push_back(SearchHit{std::move(aln)});
  }
  std::sort(hits.begin(), hits.end(),
            [](const SearchHit& x, const SearchHit& y) {
              return x.alignment.score > y.alignment.score;
            });
  return hits;
}

}  // namespace search
}  // namespace flsa
