// Seed-and-extend search (BLAST-style, built on this library's aligners).
//
// Pipeline: exact k-mer seeds (search/kmer_index) -> ungapped X-drop
// extension along each seed's diagonal -> gapped local alignment (the
// linear-space core/local_align) of a window around the surviving
// extensions. Turns the O(mn) aligners into a practical sub-quadratic
// homology search for long subjects, the workload the paper's
// introduction motivates. For reference-indexed search that also chains
// anchors and restricts DP to the inter-anchor gaps, see search/chain.hpp.
#pragma once

#include <vector>

#include "dp/alignment.hpp"
#include "search/kmer_index.hpp"
#include "scoring/scheme.hpp"

namespace flsa {
namespace search {

/// Parameters of the search pipeline.
struct SearchParams {
  std::size_t k = 8;            ///< seed length
  Score x_drop = 20;            ///< ungapped extension drop-off
  Score min_ungapped_score = 25;  ///< seeds below this never reach stage 3
  std::size_t window_pad = 32;  ///< gapped window margin around extensions
  std::size_t max_hits = 16;    ///< cap on reported hits
};

/// One ungapped seed extension (stage 2 output).
struct UngappedHit {
  std::size_t q_begin = 0, q_end = 0;  ///< query range [begin, end)
  std::size_t s_begin = 0, s_end = 0;  ///< subject range
  Score score = 0;
};

/// One final gapped hit.
struct SearchHit {
  Alignment alignment;  ///< local alignment; regions are subject-global
};

/// Stage 2 in isolation: extends the exact match query[q]..=/subject[s]
/// of length k in both directions without gaps, stopping when the running
/// score falls `x_drop` below its running maximum. Exposed for testing.
UngappedHit xdrop_extend(const Sequence& query, std::size_t q,
                         const SequenceView& subject, std::size_t s,
                         std::size_t k, const ScoringScheme& scheme,
                         Score x_drop);

/// Full pipeline: all gapped local hits of `query` in the indexed
/// subject, best first, deduplicated by overlapping subject regions.
std::vector<SearchHit> seed_and_extend(const Sequence& query,
                                       const KmerIndex& index,
                                       const ScoringScheme& scheme,
                                       const SearchParams& params = {});

}  // namespace search
}  // namespace flsa
