// Colinear anchor chaining and chained (seed-chain-extend) search.
//
// The per-query pipeline against a prepared ReferenceIndex:
//
//   1. collect_anchors — every exact k-mer match of the query in the
//      index, merged per diagonal into maximal exact runs ("anchors").
//      High-frequency k-mers (repeats) are masked by
//      max_positions_per_kmer.
//   2. chain_anchors — best colinear subsets of anchors under a
//      gap-cost-aware score. The gap cost between consecutive anchors is
//      the L1 ("sum of gaps") cost g(prev, next) =
//      gap_weight * ((next.q_begin - prev.q_end) + (next.s_begin -
//      prev.s_end)), which decomposes into a per-anchor term plus a
//      prefix maximum — so one sweep by subject coordinate over a
//      monotone frontier keyed by query coordinate finds every anchor's
//      best predecessor in O(A log A) total (the sweep-line formulation
//      of Allali/Chauve, "Chaining fragments in sequences: to sweep or
//      not"). Anchors may overlap by up to max_overlap residues; the
//      overlap is trimmed away at fill time.
//   3. chained_search — for each chain, a gapped alignment is composed
//      from exact anchor columns, banded linear-space DP
//      (dp/banded) restricted to the inter-anchor gaps, and ungapped
//      X-drop extension past the chain's ends. DP work is proportional
//      to the divergence between query and reference, not to their
//      product.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dp/alignment.hpp"
#include "scoring/scheme.hpp"
#include "search/reference_index.hpp"
#include "search/seed_extend.hpp"

namespace flsa {
namespace search {

/// A maximal run of merged exact k-mer matches on one diagonal:
/// query[q_begin, q_end) equals subject[s_begin, s_end) residue for
/// residue, scored by the substitution matrix diagonal.
struct Anchor {
  std::size_t q_begin = 0, q_end = 0;
  std::size_t s_begin = 0, s_end = 0;
  Score score = 0;

  std::size_t length() const { return q_end - q_begin; }
  std::ptrdiff_t diagonal() const {
    return static_cast<std::ptrdiff_t>(s_begin) -
           static_cast<std::ptrdiff_t>(q_begin);
  }
};

/// Chaining parameters (stage 2).
struct ChainParams {
  Score gap_weight = 1;          ///< L1 cost per unaligned residue between anchors
  std::size_t max_overlap = 8;   ///< anchors may overlap this much (trimmed later)
  Score min_chain_score = 30;    ///< chains below this are not reported
  std::size_t max_chains = 64;   ///< cap on extracted chains
};

/// One colinear chain: indices into the anchor array, in query/subject
/// order, plus its gap-cost-aware score estimate (anchor scores minus
/// weighted gap lengths; the exact score is computed at fill time).
struct Chain {
  std::vector<std::size_t> anchors;
  Score score = 0;
};

/// Pipeline observability for chained_search.
struct ChainedSearchStats {
  std::size_t anchors = 0;   ///< anchors collected after repeat masking
  std::size_t chains = 0;    ///< chains above min_chain_score
  std::size_t filled = 0;    ///< chains gap-filled into candidate alignments
};

/// Full chained-search parameters (stages 1-3).
struct ChainedSearchParams {
  ChainParams chain;
  std::size_t max_positions_per_kmer = 64;  ///< repeat mask; 0 = unlimited
  Score x_drop = 20;                        ///< flank extension drop-off
  std::size_t band_pad = 16;  ///< gap-fill band half-width beyond |dq - ds|
  std::size_t max_hits = 16;  ///< cap on reported hits
};

/// Stage 1: all anchors of `query` in the index, ordered by q_begin.
std::vector<Anchor> collect_anchors(const Sequence& query,
                                    const ReferenceIndex& index,
                                    const ScoringScheme& scheme,
                                    std::size_t max_positions_per_kmer = 64);

/// Stage 2: best-first disjoint colinear chains over `anchors`.
/// Anchors must be sorted by q_begin (collect_anchors output order) and
/// every anchor must be longer than params.max_overlap.
std::vector<Chain> chain_anchors(std::span<const Anchor> anchors,
                                 const ChainParams& params);

/// Stages 1-3: gapped local hits of `query` against the reference,
/// best first, non-overlapping in subject coordinates. Linear schemes
/// only. Alignment coordinates are query/subject-global.
std::vector<SearchHit> chained_search(const Sequence& query,
                                      const ReferenceIndex& index,
                                      const ScoringScheme& scheme,
                                      const ChainedSearchParams& params = {},
                                      ChainedSearchStats* stats = nullptr);

}  // namespace search
}  // namespace flsa
