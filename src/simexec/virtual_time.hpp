// Virtual-time replay: makespan of a recorded tile DAG on P simulated
// processors, in cost units (DPM cells).
//
// Two policies mirror the real schedulers:
//  - barrier-staged: wavefront lines run as synchronized stages; a stage's
//    duration is the greedy P-processor makespan of its tiles (matching
//    WavefrontExecutor::run_barrier's dynamic work stealing within a line);
//  - dependency-counter: event-driven list scheduling where a tile starts
//    the moment a processor is free and its up/left tiles finished.
//
// `per_tile_overhead` models the fixed cost of dispatching/synchronizing
// one tile (scheduling, boundary copies, cache warm-up), expressed in cell
// units. It is what makes parallel efficiency *grow with sequence length*
// in the paper's measurements: at fixed k the tiles grow with n, so a
// constant per-tile cost shrinks relative to tile compute. Speedups are
// always computed against the overhead-free sequential cell count (the
// sequential algorithm pays no scheduling cost).
#pragma once

#include <cstdint>

#include "parallel/wavefront.hpp"
#include "simexec/recording.hpp"

namespace flsa {

/// Makespan of one tile grid on `processors` simulated processors; each
/// tile costs its recorded cells plus `per_tile_overhead`.
std::uint64_t grid_makespan(const TileGridRecord& grid, unsigned processors,
                            SchedulerKind policy,
                            std::uint64_t per_tile_overhead = 0);

/// Makespan of a whole run: grids execute one after another (the FastLSA
/// recursion between them is sequential).
std::uint64_t trace_makespan(const RunTrace& trace, unsigned processors,
                             SchedulerKind policy,
                             std::uint64_t per_tile_overhead = 0);

/// Derived parallel metrics of a trace.
struct SpeedupPoint {
  unsigned processors = 1;
  std::uint64_t makespan = 0;
  /// total cells (sequential-algorithm time) / makespan. With nonzero
  /// overhead this can be < P even at P = 1, as in real measurements.
  double speedup = 1.0;
  double efficiency = 1.0;  ///< speedup / P
};

SpeedupPoint speedup_at(const RunTrace& trace, unsigned processors,
                        SchedulerKind policy,
                        std::uint64_t per_tile_overhead = 0);

}  // namespace flsa
