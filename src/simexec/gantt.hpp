// ASCII Gantt rendering of a simulated tile schedule.
//
// Makes the paper's Figure 13 visible in bench output: per-processor
// lanes over virtual time show the three wavefront phases — ramp-up
// (idle tails at the top-left), the saturated middle, and ramp-down.
#pragma once

#include <cstdint>
#include <string>

#include "parallel/wavefront.hpp"
#include "simexec/recording.hpp"

namespace flsa {

/// One scheduled tile occurrence.
struct ScheduledTile {
  std::size_t ti = 0, tj = 0;
  unsigned processor = 0;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
};

/// Full schedule of one grid under the dependency-counter policy.
struct GridSchedule {
  unsigned processors = 1;
  std::uint64_t makespan = 0;
  std::vector<ScheduledTile> tiles;
};

/// Computes the event-driven (dependency-counter) schedule of a grid,
/// including per-tile placement (grid_makespan only returns the makespan).
GridSchedule schedule_grid(const TileGridRecord& grid, unsigned processors,
                           std::uint64_t per_tile_overhead = 0);

/// Renders the schedule as one text lane per processor, `width` columns
/// wide; busy spans show the tile's anti-diagonal index (mod 10), idle
/// time shows '.'. The ramp phases appear as leading/trailing dots.
std::string render_gantt(const GridSchedule& schedule,
                         std::size_t width = 72);

}  // namespace flsa
