// The paper's analytical cost model (its Section 5.1 and Appendix A).
//
// All quantities are in DPM-cell units, matching the counters and the
// virtual-time executor, so bench E9 can put measured and predicted values
// side by side.
#pragma once

#include <cstdint>

namespace flsa {
namespace model {

/// Eq. 32: alpha = (1/P) * (1 + (P^2 - P) / (R*C)) — the per-cell parallel
/// cost factor of a Fill Cache phase tiled R x C on P processors.
double alpha(unsigned processors, std::size_t tile_rows,
             std::size_t tile_cols);

/// Eq. 31: PFillCacheT(M, N, k, P) = M * N * alpha. Virtual-time units.
double parallel_fill_cache_time(std::size_t rows, std::size_t cols,
                                unsigned processors, std::size_t tile_rows,
                                std::size_t tile_cols);

/// Eq. 36: WT(m, n, k, P) <= (m*n / P) * (1 + (P^2-P)/(R*C)) * (k/(k-1))^2.
double total_time_bound(std::size_t m, std::size_t n, unsigned k,
                        unsigned processors, std::size_t tile_rows,
                        std::size_t tile_cols);

/// Sequential operation bound (Eq. 35 with P = 1, alpha = 1):
/// ops <= m*n*(k/(k-1))^2. The k -> infinity limit is the FM cost m*n; the
/// linear-space end of the spectrum costs ~1.5x at k ~ 5.45.
double sequential_ops_bound(std::size_t m, std::size_t n, unsigned k);

/// Finite-recursion estimate of sequential FastLSA operations:
/// m*n * sum_{i=0..levels} ((2k-1)/k^2)^i, the paper's Eq. 34 geometric
/// series truncated at the recursion depth actually reached.
double sequential_ops_estimate(std::size_t m, std::size_t n, unsigned k,
                               unsigned levels);

/// Parallel efficiency upper bound implied by alpha: 1 / (P * alpha).
double efficiency_bound(unsigned processors, std::size_t tile_rows,
                        std::size_t tile_cols);

/// Hirschberg's expected operations (~2 m n; Myers-Miller's analysis).
double hirschberg_ops_estimate(std::size_t m, std::size_t n);

}  // namespace model
}  // namespace flsa
