#include "simexec/gantt.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <vector>

#include "support/assert.hpp"

namespace flsa {

GridSchedule schedule_grid(const TileGridRecord& grid, unsigned processors,
                           std::uint64_t per_tile_overhead) {
  FLSA_REQUIRE(processors >= 1);
  GridSchedule schedule;
  schedule.processors = processors;
  if (grid.rows == 0 || grid.cols == 0) return schedule;

  // Same event-driven list scheduling as virtual_time.cpp's
  // dependency_makespan, but with per-tile placement recorded.
  const std::size_t slots = grid.rows * grid.cols;
  std::vector<int> deps(slots, 0);
  auto skipped = [&](std::size_t idx) {
    return grid.costs[idx] == TileGridRecord::kSkipped;
  };
  std::size_t runnable = 0;
  for (std::size_t ti = 0; ti < grid.rows; ++ti) {
    for (std::size_t tj = 0; tj < grid.cols; ++tj) {
      const std::size_t idx = ti * grid.cols + tj;
      if (skipped(idx)) continue;
      ++runnable;
      deps[idx] = (ti > 0 ? 1 : 0) + (tj > 0 ? 1 : 0);
    }
  }
  if (runnable == 0) return schedule;

  struct ReadyTile {
    std::uint64_t at;
    std::size_t diag, ti, tj;
    bool operator>(const ReadyTile& o) const {
      if (at != o.at) return at > o.at;
      if (diag != o.diag) return diag > o.diag;
      return ti > o.ti;
    }
  };
  struct Proc {
    std::uint64_t free_at;
    unsigned id;
    bool operator>(const Proc& o) const {
      if (free_at != o.free_at) return free_at > o.free_at;
      return id > o.id;
    }
  };
  std::priority_queue<ReadyTile, std::vector<ReadyTile>, std::greater<>>
      ready;
  std::priority_queue<Proc, std::vector<Proc>, std::greater<>> procs;
  for (unsigned p = 0; p < processors; ++p) procs.push({0, p});
  FLSA_ASSERT(!skipped(0));
  ready.push({0, 0, 0, 0});

  std::size_t done = 0;
  while (done < runnable) {
    FLSA_ASSERT(!ready.empty());
    const ReadyTile tile = ready.top();
    ready.pop();
    const Proc proc = procs.top();
    procs.pop();
    const std::size_t idx = tile.ti * grid.cols + tile.tj;
    const std::uint64_t start = std::max(tile.at, proc.free_at);
    const std::uint64_t end = start + grid.costs[idx] + per_tile_overhead;
    procs.push({end, proc.id});
    schedule.makespan = std::max(schedule.makespan, end);
    schedule.tiles.push_back({tile.ti, tile.tj, proc.id, start, end});
    ++done;

    auto release = [&](std::size_t ri, std::size_t rj) {
      const std::size_t ridx = ri * grid.cols + rj;
      if (skipped(ridx)) return;
      if (--deps[ridx] == 0) ready.push({end, ri + rj, ri, rj});
    };
    if (tile.ti + 1 < grid.rows) release(tile.ti + 1, tile.tj);
    if (tile.tj + 1 < grid.cols) release(tile.ti, tile.tj + 1);
  }
  return schedule;
}

std::string render_gantt(const GridSchedule& schedule, std::size_t width) {
  FLSA_REQUIRE(width >= 8);
  std::ostringstream os;
  if (schedule.makespan == 0) return "(empty schedule)\n";
  const double scale = static_cast<double>(width) /
                       static_cast<double>(schedule.makespan);
  std::vector<std::string> lanes(schedule.processors,
                                 std::string(width, '.'));
  for (const ScheduledTile& tile : schedule.tiles) {
    const auto begin = static_cast<std::size_t>(
        static_cast<double>(tile.start) * scale);
    auto end = static_cast<std::size_t>(
        static_cast<double>(tile.end) * scale);
    end = std::min(end, width);
    const char mark =
        static_cast<char>('0' + static_cast<int>((tile.ti + tile.tj) % 10));
    for (std::size_t x = begin; x < std::max(end, begin + 1) && x < width;
         ++x) {
      lanes[tile.processor][x] = mark;
    }
  }
  for (unsigned p = 0; p < schedule.processors; ++p) {
    os << "P" << p << " |" << lanes[p] << "|\n";
  }
  os << "    0" << std::string(width > 20 ? width - 14 : 1, ' ')
     << "t=" << schedule.makespan << '\n';
  return os.str();
}

}  // namespace flsa
