#include "simexec/virtual_time.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "support/assert.hpp"

namespace flsa {

namespace {

/// Greedy (list-order) makespan of independent tasks on P processors:
/// each task goes to the earliest-free processor, in the given order. This
/// models the atomic-counter work distribution inside one barrier stage.
std::uint64_t stage_makespan(const std::vector<std::uint64_t>& tasks,
                             unsigned processors) {
  // Min-heap of processor free times.
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      free_at;
  for (unsigned p = 0; p < processors; ++p) free_at.push(0);
  std::uint64_t makespan = 0;
  for (std::uint64_t cost : tasks) {
    const std::uint64_t start = free_at.top();
    free_at.pop();
    const std::uint64_t end = start + cost;
    makespan = std::max(makespan, end);
    free_at.push(end);
  }
  return makespan;
}

std::uint64_t barrier_makespan(const TileGridRecord& grid,
                               unsigned processors,
                               std::uint64_t overhead) {
  std::uint64_t total = 0;
  std::vector<std::uint64_t> line;
  for (std::size_t d = 0; d + 1 < grid.rows + grid.cols; ++d) {
    line.clear();
    const std::size_t ti_begin = d >= grid.cols ? d - grid.cols + 1 : 0;
    const std::size_t ti_end = std::min(d, grid.rows - 1);
    for (std::size_t ti = ti_begin; ti <= ti_end; ++ti) {
      const std::uint64_t cost = grid.costs[ti * grid.cols + (d - ti)];
      if (cost != TileGridRecord::kSkipped) line.push_back(cost + overhead);
    }
    total += stage_makespan(line, processors);
  }
  return total;
}

std::uint64_t dependency_makespan(const TileGridRecord& grid,
                                  unsigned processors,
                                  std::uint64_t overhead) {
  const std::size_t slots = grid.rows * grid.cols;
  std::vector<int> deps(slots, 0);
  std::vector<std::uint64_t> ready_time(slots, 0);
  auto skipped = [&](std::size_t idx) {
    return grid.costs[idx] == TileGridRecord::kSkipped;
  };
  std::size_t runnable = 0;
  for (std::size_t ti = 0; ti < grid.rows; ++ti) {
    for (std::size_t tj = 0; tj < grid.cols; ++tj) {
      const std::size_t idx = ti * grid.cols + tj;
      if (skipped(idx)) continue;
      ++runnable;
      deps[idx] = (ti > 0 ? 1 : 0) + (tj > 0 ? 1 : 0);
    }
  }
  if (runnable == 0) return 0;

  // Event-driven list scheduling. Ready tiles are ordered by
  // (ready_time, diagonal, row): earliest-available first, wavefront order
  // among simultaneously available ones.
  struct ReadyTile {
    std::uint64_t at;
    std::size_t diag;
    std::size_t ti, tj;
    bool operator>(const ReadyTile& o) const {
      if (at != o.at) return at > o.at;
      if (diag != o.diag) return diag > o.diag;
      return ti > o.ti;
    }
  };
  std::priority_queue<ReadyTile, std::vector<ReadyTile>, std::greater<>>
      ready;
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      free_at;
  for (unsigned p = 0; p < processors; ++p) free_at.push(0);
  FLSA_ASSERT(!skipped(0));
  ready.push({0, 0, 0, 0});

  std::uint64_t makespan = 0;
  std::size_t done = 0;
  while (done < runnable) {
    FLSA_ASSERT(!ready.empty());
    const ReadyTile tile = ready.top();
    ready.pop();
    const std::uint64_t proc_free = free_at.top();
    free_at.pop();
    const std::size_t idx = tile.ti * grid.cols + tile.tj;
    const std::uint64_t start = std::max(tile.at, proc_free);
    const std::uint64_t end = start + grid.costs[idx] + overhead;
    free_at.push(end);
    makespan = std::max(makespan, end);
    ++done;

    auto release = [&](std::size_t ri, std::size_t rj) {
      const std::size_t ridx = ri * grid.cols + rj;
      if (skipped(ridx)) return;
      if (--deps[ridx] == 0) {
        ready.push({end, ri + rj, ri, rj});
      }
    };
    if (tile.ti + 1 < grid.rows) release(tile.ti + 1, tile.tj);
    if (tile.tj + 1 < grid.cols) release(tile.ti, tile.tj + 1);
  }
  return makespan;
}

}  // namespace

std::uint64_t grid_makespan(const TileGridRecord& grid, unsigned processors,
                            SchedulerKind policy,
                            std::uint64_t per_tile_overhead) {
  FLSA_REQUIRE(processors >= 1);
  if (grid.rows == 0 || grid.cols == 0) return 0;
  return policy == SchedulerKind::kBarrierStaged
             ? barrier_makespan(grid, processors, per_tile_overhead)
             : dependency_makespan(grid, processors, per_tile_overhead);
}

std::uint64_t trace_makespan(const RunTrace& trace, unsigned processors,
                             SchedulerKind policy,
                             std::uint64_t per_tile_overhead) {
  std::uint64_t total = 0;
  for (const TileGridRecord& grid : trace.grids) {
    total += grid_makespan(grid, processors, policy, per_tile_overhead);
  }
  return total;
}

SpeedupPoint speedup_at(const RunTrace& trace, unsigned processors,
                        SchedulerKind policy,
                        std::uint64_t per_tile_overhead) {
  SpeedupPoint point;
  point.processors = processors;
  point.makespan =
      trace_makespan(trace, processors, policy, per_tile_overhead);
  const std::uint64_t serial = trace.total_cells();
  point.speedup = point.makespan == 0
                      ? 1.0
                      : static_cast<double>(serial) /
                            static_cast<double>(point.makespan);
  point.efficiency = point.speedup / processors;
  return point;
}

}  // namespace flsa
