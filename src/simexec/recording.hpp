// Tile-DAG recording: the bridge between the real algorithm and the
// virtual-time processor model.
//
// This host has few cores, so the paper's speedup experiments cannot be
// re-run on real silicon; instead, the RecordingExecutor executes a run
// sequentially (bit-identical results) while capturing every tile grid the
// engine submits — dimensions, skipped region, and per-tile cost in DPM
// cells. virtual_time.hpp then replays those DAGs on P simulated
// processors. The speedup/efficiency shapes the paper reports are
// properties of exactly this DAG structure (wavefront ramp-up, saturated
// middle, ramp-down), so the replay preserves them; see DESIGN.md's
// substitution table.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tile_executor.hpp"

namespace flsa {

/// One recorded tile grid (a Fill Grid Cache or Base Case phase instance).
struct TileGridRecord {
  TilePhase phase = TilePhase::kFillCache;
  std::size_t rows = 0;
  std::size_t cols = 0;
  /// Row-major per-tile cost in DPM cells; kSkipped marks skipped tiles.
  std::vector<std::uint64_t> costs;

  static constexpr std::uint64_t kSkipped = ~std::uint64_t{0};

  std::uint64_t total_cost() const;
  std::size_t tile_count() const;  ///< non-skipped tiles
};

/// A full run's trace: the ordered tile grids plus the sequential work
/// (traceback and other non-tiled cells) between them.
struct RunTrace {
  std::vector<TileGridRecord> grids;
  std::uint64_t total_cells() const;
};

/// Sequential TileExecutor that records every grid it runs.
class RecordingExecutor final : public TileExecutor {
 public:
  unsigned worker_count() const override { return 1; }

  void run(std::size_t tile_rows, std::size_t tile_cols, TileSkipFn skip,
           TileWorkFn work, TilePhase phase) override;

  const RunTrace& trace() const { return trace_; }
  RunTrace take_trace() { return std::move(trace_); }

 private:
  RunTrace trace_;
};

}  // namespace flsa
