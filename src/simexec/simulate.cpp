#include "simexec/simulate.hpp"

#include "core/engine.hpp"
#include "parallel/parallel_fastlsa.hpp"

namespace flsa {

SimulatedRun record_fastlsa(const Sequence& a, const Sequence& b,
                            const ScoringScheme& scheme,
                            const FastLsaOptions& options,
                            unsigned simulated_threads,
                            std::size_t tiles_per_block,
                            std::size_t base_case_tiles,
                            std::size_t min_tile_extent) {
  ParallelOptions tiling;
  tiling.threads = simulated_threads;
  tiling.tiles_per_block = tiles_per_block;
  tiling.base_case_tiles = base_case_tiles;
  tiling.min_tile_extent = min_tile_extent;
  const ParallelOptions resolved = tiling.resolved(options.k);

  SimulatedRun run;
  RecordingExecutor recorder;
  detail::EnginePlan plan;
  plan.executor = &recorder;
  plan.tiles_per_block = resolved.tiles_per_block;
  plan.base_case_tiles = resolved.base_case_tiles;
  plan.min_tile_extent = resolved.min_tile_extent;
  detail::FastLsaEngine<false> engine(a, b, scheme, options, plan,
                                      &run.stats);
  run.alignment = engine.run();
  run.trace = recorder.take_trace();
  return run;
}

std::vector<SpeedupPoint> speedup_curve(const RunTrace& trace,
                                        const std::vector<unsigned>& procs,
                                        SchedulerKind policy,
                                        std::uint64_t per_tile_overhead) {
  std::vector<SpeedupPoint> curve;
  curve.reserve(procs.size());
  for (unsigned p : procs) {
    curve.push_back(speedup_at(trace, p, policy, per_tile_overhead));
  }
  return curve;
}

}  // namespace flsa
