#include "simexec/recording.hpp"

namespace flsa {

std::uint64_t TileGridRecord::total_cost() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : costs) {
    if (c != kSkipped) total += c;
  }
  return total;
}

std::size_t TileGridRecord::tile_count() const {
  std::size_t count = 0;
  for (std::uint64_t c : costs) count += (c != kSkipped);
  return count;
}

std::uint64_t RunTrace::total_cells() const {
  std::uint64_t total = 0;
  for (const TileGridRecord& grid : grids) total += grid.total_cost();
  return total;
}

void RecordingExecutor::run(std::size_t tile_rows, std::size_t tile_cols,
                            TileSkipFn skip, TileWorkFn work,
                            TilePhase phase) {
  TileGridRecord record;
  record.phase = phase;
  record.rows = tile_rows;
  record.cols = tile_cols;
  record.costs.assign(tile_rows * tile_cols, TileGridRecord::kSkipped);
  for (std::size_t ti = 0; ti < tile_rows; ++ti) {
    for (std::size_t tj = 0; tj < tile_cols; ++tj) {
      if (skip && skip(ti, tj)) continue;
      record.costs[ti * tile_cols + tj] = work(ti, tj, 0);
    }
  }
  trace_.grids.push_back(std::move(record));
}

}  // namespace flsa
