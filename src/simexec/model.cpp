#include "simexec/model.hpp"

#include "support/assert.hpp"

namespace flsa {
namespace model {

double alpha(unsigned processors, std::size_t tile_rows,
             std::size_t tile_cols) {
  FLSA_REQUIRE(processors >= 1);
  FLSA_REQUIRE(tile_rows >= 1 && tile_cols >= 1);
  const double p = processors;
  const double rc =
      static_cast<double>(tile_rows) * static_cast<double>(tile_cols);
  return (1.0 / p) * (1.0 + (p * p - p) / rc);
}

double parallel_fill_cache_time(std::size_t rows, std::size_t cols,
                                unsigned processors, std::size_t tile_rows,
                                std::size_t tile_cols) {
  return static_cast<double>(rows) * static_cast<double>(cols) *
         alpha(processors, tile_rows, tile_cols);
}

double sequential_ops_bound(std::size_t m, std::size_t n, unsigned k) {
  FLSA_REQUIRE(k >= 2);
  const double ratio = static_cast<double>(k) / (k - 1.0);
  return static_cast<double>(m) * static_cast<double>(n) * ratio * ratio;
}

double total_time_bound(std::size_t m, std::size_t n, unsigned k,
                        unsigned processors, std::size_t tile_rows,
                        std::size_t tile_cols) {
  return sequential_ops_bound(m, n, k) *
         alpha(processors, tile_rows, tile_cols);
}

double sequential_ops_estimate(std::size_t m, std::size_t n, unsigned k,
                               unsigned levels) {
  FLSA_REQUIRE(k >= 2);
  const double q = (2.0 * k - 1.0) / (static_cast<double>(k) * k);
  double sum = 0.0;
  double term = 1.0;
  for (unsigned i = 0; i <= levels; ++i) {
    sum += term;
    term *= q;
  }
  return static_cast<double>(m) * static_cast<double>(n) * sum;
}

double efficiency_bound(unsigned processors, std::size_t tile_rows,
                        std::size_t tile_cols) {
  return 1.0 / (processors * alpha(processors, tile_rows, tile_cols));
}

double hirschberg_ops_estimate(std::size_t m, std::size_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n);
}

}  // namespace model
}  // namespace flsa
