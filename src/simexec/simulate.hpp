// High-level driver: run FastLSA once under the recording executor, then
// evaluate the captured tile DAG at any processor count / policy.
#pragma once

#include <vector>

#include "core/fastlsa.hpp"
#include "dp/alignment.hpp"
#include "simexec/recording.hpp"
#include "simexec/virtual_time.hpp"

namespace flsa {

/// A recorded FastLSA run: the (correct, sequentially computed) alignment
/// plus the tile trace used for virtual-time evaluation.
struct SimulatedRun {
  Alignment alignment;
  FastLsaStats stats;
  RunTrace trace;
};

/// Runs (linear-gap) FastLSA with the parallel tiling parameters but on one
/// real thread, recording the tile DAG. tiles_per_block/base_case_tiles use
/// the same auto rules as ParallelOptions when zero, resolved against
/// `simulated_threads` (the P the tiling is planned for).
SimulatedRun record_fastlsa(const Sequence& a, const Sequence& b,
                            const ScoringScheme& scheme,
                            const FastLsaOptions& options,
                            unsigned simulated_threads,
                            std::size_t tiles_per_block = 0,
                            std::size_t base_case_tiles = 0,
                            std::size_t min_tile_extent = 0);

/// Evaluates a trace at each processor count.
std::vector<SpeedupPoint> speedup_curve(const RunTrace& trace,
                                        const std::vector<unsigned>& procs,
                                        SchedulerKind policy,
                                        std::uint64_t per_tile_overhead = 0);

}  // namespace flsa
