// The packed sequence store: an on-disk, page-aligned, bit-packed
// container of encoded sequences, opened read-only via mmap and shared
// (zero-copy) across worker threads and processes.
//
// File layout ("FLSASTO1", little-endian, version 1):
//
//   [0, 64)                      header (checksummed)
//   [4096, 4096 + payload_bytes) packed residues, records byte-aligned
//   [table_offset, +table_bytes) record table + name heap
//
// Header fields:
//
//   off  size  field
//   0    8     magic "FLSASTO1"
//   8    4     u32 version (= 1)
//   12   1     u8  bits per residue (2, 4, or 8)
//   13   1     u8  alphabet id (0 = dna, 1 = dna_n, 2 = protein)
//   14   2     u16 record count
//   16   8     u64 total residues (sum of record counts)
//   24   8     u64 payload offset (= 4096, one page: the payload can be
//              mapped page-aligned and the header page dropped)
//   32   8     u64 payload bytes
//   40   8     u64 table offset (= payload offset + payload bytes)
//   48   8     u64 FNV-1a hash of the payload bytes
//   56   4     u32 table bytes (records + name heap)
//   60   4     u32 FNV-1a of header bytes [0, 60), truncated
//
// Record table: record_count entries of 24 bytes each
//   { u64 payload byte offset, u64 residue count,
//     u32 name offset (into the heap), u32 name length },
// followed by the name heap. Every record starts on a payload byte
// boundary (the writer pads the last partial byte of each record), so a
// record is always addressable as (pointer, count, packing) — exactly a
// SequenceView.
//
// Opening validates everything before anything is dereferenced: magic,
// version, checksums, and every offset/length (with saturating
// arithmetic) against the actual file size. Corrupt or truncated files
// fail with a typed StoreError, never UB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sequence/sequence_view.hpp"

namespace flsa {
namespace store {

/// Typed failure from store open/validation or writer I/O.
class StoreError : public std::runtime_error {
 public:
  enum class Kind {
    kIo,           ///< open/read/write/mmap syscall failure
    kBadMagic,     ///< not a store file
    kBadVersion,   ///< format version not understood
    kBadHeader,    ///< header field out of range or checksum mismatch
    kTruncated,    ///< file shorter than the header claims
    kBadChecksum,  ///< payload hash mismatch
    kBadRecord,    ///< record table entry out of bounds
  };

  StoreError(Kind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Bits per residue used for `alphabet` (2 for |A| <= 4, 4 for <= 16,
/// else 8).
std::uint8_t packing_bits(const Alphabet& alphabet);

/// Payload bytes needed for `residues` residues at `bits` per residue
/// (saturating; never wraps).
std::uint64_t packed_bytes(std::uint64_t residues, std::uint8_t bits);

/// Streaming store builder. Residues are appended (in arbitrary chunk
/// sizes), grouped into named records, and flushed bit-packed straight
/// to disk — peak memory is one small I/O buffer regardless of sequence
/// length. The file is unusable until finalize() writes the table and
/// header; a writer destroyed without finalize() removes its file.
class StoreWriter {
 public:
  /// Creates (truncates) `path`. Throws StoreError(kIo) on failure.
  StoreWriter(std::string path, const Alphabet& alphabet);
  ~StoreWriter();

  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  /// Appends encoded residues (each must be < alphabet.size()) to the
  /// current record.
  void append(const Residue* data, std::size_t count);

  /// Encodes `letters` over the alphabet and appends them. Throws
  /// std::invalid_argument on foreign characters (file is unaffected:
  /// the letters are validated before any byte is buffered).
  void append_letters(std::string_view letters);

  /// Ends the current record, naming it. Pads the payload to the next
  /// byte boundary so the following record is byte-aligned.
  void finish_record(std::string name);

  /// Residues appended to the current (unfinished) record.
  std::uint64_t current_record_residues() const { return record_residues_; }
  /// Residues across all records, finished and current.
  std::uint64_t total_residues() const;

  /// Finishes an in-progress record (unnamed) if any, writes the record
  /// table and header, fsyncs and closes. No appends may follow.
  void finalize();

  const std::string& path() const { return path_; }

 private:
  void put_residue(Residue code);
  void flush_buffer();
  void pad_record_boundary();

  struct PendingRecord {
    std::uint64_t byte_begin = 0;
    std::uint64_t count = 0;
    std::string name;
  };

  std::string path_;
  const Alphabet* alphabet_;
  std::uint8_t bits_;
  int fd_ = -1;
  bool finalized_ = false;

  std::vector<std::uint8_t> buffer_;  ///< packed bytes not yet written
  std::uint8_t pending_byte_ = 0;     ///< partial byte being filled
  unsigned pending_bits_ = 0;
  std::uint64_t payload_bytes_ = 0;  ///< full bytes committed so far
  std::uint64_t payload_hash_;
  std::uint64_t record_residues_ = 0;  ///< residues in the open record
  std::uint64_t record_begin_ = 0;     ///< byte offset of the open record
  std::uint64_t finished_residues_ = 0;
  std::vector<PendingRecord> records_;
};

/// A finished store file, memory-mapped read-only. Records are exposed
/// as SequenceViews whose lifetime is tied to the mapping via shared
/// ownership — a view keeps the mmap alive.
class PackedStore : public std::enable_shared_from_this<PackedStore> {
 public:
  struct Record {
    std::uint64_t byte_begin = 0;  ///< offset into the payload
    std::uint64_t count = 0;       ///< residues
    std::string name;
  };

  /// Maps and validates `path`. Throws StoreError on any defect.
  static std::shared_ptr<const PackedStore> open(const std::string& path);

  ~PackedStore();

  PackedStore(const PackedStore&) = delete;
  PackedStore& operator=(const PackedStore&) = delete;

  const Alphabet& alphabet() const { return *alphabet_; }
  std::uint8_t bits() const { return bits_; }
  std::uint64_t total_residues() const { return total_residues_; }
  std::size_t record_count() const { return records_.size(); }
  const Record& record(std::size_t i) const { return records_[i]; }

  /// Zero-copy view of record `i`. The view shares ownership of the
  /// mapping (the file stays mapped while any view lives).
  SequenceView view(std::size_t i) const;

  const std::string& path() const { return path_; }

 private:
  PackedStore() = default;

  std::string path_;
  const Alphabet* alphabet_ = nullptr;
  std::uint8_t bits_ = 8;
  std::uint64_t total_residues_ = 0;
  std::vector<Record> records_;

  const std::uint8_t* map_ = nullptr;  ///< whole-file mapping
  std::size_t map_bytes_ = 0;
  const std::uint8_t* payload_ = nullptr;
};

}  // namespace store
}  // namespace flsa
