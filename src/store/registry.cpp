#include "store/registry.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/fnv.hpp"

namespace flsa {
namespace store {

namespace {

constexpr char kMagic[8] = {'F', 'L', 'S', 'A', 'R', 'E', 'G', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 16;
constexpr std::uint32_t kSyncMarker = 0x47455231u;  // "1REG" little-endian
/// A record body is two u64 ids, a matrix byte, a k, a residue count and
/// two strings; anything past this bound is a corrupt length field.
constexpr std::uint32_t kMaxBodyBytes = 1u << 20;

void put_u32(std::string* out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string* out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void put_str(std::string* out, const std::string& value) {
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  out->append(value);
}

/// Strict bounds-checked reader over one record body.
class BodyReader {
 public:
  BodyReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool u8(std::uint8_t* out) {
    if (pos_ + 1 > size_) return false;
    *out = data_[pos_++];
    return true;
  }

  bool u32(std::uint32_t* out) {
    if (pos_ + 4 > size_) return false;
    std::uint32_t value = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  bool u64(std::uint64_t* out) {
    if (pos_ + 8 > size_) return false;
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    *out = value;
    return true;
  }

  bool str(std::string* out) {
    std::uint32_t length = 0;
    if (!u32(&length)) return false;
    if (pos_ + length > size_) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), length);
    pos_ += length;
    return true;
  }

  bool done() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::string encode_body(const RegistryEntry& entry) {
  std::string body;
  put_u64(&body, entry.ref_id);
  put_u64(&body, entry.content_token);
  body.push_back(static_cast<char>(entry.matrix));
  put_u32(&body, entry.build_k);
  put_u64(&body, entry.residues);
  put_str(&body, entry.file);
  put_str(&body, entry.name);
  return body;
}

bool decode_body(const std::uint8_t* data, std::size_t size,
                 RegistryEntry* entry) {
  BodyReader reader(data, size);
  return reader.u64(&entry->ref_id) && reader.u64(&entry->content_token) &&
         reader.u8(&entry->matrix) && reader.u32(&entry->build_k) &&
         reader.u64(&entry->residues) && reader.str(&entry->file) &&
         reader.str(&entry->name) && reader.done();
}

std::uint32_t read_u32(const std::uint8_t* data) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(data[i]) << (8 * i);
  }
  return value;
}

std::uint64_t read_u64(const std::uint8_t* data) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(data[i]) << (8 * i);
  }
  return value;
}

[[noreturn]] void throw_io(const std::string& what, const std::string& path) {
  throw StoreError(StoreError::Kind::kIo,
                   what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

RegistryWriter::RegistryWriter(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) throw_io("cannot open registry", path_);
  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw_io("cannot stat registry", path_);
  }
  if (st.st_size == 0) {
    std::string header(kMagic, sizeof(kMagic));
    put_u32(&header, kVersion);
    put_u32(&header, 0);  // reserved
    if (::write(fd_, header.data(), header.size()) !=
        static_cast<ssize_t>(header.size())) {
      ::close(fd_);
      fd_ = -1;
      throw_io("cannot write registry header", path_);
    }
    if (::fsync(fd_) != 0) {
      ::close(fd_);
      fd_ = -1;
      throw_io("cannot fsync registry", path_);
    }
  }
}

RegistryWriter::~RegistryWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void RegistryWriter::append(const RegistryEntry& entry) {
  const std::string body = encode_body(entry);
  std::string record;
  put_u32(&record, kSyncMarker);
  put_u32(&record, static_cast<std::uint32_t>(body.size()));
  record.append(body);
  put_u64(&record, fnv1a64(body.data(), body.size()));
  // One write(2): O_APPEND makes the offset atomic, and a crash mid-write
  // leaves a truncated tail that replay stops at cleanly.
  if (::write(fd_, record.data(), record.size()) !=
      static_cast<ssize_t>(record.size())) {
    throw_io("cannot append to registry", path_);
  }
  if (::fsync(fd_) != 0) throw_io("cannot fsync registry", path_);
}

std::vector<RegistryEntry> replay_registry(const std::string& path,
                                           RegistryReplayReport* report) {
  std::vector<RegistryEntry> entries;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return entries;  // first boot: empty registry
    throw_io("cannot open registry", path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_io("cannot stat registry", path);
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < bytes.size()) {
    const ssize_t n = ::read(fd, bytes.data() + got, bytes.size() - got);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      throw_io("cannot read registry", path);
    }
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);

  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    if (report != nullptr) {
      report->warnings.push_back("registry " + path +
                                 ": bad magic/short header; ignoring file");
    }
    return entries;
  }
  if (read_u32(bytes.data() + 8) != kVersion) {
    if (report != nullptr) {
      report->warnings.push_back("registry " + path +
                                 ": unknown version; ignoring file");
    }
    return entries;
  }

  std::size_t pos = kHeaderBytes;
  bool resyncing = false;
  while (pos < bytes.size()) {
    if (pos + 4 > bytes.size()) {
      if (report != nullptr) report->truncated_tail = true;
      break;
    }
    if (read_u32(bytes.data() + pos) != kSyncMarker) {
      // Damage before this point: scan byte-by-byte for the next record.
      if (!resyncing) {
        resyncing = true;
        if (report != nullptr) {
          ++report->skipped;
          report->warnings.push_back(
              "registry " + path + ": garbage at byte " +
              std::to_string(pos) + "; scanning for next record");
        }
      }
      ++pos;
      continue;
    }
    resyncing = false;
    if (pos + 8 > bytes.size()) {
      if (report != nullptr) report->truncated_tail = true;
      break;
    }
    const std::uint32_t body_bytes = read_u32(bytes.data() + pos + 4);
    if (body_bytes > kMaxBodyBytes) {
      if (report != nullptr) {
        ++report->skipped;
        report->warnings.push_back("registry " + path +
                                   ": record at byte " + std::to_string(pos) +
                                   " claims an implausible length; skipping");
      }
      ++pos;  // rescan: the length field itself is untrustworthy
      continue;
    }
    const std::size_t record_end = pos + 8 + body_bytes + 8;
    if (record_end > bytes.size()) {
      if (report != nullptr) report->truncated_tail = true;
      break;
    }
    const std::uint8_t* body = bytes.data() + pos + 8;
    const std::uint64_t want = read_u64(body + body_bytes);
    if (fnv1a64(body, body_bytes) != want) {
      if (report != nullptr) {
        ++report->skipped;
        report->warnings.push_back("registry " + path + ": record at byte " +
                                   std::to_string(pos) +
                                   " fails its checksum; skipping");
      }
      ++pos;  // corrupt body: the framing may be a lie too, rescan
      continue;
    }
    RegistryEntry entry;
    if (!decode_body(body, body_bytes, &entry)) {
      if (report != nullptr) {
        ++report->skipped;
        report->warnings.push_back("registry " + path + ": record at byte " +
                                   std::to_string(pos) +
                                   " is malformed; skipping");
      }
      pos = record_end;
      continue;
    }
    bool duplicate = false;
    for (const RegistryEntry& seen : entries) {
      if (seen.ref_id == entry.ref_id) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      if (report != nullptr) {
        ++report->skipped;
        report->warnings.push_back("registry " + path + ": duplicate ref_id " +
                                   std::to_string(entry.ref_id) +
                                   "; keeping the first");
      }
    } else {
      entries.push_back(std::move(entry));
      if (report != nullptr) ++report->records;
    }
    pos = record_end;
  }
  return entries;
}

}  // namespace store
}  // namespace flsa
