// The durable handle registry: an append-only manifest ("FLSAREG1")
// living next to the packed store files it describes, mapping every
// sealed handle (ref_id, content token) to its payload file, alphabet
// family, length, and index parameters.
//
// File layout (little-endian, version 1):
//
//   [0, 16)   header: magic "FLSAREG1", u32 version (= 1), u32 reserved
//   then records, each:
//
//     u32 sync marker 0x47455231 ("1REG")
//     u32 body length (bounded; a corrupt length cannot force a huge read)
//     body:
//       u64 ref_id
//       u64 content_token
//       u8  matrix (wire matrix byte; fixes the alphabet family)
//       u32 build_k (0 = no k-mer index was requested)
//       u64 residues
//       str file  (u32 length + bytes; payload basename inside the dir)
//       str name  (display name, may be empty)
//     u64 FNV-1a of the body bytes
//
// The write contract is crash-safe by ordering, not by atomicity: a
// record is appended and fsync'd *after* its payload file is finalized
// and renamed into place and *before* the handle is registered in
// memory or acknowledged on the wire. A crash therefore leaves either
// (a) a payload file with no record — an orphan, invisible forever — or
// (b) a record whose payload is intact — replayable. Never a served
// handle whose bytes are not durable.
//
// Replay is total-validation, per-record: a bad checksum, bad length,
// or malformed body skips that record with a typed warning and rescans
// for the next sync marker; a truncated tail (the crash case: the
// process died mid-append before fsync completed) stops replay cleanly.
// Replay never throws on corrupt *content* — a damaged manifest must
// degrade to fewer handles, not a failed boot. Only I/O failures
// (permissions, unreadable device) raise StoreError(kIo).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "store/packed_store.hpp"

namespace flsa {
namespace store {

/// One sealed handle as recorded in the manifest.
struct RegistryEntry {
  std::uint64_t ref_id = 0;
  std::uint64_t content_token = 0;
  std::uint8_t matrix = 0;      ///< wire matrix byte at seal time
  std::uint32_t build_k = 0;    ///< seed length of the index (0 = none)
  std::uint64_t residues = 0;
  std::string file;  ///< payload basename inside the store directory
  std::string name;  ///< display name (may be empty)
};

/// What replay found: good records, skipped corruption, and whether the
/// file ended mid-record (a crash tail — expected, not an error).
struct RegistryReplayReport {
  std::size_t records = 0;   ///< entries returned
  std::size_t skipped = 0;   ///< corrupt records skipped
  bool truncated_tail = false;
  std::vector<std::string> warnings;  ///< one typed line per defect
};

/// Appends records to a manifest, fsync'ing each one before returning —
/// the durability point of the seal path. Opens (or creates) `path` in
/// append mode; a fresh/empty file gets the header first.
class RegistryWriter {
 public:
  /// Throws StoreError(kIo) when the file cannot be opened or the
  /// header cannot be written.
  explicit RegistryWriter(std::string path);
  ~RegistryWriter();

  RegistryWriter(const RegistryWriter&) = delete;
  RegistryWriter& operator=(const RegistryWriter&) = delete;

  /// Encodes, appends, and fsyncs one record. Throws StoreError(kIo)
  /// on write failure — the caller must not acknowledge the seal.
  void append(const RegistryEntry& entry);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Replays a manifest. A missing file is an empty registry (first boot);
/// corrupt records are skipped into `report`; duplicate ref_ids keep the
/// first occurrence. Throws StoreError(kIo) only on I/O failure.
std::vector<RegistryEntry> replay_registry(const std::string& path,
                                           RegistryReplayReport* report);

/// The manifest's basename inside a store directory.
inline const char* kRegistryFileName = "registry.flsareg";

}  // namespace store
}  // namespace flsa
