#include "store/packed_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>
#include <utility>

#include "support/checked.hpp"
#include "support/fnv.hpp"

namespace flsa {
namespace store {
namespace {

constexpr char kMagic[8] = {'F', 'L', 'S', 'A', 'S', 'T', 'O', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kHeaderBytes = 64;
constexpr std::uint64_t kPayloadOffset = 4096;
constexpr std::size_t kRecordEntryBytes = 24;
constexpr std::size_t kWriterBufferBytes = std::size_t{1} << 16;

void put_u16(std::uint8_t* p, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint16_t get_u16(const std::uint8_t* p) {
  std::uint16_t v = 0;
  for (int i = 1; i >= 0; --i) v = static_cast<std::uint16_t>((v << 8) | p[i]);
  return v;
}
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// The store encodes which alphabet a file uses as a small id; only the
/// three canonical singletons exist on the wire, so only they can be
/// stored.
std::uint8_t alphabet_id(const Alphabet& alphabet) {
  if (&alphabet == &Alphabet::dna()) return 0;
  if (&alphabet == &Alphabet::dna_n()) return 1;
  if (&alphabet == &Alphabet::protein()) return 2;
  throw std::invalid_argument("packed store: unsupported alphabet " +
                              alphabet.name());
}

const Alphabet& alphabet_for_id(std::uint8_t id) {
  switch (id) {
    case 0:
      return Alphabet::dna();
    case 1:
      return Alphabet::dna_n();
    default:
      return Alphabet::protein();
  }
}

[[noreturn]] void throw_errno(StoreError::Kind kind, const std::string& what,
                              const std::string& path) {
  throw StoreError(kind, "packed store: " + what + " '" + path +
                             "': " + std::strerror(errno));
}

void write_fd(int fd, const std::uint8_t* data, std::size_t len,
              const std::string& path) {
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno(StoreError::Kind::kIo, "write", path);
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

}  // namespace

std::uint8_t packing_bits(const Alphabet& alphabet) {
  if (alphabet.size() <= 4) return 2;
  if (alphabet.size() <= 16) return 4;
  return 8;
}

std::uint64_t packed_bytes(std::uint64_t residues, std::uint8_t bits) {
  const std::uint64_t per_byte = std::uint64_t{8} / bits;
  return residues / per_byte + (residues % per_byte != 0 ? 1 : 0);
}

// ---------------------------------------------------------------------------
// StoreWriter

StoreWriter::StoreWriter(std::string path, const Alphabet& alphabet)
    : path_(std::move(path)),
      alphabet_(&alphabet),
      bits_(packing_bits(alphabet)),
      payload_hash_(kFnvOffsetBasis) {
  fd_ = ::open(path_.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0) throw_errno(StoreError::Kind::kIo, "create", path_);
  if (::lseek(fd_, static_cast<off_t>(kPayloadOffset), SEEK_SET) < 0) {
    throw_errno(StoreError::Kind::kIo, "seek", path_);
  }
  buffer_.reserve(kWriterBufferBytes);
}

StoreWriter::~StoreWriter() {
  if (fd_ >= 0) ::close(fd_);
  // A writer that never reached finalize() leaves no half-written file
  // behind for a later open() to trip on.
  if (!finalized_) ::unlink(path_.c_str());
}

void StoreWriter::put_residue(Residue code) {
  if (bits_ == 8) {
    buffer_.push_back(code);
  } else {
    pending_byte_ |= static_cast<std::uint8_t>(code << pending_bits_);
    pending_bits_ += bits_;
    if (pending_bits_ == 8) {
      buffer_.push_back(pending_byte_);
      pending_byte_ = 0;
      pending_bits_ = 0;
    }
  }
  if (buffer_.size() >= kWriterBufferBytes) flush_buffer();
}

void StoreWriter::flush_buffer() {
  if (buffer_.empty()) return;
  payload_hash_ = fnv1a64(buffer_.data(), buffer_.size(), payload_hash_);
  payload_bytes_ += buffer_.size();
  write_fd(fd_, buffer_.data(), buffer_.size(), path_);
  buffer_.clear();
}

void StoreWriter::append(const Residue* data, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (data[i] >= alphabet_->size()) {
      throw std::invalid_argument("packed store: residue code out of range");
    }
    put_residue(data[i]);
  }
  record_residues_ += count;
}

void StoreWriter::append_letters(std::string_view letters) {
  // Validate first: a foreign character must not leave a half-appended
  // chunk behind (the upload path relies on append being all-or-nothing
  // per chunk).
  for (char c : letters) {
    if (!alphabet_->contains(c)) {
      throw std::invalid_argument(
          std::string("packed store: character '") + c +
          "' not in alphabet " + alphabet_->name());
    }
  }
  for (char c : letters) put_residue(alphabet_->code(c));
  record_residues_ += letters.size();
}

void StoreWriter::pad_record_boundary() {
  if (pending_bits_ != 0) {
    buffer_.push_back(pending_byte_);
    pending_byte_ = 0;
    pending_bits_ = 0;
  }
}

void StoreWriter::finish_record(std::string name) {
  pad_record_boundary();
  PendingRecord record;
  record.byte_begin = record_begin_;
  record.count = record_residues_;
  record.name = std::move(name);
  records_.push_back(std::move(record));
  finished_residues_ += record_residues_;
  record_residues_ = 0;
  record_begin_ = payload_bytes_ + buffer_.size();
}

std::uint64_t StoreWriter::total_residues() const {
  return finished_residues_ + record_residues_;
}

void StoreWriter::finalize() {
  if (finalized_) return;
  if (record_residues_ > 0) finish_record("");
  flush_buffer();

  if (records_.size() > std::numeric_limits<std::uint16_t>::max()) {
    throw StoreError(StoreError::Kind::kBadRecord,
                     "packed store: too many records");
  }
  std::vector<std::uint8_t> table(records_.size() * kRecordEntryBytes);
  std::string heap;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const PendingRecord& r = records_[i];
    std::uint8_t* e = table.data() + i * kRecordEntryBytes;
    put_u64(e, r.byte_begin);
    put_u64(e + 8, r.count);
    put_u32(e + 16, static_cast<std::uint32_t>(heap.size()));
    put_u32(e + 20, static_cast<std::uint32_t>(r.name.size()));
    heap += r.name;
  }
  table.insert(table.end(), heap.begin(), heap.end());
  if (table.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw StoreError(StoreError::Kind::kBadRecord,
                     "packed store: record table too large");
  }

  const std::uint64_t table_offset = kPayloadOffset + payload_bytes_;
  // Guarantee the file extends to the table even when it is empty, so
  // open() can bounds-check against the real size.
  if (::ftruncate(fd_, static_cast<off_t>(table_offset + table.size())) < 0) {
    throw_errno(StoreError::Kind::kIo, "truncate", path_);
  }
  if (::lseek(fd_, static_cast<off_t>(table_offset), SEEK_SET) < 0) {
    throw_errno(StoreError::Kind::kIo, "seek", path_);
  }
  write_fd(fd_, table.data(), table.size(), path_);

  std::uint8_t header[kHeaderBytes] = {};
  std::memcpy(header, kMagic, sizeof kMagic);
  put_u32(header + 8, kVersion);
  header[12] = bits_;
  header[13] = alphabet_id(*alphabet_);
  put_u16(header + 14, static_cast<std::uint16_t>(records_.size()));
  put_u64(header + 16, finished_residues_);
  put_u64(header + 24, kPayloadOffset);
  put_u64(header + 32, payload_bytes_);
  put_u64(header + 40, table_offset);
  put_u64(header + 48, payload_hash_);
  put_u32(header + 56, static_cast<std::uint32_t>(table.size()));
  put_u32(header + 60, static_cast<std::uint32_t>(fnv1a64(header, 60)));
  if (::pwrite(fd_, header, sizeof header, 0) !=
      static_cast<ssize_t>(sizeof header)) {
    throw_errno(StoreError::Kind::kIo, "write header", path_);
  }
  if (::fsync(fd_) < 0) throw_errno(StoreError::Kind::kIo, "fsync", path_);
  ::close(fd_);
  fd_ = -1;
  finalized_ = true;
}

// ---------------------------------------------------------------------------
// PackedStore

std::shared_ptr<const PackedStore> PackedStore::open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_errno(StoreError::Kind::kIo, "open", path);
  struct stat st = {};
  if (::fstat(fd, &st) < 0) {
    ::close(fd);
    throw_errno(StoreError::Kind::kIo, "stat", path);
  }
  const std::uint64_t file_bytes = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes < kHeaderBytes) {
    ::close(fd);
    throw StoreError(StoreError::Kind::kTruncated,
                     "packed store: file shorter than header: " + path);
  }
  void* map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (map == MAP_FAILED) {
    throw_errno(StoreError::Kind::kIo, "mmap", path);
  }

  // From here every exit must unmap; hand the mapping to the object
  // first and validate through it.
  std::shared_ptr<PackedStore> self(new PackedStore());
  self->path_ = path;
  self->map_ = static_cast<const std::uint8_t*>(map);
  self->map_bytes_ = file_bytes;

  const std::uint8_t* h = self->map_;
  if (std::memcmp(h, kMagic, sizeof kMagic) != 0) {
    throw StoreError(StoreError::Kind::kBadMagic,
                     "packed store: bad magic: " + path);
  }
  if (get_u32(h + 8) != kVersion) {
    throw StoreError(StoreError::Kind::kBadVersion,
                     "packed store: unsupported version " +
                         std::to_string(get_u32(h + 8)) + ": " + path);
  }
  if (get_u32(h + 60) != static_cast<std::uint32_t>(fnv1a64(h, 60))) {
    throw StoreError(StoreError::Kind::kBadHeader,
                     "packed store: header checksum mismatch: " + path);
  }
  const std::uint8_t bits = h[12];
  if (bits != 2 && bits != 4 && bits != 8) {
    throw StoreError(StoreError::Kind::kBadHeader,
                     "packed store: bad packing bits: " + path);
  }
  if (h[13] > 2) {
    throw StoreError(StoreError::Kind::kBadHeader,
                     "packed store: unknown alphabet id: " + path);
  }
  const std::uint16_t record_count = get_u16(h + 14);
  const std::uint64_t residues = get_u64(h + 16);
  const std::uint64_t payload_offset = get_u64(h + 24);
  const std::uint64_t payload_bytes = get_u64(h + 32);
  const std::uint64_t table_offset = get_u64(h + 40);
  const std::uint64_t payload_hash = get_u64(h + 48);
  const std::uint32_t table_bytes = get_u32(h + 56);
  if (payload_offset != kPayloadOffset ||
      table_offset != add_sat_u64(payload_offset, payload_bytes)) {
    throw StoreError(StoreError::Kind::kBadHeader,
                     "packed store: inconsistent section offsets: " + path);
  }
  if (add_sat_u64(table_offset, table_bytes) > file_bytes) {
    throw StoreError(StoreError::Kind::kTruncated,
                     "packed store: file shorter than header claims: " + path);
  }
  const std::uint64_t entry_bytes =
      mul_sat_u64(record_count, kRecordEntryBytes);
  if (entry_bytes > table_bytes) {
    throw StoreError(StoreError::Kind::kBadHeader,
                     "packed store: record table larger than section: " +
                         path);
  }
  const std::uint64_t heap_bytes = table_bytes - entry_bytes;

  const std::uint8_t* payload = self->map_ + payload_offset;
  const std::uint8_t* table = self->map_ + table_offset;
  const char* heap = reinterpret_cast<const char*>(table + entry_bytes);

  std::uint64_t counted = 0;
  self->records_.reserve(record_count);
  for (std::uint32_t i = 0; i < record_count; ++i) {
    const std::uint8_t* e = table + std::size_t{i} * kRecordEntryBytes;
    Record record;
    record.byte_begin = get_u64(e);
    record.count = get_u64(e + 8);
    const std::uint32_t name_off = get_u32(e + 16);
    const std::uint32_t name_len = get_u32(e + 20);
    if (add_sat_u64(record.byte_begin, packed_bytes(record.count, bits)) >
        payload_bytes) {
      throw StoreError(StoreError::Kind::kBadRecord,
                       "packed store: record " + std::to_string(i) +
                           " payload out of bounds: " + path);
    }
    if (add_sat_u64(name_off, name_len) > heap_bytes) {
      throw StoreError(StoreError::Kind::kBadRecord,
                       "packed store: record " + std::to_string(i) +
                           " name overruns table: " + path);
    }
    record.name.assign(heap + name_off, name_len);
    counted = add_sat_u64(counted, record.count);
    self->records_.push_back(std::move(record));
  }
  if (counted != residues) {
    throw StoreError(StoreError::Kind::kBadRecord,
                     "packed store: record counts disagree with header: " +
                         path);
  }
  if (fnv1a64(payload, payload_bytes) != payload_hash) {
    throw StoreError(StoreError::Kind::kBadChecksum,
                     "packed store: payload hash mismatch: " + path);
  }

  self->alphabet_ = &alphabet_for_id(h[13]);
  self->bits_ = bits;
  self->total_residues_ = residues;
  self->payload_ = payload;
  return self;
}

PackedStore::~PackedStore() {
  if (map_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(map_), map_bytes_);
  }
}

SequenceView PackedStore::view(std::size_t i) const {
  const Record& record = records_.at(i);
  Packing packing = bits_ == 2   ? Packing::kTwoBit
                    : bits_ == 4 ? Packing::kNibble
                                 : Packing::kByte;
  return SequenceView(shared_from_this(), payload_ + record.byte_begin,
                      record.count, packing, *alphabet_);
}

}  // namespace store
}  // namespace flsa
