#include "dp/local.hpp"

#include <algorithm>
#include <vector>

#include "dp/gotoh.hpp"
#include "dp/matrix.hpp"
#include "support/assert.hpp"

namespace flsa {

LocalScoreResult local_score_linear(std::span<const Residue> a,
                                    std::span<const Residue> b,
                                    const ScoringScheme& scheme,
                                    DpCounters* counters) {
  FLSA_REQUIRE(scheme.is_linear());
  const Score gap = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();
  std::vector<Score> row(b.size() + 1, 0);
  LocalScoreResult best;
  for (std::size_t r = 1; r <= a.size(); ++r) {
    Score diag = row[0];
    row[0] = 0;
    const Residue ar = a[r - 1];
    for (std::size_t c = 1; c <= b.size(); ++c) {
      const Score up = row[c];
      const Score value =
          std::max({Score{0}, diag + sub.at(ar, b[c - 1]), up + gap,
                    row[c - 1] + gap});
      diag = up;
      row[c] = value;
      if (value > best.score) {
        best.score = value;
        best.row = r;
        best.col = c;
      }
    }
  }
  if (counters) {
    counters->cells_scored += static_cast<std::uint64_t>(a.size()) * b.size();
  }
  return best;
}

Alignment local_align_full_matrix(const Sequence& a, const Sequence& b,
                                  const ScoringScheme& scheme,
                                  DpCounters* counters) {
  FLSA_REQUIRE(scheme.is_linear());
  const Score gap = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();
  Matrix2D<Score> dpm(a.size() + 1, b.size() + 1);
  for (std::size_t c = 0; c <= b.size(); ++c) dpm(0, c) = 0;
  LocalScoreResult best;
  for (std::size_t r = 1; r <= a.size(); ++r) {
    dpm(r, 0) = 0;
    const Residue ar = a[r - 1];
    for (std::size_t c = 1; c <= b.size(); ++c) {
      const Score value =
          std::max({Score{0}, dpm(r - 1, c - 1) + sub.at(ar, b[c - 1]),
                    dpm(r - 1, c) + gap, dpm(r, c - 1) + gap});
      dpm(r, c) = value;
      if (value > best.score) {
        best.score = value;
        best.row = r;
        best.col = c;
      }
    }
  }
  if (counters) {
    counters->cells_stored += static_cast<std::uint64_t>(a.size()) * b.size();
  }

  Alignment out;
  out.score = best.score;
  if (best.score == 0) return out;  // empty local alignment

  // Traceback from the maximum until a zero entry; same deterministic
  // preference order as the global traceback (diag, up, left).
  std::size_t r = best.row;
  std::size_t c = best.col;
  std::string rev_a, rev_b;
  while (r > 0 && c > 0 && dpm(r, c) != 0) {
    const Score here = dpm(r, c);
    if (here == dpm(r - 1, c - 1) + sub.at(a[r - 1], b[c - 1])) {
      rev_a.push_back(a.alphabet().letter(a[r - 1]));
      rev_b.push_back(b.alphabet().letter(b[c - 1]));
      --r;
      --c;
    } else if (here == dpm(r - 1, c) + gap) {
      rev_a.push_back(a.alphabet().letter(a[r - 1]));
      rev_b.push_back('-');
      --r;
    } else {
      FLSA_ASSERT(here == dpm(r, c - 1) + gap);
      rev_a.push_back('-');
      rev_b.push_back(b.alphabet().letter(b[c - 1]));
      --c;
    }
    if (counters) ++counters->traceback_steps;
  }
  out.gapped_a.assign(rev_a.rbegin(), rev_a.rend());
  out.gapped_b.assign(rev_b.rbegin(), rev_b.rend());
  out.a_begin = r;
  out.a_end = best.row;
  out.b_begin = c;
  out.b_end = best.col;
  return out;
}

LocalScoreResult local_score_affine(std::span<const Residue> a,
                                    std::span<const Residue> b,
                                    const ScoringScheme& scheme,
                                    DpCounters* counters) {
  const Score open = scheme.gap_open();
  const Score ext = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();
  std::vector<AffineCell> row(b.size() + 1, AffineCell{0, kNegInf, kNegInf});
  LocalScoreResult best;
  for (std::size_t r = 1; r <= a.size(); ++r) {
    AffineCell diag = row[0];
    row[0] = AffineCell{0, kNegInf, kNegInf};
    const Residue ar = a[r - 1];
    for (std::size_t c = 1; c <= b.size(); ++c) {
      const AffineCell up = row[c];
      const AffineCell& lf = row[c - 1];
      AffineCell cell;
      cell.ix = std::max(up.d + open, up.ix) + ext;
      cell.iy = std::max(lf.d + open, lf.iy) + ext;
      cell.d = std::max({Score{0}, diag.d + sub.at(ar, b[c - 1]), cell.ix,
                         cell.iy});
      diag = up;
      row[c] = cell;
      if (cell.d > best.score) {
        best.score = cell.d;
        best.row = r;
        best.col = c;
      }
    }
  }
  if (counters) {
    counters->cells_scored += static_cast<std::uint64_t>(a.size()) * b.size();
  }
  return best;
}

Alignment local_align_full_matrix_affine(const Sequence& a,
                                         const Sequence& b,
                                         const ScoringScheme& scheme,
                                         DpCounters* counters) {
  const Score open = scheme.gap_open();
  const Score ext = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();
  Matrix2D<AffineCell> dpm(a.size() + 1, b.size() + 1);
  for (std::size_t c = 0; c <= b.size(); ++c) {
    dpm(0, c) = AffineCell{0, kNegInf, kNegInf};
  }
  LocalScoreResult best;
  for (std::size_t r = 1; r <= a.size(); ++r) {
    dpm(r, 0) = AffineCell{0, kNegInf, kNegInf};
    const Residue ar = a[r - 1];
    for (std::size_t c = 1; c <= b.size(); ++c) {
      AffineCell cell;
      cell.ix = std::max(dpm(r - 1, c).d + open, dpm(r - 1, c).ix) + ext;
      cell.iy = std::max(dpm(r, c - 1).d + open, dpm(r, c - 1).iy) + ext;
      cell.d = std::max({Score{0},
                         dpm(r - 1, c - 1).d + sub.at(ar, b[c - 1]),
                         cell.ix, cell.iy});
      dpm(r, c) = cell;
      if (cell.d > best.score) {
        best.score = cell.d;
        best.row = r;
        best.col = c;
      }
    }
  }
  if (counters) {
    counters->cells_stored += static_cast<std::uint64_t>(a.size()) * b.size();
  }

  Alignment out;
  out.score = best.score;
  if (best.score == 0) return out;

  std::size_t r = best.row;
  std::size_t c = best.col;
  std::string rev_a, rev_b;
  AffineState state = AffineState::kD;
  while (r > 0 && c > 0) {
    const AffineCell& cell = dpm(r, c);
    if (state == AffineState::kD) {
      if (cell.d == 0) break;  // local start
      const Score via_diag =
          dpm(r - 1, c - 1).d + sub.at(a[r - 1], b[c - 1]);
      if (cell.d == via_diag) {
        rev_a.push_back(a.alphabet().letter(a[r - 1]));
        rev_b.push_back(b.alphabet().letter(b[c - 1]));
        --r;
        --c;
      } else if (cell.d == cell.ix) {
        state = AffineState::kIx;
      } else {
        FLSA_ASSERT(cell.d == cell.iy);
        state = AffineState::kIy;
      }
    } else if (state == AffineState::kIx) {
      rev_a.push_back(a.alphabet().letter(a[r - 1]));
      rev_b.push_back('-');
      if (cell.ix == dpm(r - 1, c).d + open + ext) {
        state = AffineState::kD;
      }
      --r;
    } else {
      rev_a.push_back('-');
      rev_b.push_back(b.alphabet().letter(b[c - 1]));
      if (cell.iy == dpm(r, c - 1).d + open + ext) {
        state = AffineState::kD;
      }
      --c;
    }
    if (counters) ++counters->traceback_steps;
  }
  out.gapped_a.assign(rev_a.rbegin(), rev_a.rend());
  out.gapped_b.assign(rev_b.rbegin(), rev_b.rend());
  out.a_begin = r;
  out.a_end = best.row;
  out.b_begin = c;
  out.b_end = best.col;
  return out;
}

}  // namespace flsa
