// Operation counters.
//
// The paper's analytical results are stated in DPM-entry computations
// ("operations"); every kernel increments these counters so the benches can
// compare measured operation counts against the paper's formulas (e.g.
// FastLSA <= mn * (k/(k-1))^2, Hirschberg ~ 2mn, full matrix = mn).
#pragma once

#include <cstdint>

#include "support/checked.hpp"

namespace flsa {

/// Accumulated work counters. Not thread-safe: parallel code keeps one per
/// worker and merges with operator+=.
struct DpCounters {
  /// DPM entries computed by score-only sweeps (FindScore work).
  std::uint64_t cells_scored = 0;
  /// DPM entries computed inside stored full matrices (base cases / FM).
  std::uint64_t cells_stored = 0;
  /// Traceback steps taken (FindPath work).
  std::uint64_t traceback_steps = 0;
  /// Narrow-kernel overflow escalations: each time a saturating int8/int16
  /// sweep hit a rail (or could not represent the scheme) and the work was
  /// transparently rescored with the next wider tier (dp/kernel_narrow.hpp).
  std::uint64_t kernel_escalations = 0;
  /// Fill Grid Cache tiles skipped by score-bound pruning
  /// (FastLsaOptions::prune): their optimistic bound could not beat the
  /// greedy-diagonal incumbent, so sentinel lines were published instead.
  std::uint64_t tiles_pruned = 0;

  /// Saturating: at genome scale the two operands are each derived from
  /// (m+1)*(n+1)-flavoured products, and a wrapped total would read as a
  /// plausible small number instead of "off the scale".
  std::uint64_t total_cells() const {
    return add_sat_u64(cells_scored, cells_stored);
  }

  DpCounters& operator+=(const DpCounters& other) {
    cells_scored = add_sat_u64(cells_scored, other.cells_scored);
    cells_stored = add_sat_u64(cells_stored, other.cells_stored);
    traceback_steps = add_sat_u64(traceback_steps, other.traceback_steps);
    kernel_escalations =
        add_sat_u64(kernel_escalations, other.kernel_escalations);
    tiles_pruned = add_sat_u64(tiles_pruned, other.tiles_pruned);
    return *this;
  }
};

}  // namespace flsa
