#include "dp/query_profile.hpp"

#include <algorithm>

#include "dp/kernel.hpp"
#include "dp/kernel_narrow.hpp"
#include "dp/kernel_simd.hpp"
#include "support/assert.hpp"

namespace flsa {

QueryProfile::QueryProfile(std::span<const Residue> b,
                           const SubstitutionMatrix& matrix)
    : length_(b.size()) {
  const std::size_t alphabet = matrix.alphabet().size();
  rows_.resize(alphabet * length_);
  for (Residue x = 0; x < alphabet; ++x) {
    Score* row = rows_.data() + x * length_;
    for (std::size_t j = 0; j < length_; ++j) {
      row[j] = matrix.at(x, b[j]);
    }
  }
}

std::vector<Score> last_row_profiled(std::span<const Residue> a,
                                     const QueryProfile& profile,
                                     const ScoringScheme& scheme,
                                     DpCounters* counters) {
  FLSA_REQUIRE(scheme.is_linear());
  const std::size_t cols = profile.length();
  const Score gap = scheme.gap_extend();
  std::vector<Score> row(cols + 1);
  init_global_boundary_linear(scheme, row);
  for (std::size_t r = 1; r <= a.size(); ++r) {
    const Score* scores = profile.row(a[r - 1]);
    Score diag = row[0];
    row[0] = static_cast<Score>(r) * gap;
    Score left = row[0];
    for (std::size_t c = 1; c <= cols; ++c) {
      const Score up = row[c];
      const Score best =
          std::max(diag + scores[c - 1], std::max(up, left) + gap);
      diag = up;
      left = best;
      row[c] = best;
    }
  }
  if (counters) {
    counters->cells_scored += static_cast<std::uint64_t>(a.size()) * cols;
  }
  return row;
}

std::vector<Score> last_row_profiled(KernelKind kind,
                                     std::span<const Residue> a,
                                     const QueryProfile& profile,
                                     const ScoringScheme& scheme,
                                     DpCounters* counters) {
  const KernelKind resolved = resolve_kernel(kind);
  if (resolved == KernelKind::kSimd) {
    return last_row_profiled_simd(a, profile, scheme, counters);
  }
  if (narrow_kernel_kind(resolved)) {
    return last_row_profiled_narrow(resolved, a, profile, scheme, counters);
  }
  return last_row_profiled(a, profile, scheme, counters);
}

Score global_score_profiled(std::span<const Residue> a,
                            std::span<const Residue> b,
                            const ScoringScheme& scheme,
                            DpCounters* counters) {
  const QueryProfile profile(b, scheme.matrix());
  return last_row_profiled(a, profile, scheme, counters).back();
}

Score global_score_profiled(KernelKind kind, std::span<const Residue> a,
                            std::span<const Residue> b,
                            const ScoringScheme& scheme,
                            DpCounters* counters) {
  const QueryProfile profile(b, scheme.matrix());
  return last_row_profiled(kind, a, profile, scheme, counters).back();
}

}  // namespace flsa
