// Smith-Waterman local alignment (full-matrix).
//
// Extension beyond the paper's global-alignment scope: the paper's DP
// framework applies directly to local alignment by clamping at zero. The
// linear-space local aligner (score pass + reverse pass + FastLSA on the
// located sub-rectangle) builds on this and lives in core/local_align.hpp.
#pragma once

#include "dp/alignment.hpp"
#include "dp/counters.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// Result of a score-only local pass: the best cell and its score.
struct LocalScoreResult {
  Score score = 0;
  /// DPM coordinates of the maximum entry (end of the optimal local
  /// alignment): a[0..row) x b[0..col).
  std::size_t row = 0;
  std::size_t col = 0;
};

/// Linear-space Smith-Waterman score pass (linear gaps). Ties resolve to the
/// smallest (row, col) in row-major order, making the result deterministic.
LocalScoreResult local_score_linear(std::span<const Residue> a,
                                    std::span<const Residue> b,
                                    const ScoringScheme& scheme,
                                    DpCounters* counters = nullptr);

/// Full-matrix Smith-Waterman local alignment (linear gaps). The returned
/// Alignment's a_begin/a_end, b_begin/b_end give the aligned region.
/// An all-negative scoring landscape yields an empty alignment, score 0.
Alignment local_align_full_matrix(const Sequence& a, const Sequence& b,
                                  const ScoringScheme& scheme,
                                  DpCounters* counters = nullptr);

/// Affine-gap Smith-Waterman score pass (Gotoh lanes clamped at zero on
/// the D lane) in linear space.
LocalScoreResult local_score_affine(std::span<const Residue> a,
                                    std::span<const Residue> b,
                                    const ScoringScheme& scheme,
                                    DpCounters* counters = nullptr);

/// Full-matrix affine-gap Smith-Waterman local alignment.
Alignment local_align_full_matrix_affine(const Sequence& a,
                                         const Sequence& b,
                                         const ScoringScheme& scheme,
                                         DpCounters* counters = nullptr);

}  // namespace flsa
