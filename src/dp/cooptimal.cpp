#include "dp/cooptimal.hpp"

#include <algorithm>
#include <limits>

#include "dp/kernel.hpp"
#include "dp/matrix.hpp"
#include "dp/path.hpp"
#include "support/assert.hpp"

namespace flsa {

DirectionSetMatrix::DirectionSetMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), bits_((rows * cols + 1) / 2, 0) {}

void DirectionSetMatrix::set(std::size_t r, std::size_t c, bool diag_in,
                             bool up_in, bool left_in) {
  FLSA_ASSERT(r < rows_ && c < cols_);
  const std::size_t cell = r * cols_ + c;
  const unsigned shift = (cell & 1) * 4;
  const auto value = static_cast<std::uint8_t>(
      (diag_in ? 1u : 0u) | (up_in ? 2u : 0u) | (left_in ? 4u : 0u));
  std::uint8_t& byte = bits_[cell >> 1];
  byte = static_cast<std::uint8_t>((byte & ~(0x7u << shift)) |
                                   (value << shift));
}

std::uint8_t DirectionSetMatrix::get(std::size_t r, std::size_t c) const {
  FLSA_ASSERT(r < rows_ && c < cols_);
  const std::size_t cell = r * cols_ + c;
  // Explicit promotion: UBSan's shift instrumentation otherwise trips a
  // spurious -Wsign-conversion on the implicit uint8_t -> int promotion.
  const auto byte = static_cast<unsigned>(bits_[cell >> 1]);
  return static_cast<std::uint8_t>((byte >> ((cell & 1) * 4)) & 0x7u);
}

bool DirectionSetMatrix::diag(std::size_t r, std::size_t c) const {
  return get(r, c) & 1u;
}
bool DirectionSetMatrix::up(std::size_t r, std::size_t c) const {
  return get(r, c) & 2u;
}
bool DirectionSetMatrix::left(std::size_t r, std::size_t c) const {
  return get(r, c) & 4u;
}

namespace {

/// Fills the 3-bit direction sets and returns the optimal score.
Score fill_direction_sets(const Sequence& a, const Sequence& b,
                          const ScoringScheme& scheme,
                          DirectionSetMatrix& dirs, DpCounters* counters) {
  FLSA_REQUIRE(scheme.is_linear());
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const Score gap = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();

  for (std::size_t c = 1; c <= n; ++c) dirs.set(0, c, false, false, true);
  for (std::size_t r = 1; r <= m; ++r) dirs.set(r, 0, false, true, false);

  std::vector<Score> row(n + 1);
  init_global_boundary_linear(scheme, row);
  for (std::size_t r = 1; r <= m; ++r) {
    Score diag = row[0];
    row[0] = static_cast<Score>(r) * gap;
    const Residue ar = a[r - 1];
    for (std::size_t c = 1; c <= n; ++c) {
      const Score up = row[c];
      const Score via_diag = diag + sub.at(ar, b[c - 1]);
      const Score via_up = up + gap;
      const Score via_left = row[c - 1] + gap;
      const Score best = std::max(via_diag, std::max(via_up, via_left));
      dirs.set(r, c, via_diag == best, via_up == best, via_left == best);
      diag = up;
      row[c] = best;
    }
  }
  if (counters) {
    counters->cells_scored += static_cast<std::uint64_t>(m) * n;
  }
  return row[n];
}

std::uint64_t saturating_add(std::uint64_t x, std::uint64_t y) {
  constexpr std::uint64_t kMax = CoOptimalAnalysis::kSaturated;
  return (x > kMax - y) ? kMax : x + y;
}

}  // namespace

CoOptimalAnalysis count_optimal_paths(const Sequence& a, const Sequence& b,
                                      const ScoringScheme& scheme,
                                      DpCounters* counters) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  DirectionSetMatrix dirs(m + 1, n + 1);
  CoOptimalAnalysis analysis;
  analysis.score = fill_direction_sets(a, b, scheme, dirs, counters);

  // Forward counting DP over the recorded direction sets.
  Matrix2D<std::uint64_t> count(m + 1, n + 1);
  count(0, 0) = 1;
  for (std::size_t r = 0; r <= m; ++r) {
    for (std::size_t c = 0; c <= n; ++c) {
      if (r == 0 && c == 0) continue;
      std::uint64_t total = 0;
      if (r > 0 && c > 0 && dirs.diag(r, c)) {
        total = saturating_add(total, count(r - 1, c - 1));
      }
      if (r > 0 && dirs.up(r, c)) {
        total = saturating_add(total, count(r - 1, c));
      }
      if (c > 0 && dirs.left(r, c)) {
        total = saturating_add(total, count(r, c - 1));
      }
      count(r, c) = total;
    }
  }
  analysis.path_count = count(m, n);
  return analysis;
}

std::vector<Alignment> enumerate_optimal_alignments(
    const Sequence& a, const Sequence& b, const ScoringScheme& scheme,
    std::size_t limit, DpCounters* counters) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  DirectionSetMatrix dirs(m + 1, n + 1);
  fill_direction_sets(a, b, scheme, dirs, counters);

  std::vector<Alignment> results;
  if (limit == 0) return results;

  // Iterative backward DFS from (m, n); directions tried diagonal, up,
  // left, matching the single-path traceback so results[0] equals
  // full_matrix_align's alignment.
  struct Frame {
    std::size_t r, c;
    unsigned next = 0;  // 0 = diag, 1 = up, 2 = left, 3 = exhausted
  };
  std::vector<Frame> stack{{m, n, 0}};
  std::vector<Move> moves;  // traceback order, parallel to stack depth - 1

  while (!stack.empty() && results.size() < limit) {
    Frame& frame = stack.back();
    if (frame.r == 0 && frame.c == 0) {
      // Complete path: materialize.
      Path path(Cell{m, n});
      for (const Move mv : moves) path.push_traceback(mv);
      results.push_back(alignment_from_path(a, b, path, scheme));
      stack.pop_back();
      if (!moves.empty()) moves.pop_back();
      continue;
    }
    bool descended = false;
    while (frame.next < 3) {
      const unsigned dir = frame.next++;
      if (dir == 0 && frame.r > 0 && frame.c > 0 &&
          dirs.diag(frame.r, frame.c)) {
        moves.push_back(Move::kDiag);
        stack.push_back({frame.r - 1, frame.c - 1, 0});
        descended = true;
        break;
      }
      if (dir == 1 && frame.r > 0 && dirs.up(frame.r, frame.c)) {
        moves.push_back(Move::kUp);
        stack.push_back({frame.r - 1, frame.c, 0});
        descended = true;
        break;
      }
      if (dir == 2 && frame.c > 0 && dirs.left(frame.r, frame.c)) {
        moves.push_back(Move::kLeft);
        stack.push_back({frame.r, frame.c - 1, 0});
        descended = true;
        break;
      }
    }
    if (!descended) {
      stack.pop_back();
      if (!moves.empty()) moves.pop_back();
    }
  }
  return results;
}

}  // namespace flsa
