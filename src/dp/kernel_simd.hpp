// Vectorized anti-diagonal DP sweep kernels.
//
// The scalar row sweep (dp/kernel.cpp) is latency-bound: every cell waits
// on its left neighbour through the `row[c-1]` dependence. Walking the DPM
// by anti-diagonals removes all intra-step dependences (dp/antidiagonal.hpp
// explains why), so one SIMD lane can own one cell of the diagonal and the
// whole diagonal advances per instruction group. Substitution scores enter
// the lanes through a gathered table lookup — either the raw substitution
// matrix or a QueryProfile's flat rows.
//
// Implementations: AVX2 (8 lanes) and SSE4.1 (4 lanes) on x86, selected at
// *runtime* via CPU feature detection; everywhere else (and on pre-SSE4.1
// CPUs) the functions degrade to a scalar anti-diagonal sweep. All paths
// produce bit-identical boundary rows/columns, counters and (therefore)
// scores and alignments to the scalar kernels — DP values over max/add on
// exact integers do not depend on evaluation order.
//
// Callers normally go through the KernelKind dispatch layer in
// dp/kernel.hpp / dp/gotoh.hpp rather than calling these directly.
#pragma once

#include <span>
#include <vector>

#include "dp/counters.hpp"
#include "dp/gotoh.hpp"
#include "dp/query_profile.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// True when the running CPU has a vector ISA the SIMD kernels use
/// (SSE4.1 or better on x86). When false, the *_simd entry points still
/// work — they run the scalar anti-diagonal fallback.
bool simd_kernel_available();

/// The instruction set the vector kernels (int32 anti-diagonal here, the
/// narrow saturating tiers in dp/kernel_narrow.hpp) dispatch on at runtime.
enum class SimdIsa : std::uint8_t { kScalar, kSse41, kAvx2 };

/// Detected once per process; kScalar off-x86 or on pre-SSE4.1 CPUs.
SimdIsa active_simd_isa();

/// Name of the instruction set the SIMD kernels will run with:
/// "avx2", "sse4.1", or "scalar" (fallback).
const char* simd_kernel_isa();

/// Drop-in replacement for sweep_rectangle_linear (same boundary layout,
/// same aliasing guarantee for out_bottom/top, same counter accounting).
void sweep_rectangle_linear_simd(std::span<const Residue> a,
                                 std::span<const Residue> b,
                                 const ScoringScheme& scheme,
                                 std::span<const Score> top,
                                 std::span<const Score> left,
                                 std::span<Score> out_bottom,
                                 std::span<Score> out_right,
                                 DpCounters* counters = nullptr);

/// Drop-in replacement for sweep_rectangle_affine.
void sweep_rectangle_affine_simd(std::span<const Residue> a,
                                 std::span<const Residue> b,
                                 const ScoringScheme& scheme,
                                 std::span<const AffineCell> top,
                                 std::span<const AffineCell> left,
                                 std::span<AffineCell> out_bottom,
                                 std::span<AffineCell> out_right,
                                 DpCounters* counters = nullptr);

/// Profiled last row through the vector lanes: the gathered table is the
/// QueryProfile's flat [residue][position] rows instead of the |A|x|A|
/// substitution matrix. Bit-identical to last_row_profiled.
std::vector<Score> last_row_profiled_simd(std::span<const Residue> a,
                                          const QueryProfile& profile,
                                          const ScoringScheme& scheme,
                                          DpCounters* counters = nullptr);

}  // namespace flsa
