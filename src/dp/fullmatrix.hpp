// Full-matrix (FM) dynamic-programming alignment: the Needleman-Wunsch
// baseline that stores the complete DPM, plus the boundary-aware rectangle
// solver reused by FastLSA's Base Case.
#pragma once

#include <span>

#include "dp/alignment.hpp"
#include "dp/counters.hpp"
#include "dp/matrix.hpp"
#include "dp/path.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// Fills `dpm` (resized to (a.size()+1) x (b.size()+1)) with the linear-gap
/// DPM of the rectangle whose boundary caches are `top` and `left`
/// (layout as in sweep_rectangle_linear).
void fill_full_matrix_linear(std::span<const Residue> a,
                             std::span<const Residue> b,
                             const ScoringScheme& scheme,
                             std::span<const Score> top,
                             std::span<const Score> left,
                             Matrix2D<Score>& dpm,
                             DpCounters* counters = nullptr);

/// Traces an optimal path backwards through a filled rectangle DPM,
/// starting at (start_row, start_col), stopping when the path reaches the
/// rectangle's top row or left column (the paper's Base Case behaviour:
/// "an optimal path is found to extend from the bottom-right corner entry
/// to the top boundary entry").
///
/// Tie-breaking is deterministic: diagonal, then up, then left, so every
/// algorithm in the library reconstructs the same optimal path.
/// Moves are appended to `path` (whose front must be at the start cell in
/// *global* coordinates; `row_offset`/`col_offset` translate local rectangle
/// coordinates to global DPM coordinates).
void traceback_rectangle_linear(std::span<const Residue> a,
                                std::span<const Residue> b,
                                const ScoringScheme& scheme,
                                const Matrix2D<Score>& dpm,
                                std::size_t start_row, std::size_t start_col,
                                Path& path, DpCounters* counters = nullptr);

/// Fills one rectangular region of an already-boundary-initialized DPM:
/// entries (r, c) for r in [row0, row0+rows) x c in [col0, col0+cols),
/// reading the up/left/diagonal neighbours from `dpm` (which must already
/// hold them — row 0 / column 0 from boundary caches, interior regions from
/// previously filled tiles). row0, col0 >= 1. This is the unit of work of
/// the tiled (wavefront-parallel) base case.
void fill_matrix_region_linear(std::span<const Residue> a,
                               std::span<const Residue> b,
                               const ScoringScheme& scheme,
                               Matrix2D<Score>& dpm, std::size_t row0,
                               std::size_t col0, std::size_t rows,
                               std::size_t cols);

/// Complete Needleman-Wunsch global alignment storing the whole DPM.
/// This is the paper's FM baseline. Works for linear schemes only; the
/// affine FM baseline lives in gotoh.hpp.
Alignment full_matrix_align(const Sequence& a, const Sequence& b,
                            const ScoringScheme& scheme,
                            DpCounters* counters = nullptr);

/// Score-only FM run (fills the matrix, returns the corner value).
Score full_matrix_score(const Sequence& a, const Sequence& b,
                        const ScoringScheme& scheme,
                        DpCounters* counters = nullptr);

/// Extends a path that has reached the DPM's top row or left column the
/// rest of the way to the origin (leading gaps), completing the alignment.
void extend_path_to_origin(Path& path);

}  // namespace flsa
