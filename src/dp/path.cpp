#include "dp/path.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/assert.hpp"

namespace flsa {

char to_char(Move m) {
  switch (m) {
    case Move::kDiag: return 'D';
    case Move::kUp: return 'U';
    case Move::kLeft: return 'L';
  }
  return '?';
}

void Path::push_traceback(Move m) {
  switch (m) {
    case Move::kDiag:
      if (front_.row == 0 || front_.col == 0) {
        throw std::invalid_argument("diagonal move would leave the matrix");
      }
      --front_.row;
      --front_.col;
      break;
    case Move::kUp:
      if (front_.row == 0) {
        throw std::invalid_argument("up move would leave the matrix");
      }
      --front_.row;
      break;
    case Move::kLeft:
      if (front_.col == 0) {
        throw std::invalid_argument("left move would leave the matrix");
      }
      --front_.col;
      break;
  }
  traceback_.push_back(m);
}

std::vector<Move> Path::forward_moves() const {
  std::vector<Move> forward(traceback_.rbegin(), traceback_.rend());
  return forward;
}

std::string Path::to_string() const {
  std::string s;
  s.reserve(traceback_.size());
  for (auto it = traceback_.rbegin(); it != traceback_.rend(); ++it) {
    s.push_back(to_char(*it));
  }
  return s;
}

bool Path::is_consistent() const {
  Cell pos = front_;
  for (auto it = traceback_.rbegin(); it != traceback_.rend(); ++it) {
    switch (*it) {
      case Move::kDiag: ++pos.row; ++pos.col; break;
      case Move::kUp: ++pos.row; break;
      case Move::kLeft: ++pos.col; break;
    }
  }
  return pos == end_;
}

}  // namespace flsa
