// Optimal paths through the (logical) dynamic-programming matrix.
//
// A path is the sequence of moves of the paper's FindPath phase. Matrix
// convention throughout the library: rows 0..m index sequence `a`
// (vertical), columns 0..n index sequence `b` (horizontal); entry (i, j) is
// the optimal score of aligning a[1..i] with b[1..j].
//
// Paths are built *backwards* (the paper computes the optimal path from the
// bottom-right corner toward the top-left), so Path records traceback moves
// and exposes them in forward order on demand.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace flsa {

/// One traceback step. Direction names describe where the predecessor lies.
enum class Move : std::uint8_t {
  kDiag,  ///< from (i-1, j-1): a[i] aligned with b[j]
  kUp,    ///< from (i-1, j): a[i] aligned with a gap
  kLeft,  ///< from (i, j-1): a gap aligned with b[j]
};

char to_char(Move m);  ///< 'D', 'U' or 'L'

/// Cell coordinate in the DPM.
struct Cell {
  std::size_t row = 0;
  std::size_t col = 0;
  bool operator==(const Cell&) const = default;
};

/// A contiguous path of moves ending at a fixed anchor cell and growing
/// toward the origin as traceback moves are appended.
class Path {
 public:
  /// Starts an empty path anchored at `end` (typically (m, n)).
  explicit Path(Cell end) : end_(end), front_(end) {}

  /// Same, but adopts `storage` (cleared, capacity kept) for the move
  /// vector so callers can recycle traceback storage across runs.
  Path(Cell end, std::vector<Move>&& storage)
      : end_(end), front_(end), traceback_(std::move(storage)) {
    traceback_.clear();
  }

  /// Surrenders the move storage (capacity intact) for recycling. The
  /// path is left empty and must not be used afterwards.
  std::vector<Move> reclaim_storage() && { return std::move(traceback_); }

  /// Appends one traceback step; the path front moves up/left accordingly.
  /// Throws std::invalid_argument if the move would leave the matrix.
  void push_traceback(Move m);

  Cell end() const { return end_; }

  /// Earliest (closest-to-origin) cell currently on the path.
  Cell front() const { return front_; }

  /// True once the path has reached the origin (0, 0).
  bool reaches_origin() const { return front_ == Cell{0, 0}; }

  std::size_t size() const { return traceback_.size(); }
  bool empty() const { return traceback_.empty(); }

  /// Moves in traceback order (last move of the alignment first).
  const std::vector<Move>& traceback_moves() const { return traceback_; }

  /// Moves in forward order, from front() to end().
  std::vector<Move> forward_moves() const;

  /// Compact display string of forward moves, e.g. "DDLUD".
  std::string to_string() const;

  /// Checks the internal geometry: replaying forward_moves() from front()
  /// must land exactly on end(). (Cheap; used by tests and debug asserts.)
  bool is_consistent() const;

 private:
  Cell end_;
  Cell front_;
  std::vector<Move> traceback_;
};

}  // namespace flsa
