// Anti-diagonal score kernel.
//
// The row-sweep kernel carries a loop dependence through `row[c-1]`, which
// serializes each row. Walking the DPM by anti-diagonals removes all
// intra-step dependences — every cell of a diagonal depends only on the
// two previous diagonals — which is the classic auto-vectorizable /
// fine-grained-parallel formulation (and the cell-level analogue of the
// paper's tile wavefront). Provided as an alternative FindScore engine and
// ablated against the row kernel in bench E10.
#pragma once

#include <span>

#include "dp/counters.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// Optimal global-alignment score via the anti-diagonal recurrence
/// (linear gaps). Exactly equal to global_score_linear.
Score global_score_antidiagonal(std::span<const Residue> a,
                                std::span<const Residue> b,
                                const ScoringScheme& scheme,
                                DpCounters* counters = nullptr);

/// Last DPM row via the anti-diagonal recurrence (drop-in replacement for
/// last_row_linear).
std::vector<Score> last_row_antidiagonal(std::span<const Residue> a,
                                         std::span<const Residue> b,
                                         const ScoringScheme& scheme,
                                         DpCounters* counters = nullptr);

}  // namespace flsa
