// Packed-direction full-matrix alignment.
//
// The paper (Section 2.1): "An alternative approach is to store three bits
// in each DPM entry to record the backward path. ... If only a single
// optimal path is required, two bits can be used to encode the three path
// choices at each DPM entry." This module implements that FM variant: the
// FindScore phase keeps only one rolling row of scores and a 2-bit
// direction per cell, cutting FM memory from 4 bytes/cell to 1/4
// byte/cell while keeping the single-pass traceback.
#pragma once

#include "dp/alignment.hpp"
#include "dp/counters.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// Dense 2-bit-per-cell direction matrix (4 cells per byte).
class PackedDirectionMatrix {
 public:
  PackedDirectionMatrix() = default;
  PackedDirectionMatrix(std::size_t rows, std::size_t cols);

  void resize(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Bytes of backing storage (the memory-saving claim under test).
  std::size_t byte_size() const { return bytes_.size(); }

  void set(std::size_t r, std::size_t c, Move m);
  Move get(std::size_t r, std::size_t c) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> bytes_;
};

/// Global alignment with linear gaps using one rolling score row plus the
/// packed direction matrix. Identical output (score *and* path) to
/// full_matrix_align, at ~1/16 of its DPM memory.
Alignment packed_full_matrix_align(const Sequence& a, const Sequence& b,
                                   const ScoringScheme& scheme,
                                   DpCounters* counters = nullptr);

}  // namespace flsa
