#include "dp/banded.hpp"

#include <algorithm>
#include <vector>

#include "dp/matrix.hpp"
#include "dp/path.hpp"
#include "support/assert.hpp"

namespace flsa {

namespace {

// Band geometry: row i covers columns j in [i + lo, i + hi] clamped to
// [0, n], with lo = -w and hi = (n - m) + w. Band cell (i, t) maps to
// column j = i + lo + t; the up neighbour is (i-1, t+1), the diagonal
// (i-1, t), the left (i, t-1).
struct Band {
  std::ptrdiff_t lo;
  std::ptrdiff_t hi;
  std::size_t width;  // hi - lo + 1

  Band(std::size_t m, std::size_t n, std::size_t w) {
    lo = -static_cast<std::ptrdiff_t>(w);
    hi = static_cast<std::ptrdiff_t>(n) - static_cast<std::ptrdiff_t>(m) +
         static_cast<std::ptrdiff_t>(w);
    FLSA_REQUIRE(hi >= lo);
    width = static_cast<std::size_t>(hi - lo + 1);
  }

  std::ptrdiff_t col_of(std::size_t row, std::size_t t) const {
    return static_cast<std::ptrdiff_t>(row) + lo +
           static_cast<std::ptrdiff_t>(t);
  }
};

void fill_banded(std::span<const Residue> a, std::span<const Residue> b,
                 const ScoringScheme& scheme, const Band& band,
                 Matrix2D<Score>& dpm, DpCounters* counters) {
  const auto m = a.size();
  const auto n = b.size();
  const Score gap = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();
  dpm.resize(m + 1, band.width);
  std::uint64_t cells = 0;
  for (std::size_t i = 0; i <= m; ++i) {
    for (std::size_t t = 0; t < band.width; ++t) {
      const std::ptrdiff_t j = band.col_of(i, t);
      Score& slot = dpm(i, t);
      if (j < 0 || j > static_cast<std::ptrdiff_t>(n)) {
        slot = kNegInf;
        continue;
      }
      if (i == 0) {
        slot = static_cast<Score>(j) * gap;
        continue;
      }
      if (j == 0) {
        slot = static_cast<Score>(i) * gap;
        continue;
      }
      Score best = kNegInf;
      // diagonal: (i-1, j-1) is band cell (i-1, t)
      best = dpm(i - 1, t) + sub.at(a[i - 1], b[static_cast<std::size_t>(j) - 1]);
      // up: (i-1, j) is band cell (i-1, t+1)
      if (t + 1 < band.width) best = std::max(best, dpm(i - 1, t + 1) + gap);
      // left: (i, j-1) is band cell (i, t-1)
      if (t > 0) best = std::max(best, dpm(i, t - 1) + gap);
      slot = best;
      ++cells;
    }
  }
  if (counters) counters->cells_stored += cells;
}

}  // namespace

Alignment banded_align(const Sequence& a, const Sequence& b,
                       const ScoringScheme& scheme, std::size_t half_width,
                       DpCounters* counters) {
  FLSA_REQUIRE(scheme.is_linear());
  FLSA_REQUIRE(half_width >= 1);
  const auto m = a.size();
  const auto n = b.size();
  const Band band(m, n, half_width);
  Matrix2D<Score> dpm;
  fill_banded(a.residues(), b.residues(), scheme, band, dpm, counters);

  const Score gap = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();
  Path path(Cell{m, n});
  std::size_t i = m;
  auto t_of = [&](std::size_t row, std::ptrdiff_t col) {
    return static_cast<std::size_t>(col - static_cast<std::ptrdiff_t>(row) -
                                    band.lo);
  };
  std::ptrdiff_t j = static_cast<std::ptrdiff_t>(n);
  while (i > 0 && j > 0) {
    const std::size_t t = t_of(i, j);
    const Score here = dpm(i, t);
    const Score via_diag =
        dpm(i - 1, t) + sub.at(a[i - 1], b[static_cast<std::size_t>(j) - 1]);
    if (here == via_diag) {
      path.push_traceback(Move::kDiag);
      --i;
      --j;
    } else if (t + 1 < band.width && here == dpm(i - 1, t + 1) + gap) {
      path.push_traceback(Move::kUp);
      --i;
    } else {
      FLSA_ASSERT(t > 0 && here == dpm(i, t - 1) + gap);
      path.push_traceback(Move::kLeft);
      --j;
    }
    if (counters) ++counters->traceback_steps;
  }
  while (i > 0) {
    path.push_traceback(Move::kUp);
    --i;
  }
  while (j > 0) {
    path.push_traceback(Move::kLeft);
    --j;
  }
  Alignment out = alignment_from_path(a, b, path, scheme);
  out.score = dpm(m, t_of(m, static_cast<std::ptrdiff_t>(n)));
  return out;
}

Score banded_score(const Sequence& a, const Sequence& b,
                   const ScoringScheme& scheme, std::size_t half_width,
                   DpCounters* counters) {
  FLSA_REQUIRE(scheme.is_linear());
  FLSA_REQUIRE(half_width >= 1);
  const Band band(a.size(), b.size(), half_width);
  Matrix2D<Score> dpm;
  fill_banded(a.residues(), b.residues(), scheme, band, dpm, counters);
  const std::size_t t_end = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(b.size()) -
      static_cast<std::ptrdiff_t>(a.size()) - band.lo);
  return dpm(a.size(), t_end);
}

}  // namespace flsa
