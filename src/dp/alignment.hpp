// Alignment results: the pair of gapped strings produced by an optimal
// path, plus derived statistics (score, identity, CIGAR).
#pragma once

#include <string>
#include <vector>

#include "dp/path.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// A pairwise (global or local) alignment.
struct Alignment {
  /// Gapped rows; equal lengths; '-' denotes a gap.
  std::string gapped_a;
  std::string gapped_b;
  /// Optimal score reported by the aligner.
  Score score = 0;
  /// For local alignments: the aligned region is a[a_begin..a_end) x
  /// b[b_begin..b_end). Global alignments cover the full sequences.
  std::size_t a_begin = 0, a_end = 0;
  std::size_t b_begin = 0, b_end = 0;

  std::size_t length() const { return gapped_a.size(); }

  /// Count of positions where both rows hold the same residue.
  std::size_t matches() const;

  /// matches() / length(), 0 for empty alignments.
  double identity() const;

  /// Number of gap characters across both rows.
  std::size_t gap_count() const;

  /// CIGAR string with '=' (match), 'X' (mismatch), 'I' (insertion in b /
  /// gap in a), 'D' (deletion / gap in b), e.g. "5=1X2D3=".
  std::string cigar() const;

  /// Pretty three-line rendering (a row, match bars, b row), wrapped at
  /// `width` columns.
  std::string pretty(std::size_t width = 60) const;
};

/// Builds a global alignment from a complete path (front() == (0,0),
/// end() == (m, n)). Recomputes and stores the path's score under `scheme`
/// (for linear schemes this equals the sum of per-move contributions; affine
/// schemes charge gap_open once per maximal gap run).
Alignment alignment_from_path(const Sequence& a, const Sequence& b,
                              const Path& path, const ScoringScheme& scheme);

/// Independent score of an alignment's two gapped rows under `scheme`.
/// Used by tests to cross-check aligner outputs.
Score score_alignment(const Alignment& alignment, const ScoringScheme& scheme,
                      const Alphabet& alphabet);

/// Number of aligned (gap-free) columns whose substitution score is
/// positive — "similar" residues in the biological sense the paper uses
/// when motivating similarity tables (its V/L example). A superset of
/// matches() for matrices with a positive diagonal.
std::size_t similar_columns(const Alignment& alignment,
                            const SubstitutionMatrix& matrix,
                            const Alphabet& alphabet);

}  // namespace flsa
