// Row-major 2-D container used for stored DPM blocks (full-matrix algorithm
// and FastLSA base cases).
#pragma once

#include <cstddef>
#include <vector>

#include "support/assert.hpp"

namespace flsa {

/// Simple row-major matrix; resizable so one buffer can be reused across
/// base-case invocations (the paper's Base Case buffer).
template <typename T>
class Matrix2D {
 public:
  Matrix2D() = default;
  Matrix2D(std::size_t rows, std::size_t cols) { resize(rows, cols); }

  /// Reshapes to rows x cols. Keeps capacity; contents are unspecified.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Pre-grows capacity to `cells` elements without changing shape.
  void reserve(std::size_t cells) { data_.reserve(cells); }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  std::size_t capacity() const { return data_.capacity(); }

  T& operator()(std::size_t r, std::size_t c) {
    FLSA_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    FLSA_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  T* row(std::size_t r) {
    FLSA_ASSERT(r < rows_);
    return data_.data() + r * cols_;
  }
  const T* row(std::size_t r) const {
    FLSA_ASSERT(r < rows_);
    return data_.data() + r * cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace flsa
