#include "dp/antidiagonal.hpp"

#include <algorithm>
#include <vector>

#include "support/assert.hpp"

namespace flsa {

std::vector<Score> last_row_antidiagonal(std::span<const Residue> a,
                                         std::span<const Residue> b,
                                         const ScoringScheme& scheme,
                                         DpCounters* counters) {
  FLSA_REQUIRE(scheme.is_linear());
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const Score gap = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();

  std::vector<Score> last_row(n + 1);
  if (m == 0) {
    for (std::size_t j = 0; j <= n; ++j) {
      last_row[j] = static_cast<Score>(j) * gap;
    }
    return last_row;
  }

  // Buffers hold the two previous anti-diagonals, indexed by row i.
  std::vector<Score> prev2(m + 1, kNegInf);
  std::vector<Score> prev1(m + 1, kNegInf);
  std::vector<Score> curr(m + 1, kNegInf);
  prev1[0] = 0;  // diagonal 0: cell (0, 0)

  for (std::size_t d = 1; d <= m + n; ++d) {
    const std::size_t i_begin = d > n ? d - n : 0;
    const std::size_t i_end = std::min(d, m);
    // Cells on this diagonal, all independent of one another: the
    // dependences reach only prev1/prev2 — no loop-carried dependence.
    for (std::size_t i = i_begin; i <= i_end; ++i) {
      const std::size_t j = d - i;
      if (i == 0) {
        curr[0] = static_cast<Score>(j) * gap;
        continue;
      }
      if (j == 0) {
        curr[i] = static_cast<Score>(i) * gap;
        continue;
      }
      const Score via_diag = prev2[i - 1] + sub.at(a[i - 1], b[j - 1]);
      const Score via_left = prev1[i] + gap;   // (i, j-1)
      const Score via_up = prev1[i - 1] + gap;  // (i-1, j)
      curr[i] = std::max(via_diag, std::max(via_up, via_left));
    }
    if (d >= m) last_row[d - m] = curr[m];
    std::swap(prev2, prev1);
    std::swap(prev1, curr);
  }
  // Diagonal m holds last_row[0]; handle the m == 0 corner covered above.
  if (counters) {
    counters->cells_scored += static_cast<std::uint64_t>(m) * n;
  }
  last_row[0] = static_cast<Score>(m) * gap;
  return last_row;
}

Score global_score_antidiagonal(std::span<const Residue> a,
                                std::span<const Residue> b,
                                const ScoringScheme& scheme,
                                DpCounters* counters) {
  return last_row_antidiagonal(a, b, scheme, counters).back();
}

}  // namespace flsa
