#include "dp/semiglobal.hpp"

#include <algorithm>
#include <vector>

#include "dp/fullmatrix.hpp"
#include "dp/gotoh.hpp"
#include "dp/kernel.hpp"
#include "dp/matrix.hpp"
#include "dp/path.hpp"
#include "support/assert.hpp"

namespace flsa {

namespace {

/// Shared sweep with configurable boundaries; returns the argmax over the
/// last DPM row.
SemiGlobalEnd sweep_with_boundaries(std::span<const Residue> a,
                                    std::span<const Residue> b,
                                    const ScoringScheme& scheme,
                                    bool free_top, bool free_left,
                                    DpCounters* counters) {
  FLSA_REQUIRE(scheme.is_linear());
  const Score gap = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();
  std::vector<Score> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) {
    row[j] = free_top ? 0 : static_cast<Score>(j) * gap;
  }
  for (std::size_t r = 1; r <= a.size(); ++r) {
    Score diag = row[0];
    row[0] = free_left ? 0 : static_cast<Score>(r) * gap;
    const Residue ar = a[r - 1];
    for (std::size_t c = 1; c <= b.size(); ++c) {
      const Score up = row[c];
      row[c] = std::max(diag + sub.at(ar, b[c - 1]),
                        std::max(up, row[c - 1]) + gap);
      diag = up;
    }
  }
  if (counters) {
    counters->cells_scored += static_cast<std::uint64_t>(a.size()) * b.size();
  }
  SemiGlobalEnd end;
  end.row = a.size();
  end.score = row[0];
  end.col = 0;
  for (std::size_t j = 1; j <= b.size(); ++j) {
    if (row[j] > end.score) {
      end.score = row[j];
      end.col = j;
    }
  }
  return end;
}

/// Full matrix with configurable boundaries; traceback from the best
/// last-row cell until the free boundary is reached.
Alignment semiglobal_full_matrix(const Sequence& a, const Sequence& b,
                                 const ScoringScheme& scheme, bool free_top,
                                 bool free_left, DpCounters* counters) {
  FLSA_REQUIRE(scheme.is_linear());
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const Score gap = scheme.gap_extend();
  std::vector<Score> top(n + 1), left(m + 1);
  for (std::size_t j = 0; j <= n; ++j) {
    top[j] = free_top ? 0 : static_cast<Score>(j) * gap;
  }
  for (std::size_t r = 0; r <= m; ++r) {
    left[r] = free_left ? 0 : static_cast<Score>(r) * gap;
  }
  Matrix2D<Score> dpm;
  fill_full_matrix_linear(a.residues(), b.residues(), scheme, top, left, dpm,
                          counters);

  SemiGlobalEnd end;
  end.row = m;
  end.score = dpm(m, 0);
  end.col = 0;
  for (std::size_t j = 1; j <= n; ++j) {
    if (dpm(m, j) > end.score) {
      end.score = dpm(m, j);
      end.col = j;
    }
  }

  Path path(Cell{m, end.col});
  traceback_rectangle_linear(a.residues(), b.residues(), scheme, dpm, m,
                             end.col, path, counters);
  // The path stopped at row 0 or column 0; where it stopped defines the
  // matched region. On the free boundary the remaining moves are skipped
  // residues, not gaps; on the charged boundary they are real gaps.
  Alignment out;
  const Cell front = path.front();
  std::size_t a_begin = 0, b_begin = 0;
  if (free_top) {
    // fitting: stop must be on row 0 (free), column gives the window start.
    while (path.front().row > 0) path.push_traceback(Move::kUp);
    b_begin = path.front().col;
  } else {
    FLSA_ASSERT(free_left);
    // overlap: if the traceback stopped on row 0 with col > 0, those
    // leading b-residues are charged gaps (b prefix is not free).
    while (path.front().col > 0) path.push_traceback(Move::kLeft);
    a_begin = path.front().row;
  }
  (void)front;

  // Materialize the gapped rows over the matched region only.
  std::string ga, gb;
  std::size_t i = a_begin, j = b_begin;
  for (auto it = path.traceback_moves().rbegin();
       it != path.traceback_moves().rend(); ++it) {
    switch (*it) {
      case Move::kDiag:
        ga.push_back(a.alphabet().letter(a[i++]));
        gb.push_back(b.alphabet().letter(b[j++]));
        break;
      case Move::kUp:
        ga.push_back(a.alphabet().letter(a[i++]));
        gb.push_back('-');
        break;
      case Move::kLeft:
        ga.push_back('-');
        gb.push_back(b.alphabet().letter(b[j++]));
        break;
    }
  }
  out.gapped_a = std::move(ga);
  out.gapped_b = std::move(gb);
  out.score = end.score;
  out.a_begin = a_begin;
  out.a_end = m;
  out.b_begin = b_begin;
  out.b_end = end.col;
  FLSA_ASSERT(i == m && j == end.col);
  return out;
}

/// Affine variant of semiglobal_full_matrix: free boundaries hold
/// D = 0 with dead gap lanes; charged boundaries are the usual affine gap
/// ramps.
Alignment semiglobal_full_matrix_affine(const Sequence& a,
                                        const Sequence& b,
                                        const ScoringScheme& scheme,
                                        bool free_top, bool free_left,
                                        DpCounters* counters) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  std::vector<AffineCell> top(n + 1), left(m + 1);
  if (free_top) {
    for (auto& cell : top) cell = AffineCell{0, kNegInf, kNegInf};
  } else {
    init_global_boundary_affine(scheme, top, /*horizontal=*/true);
  }
  if (free_left) {
    for (auto& cell : left) cell = AffineCell{0, kNegInf, kNegInf};
  } else {
    init_global_boundary_affine(scheme, left, /*horizontal=*/false);
  }
  top[0] = left[0] = AffineCell{0, kNegInf, kNegInf};
  Matrix2D<AffineCell> dpm;
  fill_full_matrix_affine(a.residues(), b.residues(), scheme, top, left,
                          dpm, counters);

  SemiGlobalEnd end;
  end.row = m;
  end.score = dpm(m, 0).d;
  end.col = 0;
  for (std::size_t j = 1; j <= n; ++j) {
    if (dpm(m, j).d > end.score) {
      end.score = dpm(m, j).d;
      end.col = j;
    }
  }

  Path path(Cell{m, end.col});
  traceback_rectangle_affine(a.residues(), b.residues(), scheme, dpm, m,
                             end.col, AffineState::kD, path, counters);
  Alignment out;
  std::size_t a_begin = 0, b_begin = 0;
  if (free_top) {
    while (path.front().row > 0) path.push_traceback(Move::kUp);
    b_begin = path.front().col;
  } else {
    while (path.front().col > 0) path.push_traceback(Move::kLeft);
    a_begin = path.front().row;
  }

  std::string ga, gb;
  std::size_t i = a_begin, j = b_begin;
  for (auto it = path.traceback_moves().rbegin();
       it != path.traceback_moves().rend(); ++it) {
    switch (*it) {
      case Move::kDiag:
        ga.push_back(a.alphabet().letter(a[i++]));
        gb.push_back(b.alphabet().letter(b[j++]));
        break;
      case Move::kUp:
        ga.push_back(a.alphabet().letter(a[i++]));
        gb.push_back('-');
        break;
      case Move::kLeft:
        ga.push_back('-');
        gb.push_back(b.alphabet().letter(b[j++]));
        break;
    }
  }
  out.gapped_a = std::move(ga);
  out.gapped_b = std::move(gb);
  out.score = end.score;
  out.a_begin = a_begin;
  out.a_end = m;
  out.b_begin = b_begin;
  out.b_end = end.col;
  FLSA_ASSERT(i == m && j == end.col);
  return out;
}

}  // namespace

SemiGlobalEnd fitting_score_linear(std::span<const Residue> a,
                                   std::span<const Residue> b,
                                   const ScoringScheme& scheme,
                                   DpCounters* counters) {
  return sweep_with_boundaries(a, b, scheme, /*free_top=*/true,
                               /*free_left=*/false, counters);
}

SemiGlobalEnd overlap_score_linear(std::span<const Residue> a,
                                   std::span<const Residue> b,
                                   const ScoringScheme& scheme,
                                   DpCounters* counters) {
  return sweep_with_boundaries(a, b, scheme, /*free_top=*/false,
                               /*free_left=*/true, counters);
}

Alignment fitting_align_full_matrix(const Sequence& a, const Sequence& b,
                                    const ScoringScheme& scheme,
                                    DpCounters* counters) {
  return semiglobal_full_matrix(a, b, scheme, /*free_top=*/true,
                                /*free_left=*/false, counters);
}

Alignment overlap_align_full_matrix(const Sequence& a, const Sequence& b,
                                    const ScoringScheme& scheme,
                                    DpCounters* counters) {
  return semiglobal_full_matrix(a, b, scheme, /*free_top=*/false,
                                /*free_left=*/true, counters);
}

Alignment fitting_align_full_matrix_affine(const Sequence& a,
                                           const Sequence& b,
                                           const ScoringScheme& scheme,
                                           DpCounters* counters) {
  return semiglobal_full_matrix_affine(a, b, scheme, /*free_top=*/true,
                                       /*free_left=*/false, counters);
}

Alignment overlap_align_full_matrix_affine(const Sequence& a,
                                           const Sequence& b,
                                           const ScoringScheme& scheme,
                                           DpCounters* counters) {
  return semiglobal_full_matrix_affine(a, b, scheme, /*free_top=*/false,
                                       /*free_left=*/true, counters);
}

}  // namespace flsa
