#include "dp/packed_traceback.hpp"

#include <algorithm>

#include "dp/kernel.hpp"
#include "dp/path.hpp"
#include "support/assert.hpp"

namespace flsa {

PackedDirectionMatrix::PackedDirectionMatrix(std::size_t rows,
                                             std::size_t cols) {
  resize(rows, cols);
}

void PackedDirectionMatrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  bytes_.assign((rows * cols + 3) / 4, 0);
}

void PackedDirectionMatrix::set(std::size_t r, std::size_t c, Move m) {
  FLSA_ASSERT(r < rows_ && c < cols_);
  const std::size_t cell = r * cols_ + c;
  const std::size_t shift = (cell & 3) * 2;
  std::uint8_t& byte = bytes_[cell >> 2];
  byte = static_cast<std::uint8_t>(
      (byte & ~(0x3u << shift)) |
      (static_cast<unsigned>(m) << shift));
}

Move PackedDirectionMatrix::get(std::size_t r, std::size_t c) const {
  FLSA_ASSERT(r < rows_ && c < cols_);
  const std::size_t cell = r * cols_ + c;
  const std::size_t shift = (cell & 3) * 2;
  // Explicit promotion: UBSan's shift instrumentation otherwise trips a
  // spurious -Wsign-conversion on the implicit uint8_t -> int promotion.
  const auto byte = static_cast<unsigned>(bytes_[cell >> 2]);
  return static_cast<Move>((byte >> shift) & 0x3u);
}

Alignment packed_full_matrix_align(const Sequence& a, const Sequence& b,
                                   const ScoringScheme& scheme,
                                   DpCounters* counters) {
  FLSA_REQUIRE(scheme.is_linear());
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const Score gap = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();

  PackedDirectionMatrix dirs(m + 1, n + 1);
  // Boundary directions: leading gaps.
  for (std::size_t c = 1; c <= n; ++c) dirs.set(0, c, Move::kLeft);
  for (std::size_t r = 1; r <= m; ++r) dirs.set(r, 0, Move::kUp);

  std::vector<Score> row(n + 1);
  init_global_boundary_linear(scheme, row);
  for (std::size_t r = 1; r <= m; ++r) {
    Score diag = row[0];
    row[0] = static_cast<Score>(r) * gap;
    const Residue ar = a[r - 1];
    for (std::size_t c = 1; c <= n; ++c) {
      const Score up = row[c];
      const Score via_diag = diag + sub.at(ar, b[c - 1]);
      const Score via_up = up + gap;
      const Score via_left = row[c - 1] + gap;
      const Score best = std::max(via_diag, std::max(via_up, via_left));
      // Record the same deterministic preference the backward traceback of
      // the unpacked FM algorithm applies: diagonal, then up, then left.
      Move choice = Move::kLeft;
      if (via_diag == best) {
        choice = Move::kDiag;
      } else if (via_up == best) {
        choice = Move::kUp;
      }
      dirs.set(r, c, choice);
      diag = up;
      row[c] = best;
    }
  }
  if (counters) {
    counters->cells_scored += static_cast<std::uint64_t>(m) * n;
  }

  Path path(Cell{m, n});
  std::size_t r = m, c = n;
  while (r > 0 || c > 0) {
    const Move move = dirs.get(r, c);
    path.push_traceback(move);
    switch (move) {
      case Move::kDiag: --r; --c; break;
      case Move::kUp: --r; break;
      case Move::kLeft: --c; break;
    }
    if (counters) ++counters->traceback_steps;
  }
  Alignment out = alignment_from_path(a, b, path, scheme);
  FLSA_ASSERT(out.score == row[n]);
  return out;
}

}  // namespace flsa
