#include "dp/fullmatrix.hpp"

#include <algorithm>

#include "dp/kernel.hpp"
#include "support/assert.hpp"

namespace flsa {

void fill_full_matrix_linear(std::span<const Residue> a,
                             std::span<const Residue> b,
                             const ScoringScheme& scheme,
                             std::span<const Score> top,
                             std::span<const Score> left,
                             Matrix2D<Score>& dpm, DpCounters* counters) {
  const std::size_t rows = a.size();
  const std::size_t cols = b.size();
  FLSA_REQUIRE(scheme.is_linear());
  FLSA_REQUIRE(top.size() == cols + 1);
  FLSA_REQUIRE(left.size() == rows + 1);
  FLSA_REQUIRE(top[0] == left[0]);

  dpm.resize(rows + 1, cols + 1);
  std::copy(top.begin(), top.end(), dpm.row(0));
  const Score gap = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();
  for (std::size_t r = 1; r <= rows; ++r) {
    const Score* prev = dpm.row(r - 1);
    Score* curr = dpm.row(r);
    curr[0] = left[r];
    const Residue ar = a[r - 1];
    for (std::size_t c = 1; c <= cols; ++c) {
      const Score match = prev[c - 1] + sub.at(ar, b[c - 1]);
      curr[c] = std::max(match, std::max(prev[c], curr[c - 1]) + gap);
    }
  }
  if (counters) {
    counters->cells_stored += static_cast<std::uint64_t>(rows) * cols;
  }
}

void fill_matrix_region_linear(std::span<const Residue> a,
                               std::span<const Residue> b,
                               const ScoringScheme& scheme,
                               Matrix2D<Score>& dpm, std::size_t row0,
                               std::size_t col0, std::size_t rows,
                               std::size_t cols) {
  FLSA_REQUIRE(row0 >= 1 && col0 >= 1);
  FLSA_REQUIRE(row0 + rows <= dpm.rows() && col0 + cols <= dpm.cols());
  const Score gap = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();
  for (std::size_t r = row0; r < row0 + rows; ++r) {
    const Score* prev = dpm.row(r - 1);
    Score* curr = dpm.row(r);
    const Residue ar = a[r - 1];
    for (std::size_t c = col0; c < col0 + cols; ++c) {
      const Score match = prev[c - 1] + sub.at(ar, b[c - 1]);
      curr[c] = std::max(match, std::max(prev[c], curr[c - 1]) + gap);
    }
  }
}

void traceback_rectangle_linear(std::span<const Residue> a,
                                std::span<const Residue> b,
                                const ScoringScheme& scheme,
                                const Matrix2D<Score>& dpm,
                                std::size_t start_row, std::size_t start_col,
                                Path& path, DpCounters* counters) {
  FLSA_REQUIRE(start_row < dpm.rows() && start_col < dpm.cols());
  const Score gap = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();
  std::size_t r = start_row;
  std::size_t c = start_col;
  std::uint64_t steps = 0;
  while (r > 0 && c > 0) {
    const Score here = dpm(r, c);
    const Score via_diag = dpm(r - 1, c - 1) + sub.at(a[r - 1], b[c - 1]);
    if (here == via_diag) {
      path.push_traceback(Move::kDiag);
      --r;
      --c;
    } else if (here == dpm(r - 1, c) + gap) {
      path.push_traceback(Move::kUp);
      --r;
    } else {
      FLSA_ASSERT(here == dpm(r, c - 1) + gap);
      path.push_traceback(Move::kLeft);
      --c;
    }
    ++steps;
  }
  if (counters) counters->traceback_steps += steps;
}

Alignment full_matrix_align(const Sequence& a, const Sequence& b,
                            const ScoringScheme& scheme,
                            DpCounters* counters) {
  std::vector<Score> top(b.size() + 1);
  std::vector<Score> left(a.size() + 1);
  init_global_boundary_linear(scheme, top);
  init_global_boundary_linear(scheme, left);
  Matrix2D<Score> dpm;
  fill_full_matrix_linear(a.residues(), b.residues(), scheme, top, left, dpm,
                          counters);
  Path path(Cell{a.size(), b.size()});
  traceback_rectangle_linear(a.residues(), b.residues(), scheme, dpm,
                             a.size(), b.size(), path, counters);
  extend_path_to_origin(path);
  Alignment out = alignment_from_path(a, b, path, scheme);
  // The traceback-derived score must equal the DPM corner value.
  FLSA_ASSERT(out.score == dpm(a.size(), b.size()));
  return out;
}

Score full_matrix_score(const Sequence& a, const Sequence& b,
                        const ScoringScheme& scheme, DpCounters* counters) {
  std::vector<Score> top(b.size() + 1);
  std::vector<Score> left(a.size() + 1);
  init_global_boundary_linear(scheme, top);
  init_global_boundary_linear(scheme, left);
  Matrix2D<Score> dpm;
  fill_full_matrix_linear(a.residues(), b.residues(), scheme, top, left, dpm,
                          counters);
  return dpm(a.size(), b.size());
}

void extend_path_to_origin(Path& path) {
  while (path.front().row > 0) path.push_traceback(Move::kUp);
  while (path.front().col > 0) path.push_traceback(Move::kLeft);
}

}  // namespace flsa
