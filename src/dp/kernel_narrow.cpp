#include "dp/kernel_narrow.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "dp/kernel_simd.hpp"
#include "obs/obs.hpp"
#include "support/assert.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define FLSA_NARROW_X86 1
#include <immintrin.h>
#else
#define FLSA_NARROW_X86 0
#endif

namespace flsa {
namespace {

/// Widest narrow vector (int8 AVX2 lanes); row buffers and profile rows
/// are padded by this much so vector loops may overshoot.
constexpr std::size_t kNarrowPad = 32;

template <typename T>
struct NarrowTraits;

template <>
struct NarrowTraits<std::int16_t> {
  static constexpr int kLo = std::numeric_limits<std::int16_t>::min();
  static constexpr int kHi = std::numeric_limits<std::int16_t>::max();
  /// Fixed tier constant for the scan-addend representability check
  /// (the AVX2 lane count — the widest the scan may multiply gap by).
  /// Deliberately *not* the active ISA's width: the escalation decision
  /// must be identical on every host.
  static constexpr int kScanLanes = 16;
  static constexpr std::size_t kTileExtent = 1024;
};

template <>
struct NarrowTraits<std::int8_t> {
  static constexpr int kLo = std::numeric_limits<std::int8_t>::min();
  static constexpr int kHi = std::numeric_limits<std::int8_t>::max();
  static constexpr int kScanLanes = 32;
  static constexpr std::size_t kTileExtent = 64;
};

// ---- Scalar reference core (and off-x86 fallback). -----------------------
//
// Stores exactly the values the SIMD cores store (the clamp algebra in
// kernel_narrow_lanes.inc makes the per-cell recurrence below equal to the
// scan form) and aborts on the same rows, so escalation counts do not
// depend on the host's vector ISA.

template <typename T>
bool narrow_core_scalar(std::size_t rows, std::size_t cols, T gap,
                        const T* prof, std::size_t stride,
                        const Residue* arow, const T* left_rel, T* row0,
                        T* /*row1*/, T* right_col) {
  constexpr int kLo = NarrowTraits<T>::kLo;
  constexpr int kHi = NarrowTraits<T>::kHi;
  auto sat = [](int v) { return v < kLo ? kLo : (v > kHi ? kHi : v); };
  T* row = row0;  // in-place row propagation
  right_col[0] = row[cols];
  for (std::size_t r = 1; r <= rows; ++r) {
    const T* pr = prof + static_cast<std::size_t>(arow[r - 1]) * stride;
    int diag = row[0];
    row[0] = left_rel[r];
    int left = row[0];
    bool railed = false;
    for (std::size_t c = 1; c <= cols; ++c) {
      const int up = row[c];
      const int best = std::max(sat(diag + pr[c - 1]),
                                std::max(sat(up + gap), sat(left + gap)));
      railed = railed || best == kLo || best == kHi;
      diag = up;
      left = best;
      row[c] = static_cast<T>(best);
    }
    if (railed) return false;
    right_col[r] = row[cols];
  }
  return true;
}

// ---- SIMD cores, stamped per ISA x element width. ------------------------

#if FLSA_NARROW_X86

template <int kBytes>
__attribute__((target("avx2"))) inline __m256i avx2_shiftin_bytes(
    __m256i v, __m256i fill) {
  // Whole-register left-shift by kBytes (<= 16), vacated bytes taken from
  // `fill`: _mm256_slli_si256 shifts the two 128-bit halves independently,
  // so the cross-half bytes are routed through [fill.low | v.low].
  const __m256i lo = _mm256_permute2x128_si256(v, fill, 0x02);
  if constexpr (kBytes == 16) {
    return lo;
  } else {
    return _mm256_alignr_epi8(v, lo, 16 - kBytes);
  }
}

template <int kBytes>
__attribute__((target("sse4.1"))) inline __m128i sse41_shiftin_bytes(
    __m128i v, __m128i fill) {
  return _mm_alignr_epi8(v, fill, 16 - kBytes);
}

// Broadcast of the highest lane to every lane, staying in the vector
// domain (the alternative — extract to a scalar register and set1 back —
// roughly doubles the loop-carried latency of the row's carry chain).
__attribute__((target("avx2"))) inline __m256i avx2_bcast_last_epi16(
    __m256i v) {
  // Every qword := qword 3 (holding lanes 12..15), then every 16-bit
  // element := bytes 6..7 of its 128-bit half = original lane 15.
  const __m256i q = _mm256_permute4x64_epi64(v, 0xFF);
  return _mm256_shuffle_epi8(q, _mm256_set1_epi16(0x0706));
}

__attribute__((target("avx2"))) inline __m256i avx2_bcast_last_epi8(
    __m256i v) {
  const __m256i q = _mm256_permute4x64_epi64(v, 0xFF);
  return _mm256_shuffle_epi8(q, _mm256_set1_epi8(7));
}

__attribute__((target("sse4.1"))) inline __m128i sse41_bcast_last_epi16(
    __m128i v) {
  return _mm_shuffle_epi8(v, _mm_set1_epi16(0x0F0E));
}

__attribute__((target("sse4.1"))) inline __m128i sse41_bcast_last_epi8(
    __m128i v) {
  return _mm_shuffle_epi8(v, _mm_set1_epi8(15));
}

// AVX2, 16 lanes of int16.
#define FLSA_NNS avx2_i16
#define FLSA_NFN __attribute__((target("avx2")))
#define FLSA_NELEM std::int16_t
#define FLSA_NW 16
#define FLSA_NVEC __m256i
#define FLSA_NLOADU(p) \
  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))
#define FLSA_NSTOREU(p, v) \
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), (v))
#define FLSA_NSET1(x) _mm256_set1_epi16((x))
#define FLSA_NADDS(a, b) _mm256_adds_epi16((a), (b))
#define FLSA_NMAX(a, b) _mm256_max_epi16((a), (b))
#define FLSA_NMIN(a, b) _mm256_min_epi16((a), (b))
#define FLSA_NOR(a, b) _mm256_or_si256((a), (b))
#define FLSA_NAND(a, b) _mm256_and_si256((a), (b))
#define FLSA_NCMPEQ(a, b) _mm256_cmpeq_epi16((a), (b))
#define FLSA_NCMPGT(a, b) _mm256_cmpgt_epi16((a), (b))
#define FLSA_NMOVEMASK(v) _mm256_movemask_epi8((v))
#define FLSA_NZERO() _mm256_setzero_si256()
#define FLSA_NSHIFTIN(v, m) avx2_shiftin_bytes<(m) * 2>((v), vlo)
#define FLSA_NBCAST(v) avx2_bcast_last_epi16((v))
#include "dp/kernel_narrow_lanes.inc"
#undef FLSA_NNS
#undef FLSA_NFN
#undef FLSA_NELEM
#undef FLSA_NW
#undef FLSA_NVEC
#undef FLSA_NLOADU
#undef FLSA_NSTOREU
#undef FLSA_NSET1
#undef FLSA_NADDS
#undef FLSA_NMAX
#undef FLSA_NMIN
#undef FLSA_NOR
#undef FLSA_NAND
#undef FLSA_NCMPEQ
#undef FLSA_NCMPGT
#undef FLSA_NMOVEMASK
#undef FLSA_NZERO
#undef FLSA_NSHIFTIN
#undef FLSA_NBCAST

// AVX2, 32 lanes of int8.
#define FLSA_NNS avx2_i8
#define FLSA_NFN __attribute__((target("avx2")))
#define FLSA_NELEM std::int8_t
#define FLSA_NW 32
#define FLSA_NVEC __m256i
#define FLSA_NLOADU(p) \
  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))
#define FLSA_NSTOREU(p, v) \
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), (v))
#define FLSA_NSET1(x) _mm256_set1_epi8((x))
#define FLSA_NADDS(a, b) _mm256_adds_epi8((a), (b))
#define FLSA_NMAX(a, b) _mm256_max_epi8((a), (b))
#define FLSA_NMIN(a, b) _mm256_min_epi8((a), (b))
#define FLSA_NOR(a, b) _mm256_or_si256((a), (b))
#define FLSA_NAND(a, b) _mm256_and_si256((a), (b))
#define FLSA_NCMPEQ(a, b) _mm256_cmpeq_epi8((a), (b))
#define FLSA_NCMPGT(a, b) _mm256_cmpgt_epi8((a), (b))
#define FLSA_NMOVEMASK(v) _mm256_movemask_epi8((v))
#define FLSA_NZERO() _mm256_setzero_si256()
#define FLSA_NSHIFTIN(v, m) avx2_shiftin_bytes<(m)>((v), vlo)
#define FLSA_NBCAST(v) avx2_bcast_last_epi8((v))
#include "dp/kernel_narrow_lanes.inc"
#undef FLSA_NNS
#undef FLSA_NFN
#undef FLSA_NELEM
#undef FLSA_NW
#undef FLSA_NVEC
#undef FLSA_NLOADU
#undef FLSA_NSTOREU
#undef FLSA_NSET1
#undef FLSA_NADDS
#undef FLSA_NMAX
#undef FLSA_NMIN
#undef FLSA_NOR
#undef FLSA_NAND
#undef FLSA_NCMPEQ
#undef FLSA_NCMPGT
#undef FLSA_NMOVEMASK
#undef FLSA_NZERO
#undef FLSA_NSHIFTIN
#undef FLSA_NBCAST

// SSE4.1, 8 lanes of int16.
#define FLSA_NNS sse41_i16
#define FLSA_NFN __attribute__((target("sse4.1")))
#define FLSA_NELEM std::int16_t
#define FLSA_NW 8
#define FLSA_NVEC __m128i
#define FLSA_NLOADU(p) _mm_loadu_si128(reinterpret_cast<const __m128i*>(p))
#define FLSA_NSTOREU(p, v) \
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), (v))
#define FLSA_NSET1(x) _mm_set1_epi16((x))
#define FLSA_NADDS(a, b) _mm_adds_epi16((a), (b))
#define FLSA_NMAX(a, b) _mm_max_epi16((a), (b))
#define FLSA_NMIN(a, b) _mm_min_epi16((a), (b))
#define FLSA_NOR(a, b) _mm_or_si128((a), (b))
#define FLSA_NAND(a, b) _mm_and_si128((a), (b))
#define FLSA_NCMPEQ(a, b) _mm_cmpeq_epi16((a), (b))
#define FLSA_NCMPGT(a, b) _mm_cmpgt_epi16((a), (b))
#define FLSA_NMOVEMASK(v) _mm_movemask_epi8((v))
#define FLSA_NZERO() _mm_setzero_si128()
#define FLSA_NSHIFTIN(v, m) sse41_shiftin_bytes<(m) * 2>((v), vlo)
#define FLSA_NBCAST(v) sse41_bcast_last_epi16((v))
#include "dp/kernel_narrow_lanes.inc"
#undef FLSA_NNS
#undef FLSA_NFN
#undef FLSA_NELEM
#undef FLSA_NW
#undef FLSA_NVEC
#undef FLSA_NLOADU
#undef FLSA_NSTOREU
#undef FLSA_NSET1
#undef FLSA_NADDS
#undef FLSA_NMAX
#undef FLSA_NMIN
#undef FLSA_NOR
#undef FLSA_NAND
#undef FLSA_NCMPEQ
#undef FLSA_NCMPGT
#undef FLSA_NMOVEMASK
#undef FLSA_NZERO
#undef FLSA_NSHIFTIN
#undef FLSA_NBCAST

// SSE4.1, 16 lanes of int8.
#define FLSA_NNS sse41_i8
#define FLSA_NFN __attribute__((target("sse4.1")))
#define FLSA_NELEM std::int8_t
#define FLSA_NW 16
#define FLSA_NVEC __m128i
#define FLSA_NLOADU(p) _mm_loadu_si128(reinterpret_cast<const __m128i*>(p))
#define FLSA_NSTOREU(p, v) \
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), (v))
#define FLSA_NSET1(x) _mm_set1_epi8((x))
#define FLSA_NADDS(a, b) _mm_adds_epi8((a), (b))
#define FLSA_NMAX(a, b) _mm_max_epi8((a), (b))
#define FLSA_NMIN(a, b) _mm_min_epi8((a), (b))
#define FLSA_NOR(a, b) _mm_or_si128((a), (b))
#define FLSA_NAND(a, b) _mm_and_si128((a), (b))
#define FLSA_NCMPEQ(a, b) _mm_cmpeq_epi8((a), (b))
#define FLSA_NCMPGT(a, b) _mm_cmpgt_epi8((a), (b))
#define FLSA_NMOVEMASK(v) _mm_movemask_epi8((v))
#define FLSA_NZERO() _mm_setzero_si128()
#define FLSA_NSHIFTIN(v, m) sse41_shiftin_bytes<(m)>((v), vlo)
#define FLSA_NBCAST(v) sse41_bcast_last_epi8((v))
#include "dp/kernel_narrow_lanes.inc"
#undef FLSA_NNS
#undef FLSA_NFN
#undef FLSA_NELEM
#undef FLSA_NW
#undef FLSA_NVEC
#undef FLSA_NLOADU
#undef FLSA_NSTOREU
#undef FLSA_NSET1
#undef FLSA_NADDS
#undef FLSA_NMAX
#undef FLSA_NMIN
#undef FLSA_NOR
#undef FLSA_NAND
#undef FLSA_NCMPEQ
#undef FLSA_NCMPGT
#undef FLSA_NMOVEMASK
#undef FLSA_NZERO
#undef FLSA_NSHIFTIN
#undef FLSA_NBCAST

// ---- AVX2 int16 band-diagonal core. --------------------------------------
//
// The row-sweep core above resolves the in-row left-gap chain with a lazy
// test + prefix-max scan. On real global-alignment data that test fires
// constantly — away from the main diagonal the DP surface declines at
// exactly the gap rate, so near-tie left chains are the common case, and
// the mispredicts plus fired-path scans cap the row sweep well below the
// arithmetic's potential. The band core removes the left-chain scan and
// the carry broadcast from the loop entirely by changing the geometry:
//
//   * A band of kW = 16 consecutive rows is processed with ONE moving
//     vector `vd` holding an anti-diagonal of the band: at step s, lane L
//     is cell (band row L+1, column s-L) — top-left to bottom-right.
//   * The left neighbour of lane L at step s+1 is lane L's own value at
//     step s (same vector, no shuffle); the up neighbour is lane L-1's
//     value at step s (one lane shift); the diagonal is lane L-1's value
//     at step s-1 (the previous step's shifted vector, kept in `saved`).
//     Per step that is: shift-in, two saturating adds, two maxes — a
//     ~6-cycle critical chain per 16 cells, no scan, no branch.
//   * Boundaries need no special cases: the value shifted into lane 0 is
//     the band's top row (prev[s]), and lanes that have not started their
//     row yet (ramp-in) or have finished it (ramp-out) simply RETAIN
//     their value via a blend — a not-yet-started lane L holds
//     left_rel[r0+1+L], which is exactly the left/diagonal boundary its
//     successor lane needs; a finished lane holds its row's last value,
//     which is the band's right-column output.
//
// Substitution scores must arrive skewed to match: step s needs
// SP[s][L] = profile_row(L)[s-1-L]. Those are built 16 steps at a time by
// a 16x16 in-register transpose (three in-lane unpack stages on each
// 128-bit half, then two vperm2i128 assemblies per output pair) into a
// 512-byte stack buffer consumed immediately — fusing the transpose with
// the DP keeps the skewed scores out of L2. The transpose loads start at
// column s-1-L, i.e. up to kW-1 elements LEFT of the tile's first column:
// build_profile pads every profile row with kNarrowPad rail entries on
// both sides so the loads stay in-buffer (pad values only ever reach
// lanes outside their row's valid column range, which the blend discards).
//
// Rail detection follows the .inc core's scheme, per band instead of per
// row: steady-state steps (all 16 lanes valid) feed running min/max
// accumulators; ramp steps OR the per-lane rail compare under the
// valid-lane mask. Saturating arithmetic cannot wrap, so a railed cell is
// itself latched in the accumulators and the band aborts exactly when the
// scalar core would have aborted on one of its rows; on success every
// stored value is exact, so the outputs stay bit-identical to the scalar
// core (the same clamp-algebra argument as the row sweep — all addends
// are prep-checked representable).
//
// Leftover rows (rows % kW) fall back to one row-sweep call on the same
// buffers.

__attribute__((target("avx2"))) inline __m256i avx2_blendv_epi16(
    __m256i a, __m256i b, __m256i mask) {
  // Lanewise select (mask all-ones -> b): the masks here are whole-lane,
  // so the byte-granular blend is safe.
  return _mm256_blendv_epi8(a, b, mask);
}

/// Transposes 8 rows of 16 int16 (two 8x8 blocks side by side): on
/// return, w[t] = [block0 column t | block1 column t] (128-bit halves).
__attribute__((target("avx2"))) inline void avx2_tr8x16_epi16(
    const __m256i* x, __m256i* w) {
  const __m256i u0 = _mm256_unpacklo_epi16(x[0], x[1]);
  const __m256i u1 = _mm256_unpackhi_epi16(x[0], x[1]);
  const __m256i u2 = _mm256_unpacklo_epi16(x[2], x[3]);
  const __m256i u3 = _mm256_unpackhi_epi16(x[2], x[3]);
  const __m256i u4 = _mm256_unpacklo_epi16(x[4], x[5]);
  const __m256i u5 = _mm256_unpackhi_epi16(x[4], x[5]);
  const __m256i u6 = _mm256_unpacklo_epi16(x[6], x[7]);
  const __m256i u7 = _mm256_unpackhi_epi16(x[6], x[7]);
  const __m256i v0 = _mm256_unpacklo_epi32(u0, u2);
  const __m256i v1 = _mm256_unpackhi_epi32(u0, u2);
  const __m256i v2 = _mm256_unpacklo_epi32(u1, u3);
  const __m256i v3 = _mm256_unpackhi_epi32(u1, u3);
  const __m256i v4 = _mm256_unpacklo_epi32(u4, u6);
  const __m256i v5 = _mm256_unpackhi_epi32(u4, u6);
  const __m256i v6 = _mm256_unpacklo_epi32(u5, u7);
  const __m256i v7 = _mm256_unpackhi_epi32(u5, u7);
  w[0] = _mm256_unpacklo_epi64(v0, v4);
  w[1] = _mm256_unpackhi_epi64(v0, v4);
  w[2] = _mm256_unpacklo_epi64(v1, v5);
  w[3] = _mm256_unpackhi_epi64(v1, v5);
  w[4] = _mm256_unpacklo_epi64(v2, v6);
  w[5] = _mm256_unpackhi_epi64(v2, v6);
  w[6] = _mm256_unpacklo_epi64(v3, v7);
  w[7] = _mm256_unpackhi_epi64(v3, v7);
}

/// Same contract as the stamped narrow_core functions (see
/// kernel_narrow_lanes.inc), plus: profile rows must be readable kW - 1
/// elements left of `prof` (build_profile's left pad).
__attribute__((target("avx2"))) bool avx2_band_core_i16(
    std::size_t rows, std::size_t cols, std::int16_t gap,
    const std::int16_t* prof, std::size_t stride, const Residue* arow,
    const std::int16_t* left_rel, std::int16_t* row0, std::int16_t* row1,
    std::int16_t* right_col) {
  constexpr int kW = 16;
  constexpr std::int16_t kLo = std::numeric_limits<std::int16_t>::min();
  constexpr std::int16_t kHi = std::numeric_limits<std::int16_t>::max();
  const __m256i vlo = _mm256_set1_epi16(kLo);
  const __m256i vhi = _mm256_set1_epi16(kHi);
  const __m256i vgap = _mm256_set1_epi16(gap);
  const __m256i lane_idx =
      _mm256_setr_epi16(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                        15);
  // Step s = 1 .. steps computes the band's anti-diagonal where lane L
  // (if valid, i.e. 0 <= s-1-L < cols) is cell (row r0+1+L, col s-L).
  const std::size_t steps = cols + kW - 1;

  std::int16_t* prev = row0;
  std::int16_t* nxt = row1;
  right_col[0] = prev[cols];
  std::size_t r0 = 0;
  for (; r0 + kW <= rows; r0 += kW) {
    const std::int16_t* prL[kW];
    for (int L = 0; L < kW; ++L) {
      prL[L] = prof +
               static_cast<std::size_t>(arow[r0 + static_cast<std::size_t>(
                                                      L)]) *
                   stride;
    }
    // Idle lanes hold their row's left boundary until their first step.
    __m256i vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(left_rel + r0 +
                                                            1));
    // `saved` is the previous step's shifted vector: lane L = lane L-1 of
    // the previous anti-diagonal = this step's diagonal neighbour.
    __m256i saved = avx2_shiftin_bytes<2>(vd, _mm256_set1_epi16(prev[0]));
    __m256i rmin = _mm256_setzero_si256();
    __m256i rmax = _mm256_setzero_si256();
    __m256i railacc = _mm256_setzero_si256();
    alignas(32) std::int16_t spbuf[kW * kW];
    std::size_t s = 1;
    while (s <= steps) {
      const std::size_t ge = s + 15 < steps ? s + 15 : steps;
      {
        // Skewed-score block for steps s .. s+15: spbuf[t*16 + L] =
        // prL[L][s+t-1-L], via two 8x16 transposes and a half assembly.
        __m256i x[8];
        __m256i y[8];
        __m256i wx[8];
        __m256i wy[8];
        for (int L = 0; L < 8; ++L) {
          x[L] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
              prL[L] + (static_cast<std::ptrdiff_t>(s) - 1 - L)));
        }
        for (int L = 0; L < 8; ++L) {
          y[L] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
              prL[8 + L] + (static_cast<std::ptrdiff_t>(s) - 9 - L)));
        }
        avx2_tr8x16_epi16(x, wx);
        avx2_tr8x16_epi16(y, wy);
        for (int t = 0; t < 8; ++t) {
          _mm256_store_si256(
              reinterpret_cast<__m256i*>(spbuf +
                                         static_cast<std::size_t>(t) * 16),
              _mm256_permute2x128_si256(wx[t], wy[t], 0x20));
          _mm256_store_si256(
              reinterpret_cast<__m256i*>(
                  spbuf + (static_cast<std::size_t>(t) + 8) * 16),
              _mm256_permute2x128_si256(wx[t], wy[t], 0x31));
        }
      }
      if (s >= static_cast<std::size_t>(kW) && ge <= cols) {
        // Steady state: every lane valid, rails folded through min/max,
        // lane kW-1 is the band's bottom row.
        for (std::size_t t = 0; t < 16; ++t) {
          const std::size_t ss = s + t;
          const __m256i bfill = _mm256_set1_epi16(prev[ss]);
          const __m256i shifted = avx2_shiftin_bytes<2>(vd, bfill);
          const __m256i diag = _mm256_adds_epi16(
              saved, _mm256_load_si256(
                         reinterpret_cast<const __m256i*>(spbuf + t * 16)));
          const __m256i vn = _mm256_max_epi16(
              _mm256_adds_epi16(shifted, vgap),
              _mm256_max_epi16(_mm256_adds_epi16(vd, vgap), diag));
          rmin = _mm256_min_epi16(rmin, vn);
          rmax = _mm256_max_epi16(rmax, vn);
          nxt[ss - (kW - 1)] =
              static_cast<std::int16_t>(_mm256_extract_epi16(vn, 15));
          vd = vn;
          saved = shifted;
        }
      } else {
        // Ramp-in / ramp-out: lanes outside their row's column range keep
        // their value (blend) and stay out of the rail check.
        for (std::size_t t = 0; s + t <= ge; ++t) {
          const std::size_t ss = s + t;
          const __m256i bfill =
              _mm256_set1_epi16(prev[ss <= cols ? ss : cols]);
          const __m256i shifted = avx2_shiftin_bytes<2>(vd, bfill);
          const __m256i diag = _mm256_adds_epi16(
              saved, _mm256_load_si256(
                         reinterpret_cast<const __m256i*>(spbuf + t * 16)));
          const __m256i vn = _mm256_max_epi16(
              _mm256_adds_epi16(shifted, vgap),
              _mm256_max_epi16(_mm256_adds_epi16(vd, vgap), diag));
          // Valid lanes at step ss: max(0, ss-cols) <= L <= min(kW-1,
          // ss-1).
          __m256i valid = _mm256_cmpgt_epi16(
              _mm256_set1_epi16(static_cast<std::int16_t>(ss)), lane_idx);
          if (ss > cols) {
            valid = _mm256_and_si256(
                valid, _mm256_cmpgt_epi16(
                           lane_idx, _mm256_set1_epi16(
                                         static_cast<std::int16_t>(
                                             ss - cols - 1))));
          }
          const __m256i hit =
              _mm256_or_si256(_mm256_cmpeq_epi16(vn, vlo),
                              _mm256_cmpeq_epi16(vn, vhi));
          railacc = _mm256_or_si256(railacc,
                                    _mm256_and_si256(hit, valid));
          const __m256i vkeep = avx2_blendv_epi16(vd, vn, valid);
          if (ss >= static_cast<std::size_t>(kW)) {
            alignas(32) std::int16_t tmp[kW];
            _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), vkeep);
            nxt[ss - (kW - 1)] = tmp[kW - 1];
          }
          vd = vkeep;
          saved = shifted;
        }
      }
      s = ge + 1;
    }
    railacc = _mm256_or_si256(
        railacc, _mm256_or_si256(_mm256_cmpeq_epi16(rmin, vlo),
                                 _mm256_cmpeq_epi16(rmax, vhi)));
    if (_mm256_movemask_epi8(railacc) != 0) return false;
    // Finished lanes retained their row's last value: the right column.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(right_col + r0 + 1),
                        vd);
    nxt[0] = left_rel[r0 + kW];
    // Restore the low-rail pad the next consumer of this buffer expects
    // (the row-sweep tail below, or the next band's bfill clamp).
    for (std::size_t j = cols + 1; j < cols + 1 + kW; ++j) nxt[j] = kLo;
    std::int16_t* t = prev;
    prev = nxt;
    nxt = t;
  }
  if (r0 < rows) {
    // Leftover rows: one row-sweep call on the same buffers; its rail
    // test and outputs match the band's by the shared clamp algebra.
    if (!avx2_i16::narrow_core(rows - r0, cols, gap, prof, stride,
                               arow + r0, left_rel + r0, prev, nxt,
                               right_col + r0)) {
      return false;
    }
  }
  if (prev != row0) {
    for (std::size_t j = 0; j <= cols; ++j) row0[j] = prev[j];
  }
  return true;
}

#endif  // FLSA_NARROW_X86

// ---- Per-thread scratch. -------------------------------------------------

template <typename T>
struct NarrowBufs {
  std::vector<T> prof;      ///< full-width narrow profile, row stride padded
  std::vector<T> left_rel;  ///< relative left boundary of the current tile
  std::vector<T> row0;      ///< relative row buffers, kNarrowPad-padded
  std::vector<T> row1;
  std::vector<T> right;     ///< relative right column of the current tile
};

struct NarrowScratch {
  NarrowBufs<std::int16_t> b16;
  NarrowBufs<std::int8_t> b8;
  std::vector<Score> row_line;    ///< int32 bottom boundary carried between
                                  ///< internal row strips
  std::vector<Score> col_line;    ///< int32 right boundary within a strip
  std::vector<Score> right_line;  ///< int32 per-tile right output
};

NarrowScratch& nscratch() {
  thread_local NarrowScratch s;
  return s;
}

template <typename T>
NarrowBufs<T>& bufs(NarrowScratch& s);
template <>
NarrowBufs<std::int16_t>& bufs<std::int16_t>(NarrowScratch& s) {
  return s.b16;
}
template <>
NarrowBufs<std::int8_t>& bufs<std::int8_t>(NarrowScratch& s) {
  return s.b8;
}

/// Whole-call tier gate on the gap penalty: it must be exactly
/// representable, and so must every scan/carry addend the cores form
/// (kScanLanes * |gap|). With that, saturation can only happen on a
/// stored cell value — where it is detected.
template <typename T>
bool tier_gap_ok(Score gap) {
  using Tr = NarrowTraits<T>;
  if (gap > 0 || gap <= Tr::kLo) return false;
  return static_cast<std::int64_t>(Tr::kScanLanes) *
             -static_cast<std::int64_t>(gap) <=
         static_cast<std::int64_t>(Tr::kHi);
}

/// Builds the tier's full-width profile, each row padded with kNarrowPad
/// low-rail entries on BOTH sides: row x's scores live at
/// prof[x * stride + kNarrowPad + j] with stride = 2 * kNarrowPad + cols.
/// The right pad absorbs the row-sweep cores' load overshoot; the left
/// pad absorbs the band core's skewed transpose loads, which start up to
/// kW - 1 elements left of a tile's first column (pad values only ever
/// reach lanes outside their row's valid range). Rejects (returns false)
/// if any score is not strictly inside the tier's rails.
template <typename T, typename ScoreAt>
bool build_profile(std::size_t cols, std::size_t alphabet,
                   const ScoreAt& score_at, std::vector<T>& prof) {
  using Tr = NarrowTraits<T>;
  const std::size_t stride = kNarrowPad + cols + kNarrowPad;
  prof.resize(alphabet * stride);
  for (std::size_t x = 0; x < alphabet; ++x) {
    T* row = prof.data() + x * stride;
    std::fill(row, row + kNarrowPad, static_cast<T>(Tr::kLo));
    std::fill(row + kNarrowPad + cols, row + stride,
              static_cast<T>(Tr::kLo));
    T* dst = row + kNarrowPad;
    for (std::size_t j = 0; j < cols; ++j) {
      const Score s = score_at(static_cast<Residue>(x), j);
      if (s <= Tr::kLo || s >= Tr::kHi) return false;
      dst[j] = static_cast<T>(s);
    }
  }
  return true;
}

/// Runs the narrow core matching the active ISA (scalar off-x86).
template <typename T>
bool run_core(std::size_t rows, std::size_t cols, T gap, const T* prof,
              std::size_t stride, const Residue* arow, NarrowBufs<T>& sb) {
#if FLSA_NARROW_X86
  const SimdIsa isa = active_simd_isa();
  if (isa == SimdIsa::kAvx2) {
    if constexpr (sizeof(T) == 2) {
      return avx2_band_core_i16(rows, cols, gap, prof, stride, arow,
                                sb.left_rel.data(), sb.row0.data(),
                                sb.row1.data(), sb.right.data());
    } else {
      return avx2_i8::narrow_core(rows, cols, gap, prof, stride, arow,
                                  sb.left_rel.data(), sb.row0.data(),
                                  sb.row1.data(), sb.right.data());
    }
  }
  if (isa == SimdIsa::kSse41) {
    if constexpr (sizeof(T) == 2) {
      return sse41_i16::narrow_core(rows, cols, gap, prof, stride, arow,
                                    sb.left_rel.data(), sb.row0.data(),
                                    sb.row1.data(), sb.right.data());
    } else {
      return sse41_i8::narrow_core(rows, cols, gap, prof, stride, arow,
                                   sb.left_rel.data(), sb.row0.data(),
                                   sb.row1.data(), sb.right.data());
    }
  }
#endif
  return narrow_core_scalar<T>(rows, cols, gap, prof, stride, arow,
                               sb.left_rel.data(), sb.row0.data(),
                               sb.row1.data(), sb.right.data());
}

/// Attempts one internal tile in the narrow type T. The boundary values
/// are shifted by the tile's offset into the narrow relative domain;
/// outputs are converted back on success. The offset is the MIDPOINT of
/// the boundary's value range, not its maximum: the tile interior extends
/// below the boundary minimum by up to |gap| * (rows + cols) and above
/// the boundary maximum by the scheme's best climb rate, so centering the
/// boundary halves the headroom a tile needs on each side — off-diagonal
/// tiles with a wide boundary spread fit where a max-anchored domain
/// rails. Returns false when a boundary value does not fit the relative
/// range or the core railed — outputs are untouched in that case.
/// out_bottom may alias top (inputs are consumed into the relative
/// buffers first).
template <typename T>
bool try_tile(std::size_t rows, std::size_t cols, Score gap, const T* prof,
              std::size_t stride, const Residue* arow, const Score* top,
              const Score* left, Score* out_bottom, Score* out_right) {
  using Tr = NarrowTraits<T>;
  NarrowBufs<T>& sb = bufs<T>(nscratch());

  Score bmax = top[0];
  Score bmin = top[0];
  for (std::size_t j = 1; j <= cols; ++j) {
    bmax = std::max(bmax, top[j]);
    bmin = std::min(bmin, top[j]);
  }
  for (std::size_t r = 1; r <= rows; ++r) {
    bmax = std::max(bmax, left[r]);
    bmin = std::min(bmin, left[r]);
  }
  const Score off = bmin + (bmax - bmin) / 2;

  sb.row0.resize(cols + 1 + kNarrowPad);
  sb.row1.resize(cols + 1 + kNarrowPad);
  sb.left_rel.resize(rows + 1);
  sb.right.resize(rows + 1);
  for (std::size_t j = 0; j <= cols; ++j) {
    const Score rel = top[j] - off;
    if (rel <= Tr::kLo || rel >= Tr::kHi) return false;
    sb.row0[j] = static_cast<T>(rel);
  }
  for (std::size_t i = 0; i < kNarrowPad; ++i) {
    sb.row0[cols + 1 + i] = static_cast<T>(Tr::kLo);
  }
  for (std::size_t r = 0; r <= rows; ++r) {
    const Score rel = left[r] - off;
    if (rel <= Tr::kLo || rel >= Tr::kHi) return false;
    sb.left_rel[r] = static_cast<T>(rel);
  }

  if (!run_core<T>(rows, cols, static_cast<T>(gap), prof, stride, arow,
                   sb)) {
    return false;
  }

  for (std::size_t j = 0; j <= cols; ++j) {
    out_bottom[j] = static_cast<Score>(sb.row0[j]) + off;
  }
  for (std::size_t r = 0; r <= rows; ++r) {
    out_right[r] = static_cast<Score>(sb.right[r]) + off;
  }
  return true;
}

void note_escalations(DpCounters* counters, std::uint64_t n) {
  if (n == 0) return;
  if (counters) counters->kernel_escalations += n;
  FLSA_OBS_COUNT("kernel.escalations", n);
}

/// The shared strip-tiling driver: cuts the rectangle into internal tiles
/// of the starting tier's extent, carries exact int32 boundary lines
/// between them, and escalates per tile (int8 -> int16 -> int32).
///
/// score_at(x, j) is the int32 substitution score of residue x against
/// global column j. whole_int32 rescinds the entire call to the int32
/// reference path (used when the scheme itself does not fit any narrow
/// tier); tile_int32(rs, cs, trows, tcols, top, left, out_bottom,
/// out_right) rescored one tile (out_bottom aliases its top slice;
/// out_right never aliases).
template <typename ScoreAt, typename WholeFallback, typename TileFallback>
void narrow_sweep_impl(bool start_int8, std::size_t rows, std::size_t cols,
                       Score gap, std::size_t alphabet,
                       const ScoreAt& score_at, const Residue* arow,
                       std::span<const Score> top,
                       std::span<const Score> left,
                       std::span<Score> out_bottom,
                       std::span<Score> out_right, DpCounters* counters,
                       const WholeFallback& whole_int32,
                       const TileFallback& tile_int32) {
  NarrowScratch& ns = nscratch();
  std::uint64_t escal = 0;

  // Whole-call tier gates: the scheme must fit the tier at all; otherwise
  // the entire call escalates one tier in a single step.
  const bool use8 = start_int8 && tier_gap_ok<std::int8_t>(gap) &&
                    build_profile<std::int8_t>(cols, alphabet, score_at,
                                               ns.b8.prof);
  if (start_int8 && !use8) ++escal;
  const bool use16 =
      tier_gap_ok<std::int16_t>(gap) &&
      build_profile<std::int16_t>(cols, alphabet, score_at, ns.b16.prof);
  if (!use16) {
    ++escal;
    note_escalations(counters, escal);
    whole_int32();
    return;
  }

  const std::size_t ext = use8 ? NarrowTraits<std::int8_t>::kTileExtent
                               : NarrowTraits<std::int16_t>::kTileExtent;
  const std::size_t stride = kNarrowPad + cols + kNarrowPad;

  // row_line starts as the rectangle's top boundary; each strip replaces
  // the columns it finished with its bottom row, so at any moment the
  // entries left of the cursor hold the strip's bottom and those right of
  // it still hold its top. col_line does the same along a strip.
  ns.row_line.assign(top.begin(), top.end());
  for (std::size_t rs = 0; rs < rows; rs += ext) {
    const std::size_t re = std::min(rows, rs + ext);
    const std::size_t trows = re - rs;
    ns.col_line.resize(trows + 1);
    for (std::size_t i = 0; i <= trows; ++i) {
      ns.col_line[i] = left[rs + i];
    }
    for (std::size_t cs = 0; cs < cols; cs += ext) {
      const std::size_t ce = std::min(cols, cs + ext);
      const std::size_t tcols = ce - cs;
      Score* ttop = ns.row_line.data() + cs;
      // The previous tile of this strip overwrote row_line[cs] (the shared
      // corner) with its *bottom* value; this tile's top corner is the
      // previous tile's top-right value, which col_line[0] still holds.
      ttop[0] = ns.col_line[0];
      ns.right_line.resize(trows + 1);
      bool done = false;
      if (use8) {
        done = try_tile<std::int8_t>(trows, tcols, gap,
                                     ns.b8.prof.data() + kNarrowPad + cs,
                                     stride, arow + rs, ttop,
                                     ns.col_line.data(), ttop,
                                     ns.right_line.data());
        if (!done) ++escal;
      }
      if (!done) {
        done = try_tile<std::int16_t>(trows, tcols, gap,
                                      ns.b16.prof.data() + kNarrowPad + cs,
                                      stride, arow + rs, ttop,
                                      ns.col_line.data(), ttop,
                                      ns.right_line.data());
        if (!done) ++escal;
      }
      if (done) {
        if (counters) {
          counters->cells_scored +=
              static_cast<std::uint64_t>(trows) * tcols;
        }
      } else {
        tile_int32(rs, cs, trows, tcols,
                   std::span<const Score>(ttop, tcols + 1),
                   std::span<const Score>(ns.col_line.data(), trows + 1),
                   std::span<Score>(ttop, tcols + 1),
                   std::span<Score>(ns.right_line.data(), trows + 1));
      }
      std::copy(ns.right_line.begin(), ns.right_line.end(),
                ns.col_line.begin());
    }
    if (!out_right.empty()) {
      for (std::size_t i = 0; i <= trows; ++i) {
        out_right[rs + i] = ns.col_line[i];
      }
    }
  }
  std::copy(ns.row_line.begin(), ns.row_line.end(), out_bottom.begin());
  note_escalations(counters, escal);
}

/// Scalar int32 sweep of one tile with profile-sourced scores (the int32
/// fallback of the profiled narrow path, where no subject residues exist
/// to hand to the matrix-based kernels).
void profiled_tile_int32(const QueryProfile& profile, std::size_t col0,
                         Score gap, const Residue* arow, std::size_t rows,
                         std::size_t cols, std::span<const Score> top,
                         std::span<const Score> left,
                         std::span<Score> out_bottom,
                         std::span<Score> out_right, DpCounters* counters) {
  if (out_bottom.data() != top.data()) {
    std::copy(top.begin(), top.end(), out_bottom.begin());
  }
  Score* row = out_bottom.data();
  out_right[0] = row[cols];
  for (std::size_t r = 1; r <= rows; ++r) {
    const Score* pr = profile.row(arow[r - 1]) + col0;
    Score diag = row[0];
    row[0] = left[r];
    Score prev = row[0];
    for (std::size_t c = 1; c <= cols; ++c) {
      const Score up = row[c];
      const Score best =
          std::max(diag + pr[c - 1], std::max(up, prev) + gap);
      diag = up;
      prev = best;
      row[c] = best;
    }
    out_right[r] = row[cols];
  }
  if (counters) {
    counters->cells_scored += static_cast<std::uint64_t>(rows) * cols;
  }
}

}  // namespace

bool narrow_kernel_kind(KernelKind kind) {
  return kind == KernelKind::kInt16 || kind == KernelKind::kInt8;
}

std::size_t narrow_tile_extent(KernelKind kind) {
  FLSA_REQUIRE(narrow_kernel_kind(kind));
  return kind == KernelKind::kInt8
             ? NarrowTraits<std::int8_t>::kTileExtent
             : NarrowTraits<std::int16_t>::kTileExtent;
}

void sweep_rectangle_linear_narrow(KernelKind tier,
                                   std::span<const Residue> a,
                                   std::span<const Residue> b,
                                   const ScoringScheme& scheme,
                                   std::span<const Score> top,
                                   std::span<const Score> left,
                                   std::span<Score> out_bottom,
                                   std::span<Score> out_right,
                                   DpCounters* counters) {
  FLSA_REQUIRE(narrow_kernel_kind(tier));
  const std::size_t rows = a.size();
  const std::size_t cols = b.size();
  FLSA_REQUIRE(scheme.is_linear());
  FLSA_REQUIRE(top.size() == cols + 1);
  FLSA_REQUIRE(left.size() == rows + 1);
  FLSA_REQUIRE(top[0] == left[0]);
  FLSA_REQUIRE(out_bottom.size() == cols + 1);
  FLSA_REQUIRE(out_right.empty() || out_right.size() == rows + 1);
  if (rows == 0 || cols == 0) {
    sweep_rectangle_linear(a, b, scheme, top, left, out_bottom, out_right,
                           counters);
    return;
  }

  const SubstitutionMatrix& sub = scheme.matrix();
  const Residue* bres = b.data();
  const auto score_at = [&](Residue x, std::size_t j) {
    return sub.at(x, bres[j]);
  };
  const auto whole_int32 = [&] {
    sweep_rectangle_linear_simd(a, b, scheme, top, left, out_bottom,
                                out_right, counters);
  };
  const auto tile_int32 = [&](std::size_t rs, std::size_t cs,
                              std::size_t trows, std::size_t tcols,
                              std::span<const Score> ttop,
                              std::span<const Score> tleft,
                              std::span<Score> tbottom,
                              std::span<Score> tright) {
    sweep_rectangle_linear_simd(a.subspan(rs, trows), b.subspan(cs, tcols),
                                scheme, ttop, tleft, tbottom, tright,
                                counters);
  };
  narrow_sweep_impl(tier == KernelKind::kInt8, rows, cols,
                    scheme.gap_extend(), sub.alphabet().size(), score_at,
                    a.data(), top, left, out_bottom, out_right, counters,
                    whole_int32, tile_int32);
}

std::vector<Score> last_row_profiled_narrow(KernelKind tier,
                                            std::span<const Residue> a,
                                            const QueryProfile& profile,
                                            const ScoringScheme& scheme,
                                            DpCounters* counters) {
  FLSA_REQUIRE(narrow_kernel_kind(tier));
  FLSA_REQUIRE(scheme.is_linear());
  const std::size_t rows = a.size();
  const std::size_t cols = profile.length();
  if (rows == 0 || cols == 0) {
    return last_row_profiled(a, profile, scheme, counters);
  }
  std::vector<Score> row(cols + 1);
  std::vector<Score> left(rows + 1);
  init_global_boundary_linear(scheme, row);
  init_global_boundary_linear(scheme, left);

  const Score gap = scheme.gap_extend();
  const auto score_at = [&](Residue x, std::size_t j) {
    return profile.row(x)[j];
  };
  const auto whole_int32 = [&] {
    const std::vector<Score> ref =
        last_row_profiled_simd(a, profile, scheme, counters);
    std::copy(ref.begin(), ref.end(), row.begin());
  };
  const auto tile_int32 = [&](std::size_t rs, std::size_t cs,
                              std::size_t trows, std::size_t tcols,
                              std::span<const Score> ttop,
                              std::span<const Score> tleft,
                              std::span<Score> tbottom,
                              std::span<Score> tright) {
    (void)rs;
    profiled_tile_int32(profile, cs, gap, a.data() + rs, trows, tcols, ttop,
                        tleft, tbottom, tright, counters);
  };
  narrow_sweep_impl(tier == KernelKind::kInt8, rows, cols, gap,
                    scheme.alphabet().size(), score_at, a.data(),
                    std::span<const Score>(row), std::span<const Score>(left),
                    std::span<Score>(row), {}, counters, whole_int32,
                    tile_int32);
  return row;
}

}  // namespace flsa
