// Narrow-integer (int16 / int8) saturating sweep kernels with overflow
// escalation.
//
// The int32 SIMD kernel (dp/kernel_simd.hpp) moves 8 lanes per AVX2
// vector; 16-bit lanes double that and 8-bit lanes double it again — *if*
// the DP values fit. They usually do not fit globally (a global DPM's
// values span the whole alignment's score range), so the narrow kernels
// work on bounded tiles in a *relative* domain:
//
//   1. A rectangle larger than the tier's tile extent is internally cut
//      into tiles of at most narrow_tile_extent() per dimension, with
//      exact int32 boundary lines carried between them.
//   2. Each tile subtracts the maximum of its boundary values (the offset)
//      and sweeps entirely in the narrow type with saturating arithmetic.
//   3. Every input is pre-checked to be exactly representable; then every
//      stored narrow value equals clamp(true value), and a stored value
//      that equals a saturation rail is a sound and complete overflow
//      signal (the clamp-algebra argument is in kernel_narrow_lanes.inc).
//      A railed tile is aborted and transparently rescored with the next
//      wider tier — int8 -> int16 -> int32 — so the final boundary lines
//      are always bit-identical to the scalar int32 reference.
//
// Escalations are counted in DpCounters::kernel_escalations (and the
// "kernel.escalations" obs metric): one per tier step, whether the step
// was a per-tile saturation abort or a whole-call representability
// rejection (scheme magnitude or gap out of the tier's range).
//
// The escalation decision is deterministic across hosts: the scalar core
// (the off-x86 fallback) stores the same clamped values and aborts on the
// same rows as the SIMD cores, and the representability checks use fixed
// per-tier constants rather than the active ISA's lane count.
#pragma once

#include <span>
#include <vector>

#include "dp/counters.hpp"
#include "dp/kernel.hpp"
#include "dp/query_profile.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// True for the saturating tiers (kInt16 / kInt8).
bool narrow_kernel_kind(KernelKind kind);

/// Internal tile extent (per dimension) the tier cuts large rectangles
/// into: 1024 for int16, 64 for int8. Sized so realistic schemes keep a
/// tile's relative score span inside the narrow range (docs/tuning.md).
std::size_t narrow_tile_extent(KernelKind kind);

/// Drop-in replacement for sweep_rectangle_linear (same boundary layout,
/// same aliasing guarantee for out_bottom/top, same cells_scored
/// accounting) running the requested narrow tier with escalation. `tier`
/// must be kInt16 or kInt8. Never fails: tiles the wider tiers cannot
/// avoid are rescored in int32.
void sweep_rectangle_linear_narrow(KernelKind tier,
                                   std::span<const Residue> a,
                                   std::span<const Residue> b,
                                   const ScoringScheme& scheme,
                                   std::span<const Score> top,
                                   std::span<const Score> left,
                                   std::span<Score> out_bottom,
                                   std::span<Score> out_right,
                                   DpCounters* counters = nullptr);

/// Profiled last row through the narrow lanes: substitution scores come
/// from the QueryProfile's flat rows (converted to the narrow type per
/// call). Bit-identical to last_row_profiled. `tier` must be kInt16 or
/// kInt8.
std::vector<Score> last_row_profiled_narrow(KernelKind tier,
                                            std::span<const Residue> a,
                                            const QueryProfile& profile,
                                            const ScoringScheme& scheme,
                                            DpCounters* counters = nullptr);

}  // namespace flsa
