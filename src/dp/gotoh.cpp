#include "dp/gotoh.hpp"

#include <algorithm>
#include <vector>

#include "dp/fullmatrix.hpp"
#include "dp/kernel_simd.hpp"
#include "support/assert.hpp"

namespace flsa {

void sweep_rectangle_affine(std::span<const Residue> a,
                            std::span<const Residue> b,
                            const ScoringScheme& scheme,
                            std::span<const AffineCell> top,
                            std::span<const AffineCell> left,
                            std::span<AffineCell> out_bottom,
                            std::span<AffineCell> out_right,
                            DpCounters* counters) {
  const std::size_t rows = a.size();
  const std::size_t cols = b.size();
  FLSA_REQUIRE(top.size() == cols + 1);
  FLSA_REQUIRE(left.size() == rows + 1);
  FLSA_REQUIRE(top[0] == left[0]);
  FLSA_REQUIRE(out_bottom.size() == cols + 1);
  FLSA_REQUIRE(out_right.empty() || out_right.size() == rows + 1);

  const Score open = scheme.gap_open();
  const Score ext = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();

  if (out_bottom.data() != top.data()) {
    std::copy(top.begin(), top.end(), out_bottom.begin());
  }
  AffineCell* row = out_bottom.data();
  if (!out_right.empty()) out_right[0] = row[cols];

  for (std::size_t r = 1; r <= rows; ++r) {
    AffineCell diag = row[0];
    row[0] = left[r];
    const Residue ar = a[r - 1];
    for (std::size_t c = 1; c <= cols; ++c) {
      const AffineCell up = row[c];
      const AffineCell& lf = row[c - 1];
      AffineCell cell;
      cell.ix = std::max(up.d + open, up.ix) + ext;
      cell.iy = std::max(lf.d + open, lf.iy) + ext;
      cell.d = std::max(diag.d + sub.at(ar, b[c - 1]),
                        std::max(cell.ix, cell.iy));
      diag = up;
      row[c] = cell;
    }
    if (!out_right.empty()) out_right[r] = row[cols];
  }

  if (counters) {
    counters->cells_scored += static_cast<std::uint64_t>(rows) * cols;
  }
}

void sweep_rectangle_affine(KernelKind kind, std::span<const Residue> a,
                            std::span<const Residue> b,
                            const ScoringScheme& scheme,
                            std::span<const AffineCell> top,
                            std::span<const AffineCell> left,
                            std::span<AffineCell> out_bottom,
                            std::span<AffineCell> out_right,
                            DpCounters* counters) {
  const KernelKind resolved = resolve_kernel(kind);
  // The narrow tiers have no affine core (three interdependent saturating
  // matrices triple the rail-tracking work for little win); affine sweeps
  // run the int32 SIMD kernel under any narrow request.
  if (resolved == KernelKind::kSimd || resolved == KernelKind::kInt16 ||
      resolved == KernelKind::kInt8) {
    sweep_rectangle_affine_simd(a, b, scheme, top, left, out_bottom,
                                out_right, counters);
  } else {
    sweep_rectangle_affine(a, b, scheme, top, left, out_bottom, out_right,
                           counters);
  }
}

void init_global_boundary_affine(const ScoringScheme& scheme,
                                 std::span<AffineCell> boundary,
                                 bool horizontal) {
  if (boundary.empty()) return;
  boundary[0] = AffineCell{0, kNegInf, kNegInf};
  const Score open = scheme.gap_open();
  const Score ext = scheme.gap_extend();
  for (std::size_t i = 1; i < boundary.size(); ++i) {
    const Score run = open + static_cast<Score>(i) * ext;
    AffineCell cell;
    cell.d = run;
    // The boundary itself is one ongoing gap run: horizontal boundaries are
    // gap-in-a runs (Iy lane), vertical ones gap-in-b runs (Ix lane).
    cell.ix = horizontal ? kNegInf : run;
    cell.iy = horizontal ? run : kNegInf;
    boundary[i] = cell;
  }
}

void fill_full_matrix_affine(std::span<const Residue> a,
                             std::span<const Residue> b,
                             const ScoringScheme& scheme,
                             std::span<const AffineCell> top,
                             std::span<const AffineCell> left,
                             Matrix2D<AffineCell>& dpm, DpCounters* counters) {
  const std::size_t rows = a.size();
  const std::size_t cols = b.size();
  FLSA_REQUIRE(top.size() == cols + 1);
  FLSA_REQUIRE(left.size() == rows + 1);
  FLSA_REQUIRE(top[0] == left[0]);

  dpm.resize(rows + 1, cols + 1);
  std::copy(top.begin(), top.end(), dpm.row(0));
  const Score open = scheme.gap_open();
  const Score ext = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();
  for (std::size_t r = 1; r <= rows; ++r) {
    const AffineCell* prev = dpm.row(r - 1);
    AffineCell* curr = dpm.row(r);
    curr[0] = left[r];
    const Residue ar = a[r - 1];
    for (std::size_t c = 1; c <= cols; ++c) {
      AffineCell cell;
      cell.ix = std::max(prev[c].d + open, prev[c].ix) + ext;
      cell.iy = std::max(curr[c - 1].d + open, curr[c - 1].iy) + ext;
      cell.d = std::max(prev[c - 1].d + sub.at(ar, b[c - 1]),
                        std::max(cell.ix, cell.iy));
      curr[c] = cell;
    }
  }
  if (counters) {
    counters->cells_stored += static_cast<std::uint64_t>(rows) * cols;
  }
}

void fill_matrix_region_affine(std::span<const Residue> a,
                               std::span<const Residue> b,
                               const ScoringScheme& scheme,
                               Matrix2D<AffineCell>& dpm, std::size_t row0,
                               std::size_t col0, std::size_t rows,
                               std::size_t cols) {
  FLSA_REQUIRE(row0 >= 1 && col0 >= 1);
  FLSA_REQUIRE(row0 + rows <= dpm.rows() && col0 + cols <= dpm.cols());
  const Score open = scheme.gap_open();
  const Score ext = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();
  for (std::size_t r = row0; r < row0 + rows; ++r) {
    const AffineCell* prev = dpm.row(r - 1);
    AffineCell* curr = dpm.row(r);
    const Residue ar = a[r - 1];
    for (std::size_t c = col0; c < col0 + cols; ++c) {
      AffineCell cell;
      cell.ix = std::max(prev[c].d + open, prev[c].ix) + ext;
      cell.iy = std::max(curr[c - 1].d + open, curr[c - 1].iy) + ext;
      cell.d = std::max(prev[c - 1].d + sub.at(ar, b[c - 1]),
                        std::max(cell.ix, cell.iy));
      curr[c] = cell;
    }
  }
}

AffineState traceback_rectangle_affine(std::span<const Residue> a,
                                       std::span<const Residue> b,
                                       const ScoringScheme& scheme,
                                       const Matrix2D<AffineCell>& dpm,
                                       std::size_t start_row,
                                       std::size_t start_col,
                                       AffineState state, Path& path,
                                       DpCounters* counters) {
  FLSA_REQUIRE(start_row < dpm.rows() && start_col < dpm.cols());
  const Score open = scheme.gap_open();
  const Score ext = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();
  std::size_t r = start_row;
  std::size_t c = start_col;
  std::uint64_t steps = 0;
  while (r > 0 && c > 0) {
    const AffineCell& cell = dpm(r, c);
    switch (state) {
      case AffineState::kD: {
        const Score via_diag = dpm(r - 1, c - 1).d + sub.at(a[r - 1], b[c - 1]);
        if (cell.d == via_diag) {
          path.push_traceback(Move::kDiag);
          --r;
          --c;
          ++steps;
        } else if (cell.d == cell.ix) {
          state = AffineState::kIx;
        } else {
          FLSA_ASSERT(cell.d == cell.iy);
          state = AffineState::kIy;
        }
        break;
      }
      case AffineState::kIx: {
        path.push_traceback(Move::kUp);
        // Prefer closing the gap run over extending it.
        if (cell.ix == dpm(r - 1, c).d + open + ext) {
          state = AffineState::kD;
        } else {
          FLSA_ASSERT(cell.ix == dpm(r - 1, c).ix + ext);
        }
        --r;
        ++steps;
        break;
      }
      case AffineState::kIy: {
        path.push_traceback(Move::kLeft);
        if (cell.iy == dpm(r, c - 1).d + open + ext) {
          state = AffineState::kD;
        } else {
          FLSA_ASSERT(cell.iy == dpm(r, c - 1).iy + ext);
        }
        --c;
        ++steps;
        break;
      }
    }
  }
  if (counters) counters->traceback_steps += steps;
  return state;
}

Alignment full_matrix_align_affine(const Sequence& a, const Sequence& b,
                                   const ScoringScheme& scheme,
                                   DpCounters* counters) {
  std::vector<AffineCell> top(b.size() + 1);
  std::vector<AffineCell> left(a.size() + 1);
  init_global_boundary_affine(scheme, top, /*horizontal=*/true);
  init_global_boundary_affine(scheme, left, /*horizontal=*/false);
  Matrix2D<AffineCell> dpm;
  fill_full_matrix_affine(a.residues(), b.residues(), scheme, top, left, dpm,
                          counters);
  Path path(Cell{a.size(), b.size()});
  traceback_rectangle_affine(a.residues(), b.residues(), scheme, dpm,
                             a.size(), b.size(), AffineState::kD, path,
                             counters);
  extend_path_to_origin(path);
  Alignment out = alignment_from_path(a, b, path, scheme);
  FLSA_ASSERT(out.score == dpm(a.size(), b.size()).d);
  return out;
}

Score global_score_affine(std::span<const Residue> a,
                          std::span<const Residue> b,
                          const ScoringScheme& scheme, DpCounters* counters) {
  std::vector<AffineCell> row(b.size() + 1);
  std::vector<AffineCell> left(a.size() + 1);
  init_global_boundary_affine(scheme, row, /*horizontal=*/true);
  init_global_boundary_affine(scheme, left, /*horizontal=*/false);
  sweep_rectangle_affine(a, b, scheme, row, left, row, {}, counters);
  return row.back().d;
}

}  // namespace flsa
