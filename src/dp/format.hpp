// Alignment report formatting: the interchange shapes downstream tools
// expect — a BLAST-style coordinate-annotated block and a one-line TSV
// record — in addition to Alignment::pretty()'s bare three-line view.
#pragma once

#include <string>

#include "dp/alignment.hpp"

namespace flsa {

/// BLAST-pairwise-style rendering with 1-based residue coordinates:
///
///   Query  13  ACGT-ACG  19
///              |||| ||.
///   Sbjct  2   ACGTTACA  9
///
/// Coordinates respect the alignment's a_begin/b_begin offsets (local and
/// semi-global regions render with their true positions).
std::string format_blast(const Alignment& alignment,
                         const std::string& query_id,
                         const std::string& subject_id,
                         std::size_t width = 60);

/// One tab-separated record:
/// query, subject, score, identity%, alignment length, gaps,
/// a_begin, a_end, b_begin, b_end, cigar.
std::string format_tsv(const Alignment& alignment,
                       const std::string& query_id,
                       const std::string& subject_id);

/// Header line matching format_tsv's columns.
std::string tsv_header();

}  // namespace flsa
