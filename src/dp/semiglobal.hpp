// Semi-global alignment modes (free end gaps).
//
// Two practically important relaxations of global alignment, both direct
// boundary variations of the same DP:
//  - fitting: align ALL of `a` against some window of `b` (free gaps at
//    both ends of `b`) — locating a gene in a chromosome;
//  - overlap (dovetail): align a suffix of `a` against a prefix of `b`
//    (free prefix of `a`, free suffix of `b`) — read-overlap detection in
//    assembly.
// Full-matrix solvers live here as the reference; the linear-space
// versions built on FastLSA live in core/semiglobal.hpp.
#pragma once

#include "dp/alignment.hpp"
#include "dp/counters.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// Result of a score-only semi-global pass: the optimal score and the DPM
/// cell where the optimal path ends. Ties resolve to the smallest
/// coordinate (deterministic).
struct SemiGlobalEnd {
  Score score = 0;
  std::size_t row = 0;
  std::size_t col = 0;
};

/// Linear-space fitting score pass: top row free (zeros), left column a
/// gap ramp; optimum over the last row. end.row == a.size().
SemiGlobalEnd fitting_score_linear(std::span<const Residue> a,
                                   std::span<const Residue> b,
                                   const ScoringScheme& scheme,
                                   DpCounters* counters = nullptr);

/// Linear-space overlap score pass: left column free (zeros), top row a
/// gap ramp; optimum over the last row. end.row == a.size().
SemiGlobalEnd overlap_score_linear(std::span<const Residue> a,
                                   std::span<const Residue> b,
                                   const ScoringScheme& scheme,
                                   DpCounters* counters = nullptr);

/// Full-matrix fitting alignment. The Alignment's b_begin/b_end give the
/// matched window of `b`; a_begin/a_end always cover all of `a`.
Alignment fitting_align_full_matrix(const Sequence& a, const Sequence& b,
                                    const ScoringScheme& scheme,
                                    DpCounters* counters = nullptr);

/// Full-matrix overlap alignment. a_begin..a_end is the matched suffix of
/// `a`; b_begin..b_end the matched prefix of `b`.
Alignment overlap_align_full_matrix(const Sequence& a, const Sequence& b,
                                    const ScoringScheme& scheme,
                                    DpCounters* counters = nullptr);

/// Affine-gap fitting alignment (Gotoh lanes, free `b` ends).
Alignment fitting_align_full_matrix_affine(const Sequence& a,
                                           const Sequence& b,
                                           const ScoringScheme& scheme,
                                           DpCounters* counters = nullptr);

/// Affine-gap overlap alignment (Gotoh lanes, free `a` prefix and `b`
/// suffix).
Alignment overlap_align_full_matrix_affine(const Sequence& a,
                                           const Sequence& b,
                                           const ScoringScheme& scheme,
                                           DpCounters* counters = nullptr);

}  // namespace flsa
