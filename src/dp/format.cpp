#include "dp/format.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/assert.hpp"

namespace flsa {

std::string format_blast(const Alignment& alignment,
                         const std::string& query_id,
                         const std::string& subject_id,
                         std::size_t width) {
  FLSA_REQUIRE(width >= 10);
  std::ostringstream os;
  os << "Query: " << query_id << "  Subject: " << subject_id << '\n'
     << "Score = " << alignment.score << ", Identities = "
     << alignment.matches() << "/" << alignment.length() << " ("
     << std::fixed << std::setprecision(0) << 100.0 * alignment.identity()
     << "%), Gaps = " << alignment.gap_count() << '\n';

  // 1-based inclusive coordinates advance only on residues.
  std::size_t a_pos = alignment.a_begin;
  std::size_t b_pos = alignment.b_begin;
  const std::size_t label_width =
      std::max<std::size_t>(6, std::to_string(std::max(
                                   alignment.a_end, alignment.b_end))
                                   .size());
  for (std::size_t chunk = 0; chunk < alignment.length(); chunk += width) {
    const std::size_t len = std::min(width, alignment.length() - chunk);
    const std::string qa = alignment.gapped_a.substr(chunk, len);
    const std::string qb = alignment.gapped_b.substr(chunk, len);
    std::size_t a_res = 0, b_res = 0;
    std::string bars;
    for (std::size_t i = 0; i < len; ++i) {
      a_res += qa[i] != '-';
      b_res += qb[i] != '-';
      bars.push_back(qa[i] != '-' && qa[i] == qb[i]
                         ? '|'
                         : (qa[i] == '-' || qb[i] == '-' ? ' ' : '.'));
    }
    os << '\n'
       << "Query  " << std::setw(static_cast<int>(label_width)) << std::left
       << (a_res ? a_pos + 1 : a_pos) << ' ' << qa << "  "
       << a_pos + a_res << '\n'
       << "       " << std::setw(static_cast<int>(label_width)) << ' '
       << ' ' << bars << '\n'
       << "Sbjct  " << std::setw(static_cast<int>(label_width)) << std::left
       << (b_res ? b_pos + 1 : b_pos) << ' ' << qb << "  "
       << b_pos + b_res << '\n';
    a_pos += a_res;
    b_pos += b_res;
  }
  return os.str();
}

std::string tsv_header() {
  return "query\tsubject\tscore\tidentity\tlength\tgaps\ta_begin\ta_end\t"
         "b_begin\tb_end\tcigar";
}

std::string format_tsv(const Alignment& alignment,
                       const std::string& query_id,
                       const std::string& subject_id) {
  std::ostringstream os;
  os << query_id << '\t' << subject_id << '\t' << alignment.score << '\t'
     << std::fixed << std::setprecision(2) << 100.0 * alignment.identity()
     << '\t' << alignment.length() << '\t' << alignment.gap_count() << '\t'
     << alignment.a_begin << '\t' << alignment.a_end << '\t'
     << alignment.b_begin << '\t' << alignment.b_end << '\t'
     << alignment.cigar();
  return os.str();
}

}  // namespace flsa
