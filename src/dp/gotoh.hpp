// Affine-gap (Gotoh) dynamic programming.
//
// The paper evaluates linear gap penalties; affine gaps (open + extend) are
// the standard bioinformatics extension and FastLSA generalizes to them by
// caching (D, Ix, Iy) triples on grid lines instead of single scores. This
// module provides the affine counterparts of kernel.hpp / fullmatrix.hpp:
//   D  — best score overall,
//   Ix — best score with a[i] at the end of a gap-in-b run (vertical),
//   Iy — best score with b[j] at the end of a gap-in-a run (horizontal).
#pragma once

#include <span>

#include "dp/alignment.hpp"
#include "dp/counters.hpp"
#include "dp/kernel.hpp"
#include "dp/matrix.hpp"
#include "dp/path.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// One DPM entry of the affine recurrence.
struct AffineCell {
  Score d = kNegInf;
  Score ix = kNegInf;
  Score iy = kNegInf;
  bool operator==(const AffineCell&) const = default;
};

/// Which affine lane a traceback currently follows. A path crossing a
/// FastLSA block boundary mid-gap must resume in the same lane.
enum class AffineState : std::uint8_t { kD, kIx, kIy };

/// Affine analogue of sweep_rectangle_linear: boundary caches and outputs
/// are AffineCell rows/columns. `out_bottom` may alias `top`.
void sweep_rectangle_affine(std::span<const Residue> a,
                            std::span<const Residue> b,
                            const ScoringScheme& scheme,
                            std::span<const AffineCell> top,
                            std::span<const AffineCell> left,
                            std::span<AffineCell> out_bottom,
                            std::span<AffineCell> out_right,
                            DpCounters* counters = nullptr);

/// Dispatching overload: runs the affine sweep with the requested kernel
/// (kAuto resolves against the CPU). All kernels agree bit-for-bit.
void sweep_rectangle_affine(KernelKind kind, std::span<const Residue> a,
                            std::span<const Residue> b,
                            const ScoringScheme& scheme,
                            std::span<const AffineCell> top,
                            std::span<const AffineCell> left,
                            std::span<AffineCell> out_bottom,
                            std::span<AffineCell> out_right,
                            DpCounters* counters = nullptr);

/// Global-alignment initial boundary for the affine recurrence along a row
/// (horizontal gap run: d = iy = open + i*extend) or a column (vertical).
void init_global_boundary_affine(const ScoringScheme& scheme,
                                 std::span<AffineCell> boundary,
                                 bool horizontal);

/// Fills three full matrices for the rectangle with the given boundary
/// caches. Matrices are resized to (a.size()+1) x (b.size()+1).
void fill_full_matrix_affine(std::span<const Residue> a,
                             std::span<const Residue> b,
                             const ScoringScheme& scheme,
                             std::span<const AffineCell> top,
                             std::span<const AffineCell> left,
                             Matrix2D<AffineCell>& dpm,
                             DpCounters* counters = nullptr);

/// Affine analogue of fill_matrix_region_linear: fills one region of an
/// already-boundary-initialized affine DPM (tiled base-case unit of work).
void fill_matrix_region_affine(std::span<const Residue> a,
                               std::span<const Residue> b,
                               const ScoringScheme& scheme,
                               Matrix2D<AffineCell>& dpm, std::size_t row0,
                               std::size_t col0, std::size_t rows,
                               std::size_t cols);

/// Affine traceback through a filled rectangle starting at
/// (start_row, start_col) in lane `state`; stops at the top row or left
/// column and returns the lane the path was in when it stopped (so FastLSA
/// can resume a gap run in the next block). Deterministic tie-breaking:
/// lane D prefers diagonal, then Ix, then Iy; gap lanes prefer closing the
/// gap (returning to D) over extending it.
AffineState traceback_rectangle_affine(std::span<const Residue> a,
                                       std::span<const Residue> b,
                                       const ScoringScheme& scheme,
                                       const Matrix2D<AffineCell>& dpm,
                                       std::size_t start_row,
                                       std::size_t start_col,
                                       AffineState state, Path& path,
                                       DpCounters* counters = nullptr);

/// Full-matrix global alignment with affine gaps (the affine FM baseline).
Alignment full_matrix_align_affine(const Sequence& a, const Sequence& b,
                                   const ScoringScheme& scheme,
                                   DpCounters* counters = nullptr);

/// Optimal affine global score in linear space.
Score global_score_affine(std::span<const Residue> a,
                          std::span<const Residue> b,
                          const ScoringScheme& scheme,
                          DpCounters* counters = nullptr);

}  // namespace flsa
