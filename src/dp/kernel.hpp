// Score-only DP sweeps over a rectangle with explicit boundary caches.
//
// This is the workhorse shared by Hirschberg (its LastRow computation) and
// FastLSA (the Fill Grid Cache phase solves each tile with exactly this
// kernel): given the DPM values on a rectangle's top row and left column,
// compute the values on its bottom row and right column in O(cols) space
// without storing the interior.
#pragma once

#include <span>
#include <string_view>

#include "dp/counters.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// Which sweep implementation a score-only rectangle is computed with.
/// The scalar row sweep is the reference; the SIMD kernel walks the DPM by
/// anti-diagonals (dp/kernel_simd.hpp) and produces bit-identical boundary
/// rows/columns and counters.
enum class KernelKind : std::uint8_t {
  kAuto,    ///< pick the fastest kernel this CPU supports (default)
  kScalar,  ///< the reference row sweep
  kSimd,    ///< vectorized anti-diagonal sweep (scalar fallback off-x86)
};

/// Resolves kAuto against the runtime CPU: kSimd when a vector ISA is
/// available, kScalar otherwise. kScalar/kSimd pass through unchanged
/// (kSimd is safe everywhere — it degrades to a scalar anti-diagonal
/// sweep on CPUs without SSE4.1/AVX2).
KernelKind resolve_kernel(KernelKind requested);

/// "auto" | "scalar" | "simd".
const char* to_string(KernelKind kind);

/// Parses "auto" / "scalar" / "simd" (returns false on anything else).
bool parse_kernel_kind(std::string_view text, KernelKind* out);

/// Sweeps the rectangle spanned by residues `a` (rows) x `b` (columns) with
/// a linear-gap recurrence.
///
/// Boundary layout: `top` has b.size()+1 entries (the DPM row above the
/// rectangle, including the shared corner), `left` has a.size()+1 entries
/// (the DPM column left of the rectangle, including the same corner);
/// top[0] must equal left[0].
///
/// Outputs: `out_bottom` (b.size()+1 entries, the rectangle's last row
/// including its left boundary value left[a.size()]) and `out_right`
/// (a.size()+1 entries, the last column including top[b.size()]).
/// `out_right` may be empty when only the bottom row is needed (Hirschberg).
/// `out_bottom` may alias `top` (in-place row propagation).
///
/// Adds a.size()*b.size() to counters->cells_scored when counters != null.
void sweep_rectangle_linear(std::span<const Residue> a,
                            std::span<const Residue> b,
                            const ScoringScheme& scheme,
                            std::span<const Score> top,
                            std::span<const Score> left,
                            std::span<Score> out_bottom,
                            std::span<Score> out_right,
                            DpCounters* counters = nullptr);

/// Dispatching overload: runs the sweep with the requested kernel (kAuto
/// resolves against the CPU). All kernels agree bit-for-bit.
void sweep_rectangle_linear(KernelKind kind, std::span<const Residue> a,
                            std::span<const Residue> b,
                            const ScoringScheme& scheme,
                            std::span<const Score> top,
                            std::span<const Score> left,
                            std::span<Score> out_bottom,
                            std::span<Score> out_right,
                            DpCounters* counters = nullptr);

/// Fills `boundary` (size len+1) with the global-alignment initial boundary
/// 0, g, 2g, ... for a linear scheme (the leading-gap row/column of the DPM).
void init_global_boundary_linear(const ScoringScheme& scheme,
                                 std::span<Score> boundary);

/// Convenience: last row of the global-alignment DPM of `a` x `b`
/// (Hirschberg's LastRow). Returns b.size()+1 scores.
std::vector<Score> last_row_linear(std::span<const Residue> a,
                                   std::span<const Residue> b,
                                   const ScoringScheme& scheme,
                                   DpCounters* counters = nullptr);

/// Dispatching overload of last_row_linear.
std::vector<Score> last_row_linear(KernelKind kind,
                                   std::span<const Residue> a,
                                   std::span<const Residue> b,
                                   const ScoringScheme& scheme,
                                   DpCounters* counters = nullptr);

/// Optimal global alignment *score* of `a` x `b` in linear space.
Score global_score_linear(std::span<const Residue> a,
                          std::span<const Residue> b,
                          const ScoringScheme& scheme,
                          DpCounters* counters = nullptr);

/// Dispatching overload of global_score_linear.
Score global_score_linear(KernelKind kind, std::span<const Residue> a,
                          std::span<const Residue> b,
                          const ScoringScheme& scheme,
                          DpCounters* counters = nullptr);

}  // namespace flsa
