// Score-only DP sweeps over a rectangle with explicit boundary caches.
//
// This is the workhorse shared by Hirschberg (its LastRow computation) and
// FastLSA (the Fill Grid Cache phase solves each tile with exactly this
// kernel): given the DPM values on a rectangle's top row and left column,
// compute the values on its bottom row and right column in O(cols) space
// without storing the interior.
#pragma once

#include <span>
#include <string_view>

#include "dp/counters.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// Which sweep implementation a score-only rectangle is computed with.
/// The scalar row sweep is the reference; the SIMD kernel walks the DPM by
/// anti-diagonals (dp/kernel_simd.hpp); the narrow tiers sweep saturating
/// int16/int8 lanes and transparently rescore any tile that saturates with
/// the next wider tier (dp/kernel_narrow.hpp). Every kernel produces
/// bit-identical boundary rows/columns and scores.
enum class KernelKind : std::uint8_t {
  kAuto,    ///< pick the fastest always-exact kernel this CPU supports
  kScalar,  ///< the reference row sweep
  kSimd,    ///< vectorized int32 anti-diagonal sweep (scalar off-x86)
  kInt16,   ///< saturating 16-bit lanes, escalating int16 -> int32
  kInt8,    ///< saturating 8-bit lanes, escalating int8 -> int16 -> int32
};

/// One row of the kernel dispatch table.
struct KernelInfo {
  KernelKind kind;
  const char* name;     ///< the CLI spelling ("auto", "scalar", ...)
  const char* summary;  ///< one-line description for --list-kernels/help
};

/// The kernel dispatch table: every registered KernelKind with its name
/// and summary, in declaration order. to_string/parse_kernel_kind and the
/// CLI's --kernel help are all generated from this single table, so a new
/// kernel registered here is automatically parseable and listed.
std::span<const KernelInfo> kernel_registry();

/// Resolves kAuto against the runtime CPU: kSimd when a vector ISA is
/// available, kScalar otherwise. Everything else passes through unchanged
/// (every kind is safe everywhere — kSimd degrades to a scalar
/// anti-diagonal sweep off-x86, and the narrow tiers escalate through it).
/// kAuto deliberately never resolves to a narrow tier: the narrow kernels
/// are opt-in because their win depends on the scheme's magnitude
/// (docs/tuning.md).
KernelKind resolve_kernel(KernelKind requested);

/// The registry name: "auto" | "scalar" | "simd" | "int16" | "int8".
const char* to_string(KernelKind kind);

/// Parses any name in kernel_registry() (returns false on anything else).
bool parse_kernel_kind(std::string_view text, KernelKind* out);

/// Sweeps the rectangle spanned by residues `a` (rows) x `b` (columns) with
/// a linear-gap recurrence.
///
/// Boundary layout: `top` has b.size()+1 entries (the DPM row above the
/// rectangle, including the shared corner), `left` has a.size()+1 entries
/// (the DPM column left of the rectangle, including the same corner);
/// top[0] must equal left[0].
///
/// Outputs: `out_bottom` (b.size()+1 entries, the rectangle's last row
/// including its left boundary value left[a.size()]) and `out_right`
/// (a.size()+1 entries, the last column including top[b.size()]).
/// `out_right` may be empty when only the bottom row is needed (Hirschberg).
/// `out_bottom` may alias `top` (in-place row propagation).
///
/// Adds a.size()*b.size() to counters->cells_scored when counters != null.
void sweep_rectangle_linear(std::span<const Residue> a,
                            std::span<const Residue> b,
                            const ScoringScheme& scheme,
                            std::span<const Score> top,
                            std::span<const Score> left,
                            std::span<Score> out_bottom,
                            std::span<Score> out_right,
                            DpCounters* counters = nullptr);

/// Dispatching overload: runs the sweep with the requested kernel (kAuto
/// resolves against the CPU). All kernels agree bit-for-bit.
void sweep_rectangle_linear(KernelKind kind, std::span<const Residue> a,
                            std::span<const Residue> b,
                            const ScoringScheme& scheme,
                            std::span<const Score> top,
                            std::span<const Score> left,
                            std::span<Score> out_bottom,
                            std::span<Score> out_right,
                            DpCounters* counters = nullptr);

/// Fills `boundary` (size len+1) with the global-alignment initial boundary
/// 0, g, 2g, ... for a linear scheme (the leading-gap row/column of the DPM).
void init_global_boundary_linear(const ScoringScheme& scheme,
                                 std::span<Score> boundary);

/// Convenience: last row of the global-alignment DPM of `a` x `b`
/// (Hirschberg's LastRow). Returns b.size()+1 scores.
std::vector<Score> last_row_linear(std::span<const Residue> a,
                                   std::span<const Residue> b,
                                   const ScoringScheme& scheme,
                                   DpCounters* counters = nullptr);

/// Dispatching overload of last_row_linear.
std::vector<Score> last_row_linear(KernelKind kind,
                                   std::span<const Residue> a,
                                   std::span<const Residue> b,
                                   const ScoringScheme& scheme,
                                   DpCounters* counters = nullptr);

/// Optimal global alignment *score* of `a` x `b` in linear space.
Score global_score_linear(std::span<const Residue> a,
                          std::span<const Residue> b,
                          const ScoringScheme& scheme,
                          DpCounters* counters = nullptr);

/// Dispatching overload of global_score_linear.
Score global_score_linear(KernelKind kind, std::span<const Residue> a,
                          std::span<const Residue> b,
                          const ScoringScheme& scheme,
                          DpCounters* counters = nullptr);

}  // namespace flsa
