// Query-profile score kernel.
//
// The classic layout optimization for alignment inner loops: instead of a
// 2-D substitution lookup `sub(a_i, b_j)` per cell, precompute for every
// residue x the contiguous row P[x][j] = sub(x, b[j]). The inner loop
// then streams one flat array (perfect spatial locality, no index
// arithmetic on the matrix), typically 20-40% faster on protein
// alphabets. Exposed as a drop-in FindScore engine and ablated against
// the plain row kernel in bench E10.
#pragma once

#include <span>
#include <vector>

#include "dp/counters.hpp"
#include "dp/kernel.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// Precomputed per-residue score rows for a fixed subject sequence `b`
/// under a fixed substitution matrix.
class QueryProfile {
 public:
  QueryProfile(std::span<const Residue> b, const SubstitutionMatrix& matrix);

  std::size_t length() const { return length_; }

  /// Scores of residue `x` against every position of `b` (length()).
  const Score* row(Residue x) const { return rows_.data() + x * length_; }

 private:
  std::size_t length_;
  std::vector<Score> rows_;  // [residue][position], row-major
};

/// Last DPM row of the global alignment of `a` x the profile's subject,
/// using the profiled inner loop. Bit-identical to last_row_linear.
std::vector<Score> last_row_profiled(std::span<const Residue> a,
                                     const QueryProfile& profile,
                                     const ScoringScheme& scheme,
                                     DpCounters* counters = nullptr);

/// Dispatching overload: kSimd feeds the profile's flat rows into the
/// vector lanes (kernel_simd.hpp); results are bit-identical either way.
std::vector<Score> last_row_profiled(KernelKind kind,
                                     std::span<const Residue> a,
                                     const QueryProfile& profile,
                                     const ScoringScheme& scheme,
                                     DpCounters* counters = nullptr);

/// Optimal global score via the profiled kernel.
Score global_score_profiled(std::span<const Residue> a,
                            std::span<const Residue> b,
                            const ScoringScheme& scheme,
                            DpCounters* counters = nullptr);

/// Dispatching overload of global_score_profiled.
Score global_score_profiled(KernelKind kind, std::span<const Residue> a,
                            std::span<const Residue> b,
                            const ScoringScheme& scheme,
                            DpCounters* counters = nullptr);

}  // namespace flsa
