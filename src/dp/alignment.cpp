#include "dp/alignment.hpp"

#include <sstream>

#include "support/assert.hpp"

namespace flsa {

std::size_t Alignment::matches() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < gapped_a.size(); ++i) {
    if (gapped_a[i] != '-' && gapped_a[i] == gapped_b[i]) ++count;
  }
  return count;
}

double Alignment::identity() const {
  if (gapped_a.empty()) return 0.0;
  return static_cast<double>(matches()) /
         static_cast<double>(gapped_a.size());
}

std::size_t Alignment::gap_count() const {
  std::size_t count = 0;
  for (char c : gapped_a) count += (c == '-');
  for (char c : gapped_b) count += (c == '-');
  return count;
}

std::string Alignment::cigar() const {
  std::ostringstream os;
  std::size_t run = 0;
  char run_op = 0;
  auto flush = [&] {
    if (run) os << run << run_op;
    run = 0;
  };
  for (std::size_t i = 0; i < gapped_a.size(); ++i) {
    char op;
    if (gapped_a[i] == '-') {
      op = 'I';
    } else if (gapped_b[i] == '-') {
      op = 'D';
    } else {
      op = gapped_a[i] == gapped_b[i] ? '=' : 'X';
    }
    if (op != run_op) {
      flush();
      run_op = op;
    }
    ++run;
  }
  flush();
  return os.str();
}

std::string Alignment::pretty(std::size_t width) const {
  FLSA_REQUIRE(width > 0);
  std::ostringstream os;
  for (std::size_t pos = 0; pos < gapped_a.size(); pos += width) {
    const std::size_t len = std::min(width, gapped_a.size() - pos);
    os << gapped_a.substr(pos, len) << '\n';
    for (std::size_t i = 0; i < len; ++i) {
      const char x = gapped_a[pos + i];
      const char y = gapped_b[pos + i];
      os << (x != '-' && x == y ? '|' : (x == '-' || y == '-' ? ' ' : '.'));
    }
    os << '\n' << gapped_b.substr(pos, len) << '\n';
    if (pos + width < gapped_a.size()) os << '\n';
  }
  return os.str();
}

Alignment alignment_from_path(const Sequence& a, const Sequence& b,
                              const Path& path, const ScoringScheme& scheme) {
  FLSA_REQUIRE(path.front() == (Cell{0, 0}));
  FLSA_REQUIRE(path.end() == (Cell{a.size(), b.size()}));
  Alignment out;
  out.a_end = a.size();
  out.b_end = b.size();
  out.gapped_a.reserve(path.size());
  out.gapped_b.reserve(path.size());
  std::size_t i = 0, j = 0;
  for (Move m : path.forward_moves()) {
    switch (m) {
      case Move::kDiag:
        out.gapped_a.push_back(a.alphabet().letter(a[i]));
        out.gapped_b.push_back(b.alphabet().letter(b[j]));
        ++i;
        ++j;
        break;
      case Move::kUp:
        out.gapped_a.push_back(a.alphabet().letter(a[i]));
        out.gapped_b.push_back('-');
        ++i;
        break;
      case Move::kLeft:
        out.gapped_a.push_back('-');
        out.gapped_b.push_back(b.alphabet().letter(b[j]));
        ++j;
        break;
    }
  }
  FLSA_REQUIRE(i == a.size() && j == b.size());
  out.score = score_alignment(out, scheme, a.alphabet());
  return out;
}

Score score_alignment(const Alignment& alignment, const ScoringScheme& scheme,
                      const Alphabet& alphabet) {
  FLSA_REQUIRE(alignment.gapped_a.size() == alignment.gapped_b.size());
  Score total = 0;
  bool in_gap_a = false;  // current run of '-' in gapped_a
  bool in_gap_b = false;
  for (std::size_t i = 0; i < alignment.gapped_a.size(); ++i) {
    const char x = alignment.gapped_a[i];
    const char y = alignment.gapped_b[i];
    FLSA_REQUIRE(x != '-' || y != '-');
    if (x == '-') {
      total += scheme.gap_extend();
      if (!in_gap_a) total += scheme.gap_open();
      in_gap_a = true;
      in_gap_b = false;
    } else if (y == '-') {
      total += scheme.gap_extend();
      if (!in_gap_b) total += scheme.gap_open();
      in_gap_b = true;
      in_gap_a = false;
    } else {
      total += scheme.substitution(alphabet.code(x), alphabet.code(y));
      in_gap_a = in_gap_b = false;
    }
  }
  return total;
}

std::size_t similar_columns(const Alignment& alignment,
                            const SubstitutionMatrix& matrix,
                            const Alphabet& alphabet) {
  FLSA_REQUIRE(alignment.gapped_a.size() == alignment.gapped_b.size());
  std::size_t count = 0;
  for (std::size_t i = 0; i < alignment.gapped_a.size(); ++i) {
    const char x = alignment.gapped_a[i];
    const char y = alignment.gapped_b[i];
    if (x == '-' || y == '-') continue;
    if (matrix.at(alphabet.code(x), alphabet.code(y)) > 0) ++count;
  }
  return count;
}

}  // namespace flsa
