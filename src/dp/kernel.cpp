#include "dp/kernel.hpp"

#include <algorithm>
#include <vector>

#include "dp/kernel_narrow.hpp"
#include "dp/kernel_simd.hpp"
#include "support/assert.hpp"

namespace flsa {

namespace {

// The single source of truth for kernel names: to_string,
// parse_kernel_kind and the CLI enumeration all walk this table.
constexpr KernelInfo kKernelRegistry[] = {
    {KernelKind::kAuto, "auto",
     "fastest always-exact kernel for this CPU (default)"},
    {KernelKind::kScalar, "scalar", "reference row sweep"},
    {KernelKind::kSimd, "simd",
     "int32 anti-diagonal vector sweep (scalar fallback off-x86)"},
    {KernelKind::kInt16, "int16",
     "saturating 16-bit lanes, escalates int16->int32 on overflow"},
    {KernelKind::kInt8, "int8",
     "saturating 8-bit lanes, escalates int8->int16->int32 on overflow"},
};

}  // namespace

std::span<const KernelInfo> kernel_registry() { return kKernelRegistry; }

KernelKind resolve_kernel(KernelKind requested) {
  if (requested == KernelKind::kAuto) {
    return simd_kernel_available() ? KernelKind::kSimd : KernelKind::kScalar;
  }
  return requested;
}

const char* to_string(KernelKind kind) {
  for (const KernelInfo& info : kernel_registry()) {
    if (info.kind == kind) return info.name;
  }
  return "?";
}

bool parse_kernel_kind(std::string_view text, KernelKind* out) {
  FLSA_REQUIRE(out != nullptr);
  for (const KernelInfo& info : kernel_registry()) {
    if (text == info.name) {
      *out = info.kind;
      return true;
    }
  }
  return false;
}

void sweep_rectangle_linear(std::span<const Residue> a,
                            std::span<const Residue> b,
                            const ScoringScheme& scheme,
                            std::span<const Score> top,
                            std::span<const Score> left,
                            std::span<Score> out_bottom,
                            std::span<Score> out_right,
                            DpCounters* counters) {
  const std::size_t rows = a.size();
  const std::size_t cols = b.size();
  FLSA_REQUIRE(scheme.is_linear());
  FLSA_REQUIRE(top.size() == cols + 1);
  FLSA_REQUIRE(left.size() == rows + 1);
  FLSA_REQUIRE(top[0] == left[0]);
  FLSA_REQUIRE(out_bottom.size() == cols + 1);
  FLSA_REQUIRE(out_right.empty() || out_right.size() == rows + 1);

  const Score gap = scheme.gap_extend();
  const SubstitutionMatrix& sub = scheme.matrix();

  // Row buffer; starts as the top boundary and is propagated downward.
  // out_bottom may alias top, so copy through it directly.
  if (out_bottom.data() != top.data()) {
    std::copy(top.begin(), top.end(), out_bottom.begin());
  }
  Score* row = out_bottom.data();
  if (!out_right.empty()) out_right[0] = row[cols];

  for (std::size_t r = 1; r <= rows; ++r) {
    Score diag = row[0];  // DPM value up-left of the first interior cell
    row[0] = left[r];
    const Residue ar = a[r - 1];
    for (std::size_t c = 1; c <= cols; ++c) {
      const Score up = row[c];
      const Score match = diag + sub.at(ar, b[c - 1]);
      const Score best =
          std::max(match, std::max(up, row[c - 1]) + gap);
      diag = up;
      row[c] = best;
    }
    if (!out_right.empty()) out_right[r] = row[cols];
  }

  if (counters) {
    counters->cells_scored += static_cast<std::uint64_t>(rows) * cols;
  }
}

void sweep_rectangle_linear(KernelKind kind, std::span<const Residue> a,
                            std::span<const Residue> b,
                            const ScoringScheme& scheme,
                            std::span<const Score> top,
                            std::span<const Score> left,
                            std::span<Score> out_bottom,
                            std::span<Score> out_right,
                            DpCounters* counters) {
  switch (resolve_kernel(kind)) {
    case KernelKind::kSimd:
      sweep_rectangle_linear_simd(a, b, scheme, top, left, out_bottom,
                                  out_right, counters);
      return;
    case KernelKind::kInt16:
    case KernelKind::kInt8:
      sweep_rectangle_linear_narrow(resolve_kernel(kind), a, b, scheme, top,
                                    left, out_bottom, out_right, counters);
      return;
    default:
      sweep_rectangle_linear(a, b, scheme, top, left, out_bottom, out_right,
                             counters);
      return;
  }
}

void init_global_boundary_linear(const ScoringScheme& scheme,
                                 std::span<Score> boundary) {
  FLSA_REQUIRE(scheme.is_linear());
  const Score gap = scheme.gap_extend();
  Score value = 0;
  for (Score& slot : boundary) {
    slot = value;
    value += gap;
  }
}

std::vector<Score> last_row_linear(std::span<const Residue> a,
                                   std::span<const Residue> b,
                                   const ScoringScheme& scheme,
                                   DpCounters* counters) {
  std::vector<Score> row(b.size() + 1);
  std::vector<Score> left(a.size() + 1);
  init_global_boundary_linear(scheme, row);
  init_global_boundary_linear(scheme, left);
  sweep_rectangle_linear(a, b, scheme, row, left, row, {}, counters);
  return row;
}

Score global_score_linear(std::span<const Residue> a,
                          std::span<const Residue> b,
                          const ScoringScheme& scheme,
                          DpCounters* counters) {
  return last_row_linear(a, b, scheme, counters).back();
}

std::vector<Score> last_row_linear(KernelKind kind,
                                   std::span<const Residue> a,
                                   std::span<const Residue> b,
                                   const ScoringScheme& scheme,
                                   DpCounters* counters) {
  std::vector<Score> row(b.size() + 1);
  std::vector<Score> left(a.size() + 1);
  init_global_boundary_linear(scheme, row);
  init_global_boundary_linear(scheme, left);
  sweep_rectangle_linear(kind, a, b, scheme, row, left, row, {}, counters);
  return row;
}

Score global_score_linear(KernelKind kind, std::span<const Residue> a,
                          std::span<const Residue> b,
                          const ScoringScheme& scheme,
                          DpCounters* counters) {
  return last_row_linear(kind, a, b, scheme, counters).back();
}

}  // namespace flsa
