// Co-optimal path analysis (paper Section 2.1).
//
// "An alternative approach is to store three bits in each DPM entry to
// record the backward path. Each bit corresponds to one of the
// directions, diagonal, up or left. This will record multiple optimal
// paths." — this module implements that 3-bit encoding and uses it to
// count and enumerate *all* co-optimal alignments. The paper's own
// example (TLDKLLKD x TDVLKAD) has exactly two.
#pragma once

#include <cstdint>
#include <vector>

#include "dp/alignment.hpp"
#include "dp/counters.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// Dense 3-bit-per-cell direction-set matrix (paper Section 2.1's
/// "three bits in each DPM entry"). Bit 0 = diagonal, 1 = up, 2 = left.
class DirectionSetMatrix {
 public:
  DirectionSetMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  void set(std::size_t r, std::size_t c, bool diag, bool up, bool left);
  bool diag(std::size_t r, std::size_t c) const;
  bool up(std::size_t r, std::size_t c) const;
  bool left(std::size_t r, std::size_t c) const;

 private:
  std::uint8_t get(std::size_t r, std::size_t c) const;

  std::size_t rows_, cols_;
  std::vector<std::uint8_t> bits_;  // 2 cells per byte (3 bits each)
};

/// Fills the direction-set matrix for the global alignment of a x b
/// (linear gaps) and returns it together with the optimal score.
struct CoOptimalAnalysis {
  Score score = 0;
  /// Number of distinct optimal paths, saturated at kSaturated.
  std::uint64_t path_count = 0;
  static constexpr std::uint64_t kSaturated = ~std::uint64_t{0};
  bool saturated() const { return path_count == kSaturated; }
};

/// Counts all co-optimal global alignments (saturating at 2^64 - 1).
CoOptimalAnalysis count_optimal_paths(const Sequence& a, const Sequence& b,
                                      const ScoringScheme& scheme,
                                      DpCounters* counters = nullptr);

/// Enumerates up to `limit` co-optimal alignments in deterministic
/// (diagonal-first) order; the first returned alignment equals
/// full_matrix_align's. Every returned alignment scores `score`.
std::vector<Alignment> enumerate_optimal_alignments(
    const Sequence& a, const Sequence& b, const ScoringScheme& scheme,
    std::size_t limit, DpCounters* counters = nullptr);

}  // namespace flsa
