#include "dp/kernel_simd.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "dp/kernel.hpp"
#include "support/assert.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define FLSA_SIMD_X86 1
#include <immintrin.h>
#else
#define FLSA_SIMD_X86 0
#endif

namespace flsa {
namespace {

/// Widest lane count of any instantiation; index arrays and diagonal
/// buffers are padded by this much so vector loops may overshoot.
constexpr std::size_t kMaxLanes = 8;

/// The seven diagonal buffers of the affine core (D needs two previous
/// diagonals, Ix/Iy one each, plus the three being written).
struct AffineBufs {
  Score* d_prev2;
  Score* d_prev1;
  Score* d_curr;
  Score* x_prev1;
  Score* x_curr;
  Score* y_prev1;
  Score* y_curr;
};

enum class Isa { kScalar, kSse41, kAvx2 };

Isa detect_isa() {
#if FLSA_SIMD_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  if (__builtin_cpu_supports("sse4.1")) return Isa::kSse41;
#endif
  return Isa::kScalar;
}

Isa active_isa() {
  static const Isa isa = detect_isa();
  return isa;
}

#if FLSA_SIMD_X86

// ---- AVX2: 8 int32 lanes, hardware gather. -------------------------------
#define FLSA_SIMD_NS avx2
#define FLSA_SIMD_FN __attribute__((target("avx2")))
#define FLSA_SIMD_WIDTH 8
#define FLSA_VEC __m256i
#define FLSA_LOAD(p) \
  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))
#define FLSA_STORE(p, v) \
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), (v))
#define FLSA_ADD(a, b) _mm256_add_epi32((a), (b))
#define FLSA_MAX(a, b) _mm256_max_epi32((a), (b))
#define FLSA_SET1(x) _mm256_set1_epi32((x))
#define FLSA_GATHER(t, i) _mm256_i32gather_epi32((t), (i), 4)
#include "dp/kernel_simd_lanes.inc"
#undef FLSA_SIMD_NS
#undef FLSA_SIMD_FN
#undef FLSA_SIMD_WIDTH
#undef FLSA_VEC
#undef FLSA_LOAD
#undef FLSA_STORE
#undef FLSA_ADD
#undef FLSA_MAX
#undef FLSA_SET1
#undef FLSA_GATHER

// ---- SSE4.1: 4 int32 lanes, gather emulated with scalar loads. -----------
__attribute__((target("sse4.1"))) inline __m128i sse41_gather(
    const Score* table, __m128i idx) {
  alignas(16) std::int32_t lane[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lane), idx);
  return _mm_setr_epi32(table[lane[0]], table[lane[1]], table[lane[2]],
                        table[lane[3]]);
}

#define FLSA_SIMD_NS sse41
#define FLSA_SIMD_FN __attribute__((target("sse4.1")))
#define FLSA_SIMD_WIDTH 4
#define FLSA_VEC __m128i
#define FLSA_LOAD(p) _mm_loadu_si128(reinterpret_cast<const __m128i*>(p))
#define FLSA_STORE(p, v) \
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), (v))
#define FLSA_ADD(a, b) _mm_add_epi32((a), (b))
#define FLSA_MAX(a, b) _mm_max_epi32((a), (b))
#define FLSA_SET1(x) _mm_set1_epi32((x))
#define FLSA_GATHER(t, i) sse41_gather((t), (i))
#include "dp/kernel_simd_lanes.inc"
#undef FLSA_SIMD_NS
#undef FLSA_SIMD_FN
#undef FLSA_SIMD_WIDTH
#undef FLSA_VEC
#undef FLSA_LOAD
#undef FLSA_STORE
#undef FLSA_ADD
#undef FLSA_MAX
#undef FLSA_SET1
#undef FLSA_GATHER

/// Per-thread scratch: gather-index arrays plus the diagonal buffers,
/// reused across calls so the wavefront executors do not allocate per
/// tile. Thread-local, hence race-free under the parallel drivers.
struct Scratch {
  std::vector<std::int32_t> aoff;  ///< row residue * table stride, 0-padded
  std::vector<std::int32_t> brev;  ///< reversed column indices, 0-padded
  std::vector<Score> lane[7];      ///< diagonal buffers (3 linear, 7 affine)
};

Scratch& scratch() {
  thread_local Scratch s;
  return s;
}

/// Fills aoff/brev for a sweep: lane r of a diagonal gathers
/// table[aoff[r - 1] + brev[cols - d + r]]. `bcol` maps column j (0-based)
/// to its index within a table row.
template <typename ColIndexFn>
void prepare_indices(std::span<const Residue> a, std::size_t cols,
                     std::int32_t stride, ColIndexFn bcol, Scratch& s) {
  s.aoff.assign(a.size() + kMaxLanes, 0);
  for (std::size_t r = 0; r < a.size(); ++r) {
    s.aoff[r] = static_cast<std::int32_t>(a[r]) * stride;
  }
  s.brev.assign(cols + kMaxLanes, 0);
  for (std::size_t j = 0; j < cols; ++j) {
    s.brev[j] = bcol(cols - 1 - j);
  }
}

void run_linear(std::size_t rows, std::size_t cols, Score gap,
                const Score* table, std::span<const Score> top,
                std::span<const Score> left, std::span<Score> out_bottom,
                std::span<Score> out_right, Scratch& s) {
  for (int i = 0; i < 3; ++i) {
    s.lane[i].assign(rows + 1 + kMaxLanes, kNegInf);
  }
  Score* right = out_right.empty() ? nullptr : out_right.data();
  if (active_isa() == Isa::kAvx2) {
    avx2::linear_core(rows, cols, gap, table, s.aoff.data(), s.brev.data(),
                      top.data(), left.data(), out_bottom.data(), right,
                      s.lane[0].data(), s.lane[1].data(), s.lane[2].data());
  } else {
    sse41::linear_core(rows, cols, gap, table, s.aoff.data(), s.brev.data(),
                       top.data(), left.data(), out_bottom.data(), right,
                       s.lane[0].data(), s.lane[1].data(), s.lane[2].data());
  }
}

void run_affine(std::size_t rows, std::size_t cols, Score open, Score ext,
                const Score* table, std::span<const AffineCell> top,
                std::span<const AffineCell> left,
                std::span<AffineCell> out_bottom,
                std::span<AffineCell> out_right, Scratch& s) {
  for (int i = 0; i < 7; ++i) {
    s.lane[i].assign(rows + 1 + kMaxLanes, kNegInf);
  }
  const AffineBufs bufs{s.lane[0].data(), s.lane[1].data(), s.lane[2].data(),
                        s.lane[3].data(), s.lane[4].data(),
                        s.lane[5].data(), s.lane[6].data()};
  AffineCell* right = out_right.empty() ? nullptr : out_right.data();
  if (active_isa() == Isa::kAvx2) {
    avx2::affine_core(rows, cols, open, ext, table, s.aoff.data(),
                      s.brev.data(), top.data(), left.data(),
                      out_bottom.data(), right, bufs);
  } else {
    sse41::affine_core(rows, cols, open, ext, table, s.aoff.data(),
                       s.brev.data(), top.data(), left.data(),
                       out_bottom.data(), right, bufs);
  }
}

#endif  // FLSA_SIMD_X86

}  // namespace

bool simd_kernel_available() { return active_isa() != Isa::kScalar; }

SimdIsa active_simd_isa() {
  switch (active_isa()) {
    case Isa::kAvx2: return SimdIsa::kAvx2;
    case Isa::kSse41: return SimdIsa::kSse41;
    case Isa::kScalar: return SimdIsa::kScalar;
  }
  return SimdIsa::kScalar;
}

const char* simd_kernel_isa() {
  switch (active_isa()) {
    case Isa::kAvx2: return "avx2";
    case Isa::kSse41: return "sse4.1";
    case Isa::kScalar: return "scalar";
  }
  return "?";
}

void sweep_rectangle_linear_simd(std::span<const Residue> a,
                                 std::span<const Residue> b,
                                 const ScoringScheme& scheme,
                                 std::span<const Score> top,
                                 std::span<const Score> left,
                                 std::span<Score> out_bottom,
                                 std::span<Score> out_right,
                                 DpCounters* counters) {
#if FLSA_SIMD_X86
  const std::size_t rows = a.size();
  const std::size_t cols = b.size();
  if (simd_kernel_available() && rows > 0 && cols > 0) {
    FLSA_REQUIRE(scheme.is_linear());
    FLSA_REQUIRE(top.size() == cols + 1);
    FLSA_REQUIRE(left.size() == rows + 1);
    FLSA_REQUIRE(top[0] == left[0]);
    FLSA_REQUIRE(out_bottom.size() == cols + 1);
    FLSA_REQUIRE(out_right.empty() || out_right.size() == rows + 1);

    const SubstitutionMatrix& sub = scheme.matrix();
    const auto stride = static_cast<std::int32_t>(sub.alphabet().size());
    Scratch& s = scratch();
    prepare_indices(a, cols, stride,
                    [&](std::size_t j) {
                      return static_cast<std::int32_t>(b[j]);
                    },
                    s);
    run_linear(rows, cols, scheme.gap_extend(), sub.data(), top, left,
               out_bottom, out_right, s);
    if (counters) {
      counters->cells_scored += static_cast<std::uint64_t>(rows) * cols;
    }
    return;
  }
#endif
  // No vector ISA (or a degenerate rectangle): the scalar kernel is the
  // fallback and already produces the reference results.
  sweep_rectangle_linear(a, b, scheme, top, left, out_bottom, out_right,
                         counters);
}

void sweep_rectangle_affine_simd(std::span<const Residue> a,
                                 std::span<const Residue> b,
                                 const ScoringScheme& scheme,
                                 std::span<const AffineCell> top,
                                 std::span<const AffineCell> left,
                                 std::span<AffineCell> out_bottom,
                                 std::span<AffineCell> out_right,
                                 DpCounters* counters) {
#if FLSA_SIMD_X86
  const std::size_t rows = a.size();
  const std::size_t cols = b.size();
  if (simd_kernel_available() && rows > 0 && cols > 0) {
    FLSA_REQUIRE(top.size() == cols + 1);
    FLSA_REQUIRE(left.size() == rows + 1);
    FLSA_REQUIRE(top[0] == left[0]);
    FLSA_REQUIRE(out_bottom.size() == cols + 1);
    FLSA_REQUIRE(out_right.empty() || out_right.size() == rows + 1);

    const SubstitutionMatrix& sub = scheme.matrix();
    const auto stride = static_cast<std::int32_t>(sub.alphabet().size());
    Scratch& s = scratch();
    prepare_indices(a, cols, stride,
                    [&](std::size_t j) {
                      return static_cast<std::int32_t>(b[j]);
                    },
                    s);
    run_affine(rows, cols, scheme.gap_open(), scheme.gap_extend(), sub.data(),
               top, left, out_bottom, out_right, s);
    if (counters) {
      counters->cells_scored += static_cast<std::uint64_t>(rows) * cols;
    }
    return;
  }
#endif
  sweep_rectangle_affine(a, b, scheme, top, left, out_bottom, out_right,
                         counters);
}

std::vector<Score> last_row_profiled_simd(std::span<const Residue> a,
                                          const QueryProfile& profile,
                                          const ScoringScheme& scheme,
                                          DpCounters* counters) {
  FLSA_REQUIRE(scheme.is_linear());
#if FLSA_SIMD_X86
  const std::size_t rows = a.size();
  const std::size_t cols = profile.length();
  if (simd_kernel_available() && rows > 0 && cols > 0) {
    std::vector<Score> row(cols + 1);
    std::vector<Score> left(rows + 1);
    init_global_boundary_linear(scheme, row);
    init_global_boundary_linear(scheme, left);
    // The gathered table is the profile itself: row x starts at x * length,
    // and within a row the column index is the position j.
    Scratch& s = scratch();
    prepare_indices(a, cols, static_cast<std::int32_t>(cols),
                    [](std::size_t j) { return static_cast<std::int32_t>(j); },
                    s);
    run_linear(rows, cols, scheme.gap_extend(), profile.row(0), row, left,
               row, {}, s);
    if (counters) {
      counters->cells_scored += static_cast<std::uint64_t>(rows) * cols;
    }
    return row;
  }
#endif
  return last_row_profiled(a, profile, scheme, counters);
}

}  // namespace flsa
