// Banded global alignment.
//
// Extension module: for high-identity pairs (the common homology-search
// case) the optimal path stays near the main diagonal, so restricting the
// DP to a band of half-width w around it reduces work from m*n to
// ~(m+n)*w cells. The result is the band-constrained optimum; it equals the
// unconstrained optimum whenever the true optimal path fits in the band
// (always true for w >= max(m,n)).
#pragma once

#include "dp/alignment.hpp"
#include "dp/counters.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// Band-constrained global alignment with linear gaps. The band contains
/// cells (i, j) with |(j - i) - (n - m)*i/m ... | simplified to the standard
/// static band: j in [i + lo, i + hi] where lo = -w and hi = (n - m) + w,
/// which always contains both DPM corners.
///
/// half_width must be >= 1. Throws std::invalid_argument if the band is so
/// narrow that no monotone path connects the corners (cannot happen for
/// half_width >= 1).
Alignment banded_align(const Sequence& a, const Sequence& b,
                       const ScoringScheme& scheme, std::size_t half_width,
                       DpCounters* counters = nullptr);

/// Score-only banded pass (same band geometry).
Score banded_score(const Sequence& a, const Sequence& b,
                   const ScoringScheme& scheme, std::size_t half_width,
                   DpCounters* counters = nullptr);

}  // namespace flsa
