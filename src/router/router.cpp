#include "router/router.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <iterator>
#include <limits>
#include <set>
#include <stdexcept>
#include <utility>

#include "support/assert.hpp"

namespace flsa {
namespace router {

using service::AlignBatchRequest;
using service::AlignBatchResponse;
using service::AlignPartResponse;
using service::AlignRefRequest;
using service::AlignRequest;
using service::ErrorCode;
using service::ErrorResponse;
using service::ProtocolError;
using service::ReadTimeout;
using service::RefListRequest;
using service::RefListResponse;
using service::RefPutRequest;
using service::RefPutResponse;
using service::Request;
using service::Response;
using service::SearchRequest;
using service::SeqBeginRequest;
using service::SeqChunkRequest;
using service::SeqEndRequest;
using service::SeqOkResponse;
using service::StatsRequest;
using service::StatsResponse;
using service::TransportError;

namespace {

std::uint64_t response_id(const Response& response) {
  return std::visit([](const auto& r) { return r.request_id; }, response);
}

void set_response_id(Response& response, std::uint64_t id) {
  std::visit([id](auto& r) { r.request_id = id; }, response);
}

std::string encode_response(const Response& response) {
  return std::visit([](const auto& r) { return service::encode(r); },
                    response);
}

std::uint64_t millis_between(std::chrono::steady_clock::time_point from,
                             std::chrono::steady_clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(to - from)
          .count());
}

/// Sleeps up to `total_ms` in small slices, returning early (false) when
/// `stop` flips — the shutdown-responsive sleep every background thread
/// of the router uses.
bool interruptible_sleep(std::uint32_t total_ms,
                         const std::atomic<bool>& stop) {
  constexpr std::uint32_t kSliceMs = 20;
  std::uint32_t slept = 0;
  while (slept < total_ms) {
    if (stop.load(std::memory_order_acquire)) return false;
    const std::uint32_t slice = std::min(kSliceMs, total_ms - slept);
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    slept += slice;
  }
  return !stop.load(std::memory_order_acquire);
}

}  // namespace

/// Per-client-connection state; same ownership discipline as the server's
/// Connection (open flipped under write_mutex before any close).
struct Router::ClientConn {
  int fd = -1;
  std::mutex write_mutex;
  bool open = true;  ///< guarded by write_mutex
  std::atomic<bool> finished{false};
  /// Ops admitted from this peer and not yet answered — an idle read
  /// timeout only hangs up when this is zero.
  std::atomic<std::size_t> in_flight{0};
  std::thread handler;
};

/// One pipelined router->backend connection. The reader thread owns the
/// fd lifecycle (dial, close, re-dial); writers only ever shutdown() it,
/// and only under write_mutex, so a recycled descriptor is impossible.
struct Router::Channel {
  int fd = -1;             ///< guarded by write_mutex
  std::mutex write_mutex;
  std::atomic<bool> open{false};
  std::thread reader;
  /// Router ids sent on this channel and not yet answered; on channel
  /// death every one of them is failed over.
  std::mutex outstanding_mutex;
  std::set<std::uint64_t> outstanding;
};

struct Router::Backend {
  service::Endpoint endpoint;
  std::atomic<bool> healthy{true};
  /// Router-side outstanding ops on this backend.
  std::atomic<std::int64_t> in_flight{0};
  /// queue_depth + in_flight gauges from the backend's last STATS answer.
  std::atomic<double> reported_load{0.0};
  std::atomic<std::size_t> next_channel{0};
  service::BoundedQueue<std::uint64_t> outbound;
  std::vector<std::unique_ptr<Channel>> channels;
  std::thread flusher;

  Backend(service::Endpoint ep, std::size_t queue_capacity)
      : endpoint(std::move(ep)), outbound(queue_capacity) {}
};

/// REF_PUT fan-out aggregate: one per client REF_PUT, shared by its R
/// replica sub-ops. The last sub-op to report answers the client.
struct Router::RefPutAgg {
  std::shared_ptr<ClientConn> client;
  std::uint64_t client_id = 0;
  std::uint64_t router_ref_id = 0;
  std::mutex mutex;
  std::size_t remaining = 0;
  std::vector<std::pair<std::size_t, std::uint64_t>> placements;
  bool have_ok = false;
  RefPutResponse ok;
  bool have_err = false;
  ErrorResponse err;
};

struct Router::PendingOp {
  std::uint64_t id = 0;
  std::shared_ptr<ClientConn> client;
  std::uint64_t client_id = 0;
  /// The decoded request with every request_id rewritten to `id`; kept so
  /// failovers and hedges can re-encode with a fresh deadline budget.
  Request request;
  std::chrono::steady_clock::time_point arrival;
  std::uint32_t deadline_ms = 0;  ///< original client budget (0 = none)
  std::uint64_t cells = 0;
  unsigned attempts = 0;  ///< sends so far
  bool hedged = false;
  bool batched = false;    ///< currently riding inside a batch envelope
  bool hedgeable = false;  ///< single ALIGN / SEARCH
  /// SEQ_* / ALIGN_REF: the op is welded to its one eligible backend —
  /// no failover, no hedge (session state / a possibly-started response
  /// stream lives there; a second send could duplicate either).
  bool pinned = false;
  /// Channel restriction for the send (-1 = any): upload chunks of one
  /// session stay on one channel so the backend sees them in order.
  int channel_pin = -1;
  int first_backend = -1;
  int last_backend = -1;
  std::chrono::steady_clock::time_point last_sent;
  /// Backends allowed to serve this op (empty = any): SEARCH replicas,
  /// or the single REF_PUT target.
  std::vector<std::size_t> eligible;
  /// SEARCH / ALIGN_REF: this reference's local id on each replica
  /// backend (ALIGN_REF: ref_a's placements; ref_ids_b holds ref_b's).
  std::vector<std::pair<std::size_t, std::uint64_t>> ref_ids;
  std::vector<std::pair<std::size_t, std::uint64_t>> ref_ids_b;
  std::shared_ptr<RefPutAgg> agg;  ///< non-null for REF_PUT sub-ops
};

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      instruments_{
          obs::metrics().counter("router.requests"),
          obs::metrics().counter("router.forwarded"),
          obs::metrics().counter("router.completed"),
          obs::metrics().counter("router.rejected.overloaded"),
          obs::metrics().counter("router.rejected.shutting_down"),
          obs::metrics().counter("router.rejected.deadline"),
          obs::metrics().counter("router.bad_requests"),
          obs::metrics().counter("router.internal_errors"),
          obs::metrics().counter("router.failovers"),
          obs::metrics().counter("router.hedge.issued"),
          obs::metrics().counter("router.hedge.won"),
          obs::metrics().counter("router.hedge.wasted"),
          obs::metrics().counter("router.coalesce.batches"),
          obs::metrics().counter("router.coalesce.jobs"),
          obs::metrics().counter("router.backend.ejected"),
          obs::metrics().counter("router.backend.readmitted"),
          obs::metrics().counter("router.ref_put.degraded"),
          obs::metrics().counter("router.write_errors"),
          obs::metrics().counter("router.backend.resyncs"),
          obs::metrics().counter("router.refs_pruned"),
          obs::metrics().counter("router.upload_routes_expired"),
          obs::metrics().gauge("router.pending"),
          obs::metrics().gauge("router.backends_healthy"),
          obs::metrics().gauge("router.upload_placements"),
          obs::metrics().histogram("router.latency_seconds"),
      },
      shard_map_(std::max<std::size_t>(config_.backends.size(), 1),
                 std::max<std::size_t>(config_.replication, 1)) {
  FLSA_REQUIRE(!config_.backends.empty());
  FLSA_REQUIRE(config_.channels_per_backend >= 1);
  FLSA_REQUIRE(config_.coalesce_max_jobs >= 1);
  FLSA_REQUIRE(config_.max_attempts >= 1);
  for (const service::Endpoint& endpoint : config_.backends) {
    backends_.push_back(std::make_unique<Backend>(
        endpoint, config_.queue_capacity == 0 ? 1 : config_.queue_capacity));
  }
}

Router::~Router() { stop(); }

std::int64_t Router::remaining_deadline_ms(
    std::uint32_t deadline_ms, std::chrono::steady_clock::time_point arrival,
    std::chrono::steady_clock::time_point now) {
  if (deadline_ms == 0) return -1;
  const std::int64_t elapsed =
      static_cast<std::int64_t>(millis_between(arrival, now));
  const std::int64_t remaining =
      static_cast<std::int64_t>(deadline_ms) - elapsed;
  return remaining > 0 ? remaining : 0;
}

std::uint32_t Router::hedge_threshold_ms() const {
  if (!config_.hedge_enabled) return 0;
  const obs::Histogram::Snapshot snap = instruments_.latency_seconds.snapshot();
  if (snap.count < config_.hedge_min_samples) return 0;
  const double p95_ms = instruments_.latency_seconds.quantile(0.95) * 1000.0;
  const auto rounded = static_cast<std::uint32_t>(std::lround(
      std::min(p95_ms, 1e9)));
  return std::max(config_.hedge_min_ms, rounded);
}

void Router::start() {
  FLSA_REQUIRE(!running_.load());

  // Pre-flight: at least one backend must accept a connection, otherwise
  // the fleet config is wrong and starting a black-hole router helps no
  // one. Unreachable minorities are tolerated (the prober ejects them).
  std::size_t reachable = 0;
  for (const service::Endpoint& endpoint : config_.backends) {
    try {
      service::Client probe;
      probe.connect(endpoint.host, endpoint.port);
      ++reachable;
    } catch (const std::exception&) {
    }
  }
  if (reachable == 0) {
    throw std::runtime_error("no backend reachable (" +
                             std::to_string(config_.backends.size()) +
                             " configured)");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket failed: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("invalid listen address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, config_.backlog) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind/listen on " + config_.host + ":" +
                             std::to_string(config_.port) +
                             " failed: " + what);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("getsockname failed: ") + what);
  }
  port_ = ntohs(bound.sin_port);

  if (config_.enable_metrics) obs::set_enabled(true);

  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);

  for (std::size_t bi = 0; bi < backends_.size(); ++bi) {
    Backend& backend = *backends_[bi];
    backend.channels.reserve(config_.channels_per_backend);
    for (std::size_t ci = 0; ci < config_.channels_per_backend; ++ci) {
      backend.channels.push_back(std::make_unique<Channel>());
    }
    for (std::size_t ci = 0; ci < config_.channels_per_backend; ++ci) {
      backend.channels[ci]->reader =
          std::thread([this, bi, ci] { channel_loop(bi, ci); });
    }
    backend.flusher = std::thread([this, bi] { flusher_loop(bi); });
  }
  prober_ = std::thread([this] { prober_loop(); });
  monitor_ = std::thread([this] { monitor_loop(); });
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Router::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  draining_.store(true, std::memory_order_release);

  // 1. Stop admitting clients.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // 2. Bounded drain: give in-flight ops a grace window to complete
  //    through the backends (the flushers and channels are still up).
  const auto grace_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config_.drain_grace_ms);
  while (std::chrono::steady_clock::now() < grace_deadline) {
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      if (pending_.empty()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // 3. Close the outbound queues; flushers drain what is already queued
  //    and exit.
  for (auto& backend : backends_) backend->outbound.close();
  for (auto& backend : backends_) {
    if (backend->flusher.joinable()) backend->flusher.join();
  }

  // 4. Whatever is still pending gets a typed SHUTTING_DOWN — never a
  //    silent drop.
  std::vector<std::uint64_t> leftovers;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    leftovers.reserve(pending_.size());
    for (const auto& [id, op] : pending_) leftovers.push_back(id);
  }
  for (std::uint64_t id : leftovers) {
    complete_error(id, ErrorCode::kShuttingDown, "router is draining");
  }

  // 5. Tear down the backend channels and helper threads.
  for (std::size_t bi = 0; bi < backends_.size(); ++bi) {
    for (auto& channel : backends_[bi]->channels) {
      fail_channel(bi, *channel, "router shutdown");
    }
  }
  for (auto& backend : backends_) {
    for (auto& channel : backend->channels) {
      if (channel->reader.joinable()) channel->reader.join();
      std::lock_guard<std::mutex> lock(channel->write_mutex);
      if (channel->fd >= 0) {
        ::close(channel->fd);
        channel->fd = -1;
      }
    }
  }
  if (prober_.joinable()) prober_.join();
  if (monitor_.joinable()) monitor_.join();

  // 6. Unblock and reap the client connections.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& conn : connections_) {
      std::lock_guard<std::mutex> write_lock(conn->write_mutex);
      if (conn->open) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  reap_connections(/*all=*/true);
  {
    std::lock_guard<std::mutex> lock(coalesce_mutex_);
    coalesce_groups_.clear();
  }
  instruments_.pending.set(0.0);
}

// ---- Client side -------------------------------------------------------

void Router::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (draining_.load(std::memory_order_acquire)) return;
      if (errno == EMFILE || errno == ENFILE || errno == ECONNABORTED) {
        continue;
      }
      return;
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
    if (config_.idle_timeout_ms != 0) {
      timeval tv{};
      tv.tv_sec = config_.idle_timeout_ms / 1000;
      tv.tv_usec =
          static_cast<suseconds_t>((config_.idle_timeout_ms % 1000) * 1000);
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }

    reap_connections(/*all=*/false);
    if (config_.max_connections != 0 &&
        live_connections() >= config_.max_connections) {
      ErrorResponse refusal;
      refusal.code = ErrorCode::kConnectionLimit;
      refusal.message = "connection limit of " +
                        std::to_string(config_.max_connections) + " reached";
      try {
        service::write_frame(fd, service::encode(refusal));
      } catch (const std::exception&) {
      }
      ::close(fd);
      continue;
    }

    auto conn = std::make_shared<ClientConn>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(conn);
    }
    conn->handler = std::thread([this, conn] { client_loop(conn); });
  }
}

std::size_t Router::live_connections() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  std::size_t live = 0;
  for (const auto& conn : connections_) {
    if (!conn->finished.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

void Router::kill_connection(const std::shared_ptr<ClientConn>& conn) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (conn->open) {
    conn->open = false;
    ::shutdown(conn->fd, SHUT_RDWR);
  }
}

void Router::reap_connections(bool all) {
  std::vector<std::shared_ptr<ClientConn>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if (all || (*it)->finished.load(std::memory_order_acquire)) {
        finished.push_back(*it);
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& conn : finished) {
    if (conn->handler.joinable()) conn->handler.join();
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    conn->open = false;
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
}

void Router::client_loop(std::shared_ptr<ClientConn> conn) {
  std::string payload;
  while (true) {
    try {
      if (!service::read_frame(conn->fd, &payload, config_.max_frame_bytes)) {
        break;  // clean EOF
      }
    } catch (const ReadTimeout&) {
      if (conn->in_flight.load(std::memory_order_acquire) > 0) continue;
      kill_connection(conn);
      break;
    } catch (const TransportError&) {
      kill_connection(conn);
      break;
    } catch (const std::exception&) {
      break;
    }
    try {
      handle_request(conn, service::decode_request(payload));
    } catch (const ProtocolError& e) {
      instruments_.bad_requests.add();
      reject(conn, 0, ErrorCode::kBadRequest, e.what());
      break;
    }
  }
  conn->finished.store(true, std::memory_order_release);
}

void Router::handle_request(const std::shared_ptr<ClientConn>& conn,
                            Request request) {
  if (std::holds_alternative<StatsRequest>(request)) {
    answer_stats(conn, std::get<StatsRequest>(request));
    return;
  }
  instruments_.requests.add();
  const std::uint64_t client_id =
      std::visit([](const auto& r) { return r.request_id; }, request);
  if (draining_.load(std::memory_order_acquire)) {
    instruments_.rejected_shutdown.add();
    reject(conn, client_id, ErrorCode::kShuttingDown, "router is draining");
    return;
  }

  if (std::holds_alternative<RefPutRequest>(request)) {
    route_ref_put(conn, std::move(std::get<RefPutRequest>(request)));
    return;
  }

  auto op = std::make_shared<PendingOp>();
  op->id = next_op_id();
  op->client = conn;
  op->client_id = client_id;
  op->arrival = std::chrono::steady_clock::now();

  if (auto* align = std::get_if<AlignRequest>(&request)) {
    op->deadline_ms = align->deadline_ms;
    op->cells = service::estimated_cells(*align);
    op->hedgeable = true;
    align->request_id = op->id;
  } else if (auto* search = std::get_if<SearchRequest>(&request)) {
    op->deadline_ms = search->deadline_ms;
    op->cells = service::estimated_cells(*search);
    op->hedgeable = true;
    search->request_id = op->id;
    {
      std::lock_guard<std::mutex> lock(refs_mutex_);
      const auto it = refs_.find(search->ref_id);
      if (it == refs_.end()) {
        reject(conn, client_id, ErrorCode::kRefNotFound,
               "reference id " + std::to_string(search->ref_id) +
                   " is not registered with the router");
        return;
      }
      op->ref_ids = it->second;
    }
    op->eligible.reserve(op->ref_ids.size());
    for (const auto& [backend, local_id] : op->ref_ids) {
      op->eligible.push_back(backend);
    }
  } else if (auto* begin = std::get_if<SeqBeginRequest>(&request)) {
    // A new session pins to one rendezvous-chosen backend (the client may
    // steer co-location with `placement`); a resume re-uses the recorded
    // route so the retried BEGIN reaches the backend holding the bytes.
    const std::uint64_t key =
        begin->placement != 0 ? begin->placement : begin->upload_token;
    std::size_t backend = shard_map_.replicas(key).front();
    {
      std::lock_guard<std::mutex> lock(refs_mutex_);
      const auto route = upload_routes_.find(begin->upload_token);
      if (route != upload_routes_.end()) {
        backend = route->second.backend;
        route->second.last_used = op->arrival;
      } else {
        upload_routes_.emplace(begin->upload_token,
                               UploadRoute{backend, op->arrival});
        instruments_.upload_placements.set(
            static_cast<double>(upload_routes_.size()));
      }
    }
    op->pinned = true;
    op->eligible = {backend};
    op->channel_pin = static_cast<int>(begin->upload_token %
                                       config_.channels_per_backend);
    begin->request_id = op->id;
  } else if (auto* chunk = std::get_if<SeqChunkRequest>(&request)) {
    std::size_t backend = 0;
    bool routed = false;
    {
      std::lock_guard<std::mutex> lock(refs_mutex_);
      const auto route = upload_routes_.find(chunk->upload_token);
      if (route != upload_routes_.end()) {
        backend = route->second.backend;
        route->second.last_used = op->arrival;
        routed = true;
      }
    }
    if (!routed) {
      instruments_.bad_requests.add();
      reject(conn, client_id, ErrorCode::kBadRequest,
             "unknown upload token " + std::to_string(chunk->upload_token) +
                 " (send SEQ_BEGIN first)");
      return;
    }
    op->pinned = true;
    op->eligible = {backend};
    op->channel_pin = static_cast<int>(chunk->upload_token %
                                       config_.channels_per_backend);
    chunk->request_id = op->id;
  } else if (auto* end = std::get_if<SeqEndRequest>(&request)) {
    std::size_t backend = 0;
    bool routed = false;
    {
      std::lock_guard<std::mutex> lock(refs_mutex_);
      const auto route = upload_routes_.find(end->upload_token);
      if (route != upload_routes_.end()) {
        backend = route->second.backend;
        route->second.last_used = op->arrival;
        routed = true;
      }
    }
    if (!routed) {
      instruments_.bad_requests.add();
      reject(conn, client_id, ErrorCode::kBadRequest,
             "unknown upload token " + std::to_string(end->upload_token) +
                 " (send SEQ_BEGIN first)");
      return;
    }
    op->pinned = true;
    op->eligible = {backend};
    op->channel_pin = static_cast<int>(end->upload_token %
                                       config_.channels_per_backend);
    end->request_id = op->id;
  } else if (auto* by_ref = std::get_if<AlignRefRequest>(&request)) {
    op->deadline_ms = by_ref->deadline_ms;
    op->pinned = true;  // the response may stream; one backend, one shot
    by_ref->request_id = op->id;
    {
      std::lock_guard<std::mutex> lock(refs_mutex_);
      const auto a_it = refs_.find(by_ref->ref_a);
      if (a_it == refs_.end()) {
        reject(conn, client_id, ErrorCode::kRefNotFound,
               "reference id " + std::to_string(by_ref->ref_a) +
                   " is not registered with the router");
        return;
      }
      op->ref_ids = a_it->second;
      if (by_ref->ref_b != 0) {
        const auto b_it = refs_.find(by_ref->ref_b);
        if (b_it == refs_.end()) {
          reject(conn, client_id, ErrorCode::kRefNotFound,
                 "reference id " + std::to_string(by_ref->ref_b) +
                     " is not registered with the router");
          return;
        }
        op->ref_ids_b = b_it->second;
      }
    }
    // Eligible = backends holding ref_a, intersected with ref_b's
    // placements when both are handles — the pair must be co-located.
    for (const auto& [backend, local_id] : op->ref_ids) {
      if (by_ref->ref_b != 0) {
        const bool has_b = std::any_of(
            op->ref_ids_b.begin(), op->ref_ids_b.end(),
            [backend = backend](const auto& p) { return p.first == backend; });
        if (!has_b) continue;
      }
      op->eligible.push_back(backend);
    }
    if (op->eligible.empty()) {
      reject(conn, client_id, ErrorCode::kRefNotFound,
             "references " + std::to_string(by_ref->ref_a) + " and " +
                 std::to_string(by_ref->ref_b) +
                 " share no backend placement");
      return;
    }
  } else {
    // A client-built ALIGN_BATCH passes through as one unit: routed
    // least-loaded, never re-coalesced, never hedged.
    auto& batch = std::get<AlignBatchRequest>(request);
    op->cells = service::estimated_cells(batch);
    batch.request_id = op->id;
    for (AlignRequest& job : batch.jobs) {
      if (job.request_id == 0) job.request_id = op->id;
    }
  }
  op->request = std::move(request);

  const int backend = pick_backend(op->eligible, -1);
  if (backend < 0) {
    instruments_.rejected_overloaded.add();
    reject(conn, client_id, ErrorCode::kOverloaded,
           "no healthy backend available");
    return;
  }
  dispatch(std::move(op), static_cast<std::size_t>(backend));
}

void Router::route_ref_put(const std::shared_ptr<ClientConn>& conn,
                           RefPutRequest request) {
  const std::uint64_t router_ref_id =
      next_ref_id_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<std::size_t> replicas = shard_map_.replicas(router_ref_id);

  auto agg = std::make_shared<RefPutAgg>();
  agg->client = conn;
  agg->client_id = request.request_id;
  agg->router_ref_id = router_ref_id;
  agg->remaining = replicas.size();

  // One sub-op per replica. REF_PUT is not idempotent (each send would
  // register a fresh id), so sub-ops are pinned to their backend and
  // never failed over or hedged; a failed replica just degrades the
  // replication factor, which the aggregate tolerates as long as one
  // placement succeeded.
  for (const std::size_t backend : replicas) {
    auto op = std::make_shared<PendingOp>();
    op->id = next_op_id();
    op->client = conn;
    op->client_id = request.request_id;
    op->arrival = std::chrono::steady_clock::now();
    op->agg = agg;
    op->eligible = {backend};
    RefPutRequest copy = request;
    copy.request_id = op->id;
    op->request = std::move(copy);
    dispatch(std::move(op), backend);
  }
}

void Router::answer_stats(const std::shared_ptr<ClientConn>& conn,
                          const StatsRequest& request) {
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    instruments_.pending.set(static_cast<double>(pending_.size()));
  }
  std::size_t healthy = 0;
  for (const auto& backend : backends_) {
    if (backend->healthy.load(std::memory_order_acquire)) ++healthy;
  }
  instruments_.backends_healthy.set(static_cast<double>(healthy));
  StatsResponse response;
  response.request_id = request.request_id;
  for (const obs::MetricsRegistry::Sample& sample :
       obs::metrics().snapshot()) {
    response.entries.emplace_back(sample.name, sample.value);
  }
  respond(conn, service::encode(response));
}

bool Router::respond(const std::shared_ptr<ClientConn>& conn,
                     const std::string& payload) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (!conn->open) return false;
  try {
    return service::write_frame(conn->fd, payload);
  } catch (const std::exception&) {
    return false;
  }
}

void Router::reject(const std::shared_ptr<ClientConn>& conn,
                    std::uint64_t request_id, ErrorCode code,
                    const std::string& message) {
  ErrorResponse response;
  response.request_id = request_id;
  response.code = code;
  response.message = message;
  if (!respond(conn, service::encode(response))) {
    instruments_.write_errors.add();
  }
}

// ---- Routing / dispatch ------------------------------------------------

int Router::pick_backend(const std::vector<std::size_t>& eligible,
                         int exclude) {
  int best = -1;
  double best_score = std::numeric_limits<double>::infinity();
  const auto consider = [&](std::size_t index) {
    const Backend& backend = *backends_[index];
    if (!backend.healthy.load(std::memory_order_acquire)) return;
    if (static_cast<int>(index) == exclude) return;
    const double score =
        static_cast<double>(backend.in_flight.load(std::memory_order_acquire)) +
        backend.reported_load.load(std::memory_order_acquire);
    if (score < best_score) {
      best_score = score;
      best = static_cast<int>(index);
    }
  };
  if (eligible.empty()) {
    for (std::size_t i = 0; i < backends_.size(); ++i) consider(i);
  } else {
    for (const std::size_t i : eligible) consider(i);
  }
  if (best < 0 && exclude >= 0) {
    // Last resort: the excluded backend, if it is healthy and eligible —
    // retrying the same backend beats answering with an error.
    const auto index = static_cast<std::size_t>(exclude);
    const bool is_eligible =
        eligible.empty() ||
        std::find(eligible.begin(), eligible.end(), index) != eligible.end();
    if (is_eligible &&
        backends_[index]->healthy.load(std::memory_order_acquire)) {
      best = exclude;
    }
  }
  return best;
}

void Router::dispatch(std::shared_ptr<PendingOp> op, std::size_t backend) {
  const std::uint64_t id = op->id;
  const auto client = op->client;
  const std::uint64_t client_id = op->client_id;
  const auto agg = op->agg;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.emplace(id, std::move(op));
    instruments_.pending.set(static_cast<double>(pending_.size()));
  }
  client->in_flight.fetch_add(1, std::memory_order_acq_rel);
  switch (backends_[backend]->outbound.try_push(id)) {
    case service::BoundedQueue<std::uint64_t>::Push::kAccepted:
      return;
    case service::BoundedQueue<std::uint64_t>::Push::kFull:
      instruments_.rejected_overloaded.add();
      complete_error(id, ErrorCode::kOverloaded,
                     "backend queue full (" +
                         std::to_string(backends_[backend]->outbound.capacity()) +
                         " entries)");
      return;
    case service::BoundedQueue<std::uint64_t>::Push::kClosed:
      instruments_.rejected_shutdown.add();
      complete_error(id, ErrorCode::kShuttingDown, "router is draining");
      return;
  }
  (void)client_id;
  (void)agg;
}

// ---- Backend flusher (coalescing) --------------------------------------

void Router::flusher_loop(std::size_t backend_index) {
  Backend& backend = *backends_[backend_index];
  while (auto first = backend.outbound.pop()) {
    std::vector<std::uint64_t> group;
    group.push_back(*first);
    // Admission-time coalescing: whatever else is already waiting in this
    // backend's queue is folded into the same flush (bounded), so one
    // write carries many small jobs and one backend worker runs them back
    // to back on a warm Aligner.
    while (group.size() < config_.coalesce_max_jobs) {
      auto more = backend.outbound.try_pop();
      if (!more) break;
      group.push_back(*more);
    }

    // Classify under the pending lock; build every frame there too (the
    // ops' deadline fields are rewritten with their remaining budgets).
    struct Frame {
      std::string payload;
      std::vector<std::uint64_t> ids;
      /// Nonzero for a coalesced batch: the throwaway envelope id its
      /// coalesce_groups_ entry is registered under.
      std::uint64_t envelope = 0;
      /// Channel restriction (-1 = any) — see PendingOp::channel_pin.
      int channel_pin = -1;
    };
    std::vector<Frame> frames;
    std::vector<std::uint64_t> expired;
    std::vector<AlignRequest> batch_jobs;
    std::vector<std::uint64_t> batch_ids;
    const auto now = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      for (const std::uint64_t id : group) {
        const auto it = pending_.find(id);
        if (it == pending_.end()) continue;  // already answered elsewhere
        PendingOp& op = *it->second;
        const std::int64_t budget =
            remaining_deadline_ms(op.deadline_ms, op.arrival, now);
        if (budget == 0) {
          expired.push_back(id);
          continue;
        }
        op.attempts += 1;
        op.last_sent = now;
        op.last_backend = static_cast<int>(backend_index);
        if (op.first_backend < 0) {
          op.first_backend = static_cast<int>(backend_index);
        }
        forwarded_count_.fetch_add(1, std::memory_order_relaxed);
        instruments_.forwarded.add();

        if (auto* align = std::get_if<AlignRequest>(&op.request)) {
          AlignRequest job = *align;
          if (budget > 0) job.deadline_ms = static_cast<std::uint32_t>(budget);
          const bool coalescible = config_.coalesce_max_jobs > 1 &&
                                   !op.hedged &&
                                   op.cells <= config_.coalesce_max_cells;
          if (coalescible) {
            op.batched = true;
            batch_jobs.push_back(std::move(job));
            batch_ids.push_back(id);
          } else {
            frames.push_back({service::encode(job), {id}});
          }
        } else if (auto* search = std::get_if<SearchRequest>(&op.request)) {
          SearchRequest job = *search;
          if (budget > 0) job.deadline_ms = static_cast<std::uint32_t>(budget);
          // Rewrite to this backend's local reference id.
          for (const auto& [be, local_id] : op.ref_ids) {
            if (be == backend_index) {
              job.ref_id = local_id;
              break;
            }
          }
          frames.push_back({service::encode(job), {id}});
        } else if (auto* ref_put = std::get_if<RefPutRequest>(&op.request)) {
          frames.push_back({service::encode(*ref_put), {id}});
        } else if (auto* begin = std::get_if<SeqBeginRequest>(&op.request)) {
          frames.push_back(
              {service::encode(*begin), {id}, 0, op.channel_pin});
        } else if (auto* chunk = std::get_if<SeqChunkRequest>(&op.request)) {
          frames.push_back(
              {service::encode(*chunk), {id}, 0, op.channel_pin});
        } else if (auto* end = std::get_if<SeqEndRequest>(&op.request)) {
          frames.push_back({service::encode(*end), {id}, 0, op.channel_pin});
        } else if (auto* by_ref = std::get_if<AlignRefRequest>(&op.request)) {
          AlignRefRequest job = *by_ref;
          if (budget > 0) job.deadline_ms = static_cast<std::uint32_t>(budget);
          // Rewrite both handles to this backend's local reference ids.
          for (const auto& [be, local_id] : op.ref_ids) {
            if (be == backend_index) {
              job.ref_a = local_id;
              break;
            }
          }
          for (const auto& [be, local_id] : op.ref_ids_b) {
            if (be == backend_index) {
              job.ref_b = local_id;
              break;
            }
          }
          frames.push_back({service::encode(job), {id}});
        } else {
          auto& batch = std::get<AlignBatchRequest>(op.request);
          frames.push_back({service::encode(batch), {id}});
        }
      }
      if (batch_ids.size() == 1) {
        // A lone coalescible job travels as a plain ALIGN.
        pending_.at(batch_ids.front())->batched = false;
        frames.push_back(
            {service::encode(batch_jobs.front()), {batch_ids.front()}});
        batch_jobs.clear();
        batch_ids.clear();
      } else if (!batch_ids.empty()) {
        AlignBatchRequest envelope;
        envelope.request_id = next_op_id();  // not a pending op: the items
                                             // carry the real router ids
        envelope.jobs = std::move(batch_jobs);
        instruments_.coalesced_batches.add();
        instruments_.coalesced_jobs.add(batch_ids.size());
        {
          // Registered before the send so a whole-frame admission error
          // (a plain ERROR naming the envelope id) can find its members.
          std::lock_guard<std::mutex> coalesce_lock(coalesce_mutex_);
          coalesce_groups_.emplace(envelope.request_id, batch_ids);
        }
        frames.push_back(
            {service::encode(envelope), batch_ids, envelope.request_id});
      }
    }

    for (const std::uint64_t id : expired) {
      instruments_.rejected_deadline.add();
      complete_error(id, ErrorCode::kDeadlineExceeded,
                     "deadline budget exhausted before forwarding");
    }
    for (Frame& frame : frames) {
      if (!send_on_backend(backend_index, frame.payload, frame.ids,
                           frame.channel_pin)) {
        if (frame.envelope != 0) {
          std::lock_guard<std::mutex> coalesce_lock(coalesce_mutex_);
          coalesce_groups_.erase(frame.envelope);
        }
        for (const std::uint64_t id : frame.ids) {
          fail_over(id, "backend " + backend.endpoint.host + ":" +
                            std::to_string(backend.endpoint.port) +
                            " unreachable");
        }
      }
    }
  }
}

bool Router::send_on_backend(std::size_t backend_index,
                             const std::string& payload,
                             const std::vector<std::uint64_t>& ids,
                             int channel_pin) {
  Backend& backend = *backends_[backend_index];
  const std::size_t channels = backend.channels.size();
  // A pinned frame (upload chunk) gets exactly one channel candidate:
  // spilling to a sibling channel would put it on a different backend
  // connection, where the server would see it out of session order.
  const std::size_t attempts_allowed = channel_pin >= 0 ? 1 : channels;
  for (std::size_t attempt = 0; attempt < attempts_allowed; ++attempt) {
    const std::size_t ci =
        channel_pin >= 0
            ? static_cast<std::size_t>(channel_pin) % channels
            : backend.next_channel.fetch_add(1, std::memory_order_relaxed) %
                  channels;
    Channel& channel = *backend.channels[ci];
    bool wrote = false;
    bool died = false;
    {
      std::lock_guard<std::mutex> lock(channel.write_mutex);
      if (!channel.open.load(std::memory_order_acquire)) continue;
      {
        // Outstanding before the write: a response cannot overtake its
        // own registration.
        std::lock_guard<std::mutex> out_lock(channel.outstanding_mutex);
        for (const std::uint64_t id : ids) channel.outstanding.insert(id);
      }
      backend.in_flight.fetch_add(static_cast<std::int64_t>(ids.size()),
                                  std::memory_order_acq_rel);
      try {
        wrote = service::write_frame(channel.fd, payload);
      } catch (const std::exception&) {
        wrote = false;
      }
      if (!wrote) {
        std::lock_guard<std::mutex> out_lock(channel.outstanding_mutex);
        for (const std::uint64_t id : ids) channel.outstanding.erase(id);
        backend.in_flight.fetch_sub(static_cast<std::int64_t>(ids.size()),
                                    std::memory_order_acq_rel);
        died = true;
      }
    }
    if (wrote) return true;
    if (died) fail_channel(backend_index, channel, "write failed");
  }
  return false;
}

// ---- Backend channels --------------------------------------------------

void Router::channel_loop(std::size_t backend_index,
                          std::size_t channel_index) {
  Backend& backend = *backends_[backend_index];
  Channel& channel = *backend.channels[channel_index];
  while (!draining_.load(std::memory_order_acquire)) {
    if (!channel.open.load(std::memory_order_acquire)) {
      // (Re)dial. The reader owns the fd: nobody else ever closes it.
      int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      bool connected = false;
      if (fd >= 0) {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(backend.endpoint.port);
        if (::inet_pton(AF_INET, backend.endpoint.host.c_str(),
                        &addr.sin_addr) == 1 &&
            ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          const int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          connected = true;
        }
      }
      if (!connected) {
        if (fd >= 0) ::close(fd);
        if (!interruptible_sleep(config_.health_interval_ms, draining_)) {
          return;
        }
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(channel.write_mutex);
        if (channel.fd >= 0) ::close(channel.fd);
        channel.fd = fd;
        channel.open.store(true, std::memory_order_release);
      }
    }

    std::string payload;
    try {
      while (service::read_frame(channel.fd, &payload)) {
        Response response = service::decode_response(payload);
        if (auto* batch = std::get_if<AlignBatchResponse>(&response)) {
          // Two batch shapes come back here. A client-built pass-through
          // batch was sent under its op's own id (outstanding holds the
          // envelope id; the items carry the client's job ids) and
          // completes as one unit. A router-coalesced batch used a
          // throwaway envelope id — the *items* echo the member ops'
          // router ids and demux individually.
          bool pass_through = false;
          {
            std::lock_guard<std::mutex> lock(channel.outstanding_mutex);
            if (channel.outstanding.erase(batch->request_id) != 0) {
              backend.in_flight.fetch_sub(1, std::memory_order_acq_rel);
              pass_through = true;
            }
          }
          if (pass_through) {
            const std::uint64_t id = batch->request_id;
            complete(id, std::move(response),
                     static_cast<int>(backend_index));
          } else {
            {
              std::lock_guard<std::mutex> lock(coalesce_mutex_);
              coalesce_groups_.erase(batch->request_id);
            }
            for (service::BatchItem& item : batch->items) {
              const std::uint64_t sub_id = std::visit(
                  [](const auto& r) { return r.request_id; }, item);
              {
                std::lock_guard<std::mutex> lock(channel.outstanding_mutex);
                if (channel.outstanding.erase(sub_id) != 0) {
                  backend.in_flight.fetch_sub(1, std::memory_order_acq_rel);
                }
              }
              std::visit(
                  [&](auto& r) {
                    complete(sub_id, Response(std::move(r)),
                             static_cast<int>(backend_index));
                  },
                  item);
            }
          }
        } else if (auto* part = std::get_if<AlignPartResponse>(&response);
                   part != nullptr && !part->last) {
          // A non-final ALIGN_PART frame: forward it to the origin client
          // with its request id restored, but keep the op pending and
          // outstanding — the stream completes only on the last frame.
          const std::uint64_t id = part->request_id;
          std::shared_ptr<PendingOp> op;
          {
            std::lock_guard<std::mutex> lock(pending_mutex_);
            const auto it = pending_.find(id);
            if (it != pending_.end()) op = it->second;
          }
          if (op != nullptr) {
            AlignPartResponse forwarded = *part;
            forwarded.request_id = op->client_id;
            if (!respond(op->client, service::encode(forwarded))) {
              instruments_.write_errors.add();
            }
          }
        } else {
          const std::uint64_t id = response_id(response);
          std::vector<std::uint64_t> members;
          {
            std::lock_guard<std::mutex> lock(coalesce_mutex_);
            const auto group = coalesce_groups_.find(id);
            if (group != coalesce_groups_.end()) {
              members = std::move(group->second);
              coalesce_groups_.erase(group);
            }
          }
          if (!members.empty()) {
            // The backend refused the whole coalesced frame at admission
            // (OVERLOADED, SHUTTING_DOWN, BAD_REQUEST...) — none of the
            // member jobs ran. Answer each through the normal completion
            // path, which re-fires retryable rejections on another
            // backend instead of bouncing them to clients.
            const auto* error = std::get_if<ErrorResponse>(&response);
            for (const std::uint64_t member : members) {
              {
                std::lock_guard<std::mutex> lock(channel.outstanding_mutex);
                if (channel.outstanding.erase(member) != 0) {
                  backend.in_flight.fetch_sub(1, std::memory_order_acq_rel);
                }
              }
              ErrorResponse item;
              item.request_id = member;
              item.code = error ? error->code : ErrorCode::kInternal;
              item.message = error ? error->message
                                   : "coalesced batch answered with an "
                                     "unexpected verb";
              complete(member, Response(std::move(item)),
                       static_cast<int>(backend_index));
            }
            continue;
          }
          {
            std::lock_guard<std::mutex> lock(channel.outstanding_mutex);
            if (channel.outstanding.erase(id) != 0) {
              backend.in_flight.fetch_sub(1, std::memory_order_acq_rel);
            }
          }
          complete(id, std::move(response),
                   static_cast<int>(backend_index));
        }
      }
      fail_channel(backend_index, channel, "backend closed the connection");
    } catch (const std::exception& e) {
      // TransportError (reset, mid-frame EOF) or ProtocolError (corrupt
      // frame — the stream position is unrecoverable): either way this
      // channel is done; outstanding ops fail over.
      fail_channel(backend_index, channel, e.what());
    }
  }
}

void Router::fail_channel(std::size_t backend_index, Channel& channel,
                          const char* why) {
  {
    std::lock_guard<std::mutex> lock(channel.write_mutex);
    if (!channel.open.load(std::memory_order_acquire)) return;
    channel.open.store(false, std::memory_order_release);
    ::shutdown(channel.fd, SHUT_RDWR);
  }
  std::vector<std::uint64_t> orphans;
  {
    std::lock_guard<std::mutex> lock(channel.outstanding_mutex);
    orphans.assign(channel.outstanding.begin(), channel.outstanding.end());
    channel.outstanding.clear();
  }
  Backend& backend = *backends_[backend_index];
  backend.in_flight.fetch_sub(static_cast<std::int64_t>(orphans.size()),
                              std::memory_order_acq_rel);
  if (!orphans.empty()) {
    // A coalesced frame travels on exactly one channel, so a group with
    // any member orphaned here died with this channel — drop its entry
    // (the members themselves fail over individually below).
    const std::set<std::uint64_t> swept(orphans.begin(), orphans.end());
    std::lock_guard<std::mutex> lock(coalesce_mutex_);
    for (auto it = coalesce_groups_.begin(); it != coalesce_groups_.end();) {
      const bool hit = std::any_of(
          it->second.begin(), it->second.end(),
          [&](std::uint64_t member) { return swept.count(member) != 0; });
      it = hit ? coalesce_groups_.erase(it) : std::next(it);
    }
  }
  const std::string reason =
      "backend " + backend.endpoint.host + ":" +
      std::to_string(backend.endpoint.port) + " channel failed: " + why;
  for (const std::uint64_t id : orphans) fail_over(id, reason);
}

void Router::fail_over(std::uint64_t id, const std::string& why) {
  int target = -1;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;  // hedge winner already answered
    PendingOp& op = *it->second;
    // REF_PUT sub-ops never retarget: the send may have executed, and a
    // second send would register a second reference id. Pinned ops
    // (SEQ_* sessions, ALIGN_REF streams) never retarget either — their
    // state lives on exactly one backend.
    if (!op.agg && !op.pinned &&
        !draining_.load(std::memory_order_acquire) &&
        op.attempts < config_.max_attempts) {
      const std::int64_t budget = remaining_deadline_ms(
          op.deadline_ms, op.arrival, std::chrono::steady_clock::now());
      if (budget != 0) {
        target = pick_backend(op.eligible, op.last_backend);
      }
    }
    if (target >= 0) op.batched = false;  // resent as a single
  }
  if (target >= 0) {
    instruments_.failovers.add();
    if (backends_[static_cast<std::size_t>(target)]->outbound.try_push(id) ==
        service::BoundedQueue<std::uint64_t>::Push::kAccepted) {
      return;
    }
    // Fall through: the failover target is saturated or closed.
  }
  complete_error(id, ErrorCode::kInternal, why);
}

// ---- Completion --------------------------------------------------------

void Router::complete(std::uint64_t id, Response response, int from_backend) {
  std::shared_ptr<PendingOp> op;
  int refire_target = -1;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;  // hedge loser / late duplicate
    op = it->second;
    // A retryable typed error (OVERLOADED, SHUTTING_DOWN, CONNECTION_
    // LIMIT) from a backend means the job was never executed there —
    // fail it over instead of bouncing the rejection to the client.
    const auto* error = std::get_if<ErrorResponse>(&response);
    if (error != nullptr && service::is_retryable(error->code) &&
        from_backend >= 0 && !op->agg && !op->pinned &&
        !draining_.load(std::memory_order_acquire) &&
        op->attempts < config_.max_attempts) {
      const std::int64_t budget = remaining_deadline_ms(
          op->deadline_ms, op->arrival, std::chrono::steady_clock::now());
      if (budget != 0) {
        refire_target = pick_backend(op->eligible, from_backend);
      }
      if (refire_target >= 0) op->batched = false;
    }
    if (refire_target < 0) {
      pending_.erase(it);
      instruments_.pending.set(static_cast<double>(pending_.size()));
    }
  }

  if (refire_target >= 0) {
    instruments_.failovers.add();
    if (backends_[static_cast<std::size_t>(refire_target)]
            ->outbound.try_push(id) ==
        service::BoundedQueue<std::uint64_t>::Push::kAccepted) {
      return;
    }
    complete_error(id, ErrorCode::kOverloaded,
                   "failover target queue full");
    return;
  }

  op->client->in_flight.fetch_sub(1, std::memory_order_acq_rel);
  if (op->agg) {
    complete_ref_put(op, std::move(response));
    return;
  }
  // A sealed upload: the backend answered SEQ_END with its local ref id.
  // Install a router id for it (single placement — streamed uploads are
  // not replicated) and rewrite the answer; clients only see router ids.
  if (std::holds_alternative<SeqEndRequest>(op->request)) {
    if (auto* ok = std::get_if<SeqOkResponse>(&response);
        ok != nullptr && ok->ref_id != 0 && from_backend >= 0) {
      const std::uint64_t router_ref_id =
          next_ref_id_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(refs_mutex_);
      refs_[router_ref_id] = {{static_cast<std::size_t>(from_backend),
                               ok->ref_id}};
      // Session over: the sticky placement is garbage now. Aborted or
      // abandoned sessions (no SEQ_END ever succeeds) are swept by the
      // upload_route_ttl_ms monitor instead.
      upload_routes_.erase(ok->upload_token);
      instruments_.upload_placements.set(
          static_cast<double>(upload_routes_.size()));
      ok->ref_id = router_ref_id;
    }
  }
  if (op->hedged && from_backend >= 0) {
    if (from_backend == op->first_backend) {
      instruments_.hedges_wasted.add();
    } else {
      instruments_.hedges_won.add();
    }
  }
  if (from_backend >= 0) {
    instruments_.latency_seconds.observe(
        static_cast<double>(millis_between(
            op->arrival, std::chrono::steady_clock::now())) *
        1e-3);
  }
  instruments_.completed.add();
  set_response_id(response, op->client_id);
  if (!respond(op->client, encode_response(response))) {
    instruments_.write_errors.add();
  }
}

void Router::complete_error(std::uint64_t id, ErrorCode code,
                            const std::string& message) {
  std::shared_ptr<PendingOp> op;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;
    op = it->second;
    pending_.erase(it);
    instruments_.pending.set(static_cast<double>(pending_.size()));
  }
  op->client->in_flight.fetch_sub(1, std::memory_order_acq_rel);
  ErrorResponse response;
  response.request_id = op->client_id;
  response.code = code;
  response.message = message;
  if (op->agg) {
    complete_ref_put(op, Response(std::move(response)));
    return;
  }
  if (code == ErrorCode::kInternal) instruments_.internal_errors.add();
  instruments_.completed.add();
  if (!respond(op->client, service::encode(response))) {
    instruments_.write_errors.add();
  }
}

void Router::complete_ref_put(const std::shared_ptr<PendingOp>& op,
                              Response response) {
  const std::shared_ptr<RefPutAgg>& agg = op->agg;
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(agg->mutex);
    if (const auto* ok = std::get_if<RefPutResponse>(&response)) {
      agg->placements.emplace_back(op->eligible.front(), ok->ref_id);
      if (!agg->have_ok) {
        agg->have_ok = true;
        agg->ok = *ok;
      }
    } else if (const auto* error = std::get_if<ErrorResponse>(&response)) {
      if (!agg->have_err) {
        agg->have_err = true;
        agg->err = *error;
      }
    }
    last = (--agg->remaining == 0);
  }
  if (!last) return;

  if (agg->have_ok) {
    {
      std::lock_guard<std::mutex> lock(refs_mutex_);
      refs_[agg->router_ref_id] = agg->placements;
    }
    if (agg->have_err) instruments_.ref_put_degraded.add();
    RefPutResponse out = agg->ok;
    out.request_id = agg->client_id;
    out.ref_id = agg->router_ref_id;  // clients only ever see router ids
    instruments_.completed.add();
    if (!respond(agg->client, service::encode(out))) {
      instruments_.write_errors.add();
    }
  } else {
    ErrorResponse out = agg->err;
    out.request_id = agg->client_id;
    instruments_.completed.add();
    if (!respond(agg->client, service::encode(out))) {
      instruments_.write_errors.add();
    }
  }
}

// ---- Placement hygiene -------------------------------------------------

void Router::prune_backend_refs(
    std::size_t backend_index,
    const std::vector<service::RefListEntry>& surviving) {
  std::set<std::uint64_t> alive;
  for (const service::RefListEntry& entry : surviving) {
    alive.insert(entry.ref_id);
  }
  std::size_t pruned = 0;
  {
    std::lock_guard<std::mutex> lock(refs_mutex_);
    for (auto it = refs_.begin(); it != refs_.end();) {
      auto& placements = it->second;
      const std::size_t before = placements.size();
      placements.erase(
          std::remove_if(placements.begin(), placements.end(),
                         [&](const std::pair<std::size_t, std::uint64_t>& p) {
                           return p.first == backend_index &&
                                  alive.count(p.second) == 0;
                         }),
          placements.end());
      pruned += before - placements.size();
      // A handle with no surviving replica anywhere answers REF_NOT_FOUND
      // at routing time — drop the empty entry so the map stays bounded.
      if (placements.empty()) {
        it = refs_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (pruned != 0) instruments_.refs_pruned.add(pruned);
}

void Router::sweep_upload_routes(std::chrono::steady_clock::time_point now) {
  if (config_.upload_route_ttl_ms == 0) return;
  const auto ttl = std::chrono::milliseconds(config_.upload_route_ttl_ms);
  std::size_t expired = 0;
  {
    std::lock_guard<std::mutex> lock(refs_mutex_);
    for (auto it = upload_routes_.begin(); it != upload_routes_.end();) {
      if (now - it->second.last_used >= ttl) {
        it = upload_routes_.erase(it);
        ++expired;
      } else {
        ++it;
      }
    }
    if (expired != 0) {
      instruments_.upload_placements.set(
          static_cast<double>(upload_routes_.size()));
    }
  }
  if (expired != 0) instruments_.upload_routes_expired.add(expired);
}

// ---- Health prober -----------------------------------------------------

void Router::prober_loop() {
  std::vector<service::Client> probers(backends_.size());
  while (!draining_.load(std::memory_order_acquire)) {
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      Backend& backend = *backends_[i];
      try {
        if (!probers[i].connected()) {
          probers[i].connect(backend.endpoint.host, backend.endpoint.port);
        }
        Response response = probers[i].call(StatsRequest{});
        if (const auto* stats = std::get_if<StatsResponse>(&response)) {
          double load = 0.0;
          for (const auto& [name, value] : stats->entries) {
            if (name == "service.queue_depth" || name == "service.in_flight") {
              load += value;
            }
          }
          backend.reported_load.store(load, std::memory_order_release);
          if (!backend.healthy.exchange(true, std::memory_order_acq_rel)) {
            instruments_.backend_readmitted.add();
            // Readmit re-sync: the backend may have restarted while it
            // was ejected. Ask it which handles actually survive (a
            // durable store replays them; a fresh one has none) and
            // prune placements whose local ids are gone — a stale
            // placement must become a typed REF_NOT_FOUND at routing
            // time, never an answer computed against the wrong handle.
            Response refs_response = probers[i].call(RefListRequest{});
            if (const auto* list =
                    std::get_if<RefListResponse>(&refs_response)) {
              prune_backend_refs(i, list->refs);
              instruments_.backend_resyncs.add();
            }
          }
        }
      } catch (const std::exception&) {
        probers[i].close();
        backend.reported_load.store(0.0, std::memory_order_release);
        if (backend.healthy.exchange(false, std::memory_order_acq_rel)) {
          instruments_.backend_ejected.add();
        }
      }
    }
    std::size_t healthy = 0;
    for (const auto& backend : backends_) {
      if (backend->healthy.load(std::memory_order_acquire)) ++healthy;
    }
    instruments_.backends_healthy.set(static_cast<double>(healthy));
    if (!interruptible_sleep(config_.health_interval_ms, draining_)) return;
  }
}

// ---- Hedge / deadline monitor ------------------------------------------

void Router::monitor_loop() {
  auto last_route_sweep = std::chrono::steady_clock::now();
  while (interruptible_sleep(config_.hedge_tick_ms, draining_)) {
    const auto now = std::chrono::steady_clock::now();
    // Abandoned-upload sweep: a few times per TTL is prompt enough, and
    // keeps the map walk off the hot hedge tick.
    if (config_.upload_route_ttl_ms != 0 &&
        millis_between(last_route_sweep, now) >=
            std::max<std::uint64_t>(1, config_.upload_route_ttl_ms / 4)) {
      last_route_sweep = now;
      sweep_upload_routes(now);
    }
    const std::uint32_t threshold = hedge_threshold_ms();
    std::vector<std::uint64_t> expired;
    std::vector<std::pair<std::uint64_t, int>> hedges;
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      for (const auto& [id, op] : pending_) {
        if (op->deadline_ms != 0 &&
            remaining_deadline_ms(op->deadline_ms, op->arrival, now) == 0) {
          expired.push_back(id);
          continue;
        }
        if (threshold == 0 || !op->hedgeable || op->hedged || op->batched ||
            op->attempts == 0) {
          continue;
        }
        if (millis_between(op->last_sent, now) < threshold) continue;
        // Budget: the hedged fraction of forwarded traffic stays under
        // hedge_budget_percent (with a burst allowance of one), exactly
        // the retry-budget discipline — an overloaded fleet slows down,
        // p95 rises, and the budget stops hedges from piling on.
        const std::uint64_t forwarded =
            forwarded_count_.load(std::memory_order_relaxed);
        const std::uint64_t hedged =
            hedge_count_.load(std::memory_order_relaxed);
        if (hedged * 100 >=
            static_cast<std::uint64_t>(config_.hedge_budget_percent) *
                    forwarded +
                100) {
          continue;
        }
        const int target = pick_backend(op->eligible, op->last_backend);
        if (target < 0) continue;
        op->hedged = true;
        hedge_count_.fetch_add(1, std::memory_order_relaxed);
        hedges.emplace_back(id, target);
      }
    }
    for (const std::uint64_t id : expired) {
      instruments_.rejected_deadline.add();
      complete_error(id, ErrorCode::kDeadlineExceeded,
                     "deadline expired while waiting for a backend");
    }
    for (const auto& [id, target] : hedges) {
      instruments_.hedges_issued.add();
      // Push failure leaves the op pending; the original send, a later
      // failover, or the deadline sweep still resolves it.
      (void)backends_[static_cast<std::size_t>(target)]->outbound.try_push(
          id);
    }
  }
}

}  // namespace router
}  // namespace flsa
