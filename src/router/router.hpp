// The front tier: a router that speaks the existing wire protocol to
// clients and multiplexes onto a fleet of flsa_serve backends.
//
// Request flow
// ------------
//   client conn threads  read frames, decode, assign a router-wide id,
//                        register a PendingOp, and push the id onto the
//                        chosen backend's outbound queue
//   backend flushers     one per backend: pop ids, coalesce small queued
//                        ALIGNs into one ALIGN_BATCH frame, and write on a
//                        pipelined channel
//   channel readers      one per backend connection: read responses,
//                        demux batch items, complete PendingOps (write the
//                        answer to the origin client with the original
//                        request_id restored)
//   health prober        polls every backend with STATS; ejects/readmits
//                        and feeds queue-depth/in-flight gauges into
//                        least-loaded routing
//   hedge monitor        re-issues slow singles to a second replica after
//                        a p95-tracked threshold, bounded by a hedge
//                        budget; also expires ops whose deadline is gone
//
// Routing
// -------
//   ALIGN        least-loaded healthy backend (router in-flight + the
//                backend's reported queue_depth/in_flight)
//   SEARCH       the replicas holding the reference (rendezvous placement
//                from REF_PUT), least-loaded among them; the ref id is
//                rewritten per backend (each backend assigned its own)
//   REF_PUT      fanned out to R rendezvous-chosen replicas; >= 1 success
//                installs the mapping and answers success (degraded
//                replication is accepted and counted)
//   SEQ_*        pinned to one rendezvous-chosen backend per upload token
//                (chunks of a session must land on one store, in order:
//                the frames also stick to one channel), never hedged,
//                coalesced, or failed over; the SEQ_END answer's backend-
//                local ref id is rewritten to a fresh router id
//   ALIGN_REF    eligible backends are those holding *both* referenced
//                handles (intersection of their placements); ref ids are
//                rewritten per backend; never hedged or coalesced, and
//                never failed over (the response may already be streaming
//                in ALIGN_PART frames — non-last parts are forwarded to
//                the client as they arrive, the last one completes the op)
//   STATS        answered locally from the router's own registry
//
// Deadlines: the router re-computes the remaining budget (original
// deadline minus time since arrival) at every (re)send and answers
// DEADLINE_EXCEEDED locally once it is gone — a request never reaches a
// backend with a budget it cannot meet.
//
// Failure handling: a dead channel or a retryable typed error fails the
// op over to another healthy backend (bounded attempts); non-retryable
// errors are forwarded as-is. Batched jobs fail over individually as
// singles. REF_PUT never fails over (re-sending after an ambiguous
// failure could register twice).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "router/shard_map.hpp"
#include "service/bounded_queue.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"

namespace flsa {
namespace router {

struct RouterConfig {
  /// Listen address of the router itself.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 binds an ephemeral port
  /// The backend fleet (flsa_serve instances). At least one required.
  std::vector<service::Endpoint> backends;
  /// REF_PUT replication factor: each reference lives on min(R, backends)
  /// backends, placed by rendezvous hashing.
  std::size_t replication = 1;
  /// Pipelined connections per backend.
  std::size_t channels_per_backend = 2;
  /// Per-backend outbound queue capacity (admission control: a full queue
  /// answers OVERLOADED locally).
  std::size_t queue_capacity = 256;
  /// Frame ceiling for client reads.
  std::size_t max_frame_bytes = service::kMaxFrameBytes;
  /// Concurrent client connection cap (0 = unlimited).
  std::size_t max_connections = 256;
  /// Per-recv deadline on client sockets, ms (0 disables).
  std::uint32_t idle_timeout_ms = 60000;
  int backlog = 128;
  /// Arm the obs registry on start().
  bool enable_metrics = true;

  // ---- Coalescing ------------------------------------------------------
  /// Most jobs folded into one ALIGN_BATCH frame (1 disables coalescing).
  std::size_t coalesce_max_jobs = 8;
  /// Only ALIGNs at most this many DPM cells are coalesced — a big job
  /// gains nothing from amortization and would delay its batch mates.
  std::uint64_t coalesce_max_cells = std::uint64_t{1} << 20;

  // ---- Hedging ---------------------------------------------------------
  bool hedge_enabled = true;
  /// Floor of the hedge threshold, ms.
  std::uint32_t hedge_min_ms = 20;
  /// Completed ops needed before the p95 estimate is trusted; until then
  /// no hedges are issued.
  std::uint64_t hedge_min_samples = 50;
  /// Hedge monitor tick, ms.
  std::uint32_t hedge_tick_ms = 5;
  /// Budget: hedges issued may not exceed this percentage of forwarded
  /// ops (plus a burst of 1) — the retry-budget discipline applied to
  /// hedging, so hedges cannot melt an overloaded fleet.
  std::uint32_t hedge_budget_percent = 10;

  // ---- Failover / health ----------------------------------------------
  /// Total sends per op (first try + failovers).
  unsigned max_attempts = 3;
  /// STATS health-check period, ms.
  std::uint32_t health_interval_ms = 200;
  /// stop() waits this long for in-flight ops before answering the rest
  /// with SHUTTING_DOWN, ms.
  std::uint32_t drain_grace_ms = 5000;

  // ---- Upload placement hygiene ----------------------------------------
  /// TTL for a token-sticky upload placement with no SEQ_* traffic: an
  /// abandoned session's route is evicted after this long so the map
  /// cannot grow without bound (completion already evicts promptly).
  /// 0 disables the sweep.
  std::uint32_t upload_route_ttl_ms = 600000;
};

class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();  ///< stops (drains) if still running

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Connects the backend pool, binds the listen socket, and spawns all
  /// threads. Throws std::runtime_error when no backend is reachable or
  /// the socket setup fails.
  void start();

  /// Graceful drain: stops admission, waits (bounded) for in-flight ops,
  /// answers stragglers with SHUTTING_DOWN, tears everything down.
  void stop();

  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  const RouterConfig& config() const { return config_; }

  /// Remaining deadline budget in ms at `now` for an op that arrived at
  /// `arrival` with `deadline_ms` (0 = no deadline -> returns -1; fully
  /// spent -> returns 0). Pure — unit-tested directly.
  static std::int64_t remaining_deadline_ms(
      std::uint32_t deadline_ms,
      std::chrono::steady_clock::time_point arrival,
      std::chrono::steady_clock::time_point now);

 private:
  struct ClientConn;
  struct Channel;
  struct Backend;
  struct RefPutAgg;
  struct PendingOp;

  void accept_loop();
  void client_loop(std::shared_ptr<ClientConn> conn);
  void handle_request(const std::shared_ptr<ClientConn>& conn,
                      service::Request request);
  void route_ref_put(const std::shared_ptr<ClientConn>& conn,
                     service::RefPutRequest request);
  void answer_stats(const std::shared_ptr<ClientConn>& conn,
                    const service::StatsRequest& request);

  void flusher_loop(std::size_t backend_index);
  void channel_loop(std::size_t backend_index, std::size_t channel_index);
  void prober_loop();
  void monitor_loop();

  /// Least-loaded healthy backend among `eligible` (all when empty);
  /// `exclude` (when >= 0) is skipped unless it is the only choice.
  /// Returns -1 when no healthy backend qualifies.
  int pick_backend(const std::vector<std::size_t>& eligible, int exclude);

  /// Registers the op and pushes it onto `backend`'s outbound queue;
  /// answers OVERLOADED locally when that queue is full.
  void dispatch(std::shared_ptr<PendingOp> op, std::size_t backend);

  /// Sends one encoded frame on an open channel of `backend`, recording
  /// `ids` as outstanding there first. Returns false when no channel
  /// could be used (the backend is then marked unhealthy).
  /// `channel_pin` >= 0 restricts the send to that channel (mod the
  /// channel count) — upload chunks must not be striped across channels,
  /// or the backend sees them out of order on different connections.
  bool send_on_backend(std::size_t backend, const std::string& payload,
                       const std::vector<std::uint64_t>& ids,
                       int channel_pin = -1);

  /// Channel death: mark it closed, collect its outstanding ids, and
  /// fail each over (or answer the client when attempts are exhausted).
  void fail_channel(std::size_t backend_index, Channel& channel,
                    const char* why);
  void fail_over(std::uint64_t id, const std::string& why);

  /// Completes op `id` with a backend response (or drops it when the op
  /// is no longer pending — a hedge loser). `from_backend` attributes
  /// hedge wins/waste; -1 for locally generated completions.
  void complete(std::uint64_t id, service::Response response,
                int from_backend);
  /// Local typed completion (deadline gone, no healthy backend, ...).
  void complete_error(std::uint64_t id, service::ErrorCode code,
                      const std::string& message);
  /// REF_PUT sub-op completion: folds into the aggregate and answers the
  /// client when the last replica reports.
  void complete_ref_put(const std::shared_ptr<PendingOp>& op,
                        service::Response response);

  /// Writes a response payload to an origin client (connection-locked).
  bool respond(const std::shared_ptr<ClientConn>& conn,
               const std::string& payload);
  void reject(const std::shared_ptr<ClientConn>& conn,
              std::uint64_t request_id, service::ErrorCode code,
              const std::string& message);

  /// Current hedge threshold in ms, or 0 when hedging must not fire yet
  /// (disabled, or not enough latency samples).
  std::uint32_t hedge_threshold_ms() const;

  std::uint64_t next_op_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  std::size_t live_connections();
  void reap_connections(bool all);
  void kill_connection(const std::shared_ptr<ClientConn>& conn);

  struct Instruments {
    obs::Counter& requests;
    obs::Counter& forwarded;
    obs::Counter& completed;
    obs::Counter& rejected_overloaded;
    obs::Counter& rejected_shutdown;
    obs::Counter& rejected_deadline;
    obs::Counter& bad_requests;
    obs::Counter& internal_errors;
    obs::Counter& failovers;
    obs::Counter& hedges_issued;
    obs::Counter& hedges_won;
    obs::Counter& hedges_wasted;
    obs::Counter& coalesced_batches;
    obs::Counter& coalesced_jobs;
    obs::Counter& backend_ejected;
    obs::Counter& backend_readmitted;
    obs::Counter& ref_put_degraded;
    obs::Counter& write_errors;
    obs::Counter& backend_resyncs;
    obs::Counter& refs_pruned;
    obs::Counter& upload_routes_expired;
    obs::Gauge& pending;
    obs::Gauge& backends_healthy;
    obs::Gauge& upload_placements;
    obs::Histogram& latency_seconds;
  };

  RouterConfig config_;
  Instruments instruments_;
  ShardMap shard_map_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> forwarded_count_{0};
  std::atomic<std::uint64_t> hedge_count_{0};

  /// Pending ops by router id. One mutex guards the map and every op's
  /// mutable fields — routing decisions are tiny compared to DP work, so
  /// contention is not the bottleneck at this tier's scale.
  std::mutex pending_mutex_;
  std::map<std::uint64_t, std::shared_ptr<PendingOp>> pending_;

  /// In-flight coalesced batches: throwaway envelope id -> member router
  /// ids. Normally the envelope's ALIGN_BATCH_OK items demux the members
  /// and the entry dies with it — but a backend may refuse the *whole*
  /// frame at admission (OVERLOADED, SHUTTING_DOWN, BAD_REQUEST) with a
  /// plain ERROR naming the envelope id, and this map is how that error
  /// finds the member ops to answer (or re-fire) instead of orphaning
  /// them until the channel dies.
  std::mutex coalesce_mutex_;
  std::map<std::uint64_t, std::vector<std::uint64_t>> coalesce_groups_;

  /// router ref id -> per-backend placements (backend index, local id).
  std::mutex refs_mutex_;
  std::map<std::uint64_t, std::vector<std::pair<std::size_t, std::uint64_t>>>
      refs_;
  std::atomic<std::uint64_t> next_ref_id_{1};
  /// Open upload sessions: token -> pinned backend (guarded by
  /// refs_mutex_). Installed by SEQ_BEGIN, dropped when SEQ_END answers
  /// successfully — and swept by TTL when the client vanished mid-upload
  /// (every SEQ_* frame refreshes last_used). Exported as the
  /// `router.upload_placements` gauge.
  struct UploadRoute {
    std::size_t backend = 0;
    std::chrono::steady_clock::time_point last_used{};
  };
  std::map<std::uint64_t, UploadRoute> upload_routes_;

  /// Prunes placements on `backend_index` whose local ref id is absent
  /// from `surviving` (a REF_LIST snapshot taken at readmit): a backend
  /// restarted without durable state must answer a typed REF_NOT_FOUND,
  /// never serve a stale placement's wrong handle.
  void prune_backend_refs(std::size_t backend_index,
                          const std::vector<service::RefListEntry>& surviving);
  /// Evicts upload routes idle past config.upload_route_ttl_ms.
  void sweep_upload_routes(std::chrono::steady_clock::time_point now);

  std::vector<std::unique_ptr<Backend>> backends_;

  std::thread acceptor_;
  std::thread prober_;
  std::thread monitor_;

  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<ClientConn>> connections_;
};

}  // namespace router
}  // namespace flsa
