// Rendezvous (highest-random-weight) shard map.
//
// For a key (a reference id), every backend is scored with a mix of
// (key, backend index) and the R highest scores own the key. Properties
// the router leans on:
//   * deterministic — every router instance with the same backend count
//     computes the same placement, no coordination or state exchange;
//   * minimal disruption — adding/removing one backend only moves the
//     keys that backend won, unlike modular hashing which reshuffles
//     nearly everything;
//   * ranked replicas — the score order gives a stable preference list,
//     so "primary" and "fallback" are well-defined per key.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flsa {
namespace router {

class ShardMap {
 public:
  /// `backends` slots, each key owned by min(replication, backends) of
  /// them. Requires backends >= 1 and replication >= 1.
  ShardMap(std::size_t backends, std::size_t replication);

  std::size_t backends() const { return backends_; }
  std::size_t replication() const { return replication_; }

  /// The backends owning `key`, best score first. Size is
  /// min(replication, backends); deterministic for a given (key,
  /// backends) pair.
  std::vector<std::size_t> replicas(std::uint64_t key) const;

  /// replicas(key).front() without building the vector.
  std::size_t primary(std::uint64_t key) const;

  /// The rendezvous weight of one (key, backend) pair — exposed for
  /// tests asserting placement stability.
  static std::uint64_t weight(std::uint64_t key, std::size_t backend);

 private:
  std::size_t backends_;
  std::size_t replication_;
};

}  // namespace router
}  // namespace flsa
