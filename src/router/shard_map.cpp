#include "router/shard_map.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace flsa {
namespace router {

namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit mix, so consecutive
/// reference ids land on unrelated backends.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardMap::ShardMap(std::size_t backends, std::size_t replication)
    : backends_(backends), replication_(std::min(replication, backends)) {
  FLSA_REQUIRE(backends >= 1);
  FLSA_REQUIRE(replication >= 1);
}

std::uint64_t ShardMap::weight(std::uint64_t key, std::size_t backend) {
  // Double mix keeps the (key, backend) pairing from factoring apart:
  // mix(key ^ mix(backend)) differs in every bit when either input moves.
  return mix64(key ^ mix64(static_cast<std::uint64_t>(backend)));
}

std::vector<std::size_t> ShardMap::replicas(std::uint64_t key) const {
  std::vector<std::size_t> order(backends_);
  for (std::size_t i = 0; i < backends_; ++i) order[i] = i;
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(replication_),
                    order.end(),
                    [key](std::size_t a, std::size_t b) {
                      const std::uint64_t wa = weight(key, a);
                      const std::uint64_t wb = weight(key, b);
                      // Tie-break on index for a total order.
                      return wa != wb ? wa > wb : a < b;
                    });
  order.resize(replication_);
  return order;
}

std::size_t ShardMap::primary(std::uint64_t key) const {
  std::size_t best = 0;
  std::uint64_t best_weight = weight(key, 0);
  for (std::size_t i = 1; i < backends_; ++i) {
    const std::uint64_t w = weight(key, i);
    if (w > best_weight) {
      best = i;
      best_weight = w;
    }
  }
  return best;
}

}  // namespace router
}  // namespace flsa
