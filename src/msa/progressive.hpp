// Progressive multiple sequence alignment over a UPGMA guide tree.
//
// The ClustalW-style pipeline, built from this library's parts: pairwise
// FastLSA scores give a distance matrix; UPGMA clusters it into a guide
// tree; profiles merge bottom-up with profile-profile alignment
// (msa/profile.hpp). Generally produces better sum-of-pairs scores than
// center-star on divergent families, at the cost of the extra profile
// DPs.
#pragma once

#include "msa/center_star.hpp"
#include "msa/profile.hpp"

namespace flsa {
namespace msa {

/// Node of the UPGMA guide tree; leaves carry sequence indices.
struct GuideNode {
  int left = -1;    ///< child node index, -1 for leaves
  int right = -1;
  std::size_t sequence = 0;  ///< input index (leaves only)
  double height = 0.0;       ///< UPGMA cluster height

  bool is_leaf() const { return left < 0; }
};

/// A guide tree: nodes in construction order, root last. Leaves occupy
/// indices [0, n).
struct GuideTree {
  std::vector<GuideNode> nodes;
  int root = -1;
};

/// Builds the UPGMA tree from a symmetric distance matrix (row-major,
/// n x n, zero diagonal). Ties break toward the smallest index pair.
GuideTree upgma(const std::vector<std::vector<double>>& distances);

/// Pairwise distances from global alignment scores:
/// d(x, y) = (s(x,x) + s(y,y)) / 2 - s(x,y), a standard
/// similarity-to-distance transform (0 for identical sequences, larger
/// for more divergent pairs under any sensible matrix).
std::vector<std::vector<double>> alignment_distances(
    const std::vector<Sequence>& sequences, const ScoringScheme& scheme);

/// Progressive MSA: UPGMA guide tree + profile merges. Linear gaps only.
MultipleAlignment progressive_align(const std::vector<Sequence>& sequences,
                                    const ScoringScheme& scheme);

}  // namespace msa
}  // namespace flsa
