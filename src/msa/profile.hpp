// Alignment profiles and profile-profile alignment.
//
// A profile is a multiple alignment summarized as per-column residue/gap
// counts. Two profiles align with the same global DP as two sequences —
// cells score columns against columns by summed pairwise substitution
// scores ("sum of pairs") — which is the merge step of progressive MSA
// (msa/progressive.hpp).
#pragma once

#include <string>
#include <vector>

#include "msa/center_star.hpp"
#include "scoring/scheme.hpp"

namespace flsa {
namespace msa {

/// Per-column counts over an alphabet (+ gaps) for a set of aligned rows.
class Profile {
 public:
  /// Builds a single-sequence profile.
  Profile(const Sequence& sequence);

  /// Builds a profile from gapped rows (equal lengths) over `alphabet`.
  Profile(const Alphabet& alphabet, std::vector<std::string> rows);

  const Alphabet& alphabet() const { return *alphabet_; }
  std::size_t width() const { return width_; }
  std::size_t depth() const { return rows_.size(); }
  const std::vector<std::string>& rows() const { return rows_; }

  /// Residue counts of column `col` (size |A|).
  const std::vector<std::uint32_t>& counts(std::size_t col) const {
    return counts_[col];
  }
  /// Number of gap characters in column `col`.
  std::uint32_t gaps(std::size_t col) const { return gaps_[col]; }
  /// Number of residues (non-gaps) in column `col`.
  std::uint32_t residues(std::size_t col) const {
    return static_cast<std::uint32_t>(depth()) - gaps_[col];
  }

 private:
  void index_columns();

  const Alphabet* alphabet_;
  std::vector<std::string> rows_;
  std::size_t width_ = 0;
  std::vector<std::vector<std::uint32_t>> counts_;  // [col][residue]
  std::vector<std::uint32_t> gaps_;
};

/// Sum-of-pairs score of aligning column `i` of `p1` with column `j` of
/// `p2`: residue pairs via the matrix, residue-gap pairs via gap_extend,
/// gap-gap pairs free. (Linear gap model.)
Score column_pair_score(const Profile& p1, std::size_t i, const Profile& p2,
                        std::size_t j, const ScoringScheme& scheme);

/// Globally aligns two profiles (full-matrix DP over columns, linear
/// gaps), returning the merged profile whose rows are p1's rows followed
/// by p2's rows, with gap columns inserted per the optimal column path.
Profile align_profiles(const Profile& p1, const Profile& p2,
                       const ScoringScheme& scheme);

}  // namespace msa
}  // namespace flsa
