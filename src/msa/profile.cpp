#include "msa/profile.hpp"

#include <algorithm>

#include "dp/matrix.hpp"
#include "dp/path.hpp"
#include "support/assert.hpp"

namespace flsa {
namespace msa {

Profile::Profile(const Sequence& sequence)
    : alphabet_(&sequence.alphabet()), rows_{sequence.to_string()},
      width_(sequence.size()) {
  index_columns();
}

Profile::Profile(const Alphabet& alphabet, std::vector<std::string> rows)
    : alphabet_(&alphabet), rows_(std::move(rows)) {
  FLSA_REQUIRE(!rows_.empty());
  width_ = rows_[0].size();
  for (const std::string& row : rows_) {
    FLSA_REQUIRE(row.size() == width_);
  }
  index_columns();
}

void Profile::index_columns() {
  counts_.assign(width_, std::vector<std::uint32_t>(alphabet_->size(), 0));
  gaps_.assign(width_, 0);
  for (const std::string& row : rows_) {
    for (std::size_t col = 0; col < width_; ++col) {
      const char c = row[col];
      if (c == '-') {
        ++gaps_[col];
      } else {
        ++counts_[col][alphabet_->code(c)];
      }
    }
  }
}

Score column_pair_score(const Profile& p1, std::size_t i, const Profile& p2,
                        std::size_t j, const ScoringScheme& scheme) {
  FLSA_REQUIRE(&p1.alphabet() == &p2.alphabet());
  const SubstitutionMatrix& m = scheme.matrix();
  const auto& c1 = p1.counts(i);
  const auto& c2 = p2.counts(j);
  Score total = 0;
  for (Residue x = 0; x < p1.alphabet().size(); ++x) {
    if (c1[x] == 0) continue;
    Score row_total = 0;
    for (Residue y = 0; y < p2.alphabet().size(); ++y) {
      if (c2[y] == 0) continue;
      row_total += static_cast<Score>(c2[y]) * m.at(x, y);
    }
    total += static_cast<Score>(c1[x]) * row_total;
  }
  // Residue-vs-gap pairs on both sides; gap-gap pairs are free.
  total += scheme.gap_extend() *
           (static_cast<Score>(p1.residues(i)) *
                static_cast<Score>(p2.gaps(j)) +
            static_cast<Score>(p1.gaps(i)) *
                static_cast<Score>(p2.residues(j)));
  return total;
}

Profile align_profiles(const Profile& p1, const Profile& p2,
                       const ScoringScheme& scheme) {
  FLSA_REQUIRE(&p1.alphabet() == &p2.alphabet());
  FLSA_REQUIRE(scheme.is_linear());
  const std::size_t w1 = p1.width();
  const std::size_t w2 = p2.width();
  const Score gap = scheme.gap_extend();

  // Cost of aligning a column against an inserted all-gap column: every
  // residue in the column pairs with a gap in each row of the other side.
  auto gap_against_p2 = [&](std::size_t i) {
    return gap * static_cast<Score>(p1.residues(i)) *
           static_cast<Score>(p2.depth());
  };
  auto gap_against_p1 = [&](std::size_t j) {
    return gap * static_cast<Score>(p2.residues(j)) *
           static_cast<Score>(p1.depth());
  };

  // Precompute per-(x, j) matrix-vector products so each DP cell costs
  // O(|A|) instead of O(|A|^2).
  const std::size_t asize = p1.alphabet().size();
  const SubstitutionMatrix& m = scheme.matrix();
  std::vector<Score> mv(asize * w2, 0);
  for (std::size_t j = 0; j < w2; ++j) {
    const auto& c2 = p2.counts(j);
    for (Residue x = 0; x < asize; ++x) {
      Score sum = 0;
      for (Residue y = 0; y < asize; ++y) {
        if (c2[y]) sum += static_cast<Score>(c2[y]) * m.at(x, y);
      }
      mv[x * w2 + j] = sum;
    }
  }
  auto pair_score = [&](std::size_t i, std::size_t j) {
    const auto& c1 = p1.counts(i);
    Score total = 0;
    for (Residue x = 0; x < asize; ++x) {
      if (c1[x]) total += static_cast<Score>(c1[x]) * mv[x * w2 + j];
    }
    total += gap * (static_cast<Score>(p1.residues(i)) *
                        static_cast<Score>(p2.gaps(j)) +
                    static_cast<Score>(p1.gaps(i)) *
                        static_cast<Score>(p2.residues(j)));
    return total;
  };

  Matrix2D<Score> dpm(w1 + 1, w2 + 1);
  dpm(0, 0) = 0;
  for (std::size_t j = 1; j <= w2; ++j) {
    dpm(0, j) = dpm(0, j - 1) + gap_against_p1(j - 1);
  }
  for (std::size_t i = 1; i <= w1; ++i) {
    dpm(i, 0) = dpm(i - 1, 0) + gap_against_p2(i - 1);
    for (std::size_t j = 1; j <= w2; ++j) {
      dpm(i, j) = std::max(
          {dpm(i - 1, j - 1) + pair_score(i - 1, j - 1),
           dpm(i - 1, j) + gap_against_p2(i - 1),
           dpm(i, j - 1) + gap_against_p1(j - 1)});
    }
  }

  // Traceback over columns (diag, up, left preference as everywhere).
  std::vector<Move> rev_moves;
  std::size_t i = w1, j = w2;
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0 &&
        dpm(i, j) == dpm(i - 1, j - 1) + pair_score(i - 1, j - 1)) {
      rev_moves.push_back(Move::kDiag);
      --i;
      --j;
    } else if (i > 0 && dpm(i, j) == dpm(i - 1, j) + gap_against_p2(i - 1)) {
      rev_moves.push_back(Move::kUp);
      --i;
    } else {
      FLSA_ASSERT(j > 0 &&
                  dpm(i, j) == dpm(i, j - 1) + gap_against_p1(j - 1));
      rev_moves.push_back(Move::kLeft);
      --j;
    }
  }

  // Emit merged rows.
  std::vector<std::string> merged(p1.depth() + p2.depth());
  std::size_t ci = 0, cj = 0;
  for (auto it = rev_moves.rbegin(); it != rev_moves.rend(); ++it) {
    const bool take1 = *it != Move::kLeft;
    const bool take2 = *it != Move::kUp;
    for (std::size_t r = 0; r < p1.depth(); ++r) {
      merged[r].push_back(take1 ? p1.rows()[r][ci] : '-');
    }
    for (std::size_t r = 0; r < p2.depth(); ++r) {
      merged[p1.depth() + r].push_back(take2 ? p2.rows()[r][cj] : '-');
    }
    if (take1) ++ci;
    if (take2) ++cj;
  }
  FLSA_ASSERT(ci == w1 && cj == w2);
  return Profile(p1.alphabet(), std::move(merged));
}

}  // namespace msa
}  // namespace flsa
