// Multiple sequence alignment by the center-star method.
//
// A downstream-user extension built entirely on the library's pairwise
// engine: homology studies rarely stop at two sequences. Center-star picks
// the sequence with the highest total pairwise similarity as the center,
// aligns every other sequence to it (with FastLSA, so memory stays linear
// in the inputs), and merges the pairwise alignments column-wise under the
// "once a gap, always a gap" rule. For metric-like scoring this is the
// classic 2-approximation to the optimal sum-of-pairs alignment.
#pragma once

#include <string>
#include <vector>

#include "core/fastlsa.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {
namespace msa {

/// A multiple alignment: one gapped row per input sequence, equal lengths,
/// rows in input order.
struct MultipleAlignment {
  std::vector<std::string> rows;
  std::size_t center_index = 0;  ///< which input was chosen as the center

  std::size_t width() const { return rows.empty() ? 0 : rows[0].size(); }
};

/// Options for the center-star build.
struct CenterStarOptions {
  FastLsaOptions fastlsa;
  /// Threads for the all-vs-center pairwise phase (0 = hardware).
  unsigned threads = 1;
};

/// Builds the center-star alignment of `sequences` (>= 1, shared
/// alphabet). Linear gap schemes only.
MultipleAlignment center_star_align(const std::vector<Sequence>& sequences,
                                    const ScoringScheme& scheme,
                                    const CenterStarOptions& options = {});

/// Majority-rule consensus of a multiple alignment: per column, the most
/// frequent residue (ties to the smallest residue code); columns whose
/// majority is a gap are skipped. Returns a plain letter string.
std::string consensus(const MultipleAlignment& alignment,
                      const Alphabet& alphabet);

/// Per-column conservation: fraction of rows agreeing with the column's
/// majority residue (gap rows count against it). Length == width().
std::vector<double> column_conservation(const MultipleAlignment& alignment,
                                        const Alphabet& alphabet);

/// Sum-of-pairs score of a multiple alignment under `scheme`: every
/// unordered row pair is scored column-wise (gap-gap columns contribute
/// zero; each maximal gap run against a residue is charged like a pairwise
/// gap).
Score sum_of_pairs_score(const MultipleAlignment& alignment,
                         const ScoringScheme& scheme,
                         const Alphabet& alphabet);

}  // namespace msa
}  // namespace flsa
