#include "msa/center_star.hpp"

#include <algorithm>
#include <numeric>

#include "dp/alignment.hpp"
#include "dp/kernel.hpp"
#include "parallel/batch.hpp"
#include "support/assert.hpp"

namespace flsa {
namespace msa {

namespace {

/// Merges one pairwise alignment (center row `pc`, partner row `po`) into
/// the growing alignment whose row 0 gap pattern is `master[0]` (the
/// center). Gap columns are reconciled under "once a gap, always a gap".
void merge_pairwise(std::vector<std::string>& master, const std::string& pc,
                    const std::string& po) {
  const std::string& mc = master[0];
  std::vector<std::string> out(master.size() + 1);
  std::size_t i = 0, j = 0;
  auto copy_master_column = [&](std::size_t col) {
    for (std::size_t r = 0; r < master.size(); ++r) {
      out[r].push_back(master[r][col]);
    }
  };
  auto gap_master_column = [&] {
    for (std::size_t r = 0; r < master.size(); ++r) {
      out[r].push_back('-');
    }
  };
  while (i < mc.size() || j < pc.size()) {
    const bool master_gap = i < mc.size() && mc[i] == '-';
    const bool pair_gap = j < pc.size() && pc[j] == '-';
    if (master_gap) {
      // A column some earlier sequence inserted; the new one sits out.
      copy_master_column(i);
      out.back().push_back('-');
      ++i;
    } else if (pair_gap) {
      // The new sequence inserts a column; everyone else sits out.
      gap_master_column();
      out.back().push_back(po[j]);
      ++j;
    } else {
      // Both sides hold the same center residue (counts always match).
      FLSA_ASSERT(i < mc.size() && j < pc.size());
      FLSA_ASSERT(mc[i] == pc[j]);
      copy_master_column(i);
      out.back().push_back(po[j]);
      ++i;
      ++j;
    }
  }
  master = std::move(out);
}

}  // namespace

MultipleAlignment center_star_align(const std::vector<Sequence>& sequences,
                                    const ScoringScheme& scheme,
                                    const CenterStarOptions& options) {
  FLSA_REQUIRE(!sequences.empty());
  FLSA_REQUIRE(scheme.is_linear());
  const Alphabet& alphabet = sequences[0].alphabet();
  for (const Sequence& s : sequences) {
    FLSA_REQUIRE(&s.alphabet() == &alphabet);
  }

  MultipleAlignment result;
  if (sequences.size() == 1) {
    result.rows.push_back(sequences[0].to_string());
    return result;
  }

  // 1. Pick the center: the sequence maximizing its total pairwise global
  // score against all others (score-only passes; O(sum of pair areas)).
  const std::size_t n = sequences.size();
  std::vector<std::vector<Score>> pair_score(n, std::vector<Score>(n, 0));
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = x + 1; y < n; ++y) {
      const Score s =
          global_score_linear(KernelKind::kAuto, sequences[x].residues(),
                              sequences[y].residues(), scheme);
      pair_score[x][y] = s;
      pair_score[y][x] = s;
    }
  }
  std::size_t center = 0;
  std::int64_t best_total = INT64_MIN;
  for (std::size_t x = 0; x < n; ++x) {
    const std::int64_t total = std::accumulate(
        pair_score[x].begin(), pair_score[x].end(), std::int64_t{0});
    if (total > best_total) {
      best_total = total;
      center = x;
    }
  }
  result.center_index = center;

  // 2. Align every other sequence to the center (batch, FastLSA under the
  // hood via AlignOptions).
  std::vector<AlignJob> jobs;
  std::vector<std::size_t> job_index;
  for (std::size_t x = 0; x < n; ++x) {
    if (x == center) continue;
    jobs.push_back(AlignJob{&sequences[center], &sequences[x]});
    job_index.push_back(x);
  }
  AlignOptions align_options;
  align_options.strategy = Strategy::kFastLsa;
  align_options.fastlsa = options.fastlsa;
  const std::vector<BatchResult> aligned =
      align_batch(jobs, scheme, align_options,
                  options.threads == 0 ? 0 : options.threads);
  // A star alignment needs every pairwise result; surface the first
  // per-job failure as this call's failure.
  for (const BatchResult& r : aligned) {
    if (!r.ok()) std::rethrow_exception(r.error);
  }

  // 3. Merge pairwise alignments into the star (center is row 0 during
  // construction; rows are re-ordered to input order at the end).
  std::vector<std::string> master{sequences[center].to_string()};
  for (const BatchResult& r : aligned) {
    merge_pairwise(master, r.alignment.gapped_a, r.alignment.gapped_b);
  }

  // master rows: [center, partners in job order] -> input order.
  result.rows.assign(n, "");
  result.rows[center] = std::move(master[0]);
  for (std::size_t idx = 0; idx < job_index.size(); ++idx) {
    result.rows[job_index[idx]] = std::move(master[idx + 1]);
  }
  return result;
}

namespace {

/// Majority residue of one column: (residue code or -1 for gap, count).
std::pair<int, std::size_t> column_majority(
    const MultipleAlignment& alignment, const Alphabet& alphabet,
    std::size_t col) {
  std::vector<std::size_t> counts(alphabet.size(), 0);
  std::size_t gaps = 0;
  for (const std::string& row : alignment.rows) {
    if (row[col] == '-') {
      ++gaps;
    } else {
      ++counts[alphabet.code(row[col])];
    }
  }
  int best = -1;
  std::size_t best_count = gaps;
  for (std::size_t r = 0; r < counts.size(); ++r) {
    if (counts[r] > best_count) {
      best_count = counts[r];
      best = static_cast<int>(r);
    }
  }
  return {best, best_count};
}

}  // namespace

std::string consensus(const MultipleAlignment& alignment,
                      const Alphabet& alphabet) {
  std::string out;
  for (std::size_t col = 0; col < alignment.width(); ++col) {
    const auto [residue, count] = column_majority(alignment, alphabet, col);
    if (residue >= 0) {
      out.push_back(alphabet.letter(static_cast<Residue>(residue)));
    }
  }
  return out;
}

std::vector<double> column_conservation(const MultipleAlignment& alignment,
                                        const Alphabet& alphabet) {
  std::vector<double> out;
  out.reserve(alignment.width());
  const double depth = static_cast<double>(alignment.rows.size());
  for (std::size_t col = 0; col < alignment.width(); ++col) {
    const auto [residue, count] = column_majority(alignment, alphabet, col);
    out.push_back(residue < 0 ? 0.0
                              : static_cast<double>(count) / depth);
  }
  return out;
}

Score sum_of_pairs_score(const MultipleAlignment& alignment,
                         const ScoringScheme& scheme,
                         const Alphabet& alphabet) {
  const std::size_t n = alignment.rows.size();
  for (const std::string& row : alignment.rows) {
    FLSA_REQUIRE(row.size() == alignment.width());
  }
  Score total = 0;
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = x + 1; y < n; ++y) {
      // Project the pair out of the MSA, dropping gap-gap columns, and
      // score it like any pairwise alignment.
      Alignment pair;
      for (std::size_t col = 0; col < alignment.width(); ++col) {
        const char cx = alignment.rows[x][col];
        const char cy = alignment.rows[y][col];
        if (cx == '-' && cy == '-') continue;
        pair.gapped_a.push_back(cx);
        pair.gapped_b.push_back(cy);
      }
      total += score_alignment(pair, scheme, alphabet);
    }
  }
  return total;
}

}  // namespace msa
}  // namespace flsa
