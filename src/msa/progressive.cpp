#include "msa/progressive.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "dp/kernel.hpp"
#include "support/assert.hpp"

namespace flsa {
namespace msa {

GuideTree upgma(const std::vector<std::vector<double>>& distances) {
  const std::size_t n = distances.size();
  FLSA_REQUIRE(n >= 1);
  for (const auto& row : distances) {
    FLSA_REQUIRE(row.size() == n);
  }

  GuideTree tree;
  tree.nodes.reserve(2 * n - 1);
  // Active clusters: node index -> (member count). Distances between
  // clusters live in a mutable copy, indexed by node id.
  struct Cluster {
    int node;
    std::size_t size;
  };
  std::vector<Cluster> active;
  for (std::size_t i = 0; i < n; ++i) {
    GuideNode leaf;
    leaf.sequence = i;
    tree.nodes.push_back(leaf);
    active.push_back({static_cast<int>(i), 1});
  }
  // dist[{a,b}] keyed by node ids (a < b).
  std::map<std::pair<int, int>, double> dist;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      dist[{static_cast<int>(i), static_cast<int>(j)}] = distances[i][j];
    }
  }
  auto d = [&](int a, int b) {
    return dist.at({std::min(a, b), std::max(a, b)});
  };

  while (active.size() > 1) {
    // Closest pair (smallest indices on ties).
    std::size_t bi = 0, bj = 1;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < active.size(); ++i) {
      for (std::size_t j = i + 1; j < active.size(); ++j) {
        const double dij = d(active[i].node, active[j].node);
        if (dij < best) {
          best = dij;
          bi = i;
          bj = j;
        }
      }
    }
    // Merge: new node, UPGMA average-linkage update.
    GuideNode parent;
    parent.left = active[bi].node;
    parent.right = active[bj].node;
    parent.height = best / 2.0;
    const int parent_id = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back(parent);
    const std::size_t size_i = active[bi].size;
    const std::size_t size_j = active[bj].size;
    const int node_i = active[bi].node;
    const int node_j = active[bj].node;
    for (std::size_t k = 0; k < active.size(); ++k) {
      if (k == bi || k == bj) continue;
      const int other = active[k].node;
      const double dnew =
          (d(node_i, other) * static_cast<double>(size_i) +
           d(node_j, other) * static_cast<double>(size_j)) /
          static_cast<double>(size_i + size_j);
      dist[{std::min(parent_id, other), std::max(parent_id, other)}] = dnew;
    }
    // Replace bi with the parent, drop bj.
    active[bi] = {parent_id, size_i + size_j};
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(bj));
  }
  tree.root = active[0].node;
  return tree;
}

std::vector<std::vector<double>> alignment_distances(
    const std::vector<Sequence>& sequences, const ScoringScheme& scheme) {
  const std::size_t n = sequences.size();
  std::vector<Score> self(n);
  for (std::size_t i = 0; i < n; ++i) {
    self[i] =
        global_score_linear(KernelKind::kAuto, sequences[i].residues(),
                            sequences[i].residues(), scheme);
  }
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Score s =
          global_score_linear(KernelKind::kAuto, sequences[i].residues(),
                              sequences[j].residues(), scheme);
      const double dij =
          (static_cast<double>(self[i]) + static_cast<double>(self[j])) /
              2.0 -
          static_cast<double>(s);
      d[i][j] = dij;
      d[j][i] = dij;
    }
  }
  return d;
}

namespace {

/// Post-order profile construction over the guide tree. Also collects the
/// input index of every row, in row order, so the final alignment can be
/// re-sorted to input order.
Profile build_profile(const GuideTree& tree, int node,
                      const std::vector<Sequence>& sequences,
                      const ScoringScheme& scheme,
                      std::vector<std::size_t>& row_order) {
  const GuideNode& gn = tree.nodes[static_cast<std::size_t>(node)];
  if (gn.is_leaf()) {
    row_order.push_back(gn.sequence);
    return Profile(sequences[gn.sequence]);
  }
  const Profile left =
      build_profile(tree, gn.left, sequences, scheme, row_order);
  const Profile right =
      build_profile(tree, gn.right, sequences, scheme, row_order);
  return align_profiles(left, right, scheme);
}

}  // namespace

MultipleAlignment progressive_align(const std::vector<Sequence>& sequences,
                                    const ScoringScheme& scheme) {
  FLSA_REQUIRE(!sequences.empty());
  FLSA_REQUIRE(scheme.is_linear());
  const Alphabet& alphabet = sequences[0].alphabet();
  for (const Sequence& s : sequences) {
    FLSA_REQUIRE(&s.alphabet() == &alphabet);
  }

  MultipleAlignment result;
  if (sequences.size() == 1) {
    result.rows.push_back(sequences[0].to_string());
    return result;
  }

  const GuideTree tree = upgma(alignment_distances(sequences, scheme));
  std::vector<std::size_t> row_order;
  const Profile merged =
      build_profile(tree, tree.root, sequences, scheme, row_order);
  FLSA_ASSERT(row_order.size() == sequences.size());

  result.rows.assign(sequences.size(), "");
  for (std::size_t r = 0; r < row_order.size(); ++r) {
    result.rows[row_order[r]] = merged.rows()[r];
  }
  // center_index is meaningless for progressive MSA; report the root's
  // deepest leaf conventionally as 0 of the first pair merged.
  result.center_index = row_order.empty() ? 0 : row_order[0];
  return result;
}

}  // namespace msa
}  // namespace flsa
