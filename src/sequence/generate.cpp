#include "sequence/generate.hpp"

#include <numeric>

#include "support/assert.hpp"

namespace flsa {

Sequence random_sequence(const Alphabet& alphabet, std::size_t length,
                         Xoshiro256& rng, std::string id) {
  std::vector<Residue> residues;
  residues.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    residues.push_back(static_cast<Residue>(rng.bounded(alphabet.size())));
  }
  return Sequence(alphabet, std::move(residues), std::move(id));
}

namespace {

/// Geometric indel length: 1 + (number of successful extensions).
std::size_t indel_length(double extension_prob, Xoshiro256& rng) {
  std::size_t len = 1;
  while (rng.uniform01() < extension_prob && len < 1000) ++len;
  return len;
}

Residue different_residue(Residue current, std::size_t alphabet_size,
                          Xoshiro256& rng) {
  FLSA_ASSERT(alphabet_size >= 2);
  const auto offset = 1 + rng.bounded(alphabet_size - 1);
  return static_cast<Residue>((current + offset) % alphabet_size);
}

}  // namespace

Sequence mutate(const Sequence& parent, const MutationModel& model,
                Xoshiro256& rng, std::string id) {
  FLSA_REQUIRE(model.substitution_rate >= 0 && model.substitution_rate <= 1);
  FLSA_REQUIRE(model.insertion_rate >= 0 && model.insertion_rate <= 1);
  FLSA_REQUIRE(model.deletion_rate >= 0 && model.deletion_rate <= 1);
  FLSA_REQUIRE(model.extension_prob >= 0 && model.extension_prob < 1);
  const Alphabet& alphabet = parent.alphabet();
  std::vector<Residue> child;
  child.reserve(parent.size() + parent.size() / 8);
  std::size_t i = 0;
  while (i < parent.size()) {
    const double roll = rng.uniform01();
    if (roll < model.deletion_rate) {
      i += indel_length(model.extension_prob, rng);
      continue;
    }
    if (roll < model.deletion_rate + model.insertion_rate) {
      const std::size_t len = indel_length(model.extension_prob, rng);
      for (std::size_t j = 0; j < len; ++j) {
        child.push_back(static_cast<Residue>(rng.bounded(alphabet.size())));
      }
      // fall through: the current parent residue is still copied below
    }
    Residue r = parent[i];
    if (rng.uniform01() < model.substitution_rate && alphabet.size() >= 2) {
      r = different_residue(r, alphabet.size(), rng);
    }
    child.push_back(r);
    ++i;
  }
  return Sequence(alphabet, std::move(child), std::move(id));
}

SequencePair homologous_pair(const Alphabet& alphabet, std::size_t length,
                             const MutationModel& model, Xoshiro256& rng) {
  Sequence parent = random_sequence(alphabet, length, rng, "parent");
  Sequence child = mutate(parent, model, rng, "child");
  return SequencePair{std::move(parent), std::move(child)};
}

Sequence biased_sequence(const Alphabet& alphabet,
                         std::span<const double> weights, std::size_t length,
                         Xoshiro256& rng, std::string id) {
  FLSA_REQUIRE(weights.size() == alphabet.size());
  double total = 0.0;
  for (double w : weights) {
    FLSA_REQUIRE(w >= 0.0);
    total += w;
  }
  FLSA_REQUIRE(total > 0.0);
  // Cumulative distribution for inverse-transform sampling.
  std::vector<double> cdf(weights.size());
  std::partial_sum(weights.begin(), weights.end(), cdf.begin());
  std::vector<Residue> residues;
  residues.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    const double u = rng.uniform01() * total;
    std::size_t r = 0;
    while (r + 1 < cdf.size() && u >= cdf[r]) ++r;
    residues.push_back(static_cast<Residue>(r));
  }
  return Sequence(alphabet, std::move(residues), std::move(id));
}

}  // namespace flsa
