#include "sequence/fasta.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace flsa {

std::vector<Sequence> read_fasta(std::istream& is, const Alphabet& alphabet,
                                 const ParseLimits& limits) {
  std::vector<Sequence> records;
  std::string id;
  std::string description;
  std::string letters;
  bool in_record = false;
  // A record whose header is the very last line of the stream is a
  // truncated upload, not an empty sequence; an intentional empty record
  // is written as a header followed by a blank line (see write_fasta).
  bool saw_body = false;

  auto flush = [&] {
    if (!in_record) return;
    try {
      records.emplace_back(alphabet, letters, id, description);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("FASTA record '" + id + "': " + e.what());
    }
    letters.clear();
  };

  std::string line;
  while (detail::read_bounded_line(is, &line, limits.max_line_bytes,
                                   "FASTA")) {
    if (line.empty()) {
      if (in_record) saw_body = true;
      continue;
    }
    if (line[0] == '>') {
      flush();
      in_record = true;
      saw_body = false;
      const std::string header = line.substr(1);
      const auto space = header.find_first_of(" \t");
      if (space == std::string::npos) {
        id = header;
        description.clear();
      } else {
        id = header.substr(0, space);
        const auto rest = header.find_first_not_of(" \t", space);
        description = rest == std::string::npos ? "" : header.substr(rest);
      }
    } else {
      if (!in_record) {
        throw std::invalid_argument(
            "FASTA stream: sequence data before any '>' header");
      }
      saw_body = true;
      for (char c : line) {
        if (!std::isspace(static_cast<unsigned char>(c))) letters.push_back(c);
      }
      if (letters.size() > limits.max_record_residues) {
        throw std::invalid_argument(
            "FASTA record '" + id + "': exceeds the limit of " +
            std::to_string(limits.max_record_residues) + " residues");
      }
    }
  }
  if (is.bad()) {
    throw std::runtime_error("FASTA stream: I/O error while reading");
  }
  if (in_record && !saw_body) {
    throw std::invalid_argument(
        "FASTA record '" + id +
        "': truncated final record (header at end of input)");
  }
  flush();
  return records;
}

std::vector<Sequence> read_fasta_file(const std::string& path,
                                      const Alphabet& alphabet,
                                      const ParseLimits& limits) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open FASTA file: " + path);
  return read_fasta(in, alphabet, limits);
}

void write_fasta(std::ostream& os, const std::vector<Sequence>& records,
                 std::size_t width) {
  for (const Sequence& seq : records) {
    os << '>' << (seq.id().empty() ? "unnamed" : seq.id());
    if (!seq.description().empty()) os << ' ' << seq.description();
    os << '\n';
    const std::string letters = seq.to_string();
    for (std::size_t pos = 0; pos < letters.size(); pos += width) {
      os << letters.substr(pos, width) << '\n';
    }
    if (letters.empty()) os << '\n';
  }
}

void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& records,
                      std::size_t width) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write FASTA file: " + path);
  write_fasta(out, records, width);
}

}  // namespace flsa
