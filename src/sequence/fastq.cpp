#include "sequence/fastq.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace flsa {

double FastqRecord::mean_phred() const {
  if (quality.empty()) return 0.0;
  double total = 0.0;
  for (char c : quality) total += c - 33;
  return total / static_cast<double>(quality.size());
}

std::vector<FastqRecord> read_fastq(std::istream& is, const Alphabet& alphabet,
                                    const ParseLimits& limits) {
  std::vector<FastqRecord> records;
  std::string line;
  auto next_line = [&](std::string& out) {
    return detail::read_bounded_line(is, &out, limits.max_line_bytes, "FASTQ");
  };

  while (next_line(line)) {
    if (line.empty()) continue;
    if (line[0] != '@') {
      throw std::invalid_argument(
          "FASTQ: expected '@' header, got: " + line.substr(0, 20));
    }
    const std::string header = line.substr(1);
    const auto space = header.find_first_of(" \t");
    const std::string id =
        space == std::string::npos ? header : header.substr(0, space);
    const std::string description =
        space == std::string::npos
            ? ""
            : header.substr(header.find_first_not_of(" \t", space));

    std::string letters, plus, quality;
    if (!next_line(letters) || !next_line(plus) || !next_line(quality)) {
      throw std::invalid_argument("FASTQ record '" + id + "': truncated");
    }
    if (plus.empty() || plus[0] != '+') {
      throw std::invalid_argument("FASTQ record '" + id +
                                  "': missing '+' separator line");
    }
    if (letters.size() > limits.max_record_residues) {
      throw std::invalid_argument(
          "FASTQ record '" + id + "': exceeds the limit of " +
          std::to_string(limits.max_record_residues) + " residues");
    }
    if (quality.size() != letters.size()) {
      throw std::invalid_argument(
          "FASTQ record '" + id + "': quality length " +
          std::to_string(quality.size()) + " != sequence length " +
          std::to_string(letters.size()));
    }
    try {
      records.push_back(FastqRecord{
          Sequence(alphabet, letters, id, description), std::move(quality)});
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("FASTQ record '" + id + "': " + e.what());
    }
  }
  if (is.bad()) {
    throw std::runtime_error("FASTQ stream: I/O error while reading");
  }
  return records;
}

std::vector<FastqRecord> read_fastq_file(const std::string& path,
                                         const Alphabet& alphabet,
                                         const ParseLimits& limits) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open FASTQ file: " + path);
  return read_fastq(in, alphabet, limits);
}

void write_fastq(std::ostream& os, const std::vector<FastqRecord>& records) {
  for (const FastqRecord& record : records) {
    os << '@'
       << (record.sequence.id().empty() ? "unnamed" : record.sequence.id());
    if (!record.sequence.description().empty()) {
      os << ' ' << record.sequence.description();
    }
    os << '\n'
       << record.sequence.to_string() << "\n+\n"
       << record.quality << '\n';
  }
}

}  // namespace flsa
