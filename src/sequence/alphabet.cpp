#include "sequence/alphabet.hpp"

#include <cctype>
#include <stdexcept>

#include "support/assert.hpp"

namespace flsa {

Alphabet::Alphabet(std::string_view letters, std::string name,
                   bool case_sensitive)
    : name_(std::move(name)) {
  FLSA_REQUIRE(!letters.empty());
  FLSA_REQUIRE(letters.size() <= 64);
  codes_.fill(-1);
  for (char raw : letters) {
    const auto code = static_cast<std::int16_t>(letters_.size());
    if (case_sensitive) {
      FLSA_REQUIRE(codes_[static_cast<unsigned char>(raw)] == -1);
      codes_[static_cast<unsigned char>(raw)] = code;
      letters_.push_back(raw);
      continue;
    }
    const char upper =
        static_cast<char>(std::toupper(static_cast<unsigned char>(raw)));
    const char lower =
        static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
    FLSA_REQUIRE(codes_[static_cast<unsigned char>(upper)] == -1);
    codes_[static_cast<unsigned char>(upper)] = code;
    codes_[static_cast<unsigned char>(lower)] = code;
    letters_.push_back(upper);
  }
}

const Alphabet& Alphabet::dna() {
  static const Alphabet instance("ACGT", "dna");
  return instance;
}

const Alphabet& Alphabet::dna_n() {
  static const Alphabet instance("ACGTN", "dna-n");
  return instance;
}

const Alphabet& Alphabet::protein() {
  static const Alphabet instance("ARNDCQEGHILKMFPSTWYV", "protein");
  return instance;
}

char Alphabet::letter(Residue code) const {
  FLSA_REQUIRE(code < letters_.size());
  return letters_[code];
}

bool Alphabet::contains(char c) const {
  return codes_[static_cast<unsigned char>(c)] >= 0;
}

Residue Alphabet::code(char c) const {
  const std::int16_t code = codes_[static_cast<unsigned char>(c)];
  if (code < 0) {
    throw std::invalid_argument(std::string("character '") + c +
                                "' is not in alphabet " + name_);
  }
  return static_cast<Residue>(code);
}

}  // namespace flsa
