#include "sequence/sequence.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace flsa {

Sequence::Sequence(const Alphabet& alphabet, std::string_view letters,
                   std::string id, std::string description)
    : alphabet_(&alphabet), id_(std::move(id)),
      description_(std::move(description)) {
  residues_.reserve(letters.size());
  for (char c : letters) residues_.push_back(alphabet.code(c));
}

Sequence::Sequence(const Alphabet& alphabet, std::vector<Residue> residues,
                   std::string id, std::string description)
    : alphabet_(&alphabet), residues_(std::move(residues)),
      id_(std::move(id)), description_(std::move(description)) {
  for (Residue r : residues_) FLSA_REQUIRE(r < alphabet.size());
}

std::string Sequence::to_string() const {
  std::string out;
  out.reserve(residues_.size());
  for (Residue r : residues_) out.push_back(alphabet_->letter(r));
  return out;
}

Sequence Sequence::reversed() const {
  std::vector<Residue> rev(residues_.rbegin(), residues_.rend());
  return Sequence(*alphabet_, std::move(rev), id_ + "/rev", description_);
}

Sequence Sequence::subsequence(std::size_t pos, std::size_t count) const {
  FLSA_REQUIRE(pos <= residues_.size());
  FLSA_REQUIRE(count <= residues_.size() - pos);
  std::vector<Residue> sub(residues_.begin() + static_cast<std::ptrdiff_t>(pos),
                           residues_.begin() +
                               static_cast<std::ptrdiff_t>(pos + count));
  return Sequence(*alphabet_, std::move(sub), id_ + "/sub", description_);
}

}  // namespace flsa
