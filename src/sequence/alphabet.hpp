// Residue alphabets: the mapping between letters (external representation)
// and small integer codes (internal representation used by every DP kernel
// and scoring matrix).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace flsa {

/// Integer code of one residue. Codes are dense: 0..size()-1.
using Residue = std::uint8_t;

/// An alphabet maps characters to dense residue codes. Lookup is case
/// insensitive by default (biological convention); pass case_sensitive =
/// true for text alphabets. Characters outside the alphabet are rejected
/// by code().
class Alphabet {
 public:
  /// Builds an alphabet from its ordered letter set, e.g. "ACGT".
  /// Letters must be unique (case-insensitively unless case_sensitive)
  /// and non-empty; at most 64 letters.
  explicit Alphabet(std::string_view letters, std::string name,
                    bool case_sensitive = false);

  /// The four-letter DNA alphabet ACGT.
  static const Alphabet& dna();

  /// DNA with the ambiguity code N (ACGTN); pair N with
  /// scoring::dna_n() so unknown bases score neutrally.
  static const Alphabet& dna_n();

  /// The 20 standard amino acids, ordered ARNDCQEGHILKMFPSTWYV (the
  /// conventional Dayhoff/PAM ordering used by the scoring tables).
  static const Alphabet& protein();

  const std::string& name() const { return name_; }
  std::size_t size() const { return letters_.size(); }

  /// Letter for a code; code must be < size().
  char letter(Residue code) const;

  /// True if the character belongs to the alphabet (case-insensitive).
  bool contains(char c) const;

  /// Code for a letter; throws std::invalid_argument for foreign characters.
  Residue code(char c) const;

 private:
  std::string name_;
  std::string letters_;                  // canonical (upper-case) letters
  std::array<std::int16_t, 256> codes_;  // -1 = not in alphabet
};

}  // namespace flsa
