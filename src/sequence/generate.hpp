// Synthetic workload generation.
//
// The paper evaluates on real protein/DNA pairs (its Table 3) that we do not
// have; these generators produce the documented substitute: random sequences
// and homologous pairs derived by a point-mutation + indel process, which
// reproduce the structural properties the DP algorithms are sensitive to
// (lengths, alphabet size, long diagonal runs broken by gaps).
#pragma once

#include <cstdint>

#include "sequence/sequence.hpp"
#include "support/prng.hpp"

namespace flsa {

/// Uniform random sequence of `length` residues.
Sequence random_sequence(const Alphabet& alphabet, std::size_t length,
                         Xoshiro256& rng, std::string id = "random");

/// Parameters of the homologous-pair mutation process applied to a parent
/// sequence to derive its partner.
struct MutationModel {
  /// Per-residue probability of a point substitution (to a different residue).
  double substitution_rate = 0.10;
  /// Per-residue probability of starting an insertion in the child.
  double insertion_rate = 0.02;
  /// Per-residue probability of starting a deletion from the parent.
  double deletion_rate = 0.02;
  /// Indel lengths are geometric with this continuation probability; the
  /// expected indel length is 1 / (1 - extension_prob).
  double extension_prob = 0.5;
};

/// A generated homologous pair: `a` is the random parent, `b` the mutated
/// child. Lengths differ by the net indel drift.
struct SequencePair {
  Sequence a;
  Sequence b;
};

/// Derives a mutated child of `parent` under `model`.
Sequence mutate(const Sequence& parent, const MutationModel& model,
                Xoshiro256& rng, std::string id = "mutant");

/// Generates a homologous pair with parent length `length`.
SequencePair homologous_pair(const Alphabet& alphabet, std::size_t length,
                             const MutationModel& model, Xoshiro256& rng);

/// Composition-biased random sequence: residue `r` is drawn with weight
/// `weights[r]` (weights need not be normalized; all must be >= 0, sum > 0).
Sequence biased_sequence(const Alphabet& alphabet,
                         std::span<const double> weights, std::size_t length,
                         Xoshiro256& rng, std::string id = "biased");

}  // namespace flsa
