#include "sequence/sequence_view.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

namespace flsa {

SequenceView::SequenceView() : alphabet_(&Alphabet::dna()) {}

SequenceView::SequenceView(const Sequence& sequence)
    : data_(sequence.residues().data()),
      size_(sequence.size()),
      packing_(Packing::kByte),
      alphabet_(&sequence.alphabet()) {}

SequenceView::SequenceView(std::shared_ptr<const Sequence> sequence)
    : alphabet_(&Alphabet::dna()) {
  if (sequence == nullptr) {
    throw std::invalid_argument("SequenceView: null sequence");
  }
  data_ = sequence->residues().data();
  size_ = sequence->size();
  packing_ = Packing::kByte;
  alphabet_ = &sequence->alphabet();
  owner_ = std::move(sequence);
}

SequenceView::SequenceView(std::shared_ptr<const void> owner,
                           const std::uint8_t* data, std::size_t size,
                           Packing packing, const Alphabet& alphabet)
    : owner_(std::move(owner)),
      data_(data),
      size_(size),
      packing_(packing),
      alphabet_(&alphabet) {}

Sequence SequenceView::materialize(std::size_t pos, std::size_t count,
                                   std::string id) const {
  std::vector<Residue> residues;
  residues.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    residues.push_back((*this)[pos + i]);
  }
  return Sequence(*alphabet_, std::move(residues), std::move(id));
}

std::string SequenceView::to_string() const {
  std::string out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(alphabet_->letter((*this)[i]));
  }
  return out;
}

}  // namespace flsa
