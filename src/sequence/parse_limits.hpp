// Input limits for the FASTA/FASTQ parsers.
//
// The alignment service put these parsers in front of untrusted bytes:
// a hostile or corrupt stream must produce a clean typed error, never an
// unbounded allocation or a crash. Lines are read through a bounded
// reader that stops growing at max_line_bytes (a getline-then-check
// would already have swallowed the attack), and records stop accumulating
// at max_record_residues. The defaults are far above any legitimate
// record; tests and services with tighter trust models pass smaller ones.
#pragma once

#include <cstddef>
#include <istream>
#include <stdexcept>
#include <string>

namespace flsa {

struct ParseLimits {
  /// Longest single line accepted, in bytes (64 MiB default).
  std::size_t max_line_bytes = std::size_t{64} << 20;
  /// Most residues accepted per record (256 Mi default).
  std::size_t max_record_residues = std::size_t{256} << 20;
};

namespace detail {

/// getline with a byte ceiling: reads up to and including '\n', strips a
/// trailing '\r' (CRLF input), and throws std::invalid_argument once a
/// line exceeds `max_bytes` — before buffering the rest of it. Returns
/// false at EOF with nothing read (a final line without '\n' is still
/// returned once).
inline bool read_bounded_line(std::istream& is, std::string* line,
                              std::size_t max_bytes, const char* format) {
  line->clear();
  std::streambuf* buffer = is.rdbuf();
  if (buffer == nullptr) {
    is.setstate(std::ios::badbit);
    return false;
  }
  while (true) {
    const int c = buffer->sbumpc();
    if (c == std::char_traits<char>::eof()) {
      is.setstate(std::ios::eofbit);
      break;
    }
    if (c == '\n') break;
    line->push_back(static_cast<char>(c));
    if (line->size() > max_bytes) {
      throw std::invalid_argument(
          std::string(format) + ": line exceeds the limit of " +
          std::to_string(max_bytes) + " bytes");
    }
  }
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return !line->empty() || !is.eof();
}

}  // namespace detail
}  // namespace flsa
