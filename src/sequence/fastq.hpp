// FASTQ input/output: the four-line read format sequencers emit.
//
// Rounds out the I/O substrate: reads arrive as FASTQ, references as
// FASTA; the search and batch pipelines consume both. Quality strings are
// carried verbatim (Phred+33 by convention) and validated for length.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sequence/parse_limits.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// One FASTQ record: the encoded sequence plus its quality string
/// (same length, Phred+33 ASCII).
struct FastqRecord {
  Sequence sequence;
  std::string quality;

  /// Phred quality of base `i` (quality[i] - 33).
  int phred(std::size_t i) const { return quality.at(i) - 33; }

  /// Mean Phred quality; 0 for empty reads.
  double mean_phred() const;
};

/// Reads every record of a FASTQ stream. Throws std::invalid_argument on
/// structural errors (missing '@'/'+' lines, truncated final records,
/// quality/sequence length mismatch, residues outside `alphabet`), naming
/// the record. Hardened for untrusted input: lines over
/// limits.max_line_bytes and reads over limits.max_record_residues raise
/// std::invalid_argument before the bytes are buffered; stream I/O
/// failures raise std::runtime_error. CRLF line endings are accepted.
std::vector<FastqRecord> read_fastq(std::istream& is, const Alphabet& alphabet,
                                    const ParseLimits& limits = {});

std::vector<FastqRecord> read_fastq_file(const std::string& path,
                                         const Alphabet& alphabet,
                                         const ParseLimits& limits = {});

/// Writes records in four-line form.
void write_fastq(std::ostream& os, const std::vector<FastqRecord>& records);

}  // namespace flsa
