// A biological sequence: residues encoded over an alphabet, plus an
// identifier and optional description (FASTA-style metadata).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sequence/alphabet.hpp"

namespace flsa {

/// Immutable-after-construction encoded sequence. All alignment code works
/// on residue codes; letters are only materialized for I/O and display.
class Sequence {
 public:
  /// Encodes `letters` over `alphabet`. Throws on foreign characters.
  Sequence(const Alphabet& alphabet, std::string_view letters,
           std::string id = "", std::string description = "");

  /// Adopts already-encoded residues (each must be < alphabet.size()).
  Sequence(const Alphabet& alphabet, std::vector<Residue> residues,
           std::string id = "", std::string description = "");

  const Alphabet& alphabet() const { return *alphabet_; }
  const std::string& id() const { return id_; }
  const std::string& description() const { return description_; }

  std::size_t size() const { return residues_.size(); }
  bool empty() const { return residues_.empty(); }

  /// Residue code at zero-based position i.
  Residue operator[](std::size_t i) const { return residues_[i]; }

  std::span<const Residue> residues() const { return residues_; }

  /// Decodes back to letters.
  std::string to_string() const;

  /// The reversed sequence (used by Hirschberg's backward pass and the
  /// linear-space local aligner).
  Sequence reversed() const;

  /// Subsequence of `count` residues starting at `pos` (zero-based).
  Sequence subsequence(std::size_t pos, std::size_t count) const;

 private:
  const Alphabet* alphabet_;
  std::vector<Residue> residues_;
  std::string id_;
  std::string description_;
};

}  // namespace flsa
