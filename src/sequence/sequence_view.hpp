// A non-owning (or shared-owning) read-only view of residues that may be
// byte-backed (one Residue per byte, e.g. a Sequence's vector) or
// bit-packed (4 or 2 bits per residue, e.g. an mmap'd store payload).
//
// The view is the currency between the packed store and every consumer
// that used to demand an owned Sequence: the k-mer index, chaining,
// X-drop extension, and the service's reference registry all read
// through it, so a 2-bit mmap'd chromosome is indexed and aligned in
// place without ever being inflated to one byte per base.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "sequence/sequence.hpp"

namespace flsa {

/// Residue packing of a view's backing bytes.
enum class Packing : std::uint8_t {
  kByte = 8,    ///< one residue per byte (Sequence layout)
  kNibble = 4,  ///< two residues per byte, low nibble first
  kTwoBit = 2,  ///< four residues per byte, low pair first
};

class SequenceView {
 public:
  /// Empty view over the DNA alphabet (valid, size 0).
  SequenceView();

  /// Non-owning view of a Sequence (string_view-style: the Sequence must
  /// outlive the view). Implicit so `const Sequence&` call sites keep
  /// compiling when a parameter becomes `const SequenceView&`.
  SequenceView(const Sequence& sequence);  // NOLINT(runtime/explicit)

  /// Shared-owning view of a Sequence.
  explicit SequenceView(std::shared_ptr<const Sequence> sequence);

  /// View of packed bytes. `owner` keeps the backing alive (e.g. an
  /// mmap'd store); it may be null for storage with static lifetime.
  /// `data` must hold at least ceil(size * bits / 8) bytes.
  SequenceView(std::shared_ptr<const void> owner, const std::uint8_t* data,
               std::size_t size, Packing packing, const Alphabet& alphabet);

  const Alphabet& alphabet() const { return *alphabet_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Packing packing() const { return packing_; }

  /// Residue code at zero-based position i.
  Residue operator[](std::size_t i) const {
    switch (packing_) {
      case Packing::kByte:
        return data_[i];
      case Packing::kNibble:
        return static_cast<Residue>(
            (static_cast<unsigned>(data_[i >> 1]) >> ((i & 1u) * 4)) & 0xFu);
      case Packing::kTwoBit:
      default:
        return static_cast<Residue>(
            (static_cast<unsigned>(data_[i >> 2]) >> ((i & 3u) * 2)) & 0x3u);
    }
  }

  /// True when residues are one-per-byte and `data()` can be read as a
  /// contiguous Residue array.
  bool is_contiguous() const { return packing_ == Packing::kByte; }

  /// Backing bytes (packed per `packing()`).
  const std::uint8_t* data() const { return data_; }

  /// Decodes `count` residues starting at `pos` into an owned Sequence
  /// (O(count) — the escape hatch for code that needs contiguous bytes,
  /// e.g. handing a slice to the full DP engine).
  Sequence materialize(std::size_t pos, std::size_t count,
                       std::string id = "") const;

  /// The whole view as an owned Sequence.
  Sequence materialize(std::string id = "") const {
    return materialize(0, size_, std::move(id));
  }

  /// Decodes back to letters (for display / tests).
  std::string to_string() const;

 private:
  std::shared_ptr<const void> owner_;  ///< keeps backing storage alive
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  Packing packing_ = Packing::kByte;
  const Alphabet* alphabet_ = nullptr;
};

}  // namespace flsa
