// FASTA input/output. The paper's workloads are DNA/protein sequence pairs;
// this module lets the examples and benches load real files when available
// and persist generated workloads for reproducibility.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sequence/parse_limits.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// Reads every record of a FASTA stream. Header lines are `>id description`;
/// sequence lines are concatenated; blank lines are skipped; characters not
/// in `alphabet` raise std::invalid_argument naming the record.
///
/// Hardened for untrusted input: lines longer than limits.max_line_bytes and
/// records larger than limits.max_record_residues raise std::invalid_argument
/// before the bytes are buffered; a header at end of input with no sequence
/// or blank line after it is a truncated final record and also raises
/// std::invalid_argument (a header followed by a blank line remains an
/// explicit empty record); stream I/O failures raise std::runtime_error.
std::vector<Sequence> read_fasta(std::istream& is, const Alphabet& alphabet,
                                 const ParseLimits& limits = {});

/// Reads a FASTA file from disk. Throws std::runtime_error if unreadable.
std::vector<Sequence> read_fasta_file(const std::string& path,
                                      const Alphabet& alphabet,
                                      const ParseLimits& limits = {});

/// Writes records with lines wrapped at `width` characters (default 70).
void write_fasta(std::ostream& os, const std::vector<Sequence>& records,
                 std::size_t width = 70);

void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& records,
                      std::size_t width = 70);

}  // namespace flsa
