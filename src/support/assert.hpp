// Lightweight contract macros used across the library.
//
// FLSA_REQUIRE checks a precondition in every build type and throws
// std::invalid_argument on violation (callers may pass bad data).
// FLSA_ASSERT checks an internal invariant; it aborts with a message and is
// compiled out when NDEBUG is defined, like the standard assert.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace flsa {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::string msg = std::string(kind) + " failed: " + expr + " at " + file +
                    ":" + std::to_string(line);
  throw std::invalid_argument(msg);
}

}  // namespace flsa

#define FLSA_REQUIRE(cond)                                                 \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::flsa::contract_violation("precondition", #cond, __FILE__, __LINE__); \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define FLSA_ASSERT(cond) ((void)0)
#else
#define FLSA_ASSERT(cond)                                                \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "invariant failed: %s at %s:%d\n", #cond,     \
                   __FILE__, __LINE__);                                  \
      std::abort();                                                      \
    }                                                                    \
  } while (0)
#endif
