#include "support/prng.hpp"

#include "support/assert.hpp"

namespace flsa {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::bounded(std::uint64_t bound) {
  FLSA_REQUIRE(bound != 0);
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::uniform01() {
  // 53 high bits scaled to [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace flsa
