// Tiny command-line flag parser shared by the example and bench binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` forms plus
// `--help` text generation. Deliberately minimal: no subcommands, no
// positional-argument schemas beyond a trailing list.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace flsa {

/// Declarative flag set: register flags with defaults, then parse argv.
class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Registers flags. `help` is shown by print_help().
  void add_flag(const std::string& name, bool default_value,
                const std::string& help);
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parses argv. Returns false (after printing) when --help or --version
  /// was given (every tool thus identifies its build via --version).
  /// Throws std::invalid_argument on unknown flags or malformed values.
  bool parse(int argc, const char* const* argv);

  bool get_flag(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  /// Arguments not starting with `--`, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  void print_help(std::ostream& os) const;

 private:
  enum class Kind { kBool, kInt, kDouble, kString };
  struct Entry {
    Kind kind;
    std::string help;
    bool bool_value = false;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    std::string default_repr;
  };

  const Entry& lookup(const std::string& name, Kind kind) const;
  Entry& lookup(const std::string& name, Kind kind);

  std::string description_;
  std::string program_name_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> positional_;
};

}  // namespace flsa
