// Fixed-width plain-text table printer used by the bench binaries to emit
// paper-style result tables to stdout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace flsa {

/// Accumulates rows of string cells and prints them with aligned columns.
///
/// Numeric-looking cells are right-aligned, text cells left-aligned. The
/// table renders a header rule and is safe to print incrementally row by row
/// (widths are computed when print() is called).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one data row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience formatters for common cell types.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);
  static std::string num(std::int64_t v);

  std::size_t rows() const { return rows_.size(); }

  /// Renders the full table.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flsa
