// Monotonic wall-clock timing for benchmark harnesses.
#pragma once

#include <chrono>

namespace flsa {

/// Stopwatch over std::chrono::steady_clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last reset().
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace flsa
