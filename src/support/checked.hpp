// Saturating unsigned arithmetic for size/cell-budget computations.
//
// DP cell counts are products of sequence lengths: at multi-megabase
// scale `(m + 1) * (n + 1)` silently wraps 64-bit arithmetic (two 5 Gbp
// chromosomes already overflow), and a wrapped product sails *under* an
// admission budget instead of over it. Every budget comparison in the
// tree goes through these helpers: overflow clamps to the maximum, so
// an impossible request always looks too big, never too small.
#pragma once

#include <cstdint>
#include <limits>

namespace flsa {

/// `a + b`, clamped to `UINT64_MAX` on overflow.
inline std::uint64_t add_sat_u64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return out;
}

/// `a * b`, clamped to `UINT64_MAX` on overflow.
inline std::uint64_t mul_sat_u64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return out;
}

}  // namespace flsa
