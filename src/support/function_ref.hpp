// Non-owning callable reference.
//
// FunctionRef<R(Args...)> is a two-pointer view of any callable — no heap,
// no virtual dispatch, trivially copyable. The hot scheduling paths
// (ThreadPool::parallel_run, TileExecutor::run) take FunctionRef instead of
// std::function because the capturing lambdas they receive exceed
// std::function's small-buffer optimization, which made every fill /
// base-case phase call heap-allocate its own closure copy. A FunctionRef
// never outlives the call it is passed to, so referencing the caller's
// closure directly is safe.
#pragma once

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

namespace flsa {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Empty reference; operator bool is false and calling it is undefined.
  FunctionRef() = default;
  FunctionRef(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Binds to any callable. The callable is captured by reference: it must
  /// outlive every invocation through this FunctionRef (always true for the
  /// intended "pass a lambda down into a blocking call" pattern).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : object_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* object, Args... args) -> R {
          return std::invoke(
              *static_cast<std::remove_reference_t<F>*>(object),
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(object_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void* object_ = nullptr;
  R (*invoke_)(void*, Args...) = nullptr;
};

}  // namespace flsa
