#include "support/csv.hpp"

#include <ostream>

#include "support/assert.hpp"

namespace flsa {

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> header)
    : os_(os), arity_(header.size()) {
  FLSA_REQUIRE(arity_ > 0);
  write_row(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  FLSA_REQUIRE(cells.size() == arity_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  bool needs_quotes = false;
  for (char c : cell) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace flsa
