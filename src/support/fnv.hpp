// FNV-1a 64-bit — the tree's one content hash.
//
// Used by the packed store (payload + header checksums), the resumable
// upload protocol (rolling prefix hash over the residue letters), and
// REF_PUT idempotency tokens. Not cryptographic; it only needs to catch
// corruption and to give two identical uploads the same token.
#pragma once

#include <cstddef>
#include <cstdint>

namespace flsa {

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Folds `len` bytes into a running FNV-1a state. Seed with
/// `kFnvOffsetBasis`, then chain calls for rolling hashes.
inline std::uint64_t fnv1a64(const void* data, std::size_t len,
                             std::uint64_t state = kFnvOffsetBasis) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    state ^= bytes[i];
    state *= kFnvPrime;
  }
  return state;
}

}  // namespace flsa
