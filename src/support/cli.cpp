#include "support/cli.hpp"

#include <charconv>
#include <iostream>
#include <stdexcept>

#include "support/assert.hpp"
#include "support/version.hpp"

namespace flsa {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_flag(const std::string& name, bool default_value,
                         const std::string& help) {
  Entry e;
  e.kind = Kind::kBool;
  e.help = help;
  e.bool_value = default_value;
  e.default_repr = default_value ? "true" : "false";
  entries_[name] = std::move(e);
}

void CliParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  Entry e;
  e.kind = Kind::kInt;
  e.help = help;
  e.int_value = default_value;
  e.default_repr = std::to_string(default_value);
  entries_[name] = std::move(e);
}

void CliParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  Entry e;
  e.kind = Kind::kDouble;
  e.help = help;
  e.double_value = default_value;
  e.default_repr = std::to_string(default_value);
  entries_[name] = std::move(e);
}

void CliParser::add_string(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  Entry e;
  e.kind = Kind::kString;
  e.help = help;
  e.string_value = default_value;
  e.default_repr = default_value.empty() ? "\"\"" : default_value;
  entries_[name] = std::move(e);
}

bool CliParser::parse(int argc, const char* const* argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(std::cout);
      return false;
    }
    if (arg == "--version") {
      std::cout << version_string() << "\n";
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> value;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw std::invalid_argument("unknown flag --" + name);
    }
    Entry& e = it->second;
    if (e.kind == Kind::kBool) {
      if (value) {
        e.bool_value = (*value == "true" || *value == "1");
      } else {
        e.bool_value = true;
      }
      continue;
    }
    if (!value) {
      if (i + 1 >= argc) {
        throw std::invalid_argument("flag --" + name + " expects a value");
      }
      value = argv[++i];
    }
    switch (e.kind) {
      case Kind::kInt: {
        std::int64_t parsed = 0;
        auto [ptr, ec] = std::from_chars(
            value->data(), value->data() + value->size(), parsed);
        if (ec != std::errc{} || ptr != value->data() + value->size()) {
          throw std::invalid_argument("flag --" + name +
                                      " expects an integer, got " + *value);
        }
        e.int_value = parsed;
        break;
      }
      case Kind::kDouble: {
        try {
          std::size_t pos = 0;
          e.double_value = std::stod(*value, &pos);
          if (pos != value->size()) throw std::invalid_argument("trailing");
        } catch (const std::exception&) {
          throw std::invalid_argument("flag --" + name +
                                      " expects a number, got " + *value);
        }
        break;
      }
      case Kind::kString:
        e.string_value = *value;
        break;
      case Kind::kBool:
        break;  // handled above
    }
  }
  return true;
}

const CliParser::Entry& CliParser::lookup(const std::string& name,
                                          Kind kind) const {
  auto it = entries_.find(name);
  FLSA_REQUIRE(it != entries_.end());
  FLSA_REQUIRE(it->second.kind == kind);
  return it->second;
}

CliParser::Entry& CliParser::lookup(const std::string& name, Kind kind) {
  return const_cast<Entry&>(
      static_cast<const CliParser*>(this)->lookup(name, kind));
}

bool CliParser::get_flag(const std::string& name) const {
  return lookup(name, Kind::kBool).bool_value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return lookup(name, Kind::kInt).int_value;
}

double CliParser::get_double(const std::string& name) const {
  return lookup(name, Kind::kDouble).double_value;
}

const std::string& CliParser::get_string(const std::string& name) const {
  return lookup(name, Kind::kString).string_value;
}

void CliParser::print_help(std::ostream& os) const {
  os << description_ << "\n\nusage: " << program_name_
     << " [flags]\n  --version  print \"" << version_string()
     << "\" and exit\n";
  for (const auto& [name, e] : entries_) {
    os << "  --" << name << "  (default " << e.default_repr << ")\n      "
       << e.help << "\n";
  }
}

}  // namespace flsa
