// Deterministic pseudo-random number generation for workload synthesis.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64; small, fast,
// and reproducible across platforms, which matters because every synthetic
// workload in tests and benchmarks is identified by its seed.
#pragma once

#include <cstdint>
#include <span>

namespace flsa {

/// Single-step splitmix64; used to expand one 64-bit seed into a full
/// xoshiro state and useful on its own for hashing experiment ids.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via splitmix64 so any seed (including 0)
  /// yields a well-mixed state.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  /// bound must be nonzero.
  std::uint64_t bounded(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Jump function: advances the stream by 2^128 steps, giving independent
  /// parallel substreams from one seed.
  void jump();

 private:
  std::uint64_t s_[4];
};

}  // namespace flsa
