#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace flsa {

Summary summarize(std::span<const double> sample) {
  Summary s;
  s.n = sample.size();
  if (s.n == 0) return s;
  Accumulator acc;
  for (double x : sample) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = median(sample);
  return s;
}

double mean(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double total = 0.0;
  for (double x : sample) total += x;
  return total / static_cast<double>(sample.size());
}

double median(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  if (sorted.size() % 2 == 1) return sorted[mid];
  return 0.5 * (sorted[mid - 1] + sorted[mid]);
}

double ci95_halfwidth(const Summary& s) {
  if (s.n < 2) return 0.0;
  return 1.96 * s.stddev / std::sqrt(static_cast<double>(s.n));
}

double percentile(std::span<const double> sample, double p) {
  if (sample.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const double h = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double fraction = h - static_cast<double>(lo);
  return sorted[lo] + fraction * (sorted[lo + 1] - sorted[lo]);
}

LatencyQuantiles latency_quantiles(std::span<const double> sample) {
  LatencyQuantiles q;
  q.n = sample.size();
  if (q.n == 0) return q;
  // One sort shared by all three quantiles.
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const auto at = [&sorted](double p) {
    const double h = p * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(h);
    if (lo + 1 >= sorted.size()) return sorted.back();
    return sorted[lo] +
           (h - static_cast<double>(lo)) * (sorted[lo + 1] - sorted[lo]);
  };
  q.p50 = at(0.50);
  q.p95 = at(0.95);
  q.p99 = at(0.99);
  q.max = sorted.back();
  return q;
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

}  // namespace flsa
