#include "support/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace flsa {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  FLSA_REQUIRE(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  FLSA_REQUIRE(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }
std::string Table::num(std::int64_t v) { return std::to_string(v); }

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit_seen = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
               c != '%' && c != 'x') {
      return false;
    }
  }
  return digit_seen;
}
}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      if (looks_numeric(row[c])) {
        os << std::setw(static_cast<int>(width[c])) << std::right << row[c];
      } else {
        os << std::setw(static_cast<int>(width[c])) << std::left << row[c];
      }
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace flsa
