// Minimal CSV emission for bench results so plots can be regenerated
// externally. Handles quoting of cells containing separators or quotes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace flsa {

/// Streams rows of cells as RFC-4180-style CSV.
class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& os, std::vector<std::string> header);

  /// Writes one data row; arity must match the header.
  void write_row(const std::vector<std::string>& cells);

  /// Quotes a single cell if needed (exposed for testing).
  static std::string escape(const std::string& cell);

 private:
  std::ostream& os_;
  std::size_t arity_;
};

}  // namespace flsa
