// Small descriptive-statistics helpers used by the benchmark harnesses to
// aggregate repeated timing measurements.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace flsa {

/// Summary of a sample of measurements.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes a full summary of the sample. Empty input yields a zero summary.
Summary summarize(std::span<const double> sample);

double mean(std::span<const double> sample);
double median(std::span<const double> sample);

/// Half-width of the ~95% normal-approximation confidence interval of the
/// mean (1.96 * stddev / sqrt(n)); 0 for samples smaller than 2.
double ci95_halfwidth(const Summary& s);

/// Exact sample quantile with linear interpolation between order
/// statistics (the "linear" / Hyndman-Fan type-7 rule): for a sorted
/// sample x[0..n-1], percentile(p) = x[h] interpolated at
/// h = p * (n - 1). p is clamped to [0, 1]; an empty sample yields 0.
/// percentile(s, 0.5) agrees with median() for every sample size.
double percentile(std::span<const double> sample, double p);

/// The latency-report quantiles of the service load benchmark. Exact
/// (order-statistic) values, unlike obs::Histogram::quantile's bucketed
/// approximation — closed-loop load generators keep every sample, so
/// there is no reason to approximate.
struct LatencyQuantiles {
  std::size_t n = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};
LatencyQuantiles latency_quantiles(std::span<const double> sample);

/// Online accumulator (Welford) for streaming measurements.
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance; 0 when fewer than 2 observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace flsa
