// Blocking client for the alignment service. One Client owns one TCP
// connection; it is not thread-safe (use one per thread — the load
// generator and align_batch follow the same rule). Requests may be
// pipelined with send()/receive(); call() is the closed-loop convenience
// that assigns request ids, and call_with_retry() layers exponential
// backoff with decorrelated jitter over call() for transient failures
// (OVERLOADED, SHUTTING_DOWN, CONNECTION_LIMIT, connect/reset) —
// deterministic rejections (BAD_REQUEST, TOO_LARGE) are never retried.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "service/protocol.hpp"

namespace flsa {
namespace service {

/// One dialable server address. Clients hold a list of these; the router
/// and the retry loop rotate through it on failure.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Retry/backoff schedule for call_with_retry(). The sleep before
/// attempt n+1 is drawn uniformly from [base_delay, 3 * previous_sleep]
/// and capped at max_delay — "decorrelated jitter", which spreads a
/// thundering herd of retrying clients across time instead of
/// resynchronizing them the way fixed exponential steps do. A retry
/// budget bounds the total time burnt across all attempts, so a retrying
/// caller still has a worst-case latency.
struct RetryPolicy {
  /// Total attempts, including the first; minimum 1.
  unsigned max_attempts = 5;
  /// Floor of every backoff sleep.
  std::chrono::milliseconds base_delay{10};
  /// Cap of every backoff sleep.
  std::chrono::milliseconds max_delay{2000};
  /// Ceiling on the summed backoff sleeps; once spent, no more retries.
  std::chrono::milliseconds retry_budget{30000};
  /// Jitter RNG seed — per-client determinism for tests and CI.
  std::uint64_t seed = 0x5eedULL;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port (remembered for reconnects). Throws
  /// TransportError on socket-level failures, std::runtime_error on a
  /// malformed address.
  void connect(const std::string& host, std::uint16_t port);

  /// Connects to the first reachable endpoint of the list, trying them in
  /// order; the whole list is remembered, and later reconnects (the retry
  /// loop, explicit reconnect()) resume from the current cursor so a dead
  /// address is skipped instead of re-dialled forever. Throws the last
  /// TransportError when every endpoint refused.
  void connect(std::vector<Endpoint> endpoints);

  /// Re-dials starting at the current endpoint, rotating through the list
  /// until one accepts. Requires a previous connect().
  void reconnect();

  /// The endpoint the current/most recent connection used.
  const Endpoint& current_endpoint() const { return endpoints_[cursor_]; }

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Fire-and-forget send (pipelining). Assigns the next request id when
  /// request.request_id == 0 and returns the id actually sent. Throws
  /// TransportError when the server is gone.
  std::uint64_t send(AlignRequest request);
  std::uint64_t send(StatsRequest request);
  std::uint64_t send(RefPutRequest request);
  std::uint64_t send(SearchRequest request);
  std::uint64_t send(AlignBatchRequest request);
  std::uint64_t send(SeqBeginRequest request);
  std::uint64_t send(SeqChunkRequest request);
  std::uint64_t send(SeqEndRequest request);
  std::uint64_t send(AlignRefRequest request);
  std::uint64_t send(RefListRequest request);

  /// Blocks for the next response frame (any request id). Throws
  /// ProtocolError on malformed frames, TransportError when the server
  /// closed the connection (cleanly or mid-frame).
  Response receive();

  /// Closed-loop helpers: send one request, wait for *its* response (by
  /// request id; other pipelined responses arriving first are an error —
  /// do not mix call() with pipelining on one connection).
  Response call(AlignRequest request);
  Response call(StatsRequest request);
  Response call(RefPutRequest request);
  Response call(SearchRequest request);
  Response call(AlignBatchRequest request);
  Response call(SeqBeginRequest request);
  Response call(SeqChunkRequest request);
  Response call(SeqEndRequest request);
  Response call(RefListRequest request);

  /// Closed-loop ALIGN_REF with streamed-response reassembly: blocks
  /// until the last ALIGN_PART frame and returns a single
  /// AlignPartResponse whose cigar_part is the complete cigar and whose
  /// trailer fields come from the last (authoritative) frame — or the
  /// ErrorResponse the server answered instead. Memory is bounded by the
  /// cigar itself, never by the DP matrix.
  Response call(AlignRefRequest request);

  /// call() plus retry: reconnects and resends after TransportErrors and
  /// after the typed transient rejections of is_retryable() — all
  /// idempotent-safe, the request was never executed. With a multi-
  /// endpoint connect(), every retryable failure advances the endpoint
  /// cursor first, so attempt n+1 dials the *next* address instead of
  /// hammering the one that just failed (single-endpoint clients keep the
  /// old re-dial-same-address behaviour). Returns the first success or
  /// non-retryable response; when every attempt failed, returns the last
  /// typed rejection, or rethrows the last TransportError if no typed
  /// answer was ever received. Per-attempt metrics land in the obs
  /// registry under client.retry.*.
  Response call_with_retry(AlignRequest request, const RetryPolicy& policy);
  /// SEARCH and ALIGN_REF are read-only against immutable references, so
  /// they share ALIGN's idempotent-safe retry contract (a mid-stream
  /// TransportError re-sends the whole ALIGN_REF; the re-computed parts
  /// are identical).
  Response call_with_retry(SearchRequest request, const RetryPolicy& policy);
  Response call_with_retry(AlignRefRequest request,
                           const RetryPolicy& policy);
  /// REF_PUT becomes retry-safe through its content token: when
  /// request.content_token == 0 this fills in content_token_for(request)
  /// first, so a re-send after an ambiguous failure answers the already
  /// registered id instead of registering a duplicate.
  Response call_with_retry(RefPutRequest request, const RetryPolicy& policy);

  /// Streams `letters` to the server as one chunked upload
  /// (SEQ_BEGIN / SEQ_CHUNK* / SEQ_END) and returns the final response —
  /// a SeqOkResponse carrying the registered ref id on success, or the
  /// first non-transport error. Transport failures mid-upload reconnect
  /// and resume from the server's acknowledged offset (up to
  /// `max_resumes` times): already-delivered bytes are never re-sent.
  struct UploadOptions {
    std::uint64_t token = 0;  ///< 0 = derive from the content hash
    /// Router placement key: uploads sharing one land on the same
    /// backend (required to ALIGN_REF them against each other through
    /// the router). 0 = place by token; direct connections ignore it.
    std::uint64_t placement = 0;
    std::string name;
    WireMatrix matrix = WireMatrix::kDna;
    std::size_t chunk_residues = std::size_t{1} << 20;
    std::uint32_t k = 0;            ///< SEQ_END seed length (0 = default)
    bool build_index = false;       ///< also build the k-mer index
    unsigned max_resumes = 3;       ///< transport failures tolerated
  };
  Response upload_sequence(std::string_view letters,
                           const UploadOptions& options);

 private:
  std::uint64_t next_id();
  Response wait_for(std::uint64_t request_id);
  /// Raw socket dial of one address; no endpoint-list bookkeeping.
  void dial(const std::string& host, std::uint16_t port);
  /// Rotates the cursor to the next endpoint (no-op for a single one).
  void advance_endpoint();
  template <typename RequestT>
  std::uint64_t send_impl(RequestT request);
  template <typename RequestT>
  Response retry_impl(RequestT request, const RetryPolicy& policy);

  int fd_ = -1;
  std::uint64_t last_id_ = 0;
  std::vector<Endpoint> endpoints_;
  std::size_t cursor_ = 0;
};

}  // namespace service
}  // namespace flsa
