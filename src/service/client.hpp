// Blocking client for the alignment service. One Client owns one TCP
// connection; it is not thread-safe (use one per thread — the load
// generator and align_batch follow the same rule). Requests may be
// pipelined with send()/receive(); call() is the closed-loop convenience
// that assigns request ids, and call_with_retry() layers exponential
// backoff with decorrelated jitter over call() for transient failures
// (OVERLOADED, SHUTTING_DOWN, CONNECTION_LIMIT, connect/reset) —
// deterministic rejections (BAD_REQUEST, TOO_LARGE) are never retried.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.hpp"

namespace flsa {
namespace service {

/// One dialable server address. Clients hold a list of these; the router
/// and the retry loop rotate through it on failure.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Retry/backoff schedule for call_with_retry(). The sleep before
/// attempt n+1 is drawn uniformly from [base_delay, 3 * previous_sleep]
/// and capped at max_delay — "decorrelated jitter", which spreads a
/// thundering herd of retrying clients across time instead of
/// resynchronizing them the way fixed exponential steps do. A retry
/// budget bounds the total time burnt across all attempts, so a retrying
/// caller still has a worst-case latency.
struct RetryPolicy {
  /// Total attempts, including the first; minimum 1.
  unsigned max_attempts = 5;
  /// Floor of every backoff sleep.
  std::chrono::milliseconds base_delay{10};
  /// Cap of every backoff sleep.
  std::chrono::milliseconds max_delay{2000};
  /// Ceiling on the summed backoff sleeps; once spent, no more retries.
  std::chrono::milliseconds retry_budget{30000};
  /// Jitter RNG seed — per-client determinism for tests and CI.
  std::uint64_t seed = 0x5eedULL;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port (remembered for reconnects). Throws
  /// TransportError on socket-level failures, std::runtime_error on a
  /// malformed address.
  void connect(const std::string& host, std::uint16_t port);

  /// Connects to the first reachable endpoint of the list, trying them in
  /// order; the whole list is remembered, and later reconnects (the retry
  /// loop, explicit reconnect()) resume from the current cursor so a dead
  /// address is skipped instead of re-dialled forever. Throws the last
  /// TransportError when every endpoint refused.
  void connect(std::vector<Endpoint> endpoints);

  /// Re-dials starting at the current endpoint, rotating through the list
  /// until one accepts. Requires a previous connect().
  void reconnect();

  /// The endpoint the current/most recent connection used.
  const Endpoint& current_endpoint() const { return endpoints_[cursor_]; }

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Fire-and-forget send (pipelining). Assigns the next request id when
  /// request.request_id == 0 and returns the id actually sent. Throws
  /// TransportError when the server is gone.
  std::uint64_t send(AlignRequest request);
  std::uint64_t send(StatsRequest request);
  std::uint64_t send(RefPutRequest request);
  std::uint64_t send(SearchRequest request);
  std::uint64_t send(AlignBatchRequest request);

  /// Blocks for the next response frame (any request id). Throws
  /// ProtocolError on malformed frames, TransportError when the server
  /// closed the connection (cleanly or mid-frame).
  Response receive();

  /// Closed-loop helpers: send one request, wait for *its* response (by
  /// request id; other pipelined responses arriving first are an error —
  /// do not mix call() with pipelining on one connection).
  Response call(AlignRequest request);
  Response call(StatsRequest request);
  Response call(RefPutRequest request);
  Response call(SearchRequest request);
  Response call(AlignBatchRequest request);

  /// call() plus retry: reconnects and resends after TransportErrors and
  /// after the typed transient rejections of is_retryable() — all
  /// idempotent-safe, the request was never executed. With a multi-
  /// endpoint connect(), every retryable failure advances the endpoint
  /// cursor first, so attempt n+1 dials the *next* address instead of
  /// hammering the one that just failed (single-endpoint clients keep the
  /// old re-dial-same-address behaviour). Returns the first success or
  /// non-retryable response; when every attempt failed, returns the last
  /// typed rejection, or rethrows the last TransportError if no typed
  /// answer was ever received. Per-attempt metrics land in the obs
  /// registry under client.retry.*.
  Response call_with_retry(AlignRequest request, const RetryPolicy& policy);
  /// SEARCH is read-only against an immutable reference, so it shares
  /// ALIGN's idempotent-safe retry contract. REF_PUT deliberately has no
  /// retry overload: a TransportError after execution may have registered
  /// the reference, and re-sending would register a second id.
  Response call_with_retry(SearchRequest request, const RetryPolicy& policy);

 private:
  std::uint64_t next_id();
  Response wait_for(std::uint64_t request_id);
  /// Raw socket dial of one address; no endpoint-list bookkeeping.
  void dial(const std::string& host, std::uint16_t port);
  /// Rotates the cursor to the next endpoint (no-op for a single one).
  void advance_endpoint();
  template <typename RequestT>
  std::uint64_t send_impl(RequestT request);
  template <typename RequestT>
  Response retry_impl(RequestT request, const RetryPolicy& policy);

  int fd_ = -1;
  std::uint64_t last_id_ = 0;
  std::vector<Endpoint> endpoints_;
  std::size_t cursor_ = 0;
};

}  // namespace service
}  // namespace flsa
