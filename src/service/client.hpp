// Blocking client for the alignment service. One Client owns one TCP
// connection; it is not thread-safe (use one per thread — the load
// generator and align_batch follow the same rule). Requests may be
// pipelined with send()/receive(); call() is the closed-loop convenience
// that assigns request ids.
#pragma once

#include <cstdint>
#include <string>

#include "service/protocol.hpp"

namespace flsa {
namespace service {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port. Throws std::runtime_error on failure.
  void connect(const std::string& host, std::uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Fire-and-forget send (pipelining). Assigns the next request id when
  /// request.request_id == 0 and returns the id actually sent.
  std::uint64_t send(AlignRequest request);
  std::uint64_t send(StatsRequest request);

  /// Blocks for the next response frame (any request id). Throws
  /// ProtocolError on malformed frames, std::runtime_error when the
  /// server closed the connection.
  Response receive();

  /// Closed-loop helpers: send one request, wait for *its* response (by
  /// request id; other pipelined responses arriving first are an error —
  /// do not mix call() with pipelining on one connection).
  Response call(AlignRequest request);
  Response call(StatsRequest request);

 private:
  std::uint64_t next_id();
  Response wait_for(std::uint64_t request_id);

  int fd_ = -1;
  std::uint64_t last_id_ = 0;
};

}  // namespace service
}  // namespace flsa
