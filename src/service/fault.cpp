#include "service/fault.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "obs/metrics.hpp"

namespace flsa {
namespace service {

namespace {

constexpr std::uint32_t kMaxDelayMs = 60000;

double parse_probability(const std::string& key, const std::string& text) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("fault-plan: bad number for '" + key +
                                "': " + text);
  }
  if (used != text.size() || value < 0.0 || value > 1.0) {
    throw std::invalid_argument("fault-plan: '" + key +
                                "' needs a probability in [0, 1], got " +
                                text);
  }
  return value;
}

std::uint64_t parse_u64(const std::string& key, const std::string& text) {
  std::size_t used = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(text, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("fault-plan: bad number for '" + key +
                                "': " + text);
  }
  if (used != text.size()) {
    throw std::invalid_argument("fault-plan: bad number for '" + key +
                                "': " + text);
  }
  return value;
}

/// splitmix64: tiny, seedable, and plenty for fault scheduling.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

obs::Counter& fault_counter(const char* kind) {
  return obs::metrics().counter(std::string("service.fault.") + kind);
}

}  // namespace

FaultPlan parse_fault_plan(std::string_view spec) {
  FaultPlan plan;
  if (spec.empty() || spec == "off") return plan;
  std::stringstream stream{std::string(spec)};
  std::string pair;
  while (std::getline(stream, pair, ',')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == pair.size()) {
      throw std::invalid_argument(
          "fault-plan: expected key=value, got '" + pair + "'");
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "seed") {
      plan.seed = parse_u64(key, value);
    } else if (key == "reject") {
      plan.reject = parse_probability(key, value);
    } else if (key == "drop") {
      plan.drop = parse_probability(key, value);
    } else if (key == "delay") {
      // delay=P or delay=P:MS
      const std::size_t colon = value.find(':');
      plan.delay = parse_probability(key, value.substr(0, colon));
      if (colon != std::string::npos) {
        const std::uint64_t ms = parse_u64("delay ms", value.substr(colon + 1));
        if (ms > kMaxDelayMs) {
          throw std::invalid_argument(
              "fault-plan: delay of " + std::to_string(ms) +
              " ms exceeds the cap of " + std::to_string(kMaxDelayMs));
        }
        plan.delay_ms = static_cast<std::uint32_t>(ms);
      }
    } else if (key == "truncate") {
      plan.truncate = parse_probability(key, value);
    } else if (key == "corrupt") {
      plan.corrupt = parse_probability(key, value);
    } else {
      throw std::invalid_argument("fault-plan: unknown key '" + key + "'");
    }
  }
  return plan;
}

std::string to_string(const FaultPlan& plan) {
  if (!plan.enabled()) return "off";
  std::ostringstream out;
  out << "seed=" << plan.seed;
  if (plan.reject > 0.0) out << ",reject=" << plan.reject;
  if (plan.drop > 0.0) out << ",drop=" << plan.drop;
  if (plan.delay > 0.0) {
    out << ",delay=" << plan.delay << ":" << plan.delay_ms;
  }
  if (plan.truncate > 0.0) out << ",truncate=" << plan.truncate;
  if (plan.corrupt > 0.0) out << ",corrupt=" << plan.corrupt;
  return out.str();
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(plan), state_(plan.seed) {}

std::uint64_t FaultInjector::next_u64() {
  std::lock_guard<std::mutex> lock(mutex_);
  return splitmix64(state_);
}

double FaultInjector::uniform() {
  // 53 mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool FaultInjector::inject_reject() {
  if (plan_.reject <= 0.0) return false;
  if (uniform() >= plan_.reject) return false;
  fault_counter("reject").add();
  return true;
}

ReadFault FaultInjector::inject_read() {
  if (plan_.delay > 0.0 && uniform() < plan_.delay) {
    fault_counter("delay").add();
    std::this_thread::sleep_for(std::chrono::milliseconds(plan_.delay_ms));
  }
  if (plan_.drop > 0.0 && uniform() < plan_.drop) {
    fault_counter("drop").add();
    return ReadFault::kDrop;
  }
  return ReadFault::kNone;
}

WriteFault FaultInjector::inject_write() {
  if (plan_.delay > 0.0 && uniform() < plan_.delay) {
    fault_counter("delay").add();
    std::this_thread::sleep_for(std::chrono::milliseconds(plan_.delay_ms));
  }
  if (plan_.drop > 0.0 && uniform() < plan_.drop) {
    fault_counter("drop").add();
    return WriteFault::kDrop;
  }
  if (plan_.truncate > 0.0 && uniform() < plan_.truncate) {
    fault_counter("truncate").add();
    return WriteFault::kTruncate;
  }
  if (plan_.corrupt > 0.0 && uniform() < plan_.corrupt) {
    fault_counter("corrupt").add();
    return WriteFault::kCorrupt;
  }
  return WriteFault::kNone;
}

std::size_t FaultInjector::truncate_point(std::size_t frame_size) {
  if (frame_size == 0) return 0;
  return static_cast<std::size_t>(next_u64() % frame_size);
}

void FaultInjector::corrupt(std::string& payload) {
  if (payload.empty()) return;
  payload[0] = static_cast<char>(
      static_cast<unsigned char>(payload[0]) ^ 0xA5u);
}

}  // namespace service
}  // namespace flsa
