#include "service/protocol.hpp"

#include <sys/socket.h>

#include <bit>
#include <cerrno>
#include <cstring>

#include "support/checked.hpp"
#include "support/fnv.hpp"

namespace flsa {
namespace service {
namespace {

/// Append-only little-endian payload builder.
class Writer {
 public:
  explicit Writer(Verb verb) {
    out_.push_back(static_cast<char>(kProtocolVersion));
    out_.push_back(static_cast<char>(verb));
  }

  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void str(std::string_view s) {
    if (s.size() > kMaxFrameBytes) {
      throw ProtocolError("string field exceeds the frame limit");
    }
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }

  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian payload consumer.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v |= std::uint32_t(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      v |= std::uint64_t(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  void finish() const {
    if (pos_ != data_.size()) {
      throw ProtocolError("trailing bytes after payload body");
    }
  }

  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) throw ProtocolError("truncated payload");
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

Verb read_header(Reader& r) {
  const std::uint8_t version = r.u8();
  if (version != kProtocolVersion) {
    throw ProtocolError("unsupported protocol version " +
                        std::to_string(version));
  }
  return static_cast<Verb>(r.u8());
}

WireMatrix read_matrix(Reader& r) {
  const std::uint8_t raw = r.u8();
  if (raw > static_cast<std::uint8_t>(WireMatrix::kDnaN)) {
    throw ProtocolError("unknown matrix selector " + std::to_string(raw));
  }
  return static_cast<WireMatrix>(raw);
}

ErrorCode read_error_code(Reader& r) {
  const std::uint8_t raw = r.u8();
  if (raw < static_cast<std::uint8_t>(ErrorCode::kBadRequest) ||
      raw > static_cast<std::uint8_t>(ErrorCode::kRefNotFound)) {
    throw ProtocolError("unknown error code " + std::to_string(raw));
  }
  return static_cast<ErrorCode>(raw);
}

// ---- Shared body codecs ----------------------------------------------
// The ALIGN job / answer / error bodies appear both as whole payloads and
// as batch elements, so they are encoded and decoded by one helper each.

void write_align_body(Writer& w, const AlignRequest& request) {
  w.u64(request.request_id);
  w.u8(static_cast<std::uint8_t>(request.matrix));
  w.i32(request.gap_open);
  w.i32(request.gap_extend);
  w.u32(request.k);
  w.u64(request.base_case_cells);
  w.u32(request.deadline_ms);
  w.u8(request.score_only ? 1 : 0);
  w.str(request.a);
  w.str(request.b);
}

AlignRequest read_align_body(Reader& r) {
  AlignRequest req;
  req.request_id = r.u64();
  req.matrix = read_matrix(r);
  req.gap_open = r.i32();
  req.gap_extend = r.i32();
  req.k = r.u32();
  req.base_case_cells = r.u64();
  req.deadline_ms = r.u32();
  req.score_only = r.u8() != 0;
  req.a = r.str();
  req.b = r.str();
  return req;
}

/// Smallest possible encoded AlignRequest body (empty sequences) — the
/// sanity bound a batch decoder applies to its count field so a hostile
/// count cannot drive a huge up-front reservation.
constexpr std::size_t kMinAlignBodyBytes = 8 + 1 + 4 + 4 + 4 + 8 + 4 + 1 + 4 + 4;

void write_align_ok_body(Writer& w, const AlignResponse& response) {
  w.u64(response.request_id);
  w.i64(response.score);
  w.str(response.cigar);
  w.u64(response.cells);
  w.u64(response.queue_micros);
  w.u64(response.exec_micros);
  w.i64(response.deadline_remaining_ms);
}

AlignResponse read_align_ok_body(Reader& r) {
  AlignResponse res;
  res.request_id = r.u64();
  res.score = r.i64();
  res.cigar = r.str();
  res.cells = r.u64();
  res.queue_micros = r.u64();
  res.exec_micros = r.u64();
  res.deadline_remaining_ms = r.i64();
  return res;
}

void write_error_body(Writer& w, const ErrorResponse& response) {
  w.u64(response.request_id);
  w.u8(static_cast<std::uint8_t>(response.code));
  w.str(response.message);
}

ErrorResponse read_error_body(Reader& r) {
  ErrorResponse res;
  res.request_id = r.u64();
  res.code = read_error_code(r);
  res.message = r.str();
  return res;
}

}  // namespace

const char* to_string(Verb verb) {
  switch (verb) {
    case Verb::kAlign: return "ALIGN";
    case Verb::kStats: return "STATS";
    case Verb::kRefPut: return "REF_PUT";
    case Verb::kSearch: return "SEARCH";
    case Verb::kAlignBatch: return "ALIGN_BATCH";
    case Verb::kSeqBegin: return "SEQ_BEGIN";
    case Verb::kSeqChunk: return "SEQ_CHUNK";
    case Verb::kSeqEnd: return "SEQ_END";
    case Verb::kAlignRef: return "ALIGN_REF";
    case Verb::kRefList: return "REF_LIST";
    case Verb::kAlignOk: return "ALIGN_OK";
    case Verb::kError: return "ERROR";
    case Verb::kStatsOk: return "STATS_OK";
    case Verb::kRefPutOk: return "REF_PUT_OK";
    case Verb::kSearchOk: return "SEARCH_OK";
    case Verb::kAlignBatchOk: return "ALIGN_BATCH_OK";
    case Verb::kSeqOk: return "SEQ_OK";
    case Verb::kAlignPart: return "ALIGN_PART";
    case Verb::kRefListOk: return "REF_LIST_OK";
  }
  return "?";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "BAD_REQUEST";
    case ErrorCode::kTooLarge: return "TOO_LARGE";
    case ErrorCode::kOverloaded: return "OVERLOADED";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ErrorCode::kShuttingDown: return "SHUTTING_DOWN";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kConnectionLimit: return "CONNECTION_LIMIT";
    case ErrorCode::kRefNotFound: return "REF_NOT_FOUND";
  }
  return "?";
}

bool is_retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOverloaded:
    case ErrorCode::kShuttingDown:
    case ErrorCode::kConnectionLimit:
      return true;
    case ErrorCode::kBadRequest:
    case ErrorCode::kTooLarge:
    case ErrorCode::kDeadlineExceeded:
    case ErrorCode::kInternal:
    case ErrorCode::kRefNotFound:  // deterministic until someone REF_PUTs
      return false;
  }
  return false;
}

const char* to_string(WireMatrix matrix) {
  switch (matrix) {
    case WireMatrix::kMdm78: return "mdm78";
    case WireMatrix::kPam250: return "pam250";
    case WireMatrix::kBlosum62: return "blosum62";
    case WireMatrix::kDna: return "dna";
    case WireMatrix::kDnaN: return "dna-n";
  }
  return "?";
}

bool parse_wire_matrix(std::string_view name, WireMatrix* out) {
  for (WireMatrix m : {WireMatrix::kMdm78, WireMatrix::kPam250,
                       WireMatrix::kBlosum62, WireMatrix::kDna,
                       WireMatrix::kDnaN}) {
    if (name == to_string(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

std::string encode(const AlignRequest& request) {
  Writer w(Verb::kAlign);
  write_align_body(w, request);
  return w.take();
}

std::string encode(const AlignBatchRequest& request) {
  Writer w(Verb::kAlignBatch);
  w.u64(request.request_id);
  w.u32(static_cast<std::uint32_t>(request.jobs.size()));
  for (const AlignRequest& job : request.jobs) write_align_body(w, job);
  return w.take();
}

std::string encode(const StatsRequest& request) {
  Writer w(Verb::kStats);
  w.u64(request.request_id);
  return w.take();
}

std::string encode(const RefPutRequest& request) {
  Writer w(Verb::kRefPut);
  w.u64(request.request_id);
  w.u8(static_cast<std::uint8_t>(request.matrix));
  w.u32(request.k);
  w.u64(request.content_token);
  w.str(request.name);
  w.str(request.sequence);
  return w.take();
}

std::string encode(const SeqBeginRequest& request) {
  Writer w(Verb::kSeqBegin);
  w.u64(request.request_id);
  w.u64(request.upload_token);
  w.u64(request.placement);
  w.u8(static_cast<std::uint8_t>(request.matrix));
  w.u64(request.total_residues);
  w.str(request.name);
  return w.take();
}

std::string encode(const SeqChunkRequest& request) {
  Writer w(Verb::kSeqChunk);
  w.u64(request.request_id);
  w.u64(request.upload_token);
  w.u64(request.offset);
  w.u64(request.prefix_hash);
  w.str(request.data);
  return w.take();
}

std::string encode(const SeqEndRequest& request) {
  Writer w(Verb::kSeqEnd);
  w.u64(request.request_id);
  w.u64(request.upload_token);
  w.u64(request.total_residues);
  w.u64(request.total_hash);
  w.u32(request.k);
  w.u8(request.build_index ? 1 : 0);
  return w.take();
}

std::string encode(const AlignRefRequest& request) {
  Writer w(Verb::kAlignRef);
  w.u64(request.request_id);
  w.u64(request.ref_a);
  w.u64(request.ref_b);
  w.u8(static_cast<std::uint8_t>(request.matrix));
  w.i32(request.gap_open);
  w.i32(request.gap_extend);
  w.u32(request.k);
  w.u64(request.base_case_cells);
  w.u32(request.band);
  w.u32(request.deadline_ms);
  w.u8(request.score_only ? 1 : 0);
  w.str(request.b);
  return w.take();
}

std::string encode(const RefListRequest& request) {
  Writer w(Verb::kRefList);
  w.u64(request.request_id);
  return w.take();
}

std::string encode(const SearchRequest& request) {
  Writer w(Verb::kSearch);
  w.u64(request.request_id);
  w.u64(request.ref_id);
  w.u8(static_cast<std::uint8_t>(request.matrix));
  w.i32(request.gap_extend);
  w.u32(request.max_hits);
  w.i32(request.x_drop);
  w.i32(request.gap_weight);
  w.i32(request.min_chain_score);
  w.u32(request.band_pad);
  w.u32(request.max_overlap);
  w.u32(request.max_positions_per_kmer);
  w.u32(request.deadline_ms);
  w.u8(request.score_only ? 1 : 0);
  w.str(request.query);
  return w.take();
}

std::string encode(const AlignResponse& response) {
  Writer w(Verb::kAlignOk);
  write_align_ok_body(w, response);
  return w.take();
}

std::string encode(const ErrorResponse& response) {
  Writer w(Verb::kError);
  write_error_body(w, response);
  return w.take();
}

std::string encode(const AlignBatchResponse& response) {
  Writer w(Verb::kAlignBatchOk);
  w.u64(response.request_id);
  w.u32(static_cast<std::uint32_t>(response.items.size()));
  for (const BatchItem& item : response.items) {
    if (const auto* ok = std::get_if<AlignResponse>(&item)) {
      w.u8(0);
      write_align_ok_body(w, *ok);
    } else {
      w.u8(1);
      write_error_body(w, std::get<ErrorResponse>(item));
    }
  }
  return w.take();
}

std::string encode(const StatsResponse& response) {
  Writer w(Verb::kStatsOk);
  w.u64(response.request_id);
  w.u32(static_cast<std::uint32_t>(response.entries.size()));
  for (const auto& [name, value] : response.entries) {
    w.str(name);
    w.f64(value);
  }
  return w.take();
}

std::string encode(const RefPutResponse& response) {
  Writer w(Verb::kRefPutOk);
  w.u64(response.request_id);
  w.u64(response.ref_id);
  w.u64(response.residues);
  w.u64(response.distinct_kmers);
  w.u64(response.build_micros);
  return w.take();
}

std::string encode(const SeqOkResponse& response) {
  Writer w(Verb::kSeqOk);
  w.u64(response.request_id);
  w.u64(response.upload_token);
  w.u64(response.next_offset);
  w.u64(response.ref_id);
  w.u64(response.residues);
  return w.take();
}

std::string encode(const AlignPartResponse& response) {
  Writer w(Verb::kAlignPart);
  w.u64(response.request_id);
  w.u32(response.seq);
  w.u8(response.last ? 1 : 0);
  w.i64(response.score);
  w.u64(response.cells);
  w.u64(response.queue_micros);
  w.u64(response.exec_micros);
  w.i64(response.deadline_remaining_ms);
  w.str(response.cigar_part);
  return w.take();
}

std::string encode(const RefListResponse& response) {
  Writer w(Verb::kRefListOk);
  w.u64(response.request_id);
  w.u32(static_cast<std::uint32_t>(response.refs.size()));
  for (const RefListEntry& entry : response.refs) {
    w.u64(entry.ref_id);
    w.u64(entry.content_token);
    w.u64(entry.residues);
    w.u8(static_cast<std::uint8_t>(entry.matrix));
    w.u32(entry.k);
    w.u8(entry.indexed ? 1 : 0);
    w.str(entry.name);
  }
  return w.take();
}

std::string encode(const SearchResponse& response) {
  Writer w(Verb::kSearchOk);
  w.u64(response.request_id);
  w.u32(static_cast<std::uint32_t>(response.hits.size()));
  for (const WireHit& hit : response.hits) {
    w.i64(hit.score);
    w.u64(hit.q_begin);
    w.u64(hit.q_end);
    w.u64(hit.s_begin);
    w.u64(hit.s_end);
    w.str(hit.cigar);
  }
  w.u64(response.anchors);
  w.u64(response.chains);
  w.u64(response.queue_micros);
  w.u64(response.exec_micros);
  w.i64(response.deadline_remaining_ms);
  return w.take();
}

Request decode_request(std::string_view payload) {
  Reader r(payload);
  const Verb verb = read_header(r);
  switch (verb) {
    case Verb::kAlign: {
      AlignRequest req = read_align_body(r);
      r.finish();
      return req;
    }
    case Verb::kAlignBatch: {
      AlignBatchRequest req;
      req.request_id = r.u64();
      const std::uint32_t count = r.u32();
      if (count > r.remaining() / kMinAlignBodyBytes) {
        throw ProtocolError("batch job count exceeds the payload size");
      }
      req.jobs.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        req.jobs.push_back(read_align_body(r));
      }
      r.finish();
      return req;
    }
    case Verb::kStats: {
      StatsRequest req;
      req.request_id = r.u64();
      r.finish();
      return req;
    }
    case Verb::kRefPut: {
      RefPutRequest req;
      req.request_id = r.u64();
      req.matrix = read_matrix(r);
      req.k = r.u32();
      req.content_token = r.u64();
      req.name = r.str();
      req.sequence = r.str();
      r.finish();
      return req;
    }
    case Verb::kSeqBegin: {
      SeqBeginRequest req;
      req.request_id = r.u64();
      req.upload_token = r.u64();
      req.placement = r.u64();
      req.matrix = read_matrix(r);
      req.total_residues = r.u64();
      req.name = r.str();
      r.finish();
      return req;
    }
    case Verb::kSeqChunk: {
      SeqChunkRequest req;
      req.request_id = r.u64();
      req.upload_token = r.u64();
      req.offset = r.u64();
      req.prefix_hash = r.u64();
      req.data = r.str();
      r.finish();
      return req;
    }
    case Verb::kSeqEnd: {
      SeqEndRequest req;
      req.request_id = r.u64();
      req.upload_token = r.u64();
      req.total_residues = r.u64();
      req.total_hash = r.u64();
      req.k = r.u32();
      req.build_index = r.u8() != 0;
      r.finish();
      return req;
    }
    case Verb::kAlignRef: {
      AlignRefRequest req;
      req.request_id = r.u64();
      req.ref_a = r.u64();
      req.ref_b = r.u64();
      req.matrix = read_matrix(r);
      req.gap_open = r.i32();
      req.gap_extend = r.i32();
      req.k = r.u32();
      req.base_case_cells = r.u64();
      req.band = r.u32();
      req.deadline_ms = r.u32();
      req.score_only = r.u8() != 0;
      req.b = r.str();
      r.finish();
      return req;
    }
    case Verb::kRefList: {
      RefListRequest req;
      req.request_id = r.u64();
      r.finish();
      return req;
    }
    case Verb::kSearch: {
      SearchRequest req;
      req.request_id = r.u64();
      req.ref_id = r.u64();
      req.matrix = read_matrix(r);
      req.gap_extend = r.i32();
      req.max_hits = r.u32();
      req.x_drop = r.i32();
      req.gap_weight = r.i32();
      req.min_chain_score = r.i32();
      req.band_pad = r.u32();
      req.max_overlap = r.u32();
      req.max_positions_per_kmer = r.u32();
      req.deadline_ms = r.u32();
      req.score_only = r.u8() != 0;
      req.query = r.str();
      r.finish();
      return req;
    }
    default:
      throw ProtocolError(std::string("unexpected request verb ") +
                          to_string(verb));
  }
}

Response decode_response(std::string_view payload) {
  Reader r(payload);
  const Verb verb = read_header(r);
  switch (verb) {
    case Verb::kAlignOk: {
      AlignResponse res = read_align_ok_body(r);
      r.finish();
      return res;
    }
    case Verb::kError: {
      ErrorResponse res = read_error_body(r);
      r.finish();
      return res;
    }
    case Verb::kAlignBatchOk: {
      AlignBatchResponse res;
      res.request_id = r.u64();
      const std::uint32_t count = r.u32();
      // Smallest item: 1 tag byte + an error body with an empty message.
      if (count > r.remaining() / (1 + 8 + 1 + 4)) {
        throw ProtocolError("batch item count exceeds the payload size");
      }
      res.items.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint8_t tag = r.u8();
        if (tag == 0) {
          res.items.emplace_back(read_align_ok_body(r));
        } else if (tag == 1) {
          res.items.emplace_back(read_error_body(r));
        } else {
          throw ProtocolError("unknown batch item tag " +
                              std::to_string(tag));
        }
      }
      r.finish();
      return res;
    }
    case Verb::kStatsOk: {
      StatsResponse res;
      res.request_id = r.u64();
      const std::uint32_t count = r.u32();
      res.entries.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::string name = r.str();
        const double value = r.f64();
        res.entries.emplace_back(std::move(name), value);
      }
      r.finish();
      return res;
    }
    case Verb::kSeqOk: {
      SeqOkResponse res;
      res.request_id = r.u64();
      res.upload_token = r.u64();
      res.next_offset = r.u64();
      res.ref_id = r.u64();
      res.residues = r.u64();
      r.finish();
      return res;
    }
    case Verb::kAlignPart: {
      AlignPartResponse res;
      res.request_id = r.u64();
      res.seq = r.u32();
      res.last = r.u8() != 0;
      res.score = r.i64();
      res.cells = r.u64();
      res.queue_micros = r.u64();
      res.exec_micros = r.u64();
      res.deadline_remaining_ms = r.i64();
      res.cigar_part = r.str();
      r.finish();
      return res;
    }
    case Verb::kRefPutOk: {
      RefPutResponse res;
      res.request_id = r.u64();
      res.ref_id = r.u64();
      res.residues = r.u64();
      res.distinct_kmers = r.u64();
      res.build_micros = r.u64();
      r.finish();
      return res;
    }
    case Verb::kRefListOk: {
      RefListResponse res;
      res.request_id = r.u64();
      const std::uint32_t count = r.u32();
      // Smallest entry: the fixed fields plus an empty-name length.
      if (count > r.remaining() / (8 + 8 + 8 + 1 + 4 + 1 + 4)) {
        throw ProtocolError("ref list count exceeds the payload size");
      }
      res.refs.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        RefListEntry entry;
        entry.ref_id = r.u64();
        entry.content_token = r.u64();
        entry.residues = r.u64();
        entry.matrix = read_matrix(r);
        entry.k = r.u32();
        entry.indexed = r.u8() != 0;
        entry.name = r.str();
        res.refs.push_back(std::move(entry));
      }
      r.finish();
      return res;
    }
    case Verb::kSearchOk: {
      SearchResponse res;
      res.request_id = r.u64();
      const std::uint32_t count = r.u32();
      res.hits.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        WireHit hit;
        hit.score = r.i64();
        hit.q_begin = r.u64();
        hit.q_end = r.u64();
        hit.s_begin = r.u64();
        hit.s_end = r.u64();
        hit.cigar = r.str();
        res.hits.push_back(std::move(hit));
      }
      res.anchors = r.u64();
      res.chains = r.u64();
      res.queue_micros = r.u64();
      res.exec_micros = r.u64();
      res.deadline_remaining_ms = r.i64();
      r.finish();
      return res;
    }
    default:
      throw ProtocolError(std::string("unexpected response verb ") +
                          to_string(verb));
  }
}

std::uint64_t estimated_cells(std::uint64_t m, std::uint64_t n) {
  return mul_sat_u64(add_sat_u64(m, 1), add_sat_u64(n, 1));
}

std::uint64_t estimated_banded_cells(std::uint64_t m, std::uint64_t n,
                                     std::uint32_t half_width) {
  const std::uint64_t diff = m > n ? m - n : n - m;
  const std::uint64_t width =
      add_sat_u64(diff, add_sat_u64(2 * std::uint64_t{half_width}, 1));
  return mul_sat_u64(add_sat_u64(m, 1), width);
}

std::uint64_t estimated_cells(const AlignRequest& request) {
  return estimated_cells(request.a.size(), request.b.size());
}

std::uint64_t estimated_cells(const SearchRequest& request) {
  return estimated_cells(request.query.size(), request.query.size());
}

std::uint64_t estimated_cells(const AlignBatchRequest& request) {
  std::uint64_t total = 0;
  for (const AlignRequest& job : request.jobs) {
    total = add_sat_u64(total, estimated_cells(job));
  }
  return total;
}

std::uint64_t content_token_for(const RefPutRequest& request) {
  const std::uint8_t matrix_byte = static_cast<std::uint8_t>(request.matrix);
  const std::uint8_t k_bytes[4] = {
      static_cast<std::uint8_t>(request.k),
      static_cast<std::uint8_t>(request.k >> 8),
      static_cast<std::uint8_t>(request.k >> 16),
      static_cast<std::uint8_t>(request.k >> 24),
  };
  std::uint64_t token = fnv1a64(&matrix_byte, 1);
  token = fnv1a64(k_bytes, sizeof(k_bytes), token);
  token = fnv1a64(request.sequence.data(), request.sequence.size(), token);
  return token != 0 ? token : 1;
}

std::string frame_bytes(std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw ProtocolError("frame payload exceeds the frame limit");
  }
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string buffer;
  buffer.reserve(4 + payload.size());
  for (int i = 0; i < 4; ++i) {
    buffer.push_back(static_cast<char>((n >> (8 * i)) & 0xff));
  }
  buffer.append(payload);
  return buffer;
}

bool write_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t rc = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                              MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      throw TransportError(std::string("send failed: ") +
                           std::strerror(errno));
    }
    sent += static_cast<std::size_t>(rc);
  }
  return true;
}

bool write_frame(int fd, std::string_view payload) {
  return write_all(fd, frame_bytes(payload));
}

namespace {

/// Reads exactly `n` bytes. Returns 0 on EOF before any byte, n on
/// success; throws TransportError on EOF mid-read (a peer that died
/// mid-frame) and on an expired SO_RCVTIMEO read deadline. When
/// `boundary` is set and the deadline expires before the first byte,
/// throws the ReadTimeout subtype instead (idle peer, not a stall).
std::size_t read_exact(int fd, char* out, std::size_t n,
                       bool boundary = false) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd, out + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (boundary && got == 0) {
          throw ReadTimeout("idle deadline expired at a frame boundary");
        }
        throw TransportError("read deadline expired mid-frame");
      }
      if (errno == ECONNRESET) return got;  // treated like EOF
      throw TransportError(std::string("recv failed: ") +
                           std::strerror(errno));
    }
    if (rc == 0) break;
    got += static_cast<std::size_t>(rc);
  }
  if (got != 0 && got != n) {
    throw TransportError("connection closed mid-frame");
  }
  return got;
}

}  // namespace

bool read_frame(int fd, std::string* payload, std::size_t max_bytes) {
  char header[4];
  if (read_exact(fd, header, 4, /*boundary=*/true) == 0) return false;
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n |= std::uint32_t(static_cast<unsigned char>(header[i])) << (8 * i);
  }
  if (n > max_bytes) {
    throw ProtocolError("frame of " + std::to_string(n) +
                        " bytes exceeds the limit of " +
                        std::to_string(max_bytes));
  }
  payload->resize(n);
  if (n != 0 && read_exact(fd, payload->data(), n) != n) {
    throw TransportError("connection closed mid-frame");
  }
  return true;
}

}  // namespace service
}  // namespace flsa
