#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "support/assert.hpp"
#include "support/fnv.hpp"

namespace flsa {
namespace service {

namespace {

std::uint64_t response_id(const Response& response) {
  return std::visit([](const auto& r) { return r.request_id; }, response);
}

/// splitmix64 step — the jitter source for decorrelated backoff.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Retry instruments, resolved once (registry references are stable).
struct RetryInstruments {
  obs::Counter& attempts;    ///< retry attempts beyond the first try
  obs::Counter& reconnects;  ///< sockets re-dialled by the retry loop
  obs::Counter& recovered;   ///< calls that succeeded after >= 1 retry
  obs::Counter& exhausted;   ///< calls that ran out of attempts/budget
  obs::Histogram& backoff_seconds;

  static RetryInstruments& get() {
    static RetryInstruments instance{
        obs::metrics().counter("client.retry.attempts"),
        obs::metrics().counter("client.retry.reconnects"),
        obs::metrics().counter("client.retry.recovered"),
        obs::metrics().counter("client.retry.exhausted"),
        obs::metrics().histogram("client.retry.backoff_seconds"),
    };
    return instance;
  }
};

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      last_id_(std::exchange(other.last_id_, 0)),
      endpoints_(std::move(other.endpoints_)),
      cursor_(std::exchange(other.cursor_, 0)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    last_id_ = std::exchange(other.last_id_, 0);
    endpoints_ = std::move(other.endpoints_);
    cursor_ = std::exchange(other.cursor_, 0);
  }
  return *this;
}

void Client::dial(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw TransportError(std::string("socket failed: ") +
                         std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("invalid server address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string what = std::strerror(errno);
    close();
    throw TransportError("connect to " + host + ":" +
                         std::to_string(port) + " failed: " + what);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void Client::connect(const std::string& host, std::uint16_t port) {
  connect(std::vector<Endpoint>{{host, port}});
}

void Client::connect(std::vector<Endpoint> endpoints) {
  FLSA_REQUIRE(!endpoints.empty());
  endpoints_ = std::move(endpoints);
  cursor_ = 0;
  reconnect();
}

void Client::reconnect() {
  FLSA_REQUIRE(!endpoints_.empty());
  std::exception_ptr last_error;
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    const std::size_t index = (cursor_ + i) % endpoints_.size();
    try {
      dial(endpoints_[index].host, endpoints_[index].port);
      cursor_ = index;
      return;
    } catch (const TransportError&) {
      last_error = std::current_exception();
    }
  }
  std::rethrow_exception(last_error);
}

void Client::advance_endpoint() {
  if (endpoints_.size() > 1) cursor_ = (cursor_ + 1) % endpoints_.size();
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t Client::next_id() { return ++last_id_; }

template <typename RequestT>
std::uint64_t Client::send_impl(RequestT request) {
  FLSA_REQUIRE(connected());
  if (request.request_id == 0) request.request_id = next_id();
  if (!write_frame(fd_, encode(request))) {
    throw TransportError("server closed the connection");
  }
  return request.request_id;
}

std::uint64_t Client::send(AlignRequest request) {
  return send_impl(std::move(request));
}

std::uint64_t Client::send(StatsRequest request) {
  return send_impl(std::move(request));
}

std::uint64_t Client::send(RefPutRequest request) {
  return send_impl(std::move(request));
}

std::uint64_t Client::send(SearchRequest request) {
  return send_impl(std::move(request));
}

std::uint64_t Client::send(AlignBatchRequest request) {
  return send_impl(std::move(request));
}

std::uint64_t Client::send(SeqBeginRequest request) {
  return send_impl(std::move(request));
}

std::uint64_t Client::send(SeqChunkRequest request) {
  return send_impl(std::move(request));
}

std::uint64_t Client::send(SeqEndRequest request) {
  return send_impl(std::move(request));
}

std::uint64_t Client::send(AlignRefRequest request) {
  return send_impl(std::move(request));
}

std::uint64_t Client::send(RefListRequest request) {
  return send_impl(std::move(request));
}

Response Client::receive() {
  FLSA_REQUIRE(connected());
  std::string payload;
  if (!read_frame(fd_, &payload)) {
    throw TransportError("server closed the connection");
  }
  return decode_response(payload);
}

Response Client::wait_for(std::uint64_t request_id) {
  Response response = receive();
  // Connection-scoped errors (id 0: unparseable frame, connection cap)
  // answer whatever is in flight — there is no request id to echo.
  if (const auto* error = std::get_if<ErrorResponse>(&response);
      error != nullptr && error->request_id == 0) {
    return response;
  }
  if (response_id(response) != request_id) {
    throw std::runtime_error(
        "out-of-order response (id " + std::to_string(response_id(response)) +
        ", expected " + std::to_string(request_id) +
        "): call() must not be mixed with pipelined send()s");
  }
  return response;
}

Response Client::call(AlignRequest request) {
  return wait_for(send(std::move(request)));
}

Response Client::call(StatsRequest request) {
  return wait_for(send(std::move(request)));
}

Response Client::call(RefPutRequest request) {
  return wait_for(send(std::move(request)));
}

Response Client::call(SearchRequest request) {
  return wait_for(send(std::move(request)));
}

Response Client::call(AlignBatchRequest request) {
  return wait_for(send(std::move(request)));
}

Response Client::call(SeqBeginRequest request) {
  return wait_for(send(std::move(request)));
}

Response Client::call(SeqChunkRequest request) {
  return wait_for(send(std::move(request)));
}

Response Client::call(SeqEndRequest request) {
  return wait_for(send(std::move(request)));
}

Response Client::call(RefListRequest request) {
  return wait_for(send(std::move(request)));
}

Response Client::call(AlignRefRequest request) {
  const std::uint64_t id = send(std::move(request));
  AlignPartResponse assembled;
  std::uint32_t expected_seq = 0;
  while (true) {
    Response response = wait_for(id);
    if (std::holds_alternative<ErrorResponse>(response)) return response;
    auto* part = std::get_if<AlignPartResponse>(&response);
    if (part == nullptr) {
      throw std::runtime_error("ALIGN_REF answered with an unexpected verb");
    }
    if (part->seq != expected_seq) {
      throw ProtocolError("ALIGN_PART out of sequence: got frame " +
                          std::to_string(part->seq) + ", expected " +
                          std::to_string(expected_seq));
    }
    const bool last = part->last;
    if (expected_seq == 0) {
      assembled = std::move(*part);
    } else {
      assembled.cigar_part += part->cigar_part;
      // Every frame carries the trailer; the last frame's copy is the
      // authoritative one, so overwrite as frames arrive.
      assembled.score = part->score;
      assembled.cells = part->cells;
      assembled.queue_micros = part->queue_micros;
      assembled.exec_micros = part->exec_micros;
      assembled.deadline_remaining_ms = part->deadline_remaining_ms;
      assembled.last = part->last;
    }
    ++expected_seq;
    if (last) return Response{std::move(assembled)};
  }
}

template <typename RequestT>
Response Client::retry_impl(RequestT request, const RetryPolicy& policy) {
  FLSA_REQUIRE(!endpoints_.empty());  // connect() must have been called once
  if (request.request_id == 0) request.request_id = next_id();

  RetryInstruments& instruments = RetryInstruments::get();
  const unsigned max_attempts = std::max(1u, policy.max_attempts);
  const auto budget_deadline =
      std::chrono::steady_clock::now() + policy.retry_budget;

  std::uint64_t jitter_state = policy.seed;
  std::chrono::milliseconds previous_sleep = policy.base_delay;
  std::exception_ptr last_transport_error;
  bool have_rejection = false;
  Response last_rejection;

  for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      // Decorrelated jitter: uniform in [base, 3 * previous], capped.
      const std::int64_t base = policy.base_delay.count();
      const std::int64_t high =
          std::max<std::int64_t>(base, 3 * previous_sleep.count());
      const std::int64_t span = high - base + 1;
      const auto sleep_ms = std::chrono::milliseconds(
          base + static_cast<std::int64_t>(
                     splitmix64(jitter_state) % static_cast<std::uint64_t>(span)));
      previous_sleep = std::min(
          std::chrono::milliseconds(policy.max_delay), sleep_ms);
      if (std::chrono::steady_clock::now() + previous_sleep >
          budget_deadline) {
        break;  // the retry budget is spent
      }
      instruments.attempts.add();
      instruments.backoff_seconds.observe(
          static_cast<double>(previous_sleep.count()) * 1e-3);
      std::this_thread::sleep_for(previous_sleep);
    }
    try {
      if (!connected()) {
        if (attempt > 0) instruments.reconnects.add();
        reconnect();
      }
      Response response = call(request);
      const auto* error = std::get_if<ErrorResponse>(&response);
      if (error != nullptr && is_retryable(error->code)) {
        // A connection-scoped refusal (CONNECTION_LIMIT echoes id 0) is
        // followed by the server closing the socket; re-dial eagerly
        // instead of burning the next attempt on a dead connection.
        // With alternatives available, any transient rejection also
        // rotates the cursor: a server answering OVERLOADED stays
        // overloaded for a while, so the next attempt goes elsewhere.
        if (error->request_id == 0) close();
        if (endpoints_.size() > 1) {
          close();
          advance_endpoint();
        }
        have_rejection = true;
        last_rejection = std::move(response);
        continue;
      }
      if (attempt > 0) instruments.recovered.add();
      return response;
    } catch (const TransportError&) {
      // The request never completed on this connection; dropping the
      // socket and re-dialling is idempotent-safe (and the next attempt
      // starts at the next endpoint of a multi-address list — the one
      // that just died is the worst candidate). ProtocolError (a
      // delivered-but-malformed frame) deliberately propagates: the
      // stream consumed an answer we cannot interpret.
      last_transport_error = std::current_exception();
      close();
      advance_endpoint();
    }
  }

  instruments.exhausted.add();
  if (have_rejection) return last_rejection;
  if (last_transport_error) std::rethrow_exception(last_transport_error);
  throw TransportError("retry budget spent before any attempt completed");
}

Response Client::call_with_retry(AlignRequest request,
                                 const RetryPolicy& policy) {
  return retry_impl(std::move(request), policy);
}

Response Client::call_with_retry(SearchRequest request,
                                 const RetryPolicy& policy) {
  return retry_impl(std::move(request), policy);
}

Response Client::call_with_retry(AlignRefRequest request,
                                 const RetryPolicy& policy) {
  return retry_impl(std::move(request), policy);
}

Response Client::call_with_retry(RefPutRequest request,
                                 const RetryPolicy& policy) {
  if (request.content_token == 0) {
    request.content_token = content_token_for(request);
  }
  return retry_impl(std::move(request), policy);
}

Response Client::upload_sequence(std::string_view letters,
                                 const UploadOptions& options) {
  FLSA_REQUIRE(!endpoints_.empty());  // connect() must have been called once
  std::uint64_t token = options.token;
  const std::uint64_t total_hash =
      fnv1a64(letters.data(), letters.size());
  if (token == 0) token = total_hash != 0 ? total_hash : 1;
  const std::size_t chunk_residues =
      options.chunk_residues != 0 ? options.chunk_residues
                                  : std::size_t{1} << 20;

  unsigned resumes = 0;
  while (true) {
    try {
      if (!connected()) reconnect();
      // (Re-)open the session. On a resume the server answers how far
      // the previous attempt got; bytes before next_offset are already
      // durable on its side and are never re-sent.
      SeqBeginRequest begin;
      begin.upload_token = token;
      begin.placement = options.placement;
      begin.matrix = options.matrix;
      begin.total_residues = letters.size();
      begin.name = options.name;
      Response opened = call(std::move(begin));
      const auto* ok = std::get_if<SeqOkResponse>(&opened);
      if (ok == nullptr) return opened;  // typed rejection — not ours to fix
      std::uint64_t offset = ok->next_offset;

      // Rebuild the rolling prefix hash up to the resume point, then
      // chain it chunk by chunk.
      std::uint64_t rolling = fnv1a64(letters.data(), offset);
      while (offset < letters.size()) {
        const std::size_t len =
            std::min(chunk_residues, letters.size() - offset);
        rolling = fnv1a64(letters.data() + offset, len, rolling);
        SeqChunkRequest chunk;
        chunk.upload_token = token;
        chunk.offset = offset;
        chunk.prefix_hash = rolling;
        chunk.data.assign(letters.data() + offset, len);
        Response acked = call(std::move(chunk));
        const auto* chunk_ok = std::get_if<SeqOkResponse>(&acked);
        if (chunk_ok == nullptr) return acked;
        offset = chunk_ok->next_offset;
      }

      SeqEndRequest end;
      end.upload_token = token;
      end.total_residues = letters.size();
      end.total_hash = total_hash;
      end.k = options.k;
      end.build_index = options.build_index;
      return call(std::move(end));
    } catch (const TransportError&) {
      if (resumes >= options.max_resumes) throw;
      ++resumes;
      close();
      advance_endpoint();
    }
  }
}

}  // namespace service
}  // namespace flsa
