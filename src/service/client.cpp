#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "support/assert.hpp"

namespace flsa {
namespace service {

namespace {

std::uint64_t response_id(const Response& response) {
  return std::visit([](const auto& r) { return r.request_id; }, response);
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      last_id_(std::exchange(other.last_id_, 0)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    last_id_ = std::exchange(other.last_id_, 0);
  }
  return *this;
}

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket failed: ") +
                             std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("invalid server address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string what = std::strerror(errno);
    close();
    throw std::runtime_error("connect to " + host + ":" +
                             std::to_string(port) + " failed: " + what);
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t Client::next_id() { return ++last_id_; }

std::uint64_t Client::send(AlignRequest request) {
  FLSA_REQUIRE(connected());
  if (request.request_id == 0) request.request_id = next_id();
  if (!write_frame(fd_, encode(request))) {
    throw std::runtime_error("server closed the connection");
  }
  return request.request_id;
}

std::uint64_t Client::send(StatsRequest request) {
  FLSA_REQUIRE(connected());
  if (request.request_id == 0) request.request_id = next_id();
  if (!write_frame(fd_, encode(request))) {
    throw std::runtime_error("server closed the connection");
  }
  return request.request_id;
}

Response Client::receive() {
  FLSA_REQUIRE(connected());
  std::string payload;
  if (!read_frame(fd_, &payload)) {
    throw std::runtime_error("server closed the connection");
  }
  return decode_response(payload);
}

Response Client::wait_for(std::uint64_t request_id) {
  Response response = receive();
  if (response_id(response) != request_id) {
    throw std::runtime_error(
        "out-of-order response (id " + std::to_string(response_id(response)) +
        ", expected " + std::to_string(request_id) +
        "): call() must not be mixed with pipelined send()s");
  }
  return response;
}

Response Client::call(AlignRequest request) {
  return wait_for(send(std::move(request)));
}

Response Client::call(StatsRequest request) {
  return wait_for(send(std::move(request)));
}

}  // namespace service
}  // namespace flsa
