// The alignment daemon: a POSIX-socket server that keeps the FastLSA
// engine warm across requests.
//
// Threading model
// ---------------
//   acceptor thread      accept()s connections, one handler thread each
//   connection threads   read frames, decode, run admission control, and
//                        either answer inline (STATS, rejections) or
//                        enqueue a Job
//   worker threads       pop Jobs from the bounded queue; each worker owns
//                        a persistent Aligner whose workspace (core/arena)
//                        makes steady-state alignment allocation-free
//
// Admission control happens on the connection thread, before the queue:
//   * draining            -> SHUTTING_DOWN
//   * (m+1)(n+1) > budget -> TOO_LARGE   (a huge job must not occupy a
//                                         worker for seconds and starve
//                                         the pool)
//   * queue full          -> OVERLOADED  (backpressure is an answer, not
//                                         a hang or a dropped connection)
// Deadlines are enforced at dequeue: a job whose queueing time exceeded
// its deadline_ms is answered with DEADLINE_EXCEEDED instead of executed —
// the client has given up, so the cells would be wasted.
//
// Graceful drain: stop() (or the SIGINT/SIGTERM handler in flsa_serve
// calling it) closes the listener, closes the queue for admission, lets
// the workers finish every job admitted before the close, then unblocks
// and joins the connection threads. In-flight clients get their answers;
// new work gets SHUTTING_DOWN.
//
// Responses may complete out of submission order on one connection (the
// worker pool is shared); the request_id keys them. A per-connection write
// mutex keeps frames from interleaving.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/aligner.hpp"
#include "core/fastlsa.hpp"
#include "obs/metrics.hpp"
#include "search/chain.hpp"
#include "search/reference_index.hpp"
#include "sequence/sequence_view.hpp"
#include "service/bounded_queue.hpp"
#include "service/fault.hpp"
#include "service/protocol.hpp"
#include "store/packed_store.hpp"
#include "store/registry.hpp"

namespace flsa {
namespace service {

struct ServiceConfig {
  /// Listen address. The daemon speaks a trusted-network protocol; the
  /// default binds loopback only.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (see AlignmentServer::port()).
  std::uint16_t port = 0;
  /// Worker pool size; 0 = hardware concurrency.
  unsigned workers = 0;
  /// Bounded request queue capacity (admission control threshold).
  std::size_t queue_capacity = 64;
  /// TOO_LARGE budget: maximum (m+1)*(n+1) DPM cells per request.
  std::uint64_t max_request_cells = std::uint64_t{1} << 28;
  /// Per-frame byte ceiling applied when reading requests.
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Base FastLSA tuning; requests may override k / base_case_cells.
  FastLsaOptions fastlsa;
  /// Arm the obs metrics registry on start() so the STATS verb has data.
  bool enable_metrics = true;
  /// listen(2) backlog.
  int backlog = 128;

  // ---- Connection hygiene ---------------------------------------------
  /// Per-recv read deadline in milliseconds (SO_RCVTIMEO on accepted
  /// sockets). Bounds both idle connections and slow-loris peers that
  /// dribble a frame byte-by-byte: any single recv stalled past this is
  /// a TransportError and the connection is closed. 0 disables.
  std::uint32_t idle_timeout_ms = 60000;
  /// Cap on concurrently served connections. A connection over the cap
  /// is answered with a typed CONNECTION_LIMIT error and closed — never
  /// silently dropped. 0 means unlimited.
  std::size_t max_connections = 256;

  // ---- Reference-indexed search (REF_PUT / SEARCH) --------------------
  /// Cap on residues of one registered reference. REF_PUT above this is
  /// answered TOO_LARGE (the k-mer index itself hard-rejects >= 2^32).
  std::size_t max_reference_residues = std::size_t{1} << 26;
  /// Seed length for REF_PUT requests that leave k at 0; 0 picks a
  /// per-alphabet default (12 for DNA, 5 for protein).
  std::uint32_t default_seed_k = 0;
  /// Baseline chained-search tuning; SEARCH requests override field by
  /// field (0 = keep this default).
  search::ChainedSearchParams search_defaults;

  // ---- Streaming (SEQ_* / ALIGN_REF) ----------------------------------
  /// Directory for packed store files (one per registered reference).
  /// Empty = a private directory under TMPDIR, removed with the server.
  std::string store_dir;
  /// Cap on residues of one streamed upload; SEQ_BEGIN/SEQ_CHUNK past it
  /// answer TOO_LARGE. Defaults well above max_reference_residues: an
  /// upload is bounded by disk, not by the k-mer index position type,
  /// until SEQ_END asks for an index.
  std::uint64_t max_store_residues = std::uint64_t{1} << 32;
  /// Cap on concurrently open upload sessions (each holds an fd and a
  /// small write buffer). Admission answers OVERLOADED past it.
  std::size_t max_uploads_in_flight = 64;
  /// Idle ceiling for an open upload session: a session with no
  /// SEQ_BEGIN/SEQ_CHUNK/SEQ_END activity for this long is reaped (its
  /// partial file unlinked, its slot against max_uploads_in_flight
  /// freed). A dead client must not pin the cap until shutdown. 0
  /// disables reaping.
  std::uint32_t upload_idle_timeout_ms = 60000;
  /// TOO_LARGE budget for banded ALIGN_REF (band > 0): maximum
  /// (m+1)*(|n-m|+2*band+1) banded-matrix cells. Distinct from
  /// max_request_cells because the banded matrix is the memory ceiling
  /// at multi-megabase scale, not the full (m+1)*(n+1) rectangle.
  std::uint64_t max_banded_cells = std::uint64_t{1} << 33;
  /// Largest cigar slice carried by one ALIGN_PART frame.
  std::size_t align_part_chars = std::size_t{1} << 20;

  // ---- Fault injection ------------------------------------------------
  /// Chaos-testing plan (see service/fault.hpp); inactive by default.
  /// When enabled, the read/write/admission paths consult the seeded
  /// injector so tests and CI deterministically exercise failure edges.
  FaultPlan fault_plan;
};

class AlignmentServer {
 public:
  explicit AlignmentServer(ServiceConfig config = {});
  ~AlignmentServer();  ///< stops (drains) if still running

  AlignmentServer(const AlignmentServer&) = delete;
  AlignmentServer& operator=(const AlignmentServer&) = delete;

  /// Binds, listens, and spawns the acceptor and worker threads. Throws
  /// std::runtime_error on socket failures.
  void start();

  /// The bound TCP port (resolves config.port == 0 to the real one).
  std::uint16_t port() const { return port_; }

  /// Graceful drain; blocks until every admitted job is answered and all
  /// threads are joined. Idempotent and callable from any thread (the
  /// signal path in flsa_serve funnels here via a self-pipe).
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// What start() recovered from a persistent store directory. Empty
  /// (all zeros) when config.store_dir is empty — a private temp store
  /// has nothing to recover. A skipped entry is a warning, never a
  /// failed boot: the surviving handles must come back even when one
  /// record is torn or its payload vanished.
  struct RecoveryReport {
    std::size_t recovered = 0;  ///< handles serving again after replay
    std::size_t skipped = 0;    ///< manifest entries dropped (see warnings)
    std::vector<std::string> warnings;
  };
  /// Valid after start(); stable until the next start().
  const RecoveryReport& recovery() const { return recovery_; }

  /// Current depth of the bounded request queue.
  std::size_t queue_depth() const { return queue_.size(); }

  const ServiceConfig& config() const { return config_; }

 private:
  struct Connection;
  /// Work the worker pool executes. REF_PUT rides the same queue as the
  /// DP verbs so index builds obey admission control and drain ordering;
  /// ALIGN_BATCH runs all jobs on one worker's Aligner so the coalesced
  /// frame amortizes workspace reuse (the router's coalescing contract).
  using Work = std::variant<AlignRequest, RefPutRequest, SearchRequest,
                            AlignBatchRequest, AlignRefRequest>;
  struct Job {
    std::shared_ptr<Connection> connection;
    Work work;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// One registered reference, living in the packed store: a zero-copy
  /// view of the mmap'd record (every worker reads the same pages), the
  /// matrix family it was encoded under (SEARCH/ALIGN_REF must agree on
  /// alphabet), and — when an index was requested — the k-mer index.
  /// `index` is null for ALIGN_REF-only handles (SEQ_END with
  /// build_index = false); SEARCH against them is a BAD_REQUEST.
  /// After a restart replay the index is also null for indexed handles
  /// (`build_k` != 0) until the first SEARCH rebuilds it lazily — boot
  /// must not pay O(total residues) index builds up front.
  struct RefEntry {
    std::shared_ptr<const search::ReferenceIndex> index;
    SequenceView view;
    WireMatrix matrix = WireMatrix::kDna;
    std::uint32_t build_k = 0;        ///< index seed length (0 = no index)
    std::uint64_t content_token = 0;  ///< durable identity across restarts
    std::string name;
  };

  /// One in-progress chunked upload, keyed by the client's token. Lives
  /// on the connection threads only (guarded by uploads_mutex_): chunks
  /// of one session arrive ordered on one connection, and the store
  /// write is I/O-bound, not CPU-bound, so the worker pool is not
  /// involved until SEQ_END registers the result.
  struct Upload {
    std::unique_ptr<store::StoreWriter> writer;
    WireMatrix matrix = WireMatrix::kDna;
    std::string name;
    std::string path;
    std::uint64_t declared_total = 0;  ///< SEQ_BEGIN's total (0 = unknown)
    std::uint64_t received = 0;        ///< letters applied so far
    std::uint64_t rolling_hash;        ///< FNV-1a of letters [0, received)
    /// Refreshed by every SEQ_* frame of the session; the hygiene loop
    /// reaps sessions idle past config.upload_idle_timeout_ms.
    std::chrono::steady_clock::time_point last_activity{};
  };

  void accept_loop();
  void connection_loop(std::shared_ptr<Connection> connection);
  void worker_loop(unsigned worker_index);

  /// Handles one decoded request on the connection thread (admission,
  /// STATS, rejections). Alignment/search/index work is enqueued, never
  /// run here.
  void handle_request(const std::shared_ptr<Connection>& connection,
                      Request request);
  /// Admission tail shared by every queued verb: counts in_flight,
  /// pushes, and answers OVERLOADED/SHUTTING_DOWN on failure.
  void enqueue(const std::shared_ptr<Connection>& connection,
               std::uint64_t request_id, Work work);
  void execute(Aligner& aligner, Job& job);
  /// Runs one ALIGN job (deadline pre-check, align, deadline re-check)
  /// and returns the per-job outcome without writing to the wire — the
  /// shared core of execute_align and execute_align_batch.
  BatchItem run_align(Aligner& aligner,
                      std::chrono::steady_clock::time_point enqueued,
                      const AlignRequest& request);
  void execute_align(Aligner& aligner, Job& job, const AlignRequest& request);
  void execute_align_batch(Aligner& aligner, Job& job,
                           const AlignBatchRequest& request);
  void execute_ref_put(Job& job, const RefPutRequest& request);
  void execute_search(Job& job, const SearchRequest& request);
  void execute_align_ref(Aligner& aligner, Job& job,
                         const AlignRefRequest& request);
  void answer_stats(const std::shared_ptr<Connection>& connection,
                    const StatsRequest& request);
  /// REF_LIST is a pure read of refs_ (one brief lock), answered inline
  /// on the connection thread like STATS.
  void answer_ref_list(const std::shared_ptr<Connection>& connection,
                       const RefListRequest& request);

  // Upload sessions run inline on the connection thread (chunk order is
  // the connection's frame order; the worker pool would reorder them).
  void handle_seq_begin(const std::shared_ptr<Connection>& connection,
                        const SeqBeginRequest& request);
  void handle_seq_chunk(const std::shared_ptr<Connection>& connection,
                        const SeqChunkRequest& request);
  void handle_seq_end(const std::shared_ptr<Connection>& connection,
                      const SeqEndRequest& request);

  /// Registers a finalized store file under a fresh ref id. Returns the
  /// id. `build_k` == 0 skips the k-mer index (ALIGN_REF-only handle).
  /// When a registry is active (persistent store dir) the manifest
  /// record is appended and fsync'd *before* the in-memory insert — a
  /// handle is never acknowledged to a client unless a crash-restart
  /// would bring it back.
  std::uint64_t register_store_file(const std::string& path,
                                    WireMatrix matrix, std::uint32_t build_k,
                                    std::uint64_t* distinct_kmers,
                                    std::uint64_t content_token,
                                    const std::string& name);

  /// Renames a finalized temp payload to its durable content-token name
  /// (`ref_<token-hex>.flsa`) inside store_dir_ and returns the new
  /// path. Same-content collisions rename onto the identical bytes, so
  /// an atomic replace is safe.
  std::string durable_payload_path(std::uint64_t content_token) const;

  /// Replays the FLSAREG1 manifest in a persistent store dir: re-mmaps
  /// every intact payload, restores refs_/ref_tokens_/next_ref_id_, and
  /// fills recovery_. Corrupt records and missing payloads become typed
  /// warnings, never a failed boot. Also sweeps orphaned `up*.flsa`
  /// partials left by a crash mid-upload.
  void recover_store_dir();

  /// Hygiene timer: reaps upload sessions idle past
  /// config.upload_idle_timeout_ms. Interruptible via hygiene_cv_.
  void hygiene_loop();

  /// Writes `sequence` (letters) through a StoreWriter into store_dir_
  /// and returns the finalized path. Used by REF_PUT so every reference
  /// lives in the store regardless of which verb registered it.
  std::string write_store_file(const Alphabet& alphabet,
                               std::string_view letters,
                               const std::string& name);

  /// Serialized, connection-locked frame write; false when the peer hung
  /// up (the job's result is then dropped, not an error). Consults the
  /// fault injector's write site when a plan is active.
  bool respond(const std::shared_ptr<Connection>& connection,
               const std::string& payload);
  void reject(const std::shared_ptr<Connection>& connection,
              std::uint64_t request_id, ErrorCode code,
              const std::string& message);

  /// Closes a connection from its own handler (fault drops, hygiene):
  /// flips `open` under the write mutex so no worker writes into a
  /// recycled fd, then closes.
  void kill_connection(const std::shared_ptr<Connection>& connection);

  /// Live (unreaped, unfinished) connection count for the accept cap.
  std::size_t live_connections();

  /// Joins finished connection handlers and closes their sockets.
  /// Amortized from the accept loop; stop() sweeps the remainder.
  void reap_connections(bool all);

  /// Cached registry instruments (stable references, hot-path safe).
  struct Instruments {
    obs::Counter& connections;
    obs::Counter& requests;
    obs::Counter& completed;
    obs::Counter& rejected_overloaded;
    obs::Counter& rejected_too_large;
    obs::Counter& rejected_deadline;
    obs::Counter& rejected_shutdown;
    obs::Counter& rejected_connection_limit;
    obs::Counter& bad_requests;
    obs::Counter& internal_errors;
    obs::Counter& write_errors;
    obs::Counter& cells;
    obs::Counter& search_requests;
    obs::Counter& search_completed;
    obs::Counter& search_hits;
    obs::Counter& search_anchors;
    obs::Counter& search_ref_not_found;
    obs::Counter& ref_puts;
    obs::Counter& ref_residues;
    obs::Counter& batch_requests;
    obs::Counter& batch_jobs;
    obs::Counter& uploads_started;
    obs::Counter& upload_chunks;
    obs::Counter& upload_bytes;
    obs::Counter& upload_resumes;
    obs::Counter& uploads_sealed;
    obs::Counter& align_ref_requests;
    obs::Counter& align_parts;
    obs::Counter& ref_dedup_hits;
    obs::Counter& uploads_reaped;
    obs::Counter& refs_recovered;
    obs::Counter& recovery_skipped;
    obs::Counter& index_rebuilds;
    obs::Gauge& uploads_active;
    obs::Gauge& refs_live;
    obs::Gauge& queue_depth;
    obs::Gauge& in_flight;
    obs::Gauge& uptime_ms;
    obs::Histogram& queue_seconds;
    obs::Histogram& exec_seconds;
    obs::Histogram& search_exec_seconds;
    obs::Histogram& ref_build_seconds;
  };

  ServiceConfig config_;
  Instruments instruments_;
  /// Non-null only when config_.fault_plan is enabled; shared by every
  /// connection handler and worker (FaultInjector is thread-safe).
  std::unique_ptr<FaultInjector> injector_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  /// Admitted-but-unanswered jobs across all connections; exported as the
  /// `service.in_flight` gauge so a router can score backend load beyond
  /// queue depth (a deep queue and busy workers both count).
  std::atomic<std::size_t> jobs_in_flight_{0};
  std::chrono::steady_clock::time_point started_at_{};

  BoundedQueue<Job> queue_;
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;

  /// Registered references. The map is touched briefly under the mutex
  /// (insert on REF_PUT/SEQ_END, shared_ptr copy on SEARCH/ALIGN_REF);
  /// the indexes and mmap'd views themselves are immutable and read
  /// without any lock.
  std::mutex refs_mutex_;
  std::map<std::uint64_t, RefEntry> refs_;
  std::uint64_t next_ref_id_ = 1;
  /// REF_PUT idempotency: content token -> already-assigned ref id.
  std::map<std::uint64_t, std::uint64_t> ref_tokens_;

  /// Open upload sessions by token (see Upload).
  std::mutex uploads_mutex_;
  std::map<std::uint64_t, Upload> uploads_;

  /// Resolved store directory; when `owns_store_dir_` the server created
  /// it (config.store_dir empty) and removes it on stop().
  std::string store_dir_;
  bool owns_store_dir_ = false;
  std::atomic<std::uint64_t> next_store_file_{1};

  /// Durable handle registry (FLSAREG1). Non-null only for a persistent
  /// store dir; appends are serialized by registry_mutex_ so records
  /// never interleave.
  std::unique_ptr<store::RegistryWriter> registry_;
  std::mutex registry_mutex_;
  RecoveryReport recovery_;

  /// Upload-session hygiene timer (see hygiene_loop()).
  std::thread hygiene_;
  std::mutex hygiene_mutex_;
  std::condition_variable hygiene_cv_;
  bool hygiene_stop_ = false;
};

}  // namespace service
}  // namespace flsa
