// Wire protocol of the alignment service.
//
// Transport framing is length-prefixed: a frame is a 4-byte little-endian
// payload length followed by the payload. Every payload starts with a
// 1-byte protocol version and a 1-byte verb; the remainder is the verb's
// body. All integers are little-endian and fixed-width, strings are a
// u32 byte count followed by raw bytes, doubles are the IEEE-754 bit
// pattern as a u64. The format is versioned so a v2 server can keep
// answering v1 clients; decoders reject unknown versions with a typed
// error instead of guessing.
//
// Verbs (requests from the client, responses from the server):
//   ALIGN   -> ALIGN_OK | ERROR    one pairwise alignment job
//   STATS   -> STATS_OK | ERROR    snapshot of the server metrics registry
//   REF_PUT -> REF_PUT_OK | ERROR  register a reference; returns its id
//   SEARCH  -> SEARCH_OK | ERROR   chained search of a query against a
//                                  registered reference (by id)
//   ALIGN_BATCH -> ALIGN_BATCH_OK | ERROR
//                                  several ALIGN jobs in one frame; one
//                                  worker executes them back to back on
//                                  its persistent Aligner (the router's
//                                  admission-time coalescing target)
//   SEQ_BEGIN   -> SEQ_OK | ERROR  open (or resume) a chunked sequence
//                                  upload session, keyed by a client
//                                  token; SEQ_OK reports the next byte
//                                  offset expected (0 for a new session)
//   SEQ_CHUNK   -> SEQ_OK | ERROR  one slice of letters at an explicit
//                                  offset with a rolling prefix hash;
//                                  replayed prefixes are acknowledged
//                                  idempotently (resume after reconnect)
//   SEQ_END     -> SEQ_OK | ERROR  seal the upload (total length + hash
//                                  must match), register the sequence in
//                                  the server's packed store, and return
//                                  its reference id
//   ALIGN_REF   -> ALIGN_PART* | ERROR
//                                  align by handle: the sequences are
//                                  named by store ids (uploaded once via
//                                  SEQ_* or REF_PUT) instead of being
//                                  resent; the answer is streamed as a
//                                  bounded-size sequence of ALIGN_PART
//                                  frames (cigar slices, final frame
//                                  carries score + timings) so a
//                                  megabase edit script never needs one
//                                  huge frame
//
// Responses carry the request_id of the request they answer, so clients
// may pipeline: with a shared worker pool, responses on one connection can
// complete out of submission order (an OVERLOADED rejection overtakes a
// job still running).
//
// Decoding is strict: every read is bounds-checked and trailing garbage is
// an error (ProtocolError). The server maps ProtocolError to a BAD_REQUEST
// response; it never crashes on hostile bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "scoring/scheme.hpp"

namespace flsa {
namespace service {

/// Protocol version this build speaks.
inline constexpr std::uint8_t kProtocolVersion = 1;

/// Hard ceiling a decoder applies to incoming frame payloads; servers and
/// clients may configure a smaller limit.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{64} << 20;

enum class Verb : std::uint8_t {
  kAlign = 0x01,
  kStats = 0x02,
  kRefPut = 0x03,
  kSearch = 0x04,
  kAlignBatch = 0x05,
  kSeqBegin = 0x06,
  kSeqChunk = 0x07,
  kSeqEnd = 0x08,
  kAlignRef = 0x09,
  kRefList = 0x0a,
  kAlignOk = 0x81,
  kError = 0x82,
  kStatsOk = 0x83,
  kRefPutOk = 0x84,
  kSearchOk = 0x85,
  kAlignBatchOk = 0x86,
  kSeqOk = 0x87,
  kAlignPart = 0x88,
  kRefListOk = 0x89,
};

/// Substitution matrix selector (the server owns the tables; the wire
/// carries only the choice, never a matrix).
enum class WireMatrix : std::uint8_t {
  kMdm78 = 0,
  kPam250 = 1,
  kBlosum62 = 2,
  kDna = 3,
  kDnaN = 4,
};

/// Typed rejection/failure codes. Everything the admission controller or a
/// worker can do to a request short of answering it has a code here.
enum class ErrorCode : std::uint8_t {
  kBadRequest = 1,        ///< malformed frame, bad residues, bad options
  kTooLarge = 2,          ///< estimated DPM cells above the server budget
  kOverloaded = 3,        ///< bounded request queue full (admission control)
  kDeadlineExceeded = 4,  ///< deadline expired before or during execution
  kShuttingDown = 5,      ///< server is draining; no new work accepted
  kInternal = 6,          ///< unexpected server-side failure
  kConnectionLimit = 7,   ///< concurrent-connection cap reached
  kRefNotFound = 8,       ///< SEARCH named a reference id never registered
};

/// Transient rejections a client may safely retry: the request was never
/// executed (OVERLOADED, SHUTTING_DOWN, CONNECTION_LIMIT reject before any
/// work happens), so resending cannot double-apply anything. BAD_REQUEST /
/// TOO_LARGE are deterministic — retrying them only repeats the rejection —
/// and DEADLINE_EXCEEDED means the caller's own deadline already passed.
bool is_retryable(ErrorCode code);

const char* to_string(Verb verb);
const char* to_string(ErrorCode code);
const char* to_string(WireMatrix matrix);

/// Parses a matrix name ("mdm78", "pam250", ...). Returns false on unknown
/// names; `out` is untouched then.
bool parse_wire_matrix(std::string_view name, WireMatrix* out);

/// One pairwise alignment job.
struct AlignRequest {
  std::uint64_t request_id = 0;
  WireMatrix matrix = WireMatrix::kMdm78;
  /// Gap model: gap_open == 0 selects linear gaps (both must be <= 0).
  /// Defaults come from scoring/scheme.hpp so an omitted gap model means
  /// the same scheme everywhere (engine, CLI, wire).
  std::int32_t gap_open = kDefaultGapOpen;
  std::int32_t gap_extend = kDefaultGapExtend;
  /// FastLSA tuning; 0 means "use the server default".
  std::uint32_t k = 0;
  std::uint64_t base_case_cells = 0;
  /// Queueing deadline in milliseconds from submission; 0 = none. A job
  /// still waiting in the queue past its deadline is answered with
  /// DEADLINE_EXCEEDED instead of being executed.
  std::uint32_t deadline_ms = 0;
  /// Skip the traceback CIGAR in the response (score only).
  bool score_only = false;
  /// Residue letters of the two sequences (alphabet follows the matrix).
  std::string a;
  std::string b;
};

/// Several independent ALIGN jobs folded into one frame. One worker pops
/// the whole batch and runs the jobs back to back on its persistent
/// Aligner, so the workspace-reuse amortization the daemon gets from a
/// warm worker also applies *across* small requests — this is the frame
/// the router's admission-time coalescer emits. Each job keeps its own
/// request_id; the response echoes them job by job, so a multiplexer can
/// demux per-job answers to different origin clients.
struct AlignBatchRequest {
  std::uint64_t request_id = 0;  ///< envelope id (answers the batch frame)
  std::vector<AlignRequest> jobs;
};

/// Registry snapshot request.
struct StatsRequest {
  std::uint64_t request_id = 0;
};

/// Enumerates the registered reference handles (REF_PUT and sealed
/// uploads alike). The answer is what survives a restart from the
/// durable registry, so clients and the router front tier can
/// re-resolve handles instead of guessing from stale placement state.
struct RefListRequest {
  std::uint64_t request_id = 0;
};

/// Registers a reference sequence for SEARCH-by-id. The server builds a
/// ReferenceIndex (packed residues + k-mer index) once and shares it
/// read-only across workers; the response carries the id to search by.
struct RefPutRequest {
  std::uint64_t request_id = 0;
  WireMatrix matrix = WireMatrix::kDna;  ///< fixes the alphabet
  std::uint32_t k = 0;                   ///< seed length; 0 = server default
  /// Idempotency token, normally a content hash of (matrix, k, sequence);
  /// 0 means none. A registration whose token matches an earlier one
  /// answers the *existing* id instead of building a duplicate index —
  /// which makes REF_PUT safe to retry after an ambiguous transport
  /// failure (the double-send lands on the same id).
  std::uint64_t content_token = 0;
  std::string name;                      ///< optional label
  std::string sequence;                  ///< residue letters
};

/// Opens (or, with a token the server already knows, resumes) a chunked
/// upload session. The server answers SEQ_OK with `next_offset` = the
/// letters it already holds for this token, so a client can continue
/// after a reconnect without resending the prefix.
struct SeqBeginRequest {
  std::uint64_t request_id = 0;
  /// Client-chosen session key; must be nonzero. Also the default
  /// placement key at the router tier.
  std::uint64_t upload_token = 0;
  /// Router placement override: sequences sharing a placement key land
  /// on the same backend (required to ALIGN_REF two uploads against
  /// each other through the router). 0 = place by upload_token.
  std::uint64_t placement = 0;
  WireMatrix matrix = WireMatrix::kDna;  ///< fixes the alphabet
  /// Declared total length; 0 = unknown until SEQ_END.
  std::uint64_t total_residues = 0;
  std::string name;  ///< optional label
};

/// One slice of residue letters at an explicit offset. `prefix_hash` is
/// the FNV-1a of all letters [0, offset + data.size()) — a rolling
/// checksum, so corruption is caught at the chunk where it happened.
/// A chunk entirely below the server's high-water mark is acknowledged
/// without being applied (idempotent replay); a chunk past it is a gap
/// and is rejected.
struct SeqChunkRequest {
  std::uint64_t request_id = 0;
  std::uint64_t upload_token = 0;
  std::uint64_t offset = 0;       ///< letters before this chunk
  std::uint64_t prefix_hash = 0;  ///< FNV-1a of letters [0, offset+|data|)
  std::string data;               ///< residue letters
};

/// Seals an upload: the server verifies total length and hash, writes
/// the packed store record, registers it, and answers SEQ_OK carrying
/// the new reference id.
struct SeqEndRequest {
  std::uint64_t request_id = 0;
  std::uint64_t upload_token = 0;
  std::uint64_t total_residues = 0;  ///< must equal the letters received
  std::uint64_t total_hash = 0;      ///< FNV-1a of all letters
  std::uint32_t k = 0;  ///< seed length for the k-mer index; 0 = default
  /// Build a k-mer index (required for SEARCH by this id). Skipping it
  /// makes the handle ALIGN_REF-only but registration O(1) after the
  /// store write.
  bool build_index = false;
};

/// Align by store handle. `ref_a` names a registered sequence; `ref_b`
/// may name a second one (two uploaded chromosomes) or be 0 with the
/// second sequence inline in `b` (many short reads against one stored
/// reference, the common case). `band` > 0 selects banded global
/// alignment with that half-width (linear gaps only) — the only
/// practical mode at multi-megabase scale; 0 runs full FastLSA.
struct AlignRefRequest {
  std::uint64_t request_id = 0;
  std::uint64_t ref_a = 0;  ///< store id of sequence A (required)
  std::uint64_t ref_b = 0;  ///< store id of sequence B; 0 = inline `b`
  WireMatrix matrix = WireMatrix::kMdm78;
  std::int32_t gap_open = kDefaultGapOpen;
  std::int32_t gap_extend = kDefaultGapExtend;
  std::uint32_t k = 0;  ///< FastLSA division factor; 0 = server default
  std::uint64_t base_case_cells = 0;
  std::uint32_t band = 0;  ///< banded half-width; 0 = full FastLSA
  std::uint32_t deadline_ms = 0;
  bool score_only = false;
  std::string b;  ///< residue letters when ref_b == 0
};

/// Chained (seed-chain-extend) search of one query against a registered
/// reference. Tuning fields at 0 mean "use the server default"; the
/// request's matrix alphabet must match the reference's.
struct SearchRequest {
  std::uint64_t request_id = 0;
  std::uint64_t ref_id = 0;
  WireMatrix matrix = WireMatrix::kDna;
  /// Linear gap penalty per residue (must be <= 0). Chained search runs
  /// linear-gap kernels only.
  std::int32_t gap_extend = kDefaultGapExtend;
  std::uint32_t max_hits = 0;         ///< cap on reported hits
  std::int32_t x_drop = 0;            ///< flank extension drop-off
  std::int32_t gap_weight = 0;        ///< chain gap cost per residue
  std::int32_t min_chain_score = 0;   ///< chain/hit score floor
  std::uint32_t band_pad = 0;         ///< gap-fill band padding
  std::uint32_t max_overlap = 0;      ///< chaining overlap tolerance
  std::uint32_t max_positions_per_kmer = 0;  ///< repeat mask threshold
  /// Queueing deadline in milliseconds from submission; 0 = none.
  std::uint32_t deadline_ms = 0;
  /// Skip per-hit CIGARs in the response.
  bool score_only = false;
  std::string query;  ///< residue letters (alphabet follows the matrix)
};

/// Successful alignment.
struct AlignResponse {
  std::uint64_t request_id = 0;
  std::int64_t score = 0;
  std::string cigar;  ///< empty when the request asked for score only
  /// DPM cells of the problem, (m+1)*(n+1) — the same estimated_cells()
  /// quantity the admission budget is expressed in, so STATS/bench
  /// numbers and `max_request_cells` agree at the boundary.
  std::uint64_t cells = 0;
  std::uint64_t queue_micros = 0;  ///< time spent waiting for a worker
  std::uint64_t exec_micros = 0;   ///< time spent aligning
  /// Milliseconds left on the request's deadline when the answer was
  /// produced; -1 when the request carried no deadline. A job whose
  /// deadline expired mid-align is answered DEADLINE_EXCEEDED instead of
  /// with a stale success, so this is never negative on the wire.
  std::int64_t deadline_remaining_ms = -1;
};

/// Typed failure.
struct ErrorResponse {
  std::uint64_t request_id = 0;  ///< 0 when the request was unparseable
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// Metrics snapshot: flat name -> value pairs (counters and gauges as-is,
/// histograms expanded into count/mean/quantile entries by the server).
struct StatsResponse {
  std::uint64_t request_id = 0;
  std::vector<std::pair<std::string, double>> entries;
};

/// Successful reference registration.
struct RefPutResponse {
  std::uint64_t request_id = 0;
  std::uint64_t ref_id = 0;          ///< handle for SearchRequest::ref_id
  std::uint64_t residues = 0;        ///< reference length as stored
  std::uint64_t distinct_kmers = 0;  ///< index fill, for observability
  std::uint64_t build_micros = 0;    ///< index build time
};

/// Acknowledges SEQ_BEGIN / SEQ_CHUNK / SEQ_END. `next_offset` is the
/// total letters the server holds for the session — the offset the next
/// chunk must start at (and the resume point after a reconnect).
/// `ref_id` is 0 until SEQ_END registers the sequence.
struct SeqOkResponse {
  std::uint64_t request_id = 0;
  std::uint64_t upload_token = 0;
  std::uint64_t next_offset = 0;
  std::uint64_t ref_id = 0;    ///< nonzero only on the SEQ_END answer
  std::uint64_t residues = 0;  ///< letters stored (== next_offset)
};

/// One slice of a streamed ALIGN_REF answer. Parts arrive in `seq`
/// order on the requesting connection; `cigar_part` concatenated over
/// all parts is the full edit script. Every frame carries the trailer
/// fields; they are authoritative on the frame with `last` set (a
/// score_only answer is exactly one part with an empty cigar_part).
struct AlignPartResponse {
  std::uint64_t request_id = 0;
  std::uint32_t seq = 0;  ///< part index, 0-based
  bool last = false;
  std::int64_t score = 0;
  std::uint64_t cells = 0;
  std::uint64_t queue_micros = 0;
  std::uint64_t exec_micros = 0;
  std::int64_t deadline_remaining_ms = -1;
  std::string cigar_part;
};

/// One search hit on the wire: subject/query-global coordinates plus the
/// alignment score and (unless score_only) CIGAR.
struct WireHit {
  std::int64_t score = 0;
  std::uint64_t q_begin = 0, q_end = 0;  ///< query range [begin, end)
  std::uint64_t s_begin = 0, s_end = 0;  ///< subject (reference) range
  std::string cigar;                     ///< empty when score_only
};

/// Successful search: hits best-first, non-overlapping in the reference.
struct SearchResponse {
  std::uint64_t request_id = 0;
  std::vector<WireHit> hits;
  std::uint64_t anchors = 0;  ///< seed anchors found (pipeline visibility)
  std::uint64_t chains = 0;   ///< colinear chains above the score floor
  std::uint64_t queue_micros = 0;
  std::uint64_t exec_micros = 0;
  /// Same contract as AlignResponse::deadline_remaining_ms.
  std::int64_t deadline_remaining_ms = -1;
};

/// One registered handle as reported by REF_LIST.
struct RefListEntry {
  std::uint64_t ref_id = 0;
  std::uint64_t content_token = 0;  ///< idempotency/content token (may be 0)
  std::uint64_t residues = 0;
  WireMatrix matrix = WireMatrix::kDna;
  std::uint32_t k = 0;   ///< seed length of the index (0 = none requested)
  bool indexed = false;  ///< SEARCH-able (index present or lazily rebuilt)
  std::string name;      ///< display name (may be empty)
};

/// Successful handle enumeration, in ascending ref_id order.
struct RefListResponse {
  std::uint64_t request_id = 0;
  std::vector<RefListEntry> refs;
};

/// One per-job outcome inside an ALIGN_BATCH_OK frame: the job either
/// succeeded (AlignResponse) or failed with a typed error — a bad job
/// never poisons its batch mates.
using BatchItem = std::variant<AlignResponse, ErrorResponse>;

/// Batch answer: items in job order, each echoing its job's request_id.
struct AlignBatchResponse {
  std::uint64_t request_id = 0;
  std::vector<BatchItem> items;
};

using Request =
    std::variant<AlignRequest, StatsRequest, RefPutRequest, SearchRequest,
                 AlignBatchRequest, SeqBeginRequest, SeqChunkRequest,
                 SeqEndRequest, AlignRefRequest, RefListRequest>;
using Response =
    std::variant<AlignResponse, ErrorResponse, StatsResponse, RefPutResponse,
                 SearchResponse, AlignBatchResponse, SeqOkResponse,
                 AlignPartResponse, RefListResponse>;

/// Thrown by decoders on malformed payloads (truncation, trailing bytes,
/// unknown version/verb, length overflow).
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown on connection-level failures: peer gone, connection reset,
/// EOF in the middle of a frame (a peer killed mid-write), or a read
/// deadline expiring. Distinct from ProtocolError (malformed bytes that
/// *were* delivered): a TransportError never consumed a half-answer, so
/// the client retry layer treats it as idempotent-safe to retry after a
/// reconnect, while a ProtocolError is never retried.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what)
      : std::runtime_error(what) {}
};

/// The read deadline (SO_RCVTIMEO) expired while waiting *at a frame
/// boundary*: the peer is connected but has sent nothing. A subtype so
/// generic TransportError handling still applies, but the server can
/// tell a genuinely idle peer (safe to hang up on) from one that is
/// merely waiting for a slow in-flight job. A deadline that expires
/// mid-frame is a slow-loris stall and stays a plain TransportError.
class ReadTimeout : public TransportError {
 public:
  explicit ReadTimeout(const std::string& what) : TransportError(what) {}
};

/// Payload encoders (version byte + verb + body; no length prefix).
std::string encode(const AlignRequest& request);
std::string encode(const StatsRequest& request);
std::string encode(const RefPutRequest& request);
std::string encode(const SearchRequest& request);
std::string encode(const AlignBatchRequest& request);
std::string encode(const SeqBeginRequest& request);
std::string encode(const SeqChunkRequest& request);
std::string encode(const SeqEndRequest& request);
std::string encode(const AlignRefRequest& request);
std::string encode(const RefListRequest& request);
std::string encode(const AlignResponse& response);
std::string encode(const ErrorResponse& response);
std::string encode(const StatsResponse& response);
std::string encode(const RefPutResponse& response);
std::string encode(const SearchResponse& response);
std::string encode(const AlignBatchResponse& response);
std::string encode(const SeqOkResponse& response);
std::string encode(const AlignPartResponse& response);
std::string encode(const RefListResponse& response);

/// Payload decoders; throw ProtocolError on malformed input.
Request decode_request(std::string_view payload);
Response decode_response(std::string_view payload);

/// Estimated DPM cells of an m x n problem, the quantity the admission
/// controller's TOO_LARGE budget is expressed in: (m+1) * (n+1),
/// *saturating* — at multi-megabase (let alone chromosome) lengths the
/// product overflows 64 bits, and a wrapped estimate would sail under
/// the budget instead of over it. All the request overloads below and
/// every admission/bench call site go through this.
std::uint64_t estimated_cells(std::uint64_t m, std::uint64_t n);

/// Cells of the banded matrix banded_align allocates for an m x n
/// problem at half-width w: (m+1) * (|n-m| + 2w + 1), saturating.
std::uint64_t estimated_banded_cells(std::uint64_t m, std::uint64_t n,
                                     std::uint32_t half_width);

/// Estimated DPM cells of a request: (|a|+1) * (|b|+1), saturating.
std::uint64_t estimated_cells(const AlignRequest& request);

/// Admission estimate for a search: (|query|+1)^2 — the worst-case DP
/// area when chaining degenerates to one full-query gap fill. Chained
/// search normally does far less work, so this is a conservative bound
/// in the same currency as the ALIGN budget.
std::uint64_t estimated_cells(const SearchRequest& request);

/// Batch admission estimate: the sum over the jobs — a batch occupies one
/// worker for the total of its jobs' work, so it is budgeted like one
/// request of that size.
std::uint64_t estimated_cells(const AlignBatchRequest& request);

/// Canonical idempotency token for a REF_PUT: FNV-1a over the fields
/// that determine what gets registered (matrix, k, sequence letters —
/// the display name is excluded). Never returns 0, which the wire
/// reserves for "no token". Client::call_with_retry(RefPutRequest) fills
/// this in automatically; pipelined senders that want retry safety call
/// it themselves.
std::uint64_t content_token_for(const RefPutRequest& request);

// ---- Framed transport over a connected socket ------------------------

/// The exact on-the-wire bytes of one frame: 4-byte little-endian length
/// prefix followed by the payload. Exposed so the fault injector and the
/// partial-write tests can send deliberate prefixes of a real frame.
std::string frame_bytes(std::string_view payload);

/// Sends raw bytes (no framing). Returns false when the peer is gone
/// (EPIPE/ECONNRESET); throws TransportError on other socket errors.
bool write_all(int fd, std::string_view bytes);

/// Writes one length-prefixed frame. Returns false when the peer is gone
/// (EPIPE/ECONNRESET); throws TransportError on other socket errors.
bool write_frame(int fd, std::string_view payload);

/// Reads one length-prefixed frame into *payload. Returns false on clean
/// EOF at a frame boundary; throws ProtocolError on oversized frames,
/// TransportError on EOF mid-frame, read deadlines, or socket errors.
bool read_frame(int fd, std::string* payload,
                std::size_t max_bytes = kMaxFrameBytes);

}  // namespace service
}  // namespace flsa
