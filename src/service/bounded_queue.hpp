// Bounded multi-producer multi-consumer queue — the server's admission
// point. Producers (connection threads) never block: try_push fails
// immediately when the queue is at capacity (the caller answers
// OVERLOADED) or closed (SHUTTING_DOWN). Consumers (workers) block in
// pop() until an item arrives or the queue is closed *and* drained, which
// is exactly the graceful-drain contract: close() stops admission but
// every item admitted before the close is still handed to a worker.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "support/assert.hpp"

namespace flsa {
namespace service {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    FLSA_REQUIRE(capacity >= 1);
  }

  /// Admission status of a push attempt.
  enum class Push { kAccepted, kFull, kClosed };

  /// Non-blocking admission; kFull implements the OVERLOADED rejection.
  Push try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return Push::kClosed;
      if (items_.size() >= capacity_) return Push::kFull;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return Push::kAccepted;
  }

  /// Blocks until an item is available or the queue is closed and empty
  /// (then returns nullopt — the consumer should exit).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop: returns nullopt immediately when the queue is
  /// empty. Used by consumers that batch — pop() for the first item,
  /// then try_pop() to coalesce whatever else is already waiting.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops admission; already-queued items still drain through pop().
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace service
}  // namespace flsa
