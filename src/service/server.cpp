#include "service/server.hpp"

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "dp/banded.hpp"
#include "parallel/thread_pool.hpp"
#include "scoring/builtin.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"
#include "support/checked.hpp"
#include "support/fnv.hpp"

namespace flsa {
namespace service {

namespace {

const Alphabet& alphabet_for(WireMatrix matrix) {
  switch (matrix) {
    case WireMatrix::kDna: return Alphabet::dna();
    case WireMatrix::kDnaN: return Alphabet::dna_n();
    default: return Alphabet::protein();
  }
}

const SubstitutionMatrix& matrix_for(WireMatrix matrix) {
  static const SubstitutionMatrix dna_matrix = scoring::dna();
  static const SubstitutionMatrix dna_n_matrix = scoring::dna_n();
  switch (matrix) {
    case WireMatrix::kMdm78: return scoring::mdm78();
    case WireMatrix::kPam250: return scoring::pam250();
    case WireMatrix::kBlosum62: return scoring::blosum62();
    case WireMatrix::kDna: return dna_matrix;
    case WireMatrix::kDnaN: return dna_n_matrix;
  }
  return scoring::mdm78();
}

std::uint64_t micros_between(std::chrono::steady_clock::time_point from,
                             std::chrono::steady_clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

/// Durable identity of a streamed upload: the rolling FNV of the letters
/// extended by the matrix byte (same content under a different alphabet
/// family is a different handle). Never 0 — the wire reserves it.
std::uint64_t durable_token(std::uint64_t rolling_hash, WireMatrix matrix) {
  const std::uint8_t matrix_byte = static_cast<std::uint8_t>(matrix);
  const std::uint64_t token = fnv1a64(&matrix_byte, 1, rolling_hash);
  return token != 0 ? token : 1;
}

/// Whether a wire matrix byte recovered from the manifest names a matrix
/// this build understands (a registry written by a newer build may not).
bool known_matrix(std::uint8_t byte) {
  switch (static_cast<WireMatrix>(byte)) {
    case WireMatrix::kMdm78:
    case WireMatrix::kPam250:
    case WireMatrix::kBlosum62:
    case WireMatrix::kDna:
    case WireMatrix::kDnaN:
      return true;
  }
  return false;
}

/// REF_PUT seed length when the request leaves k at 0: exact DNA words
/// stay specific up to ~12 bases; protein alphabets saturate the 62-bit
/// pack limit much sooner and 5-mers are the classic seed there.
std::uint32_t default_seed_k(const ServiceConfig& config, WireMatrix matrix) {
  if (config.default_seed_k != 0) return config.default_seed_k;
  switch (matrix) {
    case WireMatrix::kDna:
    case WireMatrix::kDnaN:
      return 12;
    default:
      return 5;
  }
}

}  // namespace

/// Per-connection state shared between the handler thread (reads) and the
/// workers (response writes). `open` is flipped under `write_mutex` before
/// the fd is closed, so a worker can never write into a recycled fd.
struct AlignmentServer::Connection {
  int fd = -1;
  std::mutex write_mutex;
  bool open = true;                ///< guarded by write_mutex
  std::atomic<bool> finished{false};  ///< handler thread has exited
  /// Admitted-but-unanswered jobs from this peer. An idle-deadline expiry
  /// only hangs up when this is zero: a client quietly waiting out a long
  /// alignment is not idle, it is patient.
  std::atomic<std::size_t> in_flight{0};
  std::thread handler;
};

AlignmentServer::AlignmentServer(ServiceConfig config)
    : config_(std::move(config)),
      instruments_{
          obs::metrics().counter("service.connections"),
          obs::metrics().counter("service.requests"),
          obs::metrics().counter("service.completed"),
          obs::metrics().counter("service.rejected.overloaded"),
          obs::metrics().counter("service.rejected.too_large"),
          obs::metrics().counter("service.rejected.deadline"),
          obs::metrics().counter("service.rejected.shutting_down"),
          obs::metrics().counter("service.rejected.connection_limit"),
          obs::metrics().counter("service.bad_requests"),
          obs::metrics().counter("service.internal_errors"),
          obs::metrics().counter("service.write_errors"),
          obs::metrics().counter("service.cells"),
          obs::metrics().counter("search.requests"),
          obs::metrics().counter("search.completed"),
          obs::metrics().counter("search.hits"),
          obs::metrics().counter("search.anchors"),
          obs::metrics().counter("search.ref_not_found"),
          obs::metrics().counter("search.ref_puts"),
          obs::metrics().counter("search.ref_residues"),
          obs::metrics().counter("service.batch.requests"),
          obs::metrics().counter("service.batch.jobs"),
          obs::metrics().counter("stream.uploads"),
          obs::metrics().counter("stream.upload_chunks"),
          obs::metrics().counter("stream.upload_bytes"),
          obs::metrics().counter("stream.upload_resumes"),
          obs::metrics().counter("stream.uploads_sealed"),
          obs::metrics().counter("stream.align_ref"),
          obs::metrics().counter("stream.parts"),
          obs::metrics().counter("search.ref_dedup_hits"),
          obs::metrics().counter("stream.uploads_reaped"),
          obs::metrics().counter("store.refs_recovered"),
          obs::metrics().counter("store.recovery_skipped"),
          obs::metrics().counter("search.index_rebuilds"),
          obs::metrics().gauge("stream.uploads_active"),
          obs::metrics().gauge("search.refs"),
          obs::metrics().gauge("service.queue_depth"),
          obs::metrics().gauge("service.in_flight"),
          obs::metrics().gauge("service.uptime_ms"),
          obs::metrics().histogram("service.queue_seconds"),
          obs::metrics().histogram("service.exec_seconds"),
          obs::metrics().histogram("search.exec_seconds"),
          obs::metrics().histogram("search.ref_build_seconds"),
      },
      queue_(config_.queue_capacity == 0 ? 1 : config_.queue_capacity) {
  validate(config_.fastlsa);
  if (config_.fault_plan.enabled()) {
    injector_ = std::make_unique<FaultInjector>(config_.fault_plan);
  }
}

AlignmentServer::~AlignmentServer() { stop(); }

void AlignmentServer::start() {
  FLSA_REQUIRE(!running_.load());

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket failed: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("invalid listen address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, config_.backlog) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind/listen on " + config_.host + ":" +
                             std::to_string(config_.port) + " failed: " +
                             what);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("getsockname failed: ") + what);
  }
  port_ = ntohs(bound.sin_port);

  if (config_.enable_metrics) obs::set_enabled(true);

  // Resolve the packed-store directory: an explicit path is created (and
  // kept) for the operator; an empty one gets a private mkdtemp the
  // server removes on stop. Store files in an owned directory are
  // unlinked as soon as they are mmap'd (the mapping keeps the bytes),
  // so even a crash leaks at most the directory itself.
  if (store_dir_.empty()) {
    if (!config_.store_dir.empty()) {
      store_dir_ = config_.store_dir;
      owns_store_dir_ = false;
      if (::mkdir(store_dir_.c_str(), 0755) != 0 && errno != EEXIST) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("cannot create store directory '" +
                                 store_dir_ + "': " + std::strerror(errno));
      }
    } else {
      const char* tmp = std::getenv("TMPDIR");
      std::string tmpl =
          std::string(tmp != nullptr ? tmp : "/tmp") + "/flsa_store.XXXXXX";
      if (::mkdtemp(tmpl.data()) == nullptr) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error(std::string("mkdtemp failed: ") +
                                 std::strerror(errno));
      }
      store_dir_ = tmpl;
      owns_store_dir_ = true;
    }
  }

  // A persistent store directory recovers its sealed handles before the
  // first connection is accepted: replay the FLSAREG1 manifest, re-mmap
  // every intact payload, and open the registry for new seals. Replay
  // degrades (skips) on corruption; only an unusable manifest *file*
  // (I/O) fails the boot.
  recovery_ = RecoveryReport{};
  if (!owns_store_dir_) {
    try {
      recover_store_dir();
    } catch (const std::exception& e) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("store recovery in '" + store_dir_ +
                               "' failed: " + e.what());
    }
  }

  started_at_ = std::chrono::steady_clock::now();
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);

  const unsigned workers =
      config_.workers != 0 ? config_.workers : default_thread_count();
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  {
    std::lock_guard<std::mutex> lock(hygiene_mutex_);
    hygiene_stop_ = false;
  }
  hygiene_ = std::thread([this] { hygiene_loop(); });
}

void AlignmentServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  draining_.store(true, std::memory_order_release);

  // 0. Hygiene timer down first — it walks uploads_, which step 4 clears.
  {
    std::lock_guard<std::mutex> lock(hygiene_mutex_);
    hygiene_stop_ = true;
  }
  hygiene_cv_.notify_all();
  if (hygiene_.joinable()) hygiene_.join();

  // 1. Stop accepting: shutdown unblocks the acceptor's accept(2).
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // 2. Drain: no new admissions, workers finish every queued job.
  queue_.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  // 3. Every admitted job is answered; unblock the connection readers
  //    (clients that pipelined further requests got SHUTTING_DOWN from
  //    the closed queue) and tear the sockets down.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const auto& connection : connections_) {
      std::lock_guard<std::mutex> write_lock(connection->write_mutex);
      if (connection->open) ::shutdown(connection->fd, SHUT_RDWR);
    }
  }
  reap_connections(/*all=*/true);
  instruments_.queue_depth.set(0.0);
  instruments_.in_flight.set(0.0);

  // 4. Upload sessions die with the server (their writers unlink the
  //    partial files); an owned store directory is swept and removed.
  {
    std::lock_guard<std::mutex> lock(uploads_mutex_);
    uploads_.clear();
    instruments_.uploads_active.set(0.0);
  }
  // The manifest fd closes with the server; the next start() re-replays
  // and re-opens it (the file itself is the durable artifact).
  registry_.reset();
  if (owns_store_dir_ && !store_dir_.empty()) {
    if (DIR* dir = ::opendir(store_dir_.c_str())) {
      while (const dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((store_dir_ + "/" + name).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(store_dir_.c_str());
    store_dir_.clear();
    owns_store_dir_ = false;
  }
}

void AlignmentServer::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EINVAL/EBADF after stop()'s shutdown — or a transient error while
      // still running; either way, stop accepting only when draining.
      if (draining_.load(std::memory_order_acquire)) return;
      if (errno == EMFILE || errno == ENFILE || errno == ECONNABORTED) {
        continue;  // out of fds or a client vanished: keep serving
      }
      return;
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }

    // Connection hygiene: a low-latency, keepalive-probed socket with a
    // per-recv deadline. The deadline is the slow-loris defence — a peer
    // dribbling one byte per minute cannot pin a handler thread forever.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
    if (config_.idle_timeout_ms != 0) {
      timeval tv{};
      tv.tv_sec = config_.idle_timeout_ms / 1000;
      tv.tv_usec = static_cast<suseconds_t>(
          (config_.idle_timeout_ms % 1000) * 1000);
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }

    reap_connections(/*all=*/false);
    if (config_.max_connections != 0 &&
        live_connections() >= config_.max_connections) {
      // Over the cap: a typed answer, then close. Never a silent drop —
      // the peer learns *why* and can back off (the code is retryable).
      instruments_.rejected_connection_limit.add();
      ErrorResponse refusal;
      refusal.code = ErrorCode::kConnectionLimit;
      refusal.message = "connection limit of " +
                        std::to_string(config_.max_connections) + " reached";
      try {
        write_frame(fd, encode(refusal));
      } catch (const std::exception&) {
        // Best effort; the close below is the real answer.
      }
      ::close(fd);
      continue;
    }

    instruments_.connections.add();
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(connection);
    }
    connection->handler = std::thread(
        [this, connection] { connection_loop(connection); });
  }
}

std::size_t AlignmentServer::live_connections() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  std::size_t live = 0;
  for (const auto& connection : connections_) {
    if (!connection->finished.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

void AlignmentServer::kill_connection(
    const std::shared_ptr<Connection>& connection) {
  // shutdown() only — the fd itself is closed exactly once, by
  // reap_connections after the handler thread joined, so no thread can
  // ever touch a recycled descriptor.
  std::lock_guard<std::mutex> lock(connection->write_mutex);
  if (connection->open) {
    connection->open = false;
    ::shutdown(connection->fd, SHUT_RDWR);
  }
}

void AlignmentServer::reap_connections(bool all) {
  std::vector<std::shared_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if (all || (*it)->finished.load(std::memory_order_acquire)) {
        finished.push_back(*it);
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& connection : finished) {
    if (connection->handler.joinable()) connection->handler.join();
    std::lock_guard<std::mutex> lock(connection->write_mutex);
    connection->open = false;
    if (connection->fd >= 0) {
      ::close(connection->fd);
      connection->fd = -1;
    }
  }
}

void AlignmentServer::connection_loop(
    std::shared_ptr<Connection> connection) {
  std::string payload;
  while (true) {
    if (injector_ && injector_->active()) {
      // Read-site faults: a stalled reader sleeps inside inject_read();
      // a drop kills this connection the way a flaky network would.
      if (injector_->inject_read() == ReadFault::kDrop) {
        kill_connection(connection);
        break;
      }
    }
    try {
      if (!read_frame(connection->fd, &payload, config_.max_frame_bytes)) {
        break;  // clean EOF
      }
    } catch (const ReadTimeout&) {
      // Idle deadline at a frame boundary. A peer with admitted jobs
      // still in flight is waiting, not idling — re-arm and read again.
      if (connection->in_flight.load(std::memory_order_acquire) > 0) {
        continue;
      }
      kill_connection(connection);  // truly idle: hang up (peer sees EOF)
      break;
    } catch (const TransportError&) {
      // Peer reset, fd shut down during drain, or a mid-frame stall past
      // the read deadline (slow-loris defence): nobody sane is left.
      kill_connection(connection);
      break;
    } catch (const ProtocolError& e) {
      reject(connection, 0, ErrorCode::kBadRequest, e.what());
      break;
    } catch (const std::exception&) {
      break;  // other socket error
    }
    try {
      handle_request(connection, decode_request(payload));
    } catch (const ProtocolError& e) {
      reject(connection, 0, ErrorCode::kBadRequest, e.what());
      break;  // framing is suspect; stop reading from this peer
    }
  }
  connection->finished.store(true, std::memory_order_release);
}

void AlignmentServer::handle_request(
    const std::shared_ptr<Connection>& connection, Request request) {
  if (std::holds_alternative<StatsRequest>(request)) {
    answer_stats(connection, std::get<StatsRequest>(request));
    return;
  }
  if (const auto* list = std::get_if<RefListRequest>(&request)) {
    // A pure read of the handle table: answered inline like STATS, so a
    // router re-syncing after a backend restart never queues behind DP.
    answer_ref_list(connection, *list);
    return;
  }
  // Upload verbs run inline on this connection thread: chunk order is
  // the connection's frame order, which the shared worker pool would
  // destroy, and the work is disk I/O, not DP cells.
  if (const auto* begin = std::get_if<SeqBeginRequest>(&request)) {
    handle_seq_begin(connection, *begin);
    return;
  }
  if (const auto* chunk = std::get_if<SeqChunkRequest>(&request)) {
    handle_seq_chunk(connection, *chunk);
    return;
  }
  if (const auto* end = std::get_if<SeqEndRequest>(&request)) {
    handle_seq_end(connection, *end);
    return;
  }

  // Every queued verb shares the admission pipeline: drain check, a
  // TOO_LARGE budget in the verb's own currency, the fault injector's
  // admission site, then the bounded queue.
  std::uint64_t request_id = 0;
  std::uint64_t cells = 0;  // DPM-cell budget charge (0 = not cell-bound)
  std::string too_large_message;
  if (const auto* align = std::get_if<AlignRequest>(&request)) {
    instruments_.requests.add();
    request_id = align->request_id;
    cells = estimated_cells(*align);
  } else if (const auto* search = std::get_if<SearchRequest>(&request)) {
    instruments_.requests.add();
    instruments_.search_requests.add();
    request_id = search->request_id;
    cells = estimated_cells(*search);
  } else if (const auto* batch = std::get_if<AlignBatchRequest>(&request)) {
    // A coalesced frame is one queue entry but counts every job in the
    // request counter — throughput accounting must not depend on whether
    // the router folded the jobs or pipelined them singly.
    instruments_.requests.add(batch->jobs.size());
    instruments_.batch_requests.add();
    instruments_.batch_jobs.add(batch->jobs.size());
    request_id = batch->request_id;
    cells = estimated_cells(*batch);
    if (batch->jobs.empty()) {
      instruments_.bad_requests.add();
      reject(connection, request_id, ErrorCode::kBadRequest,
             "batch contains no jobs");
      return;
    }
  } else if (const auto* by_ref = std::get_if<AlignRefRequest>(&request)) {
    instruments_.requests.add();
    instruments_.align_ref_requests.add();
    request_id = by_ref->request_id;
    // Resolve handle lengths for the budget check. The banded budget is
    // its own currency (the banded matrix is what is actually
    // allocated); full FastLSA is charged like ALIGN.
    std::uint64_t len_a = 0;
    std::uint64_t len_b = by_ref->b.size();
    {
      std::lock_guard<std::mutex> lock(refs_mutex_);
      const auto a_it = refs_.find(by_ref->ref_a);
      if (a_it == refs_.end()) {
        instruments_.search_ref_not_found.add();
        reject(connection, request_id, ErrorCode::kRefNotFound,
               "reference id " + std::to_string(by_ref->ref_a) +
                   " is not registered");
        return;
      }
      len_a = a_it->second.view.size();
      if (by_ref->ref_b != 0) {
        const auto b_it = refs_.find(by_ref->ref_b);
        if (b_it == refs_.end()) {
          instruments_.search_ref_not_found.add();
          reject(connection, request_id, ErrorCode::kRefNotFound,
                 "reference id " + std::to_string(by_ref->ref_b) +
                     " is not registered");
          return;
        }
        len_b = b_it->second.view.size();
      }
    }
    if (by_ref->band != 0) {
      const std::uint64_t banded =
          estimated_banded_cells(len_a, len_b, by_ref->band);
      if (banded > config_.max_banded_cells) {
        too_large_message =
            "banded request of " + std::to_string(banded) +
            " cells exceeds the banded budget of " +
            std::to_string(config_.max_banded_cells);
      }
    } else {
      cells = estimated_cells(len_a, len_b);
    }
  } else {
    const auto& ref_put = std::get<RefPutRequest>(request);
    instruments_.requests.add();
    request_id = ref_put.request_id;
    if (ref_put.sequence.size() > config_.max_reference_residues) {
      too_large_message =
          "reference of " + std::to_string(ref_put.sequence.size()) +
          " residues exceeds the limit of " +
          std::to_string(config_.max_reference_residues);
    }
  }

  if (draining_.load(std::memory_order_acquire)) {
    instruments_.rejected_shutdown.add();
    reject(connection, request_id, ErrorCode::kShuttingDown,
           "server is draining");
    return;
  }
  if (cells > config_.max_request_cells) {
    too_large_message = "request of " + std::to_string(cells) +
                        " DPM cells exceeds the budget of " +
                        std::to_string(config_.max_request_cells);
  }
  if (!too_large_message.empty()) {
    instruments_.rejected_too_large.add();
    reject(connection, request_id, ErrorCode::kTooLarge, too_large_message);
    return;
  }
  if (injector_ && injector_->active() && injector_->inject_reject()) {
    // Admission-site fault: a synthetic overload rejection, exercising
    // exactly the typed answer a real full queue produces (and the
    // client retry/backoff path that recovers from it).
    instruments_.rejected_overloaded.add();
    reject(connection, request_id, ErrorCode::kOverloaded,
           "fault injection: admission rejected");
    return;
  }

  std::visit(
      [&](auto&& work) {
        using T = std::decay_t<decltype(work)>;
        // STATS, REF_LIST, and the SEQ_* verbs were answered inline above.
        if constexpr (!std::is_same_v<T, StatsRequest> &&
                      !std::is_same_v<T, RefListRequest> &&
                      !std::is_same_v<T, SeqBeginRequest> &&
                      !std::is_same_v<T, SeqChunkRequest> &&
                      !std::is_same_v<T, SeqEndRequest>) {
          enqueue(connection, request_id, std::move(work));
        }
      },
      std::move(request));
}

void AlignmentServer::enqueue(const std::shared_ptr<Connection>& connection,
                              std::uint64_t request_id, Work work) {
  Job job;
  job.connection = connection;
  job.work = std::move(work);
  job.enqueued = std::chrono::steady_clock::now();
  // Count before pushing: a worker may pop (and decrement) immediately.
  connection->in_flight.fetch_add(1, std::memory_order_acq_rel);
  switch (queue_.try_push(std::move(job))) {
    case BoundedQueue<Job>::Push::kAccepted:
      instruments_.queue_depth.set(static_cast<double>(queue_.size()));
      instruments_.in_flight.set(static_cast<double>(
          jobs_in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1));
      break;
    case BoundedQueue<Job>::Push::kFull:
      connection->in_flight.fetch_sub(1, std::memory_order_acq_rel);
      instruments_.rejected_overloaded.add();
      reject(connection, request_id, ErrorCode::kOverloaded,
             "request queue full (" + std::to_string(queue_.capacity()) +
                 " entries)");
      break;
    case BoundedQueue<Job>::Push::kClosed:
      connection->in_flight.fetch_sub(1, std::memory_order_acq_rel);
      instruments_.rejected_shutdown.add();
      reject(connection, request_id, ErrorCode::kShuttingDown,
             "server is draining");
      break;
  }
}

void AlignmentServer::worker_loop(unsigned worker_index) {
  (void)worker_index;
  // One persistent Aligner per worker: its workspace recycles every
  // engine buffer, so steady-state requests allocate nothing inside the
  // engine (PR-3 contract), which is what lets a warm daemon beat
  // one-shot CLI invocations.
  AlignOptions base;
  base.strategy = Strategy::kFastLsa;  // linear space per request
  base.fastlsa = config_.fastlsa;
  Aligner aligner(base);

  while (auto job = queue_.pop()) {
    instruments_.queue_depth.set(static_cast<double>(queue_.size()));
    const auto now = std::chrono::steady_clock::now();
    std::uint64_t request_id = 0;
    std::uint32_t deadline_ms = 0;  // REF_PUT carries no deadline
    std::visit(
        [&](const auto& work) {
          using T = std::decay_t<decltype(work)>;
          request_id = work.request_id;
          // REF_PUT carries no deadline; a batch envelope has none either
          // (each coalesced job enforces its own inside run_align).
          if constexpr (std::is_same_v<T, AlignRequest> ||
                        std::is_same_v<T, SearchRequest> ||
                        std::is_same_v<T, AlignRefRequest>) {
            deadline_ms = work.deadline_ms;
          }
        },
        job->work);
    if (deadline_ms != 0 &&
        now - job->enqueued >= std::chrono::milliseconds(deadline_ms)) {
      instruments_.rejected_deadline.add();
      reject(job->connection, request_id, ErrorCode::kDeadlineExceeded,
             "queued for " +
                 std::to_string(micros_between(job->enqueued, now) / 1000) +
                 " ms, deadline " + std::to_string(deadline_ms) + " ms");
      job->connection->in_flight.fetch_sub(1, std::memory_order_acq_rel);
      instruments_.in_flight.set(static_cast<double>(
          jobs_in_flight_.fetch_sub(1, std::memory_order_acq_rel) - 1));
      continue;
    }
    execute(aligner, *job);
    // Decremented only after the answer is written (or provably dropped):
    // an idle-deadline hangup can then never race a pending response.
    job->connection->in_flight.fetch_sub(1, std::memory_order_acq_rel);
    instruments_.in_flight.set(static_cast<double>(
        jobs_in_flight_.fetch_sub(1, std::memory_order_acq_rel) - 1));
  }
}

void AlignmentServer::execute(Aligner& aligner, Job& job) {
  std::visit(
      [&](const auto& work) {
        using T = std::decay_t<decltype(work)>;
        if constexpr (std::is_same_v<T, AlignRequest>) {
          execute_align(aligner, job, work);
        } else if constexpr (std::is_same_v<T, AlignBatchRequest>) {
          execute_align_batch(aligner, job, work);
        } else if constexpr (std::is_same_v<T, RefPutRequest>) {
          execute_ref_put(job, work);
        } else if constexpr (std::is_same_v<T, AlignRefRequest>) {
          execute_align_ref(aligner, job, work);
        } else {
          execute_search(job, work);
        }
      },
      job.work);
}

BatchItem AlignmentServer::run_align(
    Aligner& aligner, std::chrono::steady_clock::time_point enqueued,
    const AlignRequest& request) {
  const auto started = std::chrono::steady_clock::now();
  // Per-job deadline pre-check against the shared enqueue timestamp: in a
  // coalesced batch the earlier jobs consume wall clock before this one
  // starts, so each job re-validates its own budget before burning cells.
  if (request.deadline_ms != 0 &&
      started - enqueued >= std::chrono::milliseconds(request.deadline_ms)) {
    instruments_.rejected_deadline.add();
    ErrorResponse error;
    error.request_id = request.request_id;
    error.code = ErrorCode::kDeadlineExceeded;
    error.message =
        "queued for " +
        std::to_string(micros_between(enqueued, started) / 1000) +
        " ms, deadline " + std::to_string(request.deadline_ms) + " ms";
    return error;
  }
  try {
    if (request.gap_open > 0 || request.gap_extend > 0) {
      throw std::invalid_argument("gap penalties must be <= 0");
    }
    const Alphabet& alphabet = alphabet_for(request.matrix);
    const SubstitutionMatrix& matrix = matrix_for(request.matrix);
    const ScoringScheme scheme =
        request.gap_open == 0
            ? ScoringScheme(matrix, request.gap_extend)
            : ScoringScheme(matrix, request.gap_open, request.gap_extend);
    const Sequence a(alphabet, request.a);
    const Sequence b(alphabet, request.b);

    AlignOptions options = aligner.options();
    if (request.k != 0) options.fastlsa.k = request.k;
    if (request.base_case_cells != 0) {
      options.fastlsa.base_case_cells = request.base_case_cells;
    }
    validate(options.fastlsa);
    // The worker's persistent workspace: this is the whole point of the
    // daemon shape — buffers stay warm across requests (and across every
    // job of a coalesced batch, which is what coalescing amortizes).
    options.fastlsa.workspace = &aligner.workspace();

    const Alignment alignment = flsa::align(a, b, scheme, options);
    const auto done = std::chrono::steady_clock::now();

    // Deadline re-check after the (uncancellable) alignment: a request
    // whose deadline expired mid-align must not be answered with a stale
    // success — the client has given up, and a late "82" is
    // indistinguishable from a correct one to whatever retried elsewhere.
    std::int64_t deadline_remaining_ms = -1;
    if (request.deadline_ms != 0) {
      const auto deadline =
          enqueued + std::chrono::milliseconds(request.deadline_ms);
      if (done >= deadline) {
        instruments_.rejected_deadline.add();
        ErrorResponse error;
        error.request_id = request.request_id;
        error.code = ErrorCode::kDeadlineExceeded;
        error.message = "deadline of " + std::to_string(request.deadline_ms) +
                        " ms expired during execution; result discarded";
        return error;
      }
      deadline_remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                done)
              .count();
    }

    AlignResponse response;
    response.request_id = request.request_id;
    response.score = alignment.score;
    if (!request.score_only) response.cigar = alignment.cigar();
    // The same (m+1)(n+1) DPM-cell quantity the admission budget uses —
    // STATS/bench numbers and max_request_cells agree at the boundary.
    response.cells = estimated_cells(request);
    response.queue_micros = micros_between(enqueued, started);
    response.exec_micros = micros_between(started, done);
    response.deadline_remaining_ms = deadline_remaining_ms;

    instruments_.completed.add();
    instruments_.cells.add(response.cells);
    instruments_.queue_seconds.observe(
        static_cast<double>(response.queue_micros) * 1e-6);
    instruments_.exec_seconds.observe(
        static_cast<double>(response.exec_micros) * 1e-6);
    return response;
  } catch (const std::invalid_argument& e) {
    instruments_.bad_requests.add();
    ErrorResponse error;
    error.request_id = request.request_id;
    error.code = ErrorCode::kBadRequest;
    error.message = e.what();
    return error;
  } catch (const std::exception& e) {
    instruments_.internal_errors.add();
    ErrorResponse error;
    error.request_id = request.request_id;
    error.code = ErrorCode::kInternal;
    error.message = e.what();
    return error;
  }
}

void AlignmentServer::execute_align(Aligner& aligner, Job& job,
                                    const AlignRequest& request) {
  const BatchItem item = run_align(aligner, job.enqueued, request);
  const std::string payload =
      std::visit([](const auto& response) { return encode(response); }, item);
  if (!respond(job.connection, payload)) {
    instruments_.write_errors.add();
  }
}

void AlignmentServer::execute_align_batch(Aligner& aligner, Job& job,
                                          const AlignBatchRequest& request) {
  AlignBatchResponse response;
  response.request_id = request.request_id;
  response.items.reserve(request.jobs.size());
  // Sequential on this worker's Aligner by design: the batch exists so
  // the persistent workspace is reused job-to-job with no queue hops or
  // frame parsing in between. Per-job outcomes are independent — one bad
  // job yields one error item, never poisons its neighbours.
  for (const AlignRequest& item : request.jobs) {
    response.items.push_back(run_align(aligner, job.enqueued, item));
  }
  if (!respond(job.connection, encode(response))) {
    instruments_.write_errors.add();
  }
}

std::string AlignmentServer::write_store_file(const Alphabet& alphabet,
                                              std::string_view letters,
                                              const std::string& name) {
  // Written under an `up<N>.flsa` scratch name: anything the registry
  // does not reference must look like an upload partial, so a crash here
  // is cleaned by the same boot-time orphan sweep. Registration renames
  // it to its durable content-token name.
  const std::string path =
      store_dir_ + "/up" +
      std::to_string(next_store_file_.fetch_add(1, std::memory_order_relaxed)) +
      ".flsa";
  store::StoreWriter writer(path, alphabet);
  writer.append_letters(letters);
  writer.finish_record(name);
  writer.finalize();
  return path;
}

std::string AlignmentServer::durable_payload_path(
    std::uint64_t content_token) const {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(content_token));
  return store_dir_ + "/ref_" + hex + ".flsa";
}

std::uint64_t AlignmentServer::register_store_file(
    const std::string& path, WireMatrix matrix, std::uint32_t build_k,
    std::uint64_t* distinct_kmers, std::uint64_t content_token,
    const std::string& name) {
  // Durability is ordering, not atomicity: (1) the finalized payload is
  // renamed to its content-token name, (2) the manifest record is
  // appended and fsync'd, (3) the handle appears in memory and is
  // acknowledged. A crash between any two steps leaves an invisible
  // orphan or a replayable record — never an acknowledged handle that a
  // restart cannot serve.
  std::string final_path = path;
  if (registry_ && content_token != 0) {
    final_path = durable_payload_path(content_token);
    if (final_path != path &&
        ::rename(path.c_str(), final_path.c_str()) != 0) {
      throw std::runtime_error("cannot rename '" + path + "' to '" +
                               final_path + "': " + std::strerror(errno));
    }
  }
  auto packed = store::PackedStore::open(final_path);
  // In an owned (temporary) directory the file is unlinked immediately:
  // the mapping keeps the bytes alive, and nothing can leak past the
  // mapping's lifetime.
  if (owns_store_dir_) ::unlink(final_path.c_str());
  SequenceView view = packed->view(0);
  std::shared_ptr<const search::ReferenceIndex> index;
  if (build_k != 0) {
    // The index reads straight through the packed view — the reference
    // is never inflated to byte residues.
    index = std::make_shared<const search::ReferenceIndex>(view, build_k);
    if (distinct_kmers != nullptr) {
      *distinct_kmers = index->kmers().distinct_kmers();
    }
  }
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(refs_mutex_);
    id = next_ref_id_++;
  }
  if (registry_) {
    store::RegistryEntry record;
    record.ref_id = id;
    record.content_token = content_token;
    record.matrix = static_cast<std::uint8_t>(matrix);
    record.build_k = build_k;
    record.residues = view.size();
    record.file = final_path.substr(final_path.rfind('/') + 1);
    record.name = name;
    std::lock_guard<std::mutex> lock(registry_mutex_);
    registry_->append(record);  // fsync'd before the handle goes live
  }
  std::lock_guard<std::mutex> lock(refs_mutex_);
  refs_.emplace(id, RefEntry{std::move(index), std::move(view), matrix,
                             build_k, content_token, name});
  instruments_.refs_live.set(static_cast<double>(refs_.size()));
  return id;
}

void AlignmentServer::recover_store_dir() {
  // Orphan sweep: `up*.flsa` files are unfinalized scratch from a crash
  // mid-upload (or mid-REF_PUT). No manifest record can reference one —
  // records are appended only after the payload is finalized and renamed
  // to `ref_*.flsa` — so they are garbage by construction, and a partial
  // file can never back a recovered handle.
  if (DIR* dir = ::opendir(store_dir_.c_str())) {
    while (const dirent* entry = ::readdir(dir)) {
      const std::string file = entry->d_name;
      if (file.size() > 7 && file.rfind("up", 0) == 0 &&
          file.compare(file.size() - 5, 5, ".flsa") == 0) {
        ::unlink((store_dir_ + "/" + file).c_str());
      }
    }
    ::closedir(dir);
  }

  const std::string manifest_path =
      store_dir_ + "/" + store::kRegistryFileName;
  store::RegistryReplayReport report;
  const std::vector<store::RegistryEntry> records =
      store::replay_registry(manifest_path, &report);
  recovery_.skipped = report.skipped;
  recovery_.warnings = report.warnings;

  std::uint64_t max_id = 0;
  for (const store::RegistryEntry& record : records) {
    max_id = std::max(max_id, record.ref_id);
    if (refs_.count(record.ref_id) != 0) continue;  // in-process restart
    try {
      if (!known_matrix(record.matrix)) {
        throw store::StoreError(
            store::StoreError::Kind::kBadRecord,
            "unknown wire matrix byte " + std::to_string(record.matrix));
      }
      const WireMatrix matrix = static_cast<WireMatrix>(record.matrix);
      auto packed =
          store::PackedStore::open(store_dir_ + "/" + record.file);
      SequenceView view = packed->view(0);
      if (&view.alphabet() != &alphabet_for(matrix)) {
        throw store::StoreError(
            store::StoreError::Kind::kBadRecord,
            "payload alphabet does not match the recorded matrix family");
      }
      if (view.size() != record.residues) {
        throw store::StoreError(
            store::StoreError::Kind::kBadRecord,
            "payload holds " + std::to_string(view.size()) +
                " residues but the record promises " +
                std::to_string(record.residues));
      }
      // The k-mer index is *not* rebuilt here: boot stays O(records),
      // and the first SEARCH against the handle rebuilds it lazily.
      refs_.emplace(record.ref_id,
                    RefEntry{nullptr, std::move(view), matrix,
                             record.build_k, record.content_token,
                             record.name});
      if (record.content_token != 0) {
        ref_tokens_.emplace(record.content_token, record.ref_id);
      }
      ++recovery_.recovered;
    } catch (const std::exception& e) {
      // A typed absence, never a failed boot: the handle is gone (its
      // payload vanished or rotted), the rest must still come back.
      ++recovery_.skipped;
      recovery_.warnings.push_back(
          "ref " + std::to_string(record.ref_id) + " (" + record.file +
          "): " + e.what());
    }
  }
  if (max_id >= next_ref_id_) next_ref_id_ = max_id + 1;
  instruments_.refs_live.set(static_cast<double>(refs_.size()));
  instruments_.refs_recovered.add(recovery_.recovered);
  instruments_.recovery_skipped.add(recovery_.skipped);

  // Open (or create) the manifest for this run's seals only after replay
  // read it — the writer's header write would race our own scan.
  registry_ = std::make_unique<store::RegistryWriter>(manifest_path);
}

void AlignmentServer::hygiene_loop() {
  const std::uint32_t timeout_ms = config_.upload_idle_timeout_ms;
  // Tick a few times per timeout so expiry latency stays proportional,
  // but never busier than 4 Hz (and never slower than 100 Hz in tests
  // that shrink the timeout to tens of milliseconds).
  const auto tick = std::chrono::milliseconds(
      timeout_ms == 0
          ? 250
          : std::max<std::uint32_t>(
                10, std::min<std::uint32_t>(250, timeout_ms / 4)));
  std::unique_lock<std::mutex> lock(hygiene_mutex_);
  while (!hygiene_stop_) {
    hygiene_cv_.wait_for(lock, tick);
    if (hygiene_stop_) return;
    if (timeout_ms == 0) continue;
    const auto now = std::chrono::steady_clock::now();
    const auto limit = std::chrono::milliseconds(timeout_ms);
    std::size_t reaped = 0;
    {
      std::lock_guard<std::mutex> uploads_lock(uploads_mutex_);
      for (auto it = uploads_.begin(); it != uploads_.end();) {
        if (now - it->second.last_activity >= limit) {
          // StoreWriter's destructor unlinks the partial file; the slot
          // against max_uploads_in_flight frees with the erase.
          it = uploads_.erase(it);
          ++reaped;
        } else {
          ++it;
        }
      }
      if (reaped != 0) {
        instruments_.uploads_active.set(
            static_cast<double>(uploads_.size()));
      }
    }
    if (reaped != 0) instruments_.uploads_reaped.add(reaped);
  }
}

void AlignmentServer::execute_ref_put(Job& job,
                                      const RefPutRequest& request) {
  const auto started = std::chrono::steady_clock::now();
  try {
    // Idempotent replay: a retried REF_PUT whose content token is
    // already mapped answers the existing id — a duplicate send after an
    // ambiguous failure cannot register (and index) the content twice.
    if (request.content_token != 0) {
      std::lock_guard<std::mutex> lock(refs_mutex_);
      const auto tok = ref_tokens_.find(request.content_token);
      if (tok != ref_tokens_.end()) {
        RefPutResponse response;
        response.request_id = request.request_id;
        response.ref_id = tok->second;
        const auto it = refs_.find(tok->second);
        if (it != refs_.end()) {
          response.residues = it->second.view.size();
          if (it->second.index) {
            response.distinct_kmers =
                it->second.index->kmers().distinct_kmers();
          }
        }
        instruments_.completed.add();
        instruments_.ref_dedup_hits.add();
        if (!respond(job.connection, encode(response))) {
          instruments_.write_errors.add();
        }
        return;
      }
    }

    const Alphabet& alphabet = alphabet_for(request.matrix);
    const std::uint32_t k =
        request.k != 0 ? request.k : default_seed_k(config_, request.matrix);
    search::KmerIndex::require_indexable(request.sequence.size());
    const std::string path =
        write_store_file(alphabet, request.sequence, request.name);
    // The durable identity: the client's token when it sent one, else
    // the same derivation the client's retry path uses — every REF_PUT
    // handle gets a content-token payload name and a manifest record.
    const std::uint64_t durable = request.content_token != 0
                                      ? request.content_token
                                      : content_token_for(request);
    std::uint64_t distinct = 0;
    std::uint64_t ref_id = register_store_file(path, request.matrix, k,
                                               &distinct, durable,
                                               request.name);
    const auto done = std::chrono::steady_clock::now();

    if (request.content_token != 0) {
      std::lock_guard<std::mutex> lock(refs_mutex_);
      // Two concurrent registrations of the same content settle on the
      // first mapping; the loser's entry is merely unreferenced.
      const auto winner =
          ref_tokens_.emplace(request.content_token, ref_id).first;
      ref_id = winner->second;
    }

    RefPutResponse response;
    response.request_id = request.request_id;
    response.ref_id = ref_id;
    response.residues = request.sequence.size();
    response.distinct_kmers = distinct;
    response.build_micros = micros_between(started, done);
    instruments_.completed.add();
    instruments_.ref_puts.add();
    instruments_.ref_residues.add(response.residues);
    instruments_.ref_build_seconds.observe(
        static_cast<double>(response.build_micros) * 1e-6);
    if (!respond(job.connection, encode(response))) {
      instruments_.write_errors.add();
    }
  } catch (const search::SubjectTooLarge& e) {
    instruments_.rejected_too_large.add();
    reject(job.connection, request.request_id, ErrorCode::kTooLarge,
           e.what());
  } catch (const std::invalid_argument& e) {
    instruments_.bad_requests.add();
    reject(job.connection, request.request_id, ErrorCode::kBadRequest,
           e.what());
  } catch (const std::exception& e) {
    instruments_.internal_errors.add();
    reject(job.connection, request.request_id, ErrorCode::kInternal,
           e.what());
  }
}

void AlignmentServer::execute_search(Job& job, const SearchRequest& request) {
  const auto started = std::chrono::steady_clock::now();
  try {
    RefEntry entry;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(refs_mutex_);
      const auto it = refs_.find(request.ref_id);
      if (it != refs_.end()) {
        entry = it->second;
        found = true;
      }
    }
    if (!found) {
      instruments_.search_ref_not_found.add();
      reject(job.connection, request.request_id, ErrorCode::kRefNotFound,
             "reference id " + std::to_string(request.ref_id) +
                 " is not registered");
      return;
    }
    if (!entry.index && entry.build_k != 0) {
      // Restart replay deferred this handle's index (boot stays cheap);
      // the first SEARCH rebuilds it from the mmap'd payload and installs
      // it for every later request. Two racing rebuilds are benign — the
      // indexes are identical, the loser's copy is just dropped.
      const auto build_started = std::chrono::steady_clock::now();
      auto rebuilt = std::make_shared<const search::ReferenceIndex>(
          entry.view, entry.build_k);
      instruments_.index_rebuilds.add();
      instruments_.ref_build_seconds.observe(
          static_cast<double>(micros_between(
              build_started, std::chrono::steady_clock::now())) *
          1e-6);
      {
        std::lock_guard<std::mutex> lock(refs_mutex_);
        const auto it = refs_.find(request.ref_id);
        if (it != refs_.end() && !it->second.index) {
          it->second.index = rebuilt;
        }
      }
      entry.index = std::move(rebuilt);
    }
    if (!entry.index) {
      // Registered via SEQ_END with build_index=false: alignable by
      // handle, but not seed-searchable.
      throw std::invalid_argument(
          "reference id " + std::to_string(request.ref_id) +
          " was stored without a k-mer index; re-upload with build_index");
    }
    const Alphabet& alphabet = alphabet_for(request.matrix);
    if (&alphabet != &entry.view.alphabet()) {
      throw std::invalid_argument(
          std::string("matrix ") + to_string(request.matrix) +
          " uses a different alphabet than the reference (registered with " +
          to_string(entry.matrix) + ")");
    }
    if (request.gap_extend > 0) {
      throw std::invalid_argument("gap penalty must be <= 0");
    }
    const ScoringScheme scheme(matrix_for(request.matrix),
                               request.gap_extend);
    const Sequence query(alphabet, request.query);

    search::ChainedSearchParams params = config_.search_defaults;
    if (request.max_hits != 0) params.max_hits = request.max_hits;
    if (request.x_drop != 0) params.x_drop = request.x_drop;
    if (request.gap_weight != 0) params.chain.gap_weight = request.gap_weight;
    if (request.min_chain_score != 0) {
      params.chain.min_chain_score = request.min_chain_score;
    }
    if (request.band_pad != 0) params.band_pad = request.band_pad;
    if (request.max_overlap != 0) params.chain.max_overlap = request.max_overlap;
    if (request.max_positions_per_kmer != 0) {
      params.max_positions_per_kmer = request.max_positions_per_kmer;
    }

    search::ChainedSearchStats stats;
    const std::vector<search::SearchHit> hits =
        search::chained_search(query, *entry.index, scheme, params, &stats);
    const auto done = std::chrono::steady_clock::now();

    // Same contract as ALIGN: a deadline that expired mid-search answers
    // DEADLINE_EXCEEDED, never a stale success.
    std::int64_t deadline_remaining_ms = -1;
    if (request.deadline_ms != 0) {
      const auto deadline =
          job.enqueued + std::chrono::milliseconds(request.deadline_ms);
      if (done >= deadline) {
        instruments_.rejected_deadline.add();
        reject(job.connection, request.request_id,
               ErrorCode::kDeadlineExceeded,
               "deadline of " + std::to_string(request.deadline_ms) +
                   " ms expired during execution; result discarded");
        return;
      }
      deadline_remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                done)
              .count();
    }

    SearchResponse response;
    response.request_id = request.request_id;
    response.hits.reserve(hits.size());
    for (const search::SearchHit& hit : hits) {
      WireHit wire;
      wire.score = hit.alignment.score;
      wire.q_begin = hit.alignment.a_begin;
      wire.q_end = hit.alignment.a_end;
      wire.s_begin = hit.alignment.b_begin;
      wire.s_end = hit.alignment.b_end;
      if (!request.score_only) wire.cigar = hit.alignment.cigar();
      response.hits.push_back(std::move(wire));
    }
    response.anchors = stats.anchors;
    response.chains = stats.chains;
    response.queue_micros = micros_between(job.enqueued, started);
    response.exec_micros = micros_between(started, done);
    response.deadline_remaining_ms = deadline_remaining_ms;

    instruments_.completed.add();
    instruments_.search_completed.add();
    instruments_.search_hits.add(response.hits.size());
    instruments_.search_anchors.add(stats.anchors);
    instruments_.queue_seconds.observe(
        static_cast<double>(response.queue_micros) * 1e-6);
    instruments_.search_exec_seconds.observe(
        static_cast<double>(response.exec_micros) * 1e-6);
    if (!respond(job.connection, encode(response))) {
      instruments_.write_errors.add();
    }
  } catch (const std::invalid_argument& e) {
    instruments_.bad_requests.add();
    reject(job.connection, request.request_id, ErrorCode::kBadRequest,
           e.what());
  } catch (const std::exception& e) {
    instruments_.internal_errors.add();
    reject(job.connection, request.request_id, ErrorCode::kInternal,
           e.what());
  }
}

void AlignmentServer::handle_seq_begin(
    const std::shared_ptr<Connection>& connection,
    const SeqBeginRequest& request) {
  instruments_.requests.add();
  if (draining_.load(std::memory_order_acquire)) {
    instruments_.rejected_shutdown.add();
    reject(connection, request.request_id, ErrorCode::kShuttingDown,
           "server is draining");
    return;
  }
  if (request.upload_token == 0) {
    instruments_.bad_requests.add();
    reject(connection, request.request_id, ErrorCode::kBadRequest,
           "upload token must be nonzero");
    return;
  }
  if (request.total_residues > config_.max_store_residues) {
    instruments_.rejected_too_large.add();
    reject(connection, request.request_id, ErrorCode::kTooLarge,
           "declared upload of " + std::to_string(request.total_residues) +
               " residues exceeds the store limit of " +
               std::to_string(config_.max_store_residues));
    return;
  }
  if (injector_ && injector_->active() && injector_->inject_reject()) {
    instruments_.rejected_overloaded.add();
    reject(connection, request.request_id, ErrorCode::kOverloaded,
           "fault injection: admission rejected");
    return;
  }
  try {
    SeqOkResponse response;
    response.request_id = request.request_id;
    response.upload_token = request.upload_token;
    {
      std::lock_guard<std::mutex> lock(uploads_mutex_);
      auto it = uploads_.find(request.upload_token);
      if (it != uploads_.end()) {
        // Resume: a re-BEGIN with a known token answers how far the
        // previous attempt got; the client continues from next_offset.
        instruments_.upload_resumes.add();
        it->second.last_activity = std::chrono::steady_clock::now();
        response.next_offset = it->second.received;
        response.residues = it->second.received;
      } else {
        if (uploads_.size() >= config_.max_uploads_in_flight) {
          instruments_.rejected_overloaded.add();
          reject(connection, request.request_id, ErrorCode::kOverloaded,
                 "too many uploads in flight (" +
                     std::to_string(config_.max_uploads_in_flight) + ")");
          return;
        }
        const Alphabet& alphabet = alphabet_for(request.matrix);
        Upload upload;
        upload.path =
            store_dir_ + "/up" +
            std::to_string(
                next_store_file_.fetch_add(1, std::memory_order_relaxed)) +
            ".flsa";
        upload.writer =
            std::make_unique<store::StoreWriter>(upload.path, alphabet);
        upload.matrix = request.matrix;
        upload.name = request.name;
        upload.declared_total = request.total_residues;
        upload.rolling_hash = kFnvOffsetBasis;
        upload.last_activity = std::chrono::steady_clock::now();
        uploads_.emplace(request.upload_token, std::move(upload));
        instruments_.uploads_started.add();
        instruments_.uploads_active.set(static_cast<double>(uploads_.size()));
      }
    }
    instruments_.completed.add();
    if (!respond(connection, encode(response))) {
      instruments_.write_errors.add();
    }
  } catch (const std::exception& e) {
    instruments_.internal_errors.add();
    reject(connection, request.request_id, ErrorCode::kInternal, e.what());
  }
}

void AlignmentServer::handle_seq_chunk(
    const std::shared_ptr<Connection>& connection,
    const SeqChunkRequest& request) {
  instruments_.requests.add();
  if (draining_.load(std::memory_order_acquire)) {
    instruments_.rejected_shutdown.add();
    reject(connection, request.request_id, ErrorCode::kShuttingDown,
           "server is draining");
    return;
  }
  try {
    SeqOkResponse response;
    response.request_id = request.request_id;
    response.upload_token = request.upload_token;
    {
      std::lock_guard<std::mutex> lock(uploads_mutex_);
      const auto it = uploads_.find(request.upload_token);
      if (it == uploads_.end()) {
        instruments_.bad_requests.add();
        reject(connection, request.request_id, ErrorCode::kBadRequest,
               "unknown upload token " +
                   std::to_string(request.upload_token) +
                   " (send SEQ_BEGIN first)");
        return;
      }
      Upload& upload = it->second;
      upload.last_activity = std::chrono::steady_clock::now();
      const std::uint64_t chunk_end =
          add_sat_u64(request.offset, request.data.size());
      if (chunk_end <= upload.received) {
        // Replay of bytes already applied (a retry after a lost SEQ_OK):
        // acknowledge idempotently, append nothing.
        response.next_offset = upload.received;
        response.residues = upload.received;
      } else if (request.offset != upload.received) {
        // A gap (or partial overlap) — the session stays open so the
        // client can re-BEGIN, learn next_offset, and resume correctly.
        instruments_.bad_requests.add();
        reject(connection, request.request_id, ErrorCode::kBadRequest,
               "chunk at offset " + std::to_string(request.offset) +
                   " does not resume at " + std::to_string(upload.received));
        return;
      } else {
        if (chunk_end > config_.max_store_residues ||
            (upload.declared_total != 0 &&
             chunk_end > upload.declared_total)) {
          // Past the declared (or absolute) size: the session is void.
          const std::string message =
              "upload grew to " + std::to_string(chunk_end) +
              " residues, past " +
              std::to_string(upload.declared_total != 0
                                 ? upload.declared_total
                                 : config_.max_store_residues);
          uploads_.erase(it);  // StoreWriter dtor unlinks the partial file
          instruments_.uploads_active.set(
              static_cast<double>(uploads_.size()));
          instruments_.rejected_too_large.add();
          reject(connection, request.request_id, ErrorCode::kTooLarge,
                 message);
          return;
        }
        const std::uint64_t rolled =
            fnv1a64(request.data.data(), request.data.size(),
                    upload.rolling_hash);
        if (request.prefix_hash != 0 && request.prefix_hash != rolled) {
          // The client's prefix checksum disagrees with what the store
          // actually received: some earlier byte was corrupted in
          // flight, so nothing already written can be trusted.
          uploads_.erase(it);
          instruments_.uploads_active.set(
              static_cast<double>(uploads_.size()));
          instruments_.bad_requests.add();
          reject(connection, request.request_id, ErrorCode::kBadRequest,
                 "prefix checksum mismatch at offset " +
                     std::to_string(chunk_end) + "; upload aborted");
          return;
        }
        try {
          upload.writer->append_letters(request.data);
        } catch (const std::invalid_argument& e) {
          const std::string message = e.what();
          uploads_.erase(it);
          instruments_.uploads_active.set(
              static_cast<double>(uploads_.size()));
          instruments_.bad_requests.add();
          reject(connection, request.request_id, ErrorCode::kBadRequest,
                 message + "; upload aborted");
          return;
        }
        upload.received = chunk_end;
        upload.rolling_hash = rolled;
        instruments_.upload_chunks.add();
        instruments_.upload_bytes.add(request.data.size());
        response.next_offset = upload.received;
        response.residues = upload.received;
      }
    }
    instruments_.completed.add();
    if (!respond(connection, encode(response))) {
      instruments_.write_errors.add();
    }
  } catch (const std::exception& e) {
    instruments_.internal_errors.add();
    reject(connection, request.request_id, ErrorCode::kInternal, e.what());
  }
}

void AlignmentServer::handle_seq_end(
    const std::shared_ptr<Connection>& connection,
    const SeqEndRequest& request) {
  instruments_.requests.add();
  try {
    Upload upload;
    {
      std::lock_guard<std::mutex> lock(uploads_mutex_);
      const auto it = uploads_.find(request.upload_token);
      if (it == uploads_.end()) {
        instruments_.bad_requests.add();
        reject(connection, request.request_id, ErrorCode::kBadRequest,
               "unknown upload token " +
                   std::to_string(request.upload_token) +
                   " (send SEQ_BEGIN first)");
        return;
      }
      it->second.last_activity = std::chrono::steady_clock::now();
      if (request.total_residues != it->second.received) {
        // Wrong length but the bytes present are fine: keep the session
        // so the client can resume the missing tail.
        instruments_.bad_requests.add();
        reject(connection, request.request_id, ErrorCode::kBadRequest,
               "SEQ_END declares " + std::to_string(request.total_residues) +
                   " residues but " + std::to_string(it->second.received) +
                   " were received; resume from there or abort");
        return;
      }
      if (request.total_hash != 0 &&
          request.total_hash != it->second.rolling_hash) {
        const std::string message =
            "whole-sequence checksum mismatch; upload aborted";
        uploads_.erase(it);
        instruments_.uploads_active.set(static_cast<double>(uploads_.size()));
        instruments_.bad_requests.add();
        reject(connection, request.request_id, ErrorCode::kBadRequest,
               message);
        return;
      }
      upload = std::move(it->second);
      uploads_.erase(it);
      instruments_.uploads_active.set(static_cast<double>(uploads_.size()));
    }
    // Seal and register outside uploads_mutex_: finalize fsyncs and a
    // requested index build is CPU work; neither should stall other
    // connections' chunks.
    std::uint32_t build_k = 0;
    if (request.build_index) {
      search::KmerIndex::require_indexable(upload.received);
      build_k = request.k != 0 ? request.k
                               : default_seed_k(config_, upload.matrix);
    }
    upload.writer->finish_record(upload.name);
    upload.writer->finalize();
    upload.writer.reset();

    std::uint64_t distinct = 0;
    const std::uint64_t ref_id = register_store_file(
        upload.path, upload.matrix, build_k, &distinct,
        durable_token(upload.rolling_hash, upload.matrix), upload.name);
    instruments_.uploads_sealed.add();
    instruments_.ref_puts.add();
    instruments_.ref_residues.add(upload.received);
    instruments_.completed.add();

    SeqOkResponse response;
    response.request_id = request.request_id;
    response.upload_token = request.upload_token;
    response.next_offset = upload.received;
    response.ref_id = ref_id;
    response.residues = upload.received;
    if (!respond(connection, encode(response))) {
      instruments_.write_errors.add();
    }
  } catch (const search::SubjectTooLarge& e) {
    instruments_.rejected_too_large.add();
    reject(connection, request.request_id, ErrorCode::kTooLarge, e.what());
  } catch (const std::invalid_argument& e) {
    instruments_.bad_requests.add();
    reject(connection, request.request_id, ErrorCode::kBadRequest, e.what());
  } catch (const std::exception& e) {
    instruments_.internal_errors.add();
    reject(connection, request.request_id, ErrorCode::kInternal, e.what());
  }
}

void AlignmentServer::execute_align_ref(Aligner& aligner, Job& job,
                                        const AlignRefRequest& request) {
  const auto started = std::chrono::steady_clock::now();
  try {
    RefEntry entry_a;
    RefEntry entry_b;
    bool found_a = false;
    bool found_b = request.ref_b == 0;  // inline b needs no lookup
    {
      std::lock_guard<std::mutex> lock(refs_mutex_);
      const auto a_it = refs_.find(request.ref_a);
      if (a_it != refs_.end()) {
        entry_a = a_it->second;
        found_a = true;
      }
      if (request.ref_b != 0) {
        const auto b_it = refs_.find(request.ref_b);
        if (b_it != refs_.end()) {
          entry_b = b_it->second;
          found_b = true;
        }
      }
    }
    if (!found_a || !found_b) {
      instruments_.search_ref_not_found.add();
      reject(job.connection, request.request_id, ErrorCode::kRefNotFound,
             "reference id " +
                 std::to_string(found_a ? request.ref_b : request.ref_a) +
                 " is not registered");
      return;
    }
    const Alphabet& alphabet = alphabet_for(request.matrix);
    if (&alphabet != &entry_a.view.alphabet() ||
        (request.ref_b != 0 && &alphabet != &entry_b.view.alphabet())) {
      throw std::invalid_argument(
          std::string("matrix ") + to_string(request.matrix) +
          " uses a different alphabet than the stored reference");
    }
    if (request.gap_open > 0 || request.gap_extend > 0) {
      throw std::invalid_argument("gap penalties must be <= 0");
    }

    // Materialize the packed views into byte sequences for the DP engine:
    // linear in the sequence lengths (megabytes), while the matrix the
    // band avoids is quadratic (terabytes at this scale).
    const Sequence a = entry_a.view.materialize();
    const Sequence b = request.ref_b != 0 ? entry_b.view.materialize()
                                          : Sequence(alphabet, request.b);

    Alignment alignment;
    DpCounters counters;
    if (request.band != 0) {
      if (request.gap_open != 0) {
        throw std::invalid_argument(
            "banded ALIGN_REF requires linear gap penalties (gap_open = 0)");
      }
      // Band geometry: j - i spans [-w, (n - m) + w]; when m - n > 2w the
      // range is empty and no monotone path reaches the corner.
      if (a.size() > b.size() &&
          a.size() - b.size() > 2 * std::uint64_t{request.band}) {
        throw std::invalid_argument(
            "band half-width " + std::to_string(request.band) +
            " cannot cover a length difference of " +
            std::to_string(a.size() - b.size()));
      }
      const ScoringScheme scheme(matrix_for(request.matrix),
                                 request.gap_extend);
      alignment = banded_align(a, b, scheme, request.band, &counters);
    } else {
      const SubstitutionMatrix& matrix = matrix_for(request.matrix);
      const ScoringScheme scheme =
          request.gap_open == 0
              ? ScoringScheme(matrix, request.gap_extend)
              : ScoringScheme(matrix, request.gap_open, request.gap_extend);
      AlignOptions options = aligner.options();
      if (request.k != 0) options.fastlsa.k = request.k;
      if (request.base_case_cells != 0) {
        options.fastlsa.base_case_cells = request.base_case_cells;
      }
      validate(options.fastlsa);
      options.fastlsa.workspace = &aligner.workspace();
      alignment = flsa::align(a, b, scheme, options);
    }
    const auto done = std::chrono::steady_clock::now();

    std::int64_t deadline_remaining_ms = -1;
    if (request.deadline_ms != 0) {
      const auto deadline =
          job.enqueued + std::chrono::milliseconds(request.deadline_ms);
      if (done >= deadline) {
        instruments_.rejected_deadline.add();
        reject(job.connection, request.request_id,
               ErrorCode::kDeadlineExceeded,
               "deadline of " + std::to_string(request.deadline_ms) +
                   " ms expired during execution; result discarded");
        return;
      }
      deadline_remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                done)
              .count();
    }

    const std::string cigar =
        request.score_only ? std::string() : alignment.cigar();
    const std::uint64_t cells =
        request.band != 0
            ? counters.cells_stored
            : estimated_cells(a.size(), b.size());

    // Stream the answer in bounded frames: every frame carries the full
    // trailer (authoritative on the last), so a client that only wants
    // the score can stop at frame 0 and a reassembler can size-check as
    // it goes. Always at least one frame, even for an empty cigar.
    const std::size_t slice = config_.align_part_chars != 0
                                  ? config_.align_part_chars
                                  : std::size_t{1} << 20;
    const std::size_t parts =
        cigar.empty() ? 1 : (cigar.size() + slice - 1) / slice;
    instruments_.completed.add();
    instruments_.cells.add(cells);
    instruments_.queue_seconds.observe(
        static_cast<double>(micros_between(job.enqueued, started)) * 1e-6);
    instruments_.exec_seconds.observe(
        static_cast<double>(micros_between(started, done)) * 1e-6);
    for (std::size_t part = 0; part < parts; ++part) {
      AlignPartResponse response;
      response.request_id = request.request_id;
      response.seq = static_cast<std::uint32_t>(part);
      response.last = part + 1 == parts;
      response.score = alignment.score;
      response.cells = cells;
      response.queue_micros = micros_between(job.enqueued, started);
      response.exec_micros = micros_between(started, done);
      response.deadline_remaining_ms = deadline_remaining_ms;
      if (!cigar.empty()) {
        const std::size_t begin = part * slice;
        response.cigar_part =
            cigar.substr(begin, std::min(slice, cigar.size() - begin));
      }
      instruments_.align_parts.add();
      if (!respond(job.connection, encode(response))) {
        instruments_.write_errors.add();
        return;  // peer is gone; the remaining parts have no reader
      }
    }
  } catch (const std::invalid_argument& e) {
    instruments_.bad_requests.add();
    reject(job.connection, request.request_id, ErrorCode::kBadRequest,
           e.what());
  } catch (const std::exception& e) {
    instruments_.internal_errors.add();
    reject(job.connection, request.request_id, ErrorCode::kInternal,
           e.what());
  }
}

void AlignmentServer::answer_stats(
    const std::shared_ptr<Connection>& connection,
    const StatsRequest& request) {
  // Refresh the router-facing load gauges at the sample point so a STATS
  // poll always sees current depth/in-flight, not the last transition.
  instruments_.queue_depth.set(static_cast<double>(queue_.size()));
  instruments_.in_flight.set(
      static_cast<double>(jobs_in_flight_.load(std::memory_order_acquire)));
  instruments_.uptime_ms.set(static_cast<double>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started_at_)
          .count()));
  StatsResponse response;
  response.request_id = request.request_id;
  for (const obs::MetricsRegistry::Sample& sample :
       obs::metrics().snapshot()) {
    response.entries.emplace_back(sample.name, sample.value);
  }
  respond(connection, encode(response));
}

void AlignmentServer::answer_ref_list(
    const std::shared_ptr<Connection>& connection,
    const RefListRequest& request) {
  instruments_.requests.add();
  RefListResponse response;
  response.request_id = request.request_id;
  {
    std::lock_guard<std::mutex> lock(refs_mutex_);
    response.refs.reserve(refs_.size());
    for (const auto& [id, entry] : refs_) {
      RefListEntry item;
      item.ref_id = id;
      item.content_token = entry.content_token;
      item.residues = entry.view.size();
      item.matrix = entry.matrix;
      item.k = entry.build_k;
      item.indexed = entry.build_k != 0;
      item.name = entry.name;
      response.refs.push_back(std::move(item));
    }
  }
  instruments_.completed.add();
  if (!respond(connection, encode(response))) {
    instruments_.write_errors.add();
  }
}

bool AlignmentServer::respond(const std::shared_ptr<Connection>& connection,
                              const std::string& payload) {
  // Write-site faults are decided (and delay faults slept) before taking
  // the write mutex, so a stalled injector never serializes every other
  // responder on this connection.
  WriteFault fault = WriteFault::kNone;
  if (injector_ && injector_->active()) fault = injector_->inject_write();

  std::lock_guard<std::mutex> lock(connection->write_mutex);
  if (!connection->open) return false;
  try {
    switch (fault) {
      case WriteFault::kDrop:
        // The network ate the whole answer: kill the connection.
        connection->open = false;
        ::shutdown(connection->fd, SHUT_RDWR);
        return false;
      case WriteFault::kTruncate: {
        // Server-died-mid-write: send a strict prefix of the frame, then
        // kill. The peer must surface a typed TransportError, never a
        // hang (framing promised more bytes) or a garbage score.
        const std::string wire = frame_bytes(payload);
        const std::size_t cut = injector_->truncate_point(wire.size());
        (void)write_all(connection->fd,
                        std::string_view(wire).substr(0, cut));
        connection->open = false;
        ::shutdown(connection->fd, SHUT_RDWR);
        return false;
      }
      case WriteFault::kCorrupt: {
        // Damaged-but-framed bytes: always a typed decode error on the
        // peer (see FaultInjector::corrupt), never a wrong-score answer.
        std::string damaged = payload;
        FaultInjector::corrupt(damaged);
        return write_frame(connection->fd, damaged);
      }
      case WriteFault::kNone:
        break;
    }
    return write_frame(connection->fd, payload);
  } catch (const std::exception&) {
    return false;  // peer is gone; dropping the answer is the contract
  }
}

void AlignmentServer::reject(const std::shared_ptr<Connection>& connection,
                             std::uint64_t request_id, ErrorCode code,
                             const std::string& message) {
  ErrorResponse response;
  response.request_id = request_id;
  response.code = code;
  response.message = message;
  if (!respond(connection, encode(response))) {
    instruments_.write_errors.add();
  }
}

}  // namespace service
}  // namespace flsa
