// Deterministic fault injection for the alignment service.
//
// A FaultPlan describes, as independent per-event probabilities, the ways
// a real deployment misbehaves: connections dropped mid-stream, stalled
// reads and writes, frames truncated by a peer dying mid-write, corrupted
// payload bytes, and admission rejections under synthetic overload. The
// plan is seeded, so a CI run replays the same fault schedule every time,
// and it is runtime-configurable (`flsa_serve --fault-plan`), so the same
// binary that serves production traffic can be flipped into a chaos
// target.
//
// The server consults one FaultInjector (thread-safe, one seeded RNG) at
// three sites:
//   * admission  — before the queue: inject_reject() forces an OVERLOADED
//                  answer, exercising the client's retry/backoff path
//   * read       — before each frame read: inject_read() may stall the
//                  reader or kill the connection
//   * write      — around each response write: inject_write() may stall,
//                  kill the connection, truncate the frame (the classic
//                  "server died mid-write" the client must surface as a
//                  typed TransportError), or corrupt the payload
//
// Corruption damages the payload's *version byte*, never the length
// prefix: framing stays intact (no client hang waiting for phantom
// bytes) and the damage is always detectable, so the chaos contract —
// every request terminates in a bit-identical correct score or a typed
// error — stays provable. Undetectably-wrong bytes from a peer are not a
// transport fault, they are a byzantine peer, which no client can catch.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace flsa {
namespace service {

/// Seeded, per-site fault probabilities. All probabilities live in
/// [0, 1]; the default plan injects nothing.
struct FaultPlan {
  std::uint64_t seed = 1;         ///< RNG seed; same seed, same schedule
  double reject = 0.0;            ///< admission: forced OVERLOADED answer
  double drop = 0.0;              ///< read/write: kill the connection
  double delay = 0.0;             ///< read/write: stall for delay_ms
  std::uint32_t delay_ms = 10;    ///< stall duration for delay faults
  double truncate = 0.0;          ///< write: send a partial frame, kill
  double corrupt = 0.0;           ///< write: damage the version byte

  /// True when any probability is nonzero (the server skips every fault
  /// check otherwise — an inactive plan costs nothing on the hot path).
  bool enabled() const {
    return reject > 0.0 || drop > 0.0 || delay > 0.0 || truncate > 0.0 ||
           corrupt > 0.0;
  }
};

/// Parses the --fault-plan grammar: comma-separated `key=value` pairs.
///   seed=N            RNG seed (default 1)
///   reject=P          admission rejection probability
///   drop=P            connection-drop probability (read and write sites)
///   delay=P or P:MS   stall probability, optional stall milliseconds
///   truncate=P        partial-frame-write probability
///   corrupt=P         payload-corruption probability
/// Example: "seed=42,reject=0.2,drop=0.05,delay=0.1:25,truncate=0.05".
/// Throws std::invalid_argument on unknown keys, malformed numbers,
/// probabilities outside [0, 1], or delays above 60000 ms.
FaultPlan parse_fault_plan(std::string_view spec);

/// Canonical round-trippable rendering of a plan (parse(to_string(p))
/// yields p); "off" for an inactive plan.
std::string to_string(const FaultPlan& plan);

/// What inject_write() decided for one response write.
enum class WriteFault : std::uint8_t {
  kNone,      ///< write the frame normally
  kDrop,      ///< kill the connection instead of writing
  kTruncate,  ///< send a strict prefix of the frame, then kill
  kCorrupt,   ///< damage the payload, send the full frame
};

/// What inject_read() decided for one frame read.
enum class ReadFault : std::uint8_t {
  kNone,  ///< read normally
  kDrop,  ///< kill the connection instead of reading
};

/// Thread-safe fault decision source. One injector per server; every
/// decision consumes draws from a single seeded generator, and every
/// injected fault ticks a `service.fault.*` counter in the obs registry
/// so chaos runs can be audited from STATS.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  bool active() const { return plan_.enabled(); }

  /// Admission site. True: answer OVERLOADED without queueing.
  bool inject_reject();

  /// Read site. Sleeps inline on a delay fault (a stalled reader is the
  /// fault), then reports whether to kill the connection.
  ReadFault inject_read();

  /// Write site. Sleeps inline on a delay fault, then reports the action
  /// for the frame about to be written.
  WriteFault inject_write();

  /// For WriteFault::kTruncate: how many of `frame_size` on-the-wire
  /// bytes to actually send — always a strict prefix (< frame_size), so
  /// the peer observes EOF mid-frame, never a valid short frame.
  std::size_t truncate_point(std::size_t frame_size);

  /// For WriteFault::kCorrupt: damages the payload in place (version
  /// byte XOR 0xA5 — guaranteed to decode as a typed error, see header
  /// comment). No-op on an empty payload.
  static void corrupt(std::string& payload);

 private:
  /// Uniform draw in [0, 1) from the seeded generator (locked).
  double uniform();
  std::uint64_t next_u64();

  FaultPlan plan_;
  std::mutex mutex_;
  std::uint64_t state_;
};

}  // namespace service
}  // namespace flsa
