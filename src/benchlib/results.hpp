// Optional machine-readable bench output.
//
// When the environment variable FLSA_BENCH_CSV_DIR names a directory,
// every CsvSink writes its rows to <dir>/<name>.csv alongside the human
// tables on stdout, so plots and regression dashboards can be built from
// the same run. Without the variable, sinks are no-ops.
#pragma once

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "support/csv.hpp"

namespace flsa {
namespace bench {

class CsvSink {
 public:
  /// Opens <FLSA_BENCH_CSV_DIR>/<name>.csv and writes the header, or
  /// becomes a no-op when the variable is unset/empty.
  CsvSink(const std::string& name, std::vector<std::string> header);

  /// True when rows are actually being persisted.
  bool enabled() const { return writer_ != nullptr; }

  /// Path of the file being written ("" when disabled).
  const std::string& path() const { return path_; }

  /// Writes one row (no-op when disabled).
  void row(const std::vector<std::string>& cells);

 private:
  std::string path_;
  std::unique_ptr<std::ofstream> file_;
  std::unique_ptr<CsvWriter> writer_;
};

}  // namespace bench
}  // namespace flsa
