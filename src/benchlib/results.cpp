#include "benchlib/results.hpp"

#include <cstdlib>

namespace flsa {
namespace bench {

CsvSink::CsvSink(const std::string& name, std::vector<std::string> header) {
  const char* dir = std::getenv("FLSA_BENCH_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  path_ = std::string(dir) + "/" + name + ".csv";
  file_ = std::make_unique<std::ofstream>(path_);
  if (!*file_) {
    // Unwritable directory: degrade to a no-op rather than failing the
    // bench run.
    path_.clear();
    file_.reset();
    return;
  }
  writer_ = std::make_unique<CsvWriter>(*file_, std::move(header));
}

void CsvSink::row(const std::vector<std::string>& cells) {
  if (writer_) writer_->write_row(cells);
}

}  // namespace bench
}  // namespace flsa
