// Timing helpers shared by the bench binaries.
#pragma once

#include <functional>
#include <string>

#include "support/stats.hpp"

namespace flsa {
namespace bench {

/// Runs `fn` `reps` times (after `warmup` unmeasured runs) and summarizes
/// the wall-clock seconds of the measured runs.
Summary time_runs(const std::function<void()>& fn, int reps = 3,
                  int warmup = 1);

/// Formats cells-per-second throughput like "123.4 Mcell/s".
std::string throughput(double cells, double seconds);

}  // namespace bench
}  // namespace flsa
