// Timing helpers shared by the bench binaries.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dp/kernel.hpp"
#include "support/stats.hpp"

namespace flsa {
namespace bench {

/// Runs `fn` `reps` times (after `warmup` unmeasured runs) and summarizes
/// the wall-clock seconds of the measured runs.
Summary time_runs(const std::function<void()>& fn, int reps = 3,
                  int warmup = 1);

/// Formats cells-per-second throughput like "123.4 Mcell/s".
std::string throughput(double cells, double seconds);

/// Raw cells-per-second rate (0 when `seconds` is not positive).
double cells_per_second(double cells, double seconds);

/// The sweep-kernel variants worth benchmarking on this host: always
/// kScalar, plus kSimd when the CPU has a vector ISA. Benches iterate this
/// to report per-kernel-variant throughput.
std::vector<KernelKind> kernel_variants();

/// Label for a per-kernel bench row, e.g. "fastlsa[simd]".
std::string kernel_label(const std::string& base, KernelKind kind);

}  // namespace bench
}  // namespace flsa
