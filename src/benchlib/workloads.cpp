#include "benchlib/workloads.hpp"

#include "scoring/builtin.hpp"

namespace flsa {
namespace bench {

SequencePair Workload::make() const {
  Xoshiro256 rng(seed ^ (length * 0x9e3779b97f4a7c15ULL));
  MutationModel model;
  model.substitution_rate = divergence;
  model.insertion_rate = divergence / 6.0;
  model.deletion_rate = divergence / 6.0;
  const Alphabet& alphabet =
      protein ? Alphabet::protein() : Alphabet::dna();
  SequencePair pair = homologous_pair(alphabet, length, model, rng);
  return pair;
}

const ScoringScheme& Workload::scheme() const {
  static const ScoringScheme protein_scheme = ScoringScheme::paper_default();
  static const SubstitutionMatrix dna_matrix = scoring::dna();
  static const ScoringScheme dna_scheme(dna_matrix, -10);
  return protein ? protein_scheme : dna_scheme;
}

std::vector<Workload> standard_suite(std::size_t max_length) {
  // Length ladder mirroring the paper's span of problem sizes, scaled to
  // what a CI-class machine sweeps in seconds.
  static constexpr std::size_t kLadder[] = {500,  1000, 2000,
                                            4000, 8000, 16000};
  std::vector<Workload> suite;
  for (std::size_t length : kLadder) {
    if (length > max_length) break;
    suite.push_back(sized_workload(length, /*protein=*/true));
  }
  return suite;
}

Workload sized_workload(std::size_t length, bool protein,
                        std::uint64_t seed) {
  Workload w;
  w.name = (protein ? "prot-" : "dna-") + std::to_string(length);
  w.protein = protein;
  w.length = length;
  w.divergence = 0.15;
  w.seed = seed;
  return w;
}

}  // namespace bench
}  // namespace flsa
