#include "benchlib/runner.hpp"

#include <sstream>
#include <vector>

#include "support/assert.hpp"
#include "support/timer.hpp"

namespace flsa {
namespace bench {

Summary time_runs(const std::function<void()>& fn, int reps, int warmup) {
  FLSA_REQUIRE(reps >= 1);
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> seconds;
  seconds.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    Timer timer;
    fn();
    seconds.push_back(timer.seconds());
  }
  return summarize(seconds);
}

std::string throughput(double cells, double seconds) {
  std::ostringstream os;
  const double rate = seconds > 0 ? cells / seconds : 0.0;
  os.precision(1);
  os << std::fixed;
  if (rate >= 1e9) {
    os << rate / 1e9 << " Gcell/s";
  } else if (rate >= 1e6) {
    os << rate / 1e6 << " Mcell/s";
  } else {
    os << rate / 1e3 << " kcell/s";
  }
  return os.str();
}

}  // namespace bench
}  // namespace flsa
