#include "benchlib/runner.hpp"

#include <sstream>
#include <vector>

#include "dp/kernel_simd.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace flsa {
namespace bench {

Summary time_runs(const std::function<void()>& fn, int reps, int warmup) {
  FLSA_REQUIRE(reps >= 1);
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> seconds;
  seconds.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    Timer timer;
    fn();
    seconds.push_back(timer.seconds());
  }
  return summarize(seconds);
}

double cells_per_second(double cells, double seconds) {
  return seconds > 0 ? cells / seconds : 0.0;
}

std::vector<KernelKind> kernel_variants() {
  std::vector<KernelKind> variants{KernelKind::kScalar};
  if (simd_kernel_available()) {
    variants.push_back(KernelKind::kSimd);
    // The narrow saturating tiers run (and stay exact) everywhere, but
    // their throughput story is the vector lanes — bench them only where
    // the SIMD cores run.
    variants.push_back(KernelKind::kInt16);
    variants.push_back(KernelKind::kInt8);
  }
  return variants;
}

std::string kernel_label(const std::string& base, KernelKind kind) {
  return base + "[" + to_string(kind) + "]";
}

std::string throughput(double cells, double seconds) {
  std::ostringstream os;
  const double rate = seconds > 0 ? cells / seconds : 0.0;
  os.precision(1);
  os << std::fixed;
  if (rate >= 1e9) {
    os << rate / 1e9 << " Gcell/s";
  } else if (rate >= 1e6) {
    os << rate / 1e6 << " Mcell/s";
  } else {
    os << rate / 1e3 << " kcell/s";
  }
  return os.str();
}

}  // namespace bench
}  // namespace flsa
