// Umbrella header: the full public API of the FastLSA library.
//
// Typical use:
//   #include "flsa/flsa.hpp"
//   flsa::Sequence a(flsa::Alphabet::protein(), "TLDKLLKD");
//   flsa::Sequence b(flsa::Alphabet::protein(), "TDVLKAD");
//   flsa::Alignment aln =
//       flsa::align(a, b, flsa::ScoringScheme::paper_default());
#pragma once

#include "core/advisor.hpp"
#include "core/aligner.hpp"
#include "core/arena.hpp"
#include "core/fastlsa.hpp"
#include "core/local_align.hpp"
#include "core/semiglobal.hpp"
#include "core/textutil.hpp"
#include "dp/alignment.hpp"
#include "dp/antidiagonal.hpp"
#include "dp/banded.hpp"
#include "dp/cooptimal.hpp"
#include "dp/format.hpp"
#include "dp/fullmatrix.hpp"
#include "dp/gotoh.hpp"
#include "dp/kernel.hpp"
#include "dp/kernel_simd.hpp"
#include "dp/local.hpp"
#include "dp/packed_traceback.hpp"
#include "dp/semiglobal.hpp"
#include "dp/path.hpp"
#include "dp/query_profile.hpp"
#include "hirschberg/hirschberg.hpp"
#include "hirschberg/hirschberg_affine.hpp"
#include "msa/center_star.hpp"
#include "msa/progressive.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "parallel/batch.hpp"
#include "parallel/parallel_fastlsa.hpp"
#include "search/seed_extend.hpp"

#include "scoring/builtin.hpp"
#include "scoring/matrix_io.hpp"
#include "scoring/scheme.hpp"
#include "scoring/statistics.hpp"
#include "sequence/fasta.hpp"
#include "sequence/fastq.hpp"
#include "sequence/generate.hpp"
#include "sequence/sequence.hpp"
#include "simexec/model.hpp"
#include "simexec/gantt.hpp"
#include "simexec/simulate.hpp"
