#include "scoring/matrix.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace flsa {

SubstitutionMatrix::SubstitutionMatrix(const Alphabet& alphabet,
                                       std::string name)
    : alphabet_(&alphabet), name_(std::move(name)), size_(alphabet.size()),
      table_(size_ * size_, 0) {}

SubstitutionMatrix::SubstitutionMatrix(const Alphabet& alphabet,
                                       std::string name,
                                       std::vector<Score> row_major)
    : alphabet_(&alphabet), name_(std::move(name)), size_(alphabet.size()),
      table_(std::move(row_major)) {
  FLSA_REQUIRE(table_.size() == size_ * size_);
}

Score SubstitutionMatrix::score(char x, char y) const {
  return at(alphabet_->code(x), alphabet_->code(y));
}

void SubstitutionMatrix::set(Residue x, Residue y, Score value) {
  FLSA_REQUIRE(x < size_ && y < size_);
  table_[static_cast<std::size_t>(x) * size_ + y] = value;
}

void SubstitutionMatrix::set_symmetric(Residue x, Residue y, Score value) {
  set(x, y, value);
  set(y, x, value);
}

bool SubstitutionMatrix::is_symmetric() const {
  for (std::size_t x = 0; x < size_; ++x) {
    for (std::size_t y = x + 1; y < size_; ++y) {
      if (table_[x * size_ + y] != table_[y * size_ + x]) return false;
    }
  }
  return true;
}

Score SubstitutionMatrix::min_score() const {
  return *std::min_element(table_.begin(), table_.end());
}

Score SubstitutionMatrix::max_score() const {
  return *std::max_element(table_.begin(), table_.end());
}

}  // namespace flsa
