// Substitution-matrix file I/O in the NCBI text format:
//
//   # comments
//      A  R  N  D ...
//   A  4 -1 -2 -2 ...
//   R -1  5  0 -2 ...
//
// Lets users drop in their own scoring tables (the paper's own table came
// from a vendor file in exactly this spirit).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "scoring/matrix.hpp"

namespace flsa {
namespace scoring {

/// A matrix loaded from a file owns the alphabet its header declared.
struct LoadedMatrix {
  std::shared_ptr<const Alphabet> alphabet;
  std::shared_ptr<const SubstitutionMatrix> matrix;
};

/// Parses an NCBI-format matrix. Throws std::invalid_argument on malformed
/// input (missing header, ragged rows, mismatched row labels, non-integer
/// scores).
LoadedMatrix read_matrix(std::istream& is, const std::string& name);

LoadedMatrix read_matrix_file(const std::string& path);

/// Writes a matrix in the same format (round-trips through read_matrix).
void write_matrix(std::ostream& os, const SubstitutionMatrix& matrix);

}  // namespace scoring
}  // namespace flsa
