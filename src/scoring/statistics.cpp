#include "scoring/statistics.hpp"

#include <cmath>
#include <stdexcept>

#include "support/assert.hpp"

namespace flsa {
namespace scoring {

std::vector<double> uniform_frequencies(std::size_t alphabet_size) {
  FLSA_REQUIRE(alphabet_size > 0);
  return std::vector<double>(alphabet_size, 1.0 / static_cast<double>(
                                                      alphabet_size));
}

namespace {

void validate_frequencies(const SubstitutionMatrix& matrix,
                          std::span<const double> frequencies) {
  FLSA_REQUIRE(frequencies.size() == matrix.alphabet().size());
  double total = 0.0;
  for (double p : frequencies) {
    FLSA_REQUIRE(p >= 0.0);
    total += p;
  }
  FLSA_REQUIRE(std::abs(total - 1.0) < 1e-6);
}

/// sum_ij p_i p_j e^{lambda s_ij}
double restriction_sum(const SubstitutionMatrix& matrix,
                       std::span<const double> frequencies, double lambda) {
  double sum = 0.0;
  const std::size_t n = matrix.alphabet().size();
  for (Residue x = 0; x < n; ++x) {
    for (Residue y = 0; y < n; ++y) {
      sum += frequencies[x] * frequencies[y] *
             std::exp(lambda * matrix.at(x, y));
    }
  }
  return sum;
}

}  // namespace

double expected_pair_score(const SubstitutionMatrix& matrix,
                           std::span<const double> frequencies) {
  validate_frequencies(matrix, frequencies);
  double expectation = 0.0;
  const std::size_t n = matrix.alphabet().size();
  for (Residue x = 0; x < n; ++x) {
    for (Residue y = 0; y < n; ++y) {
      expectation += frequencies[x] * frequencies[y] * matrix.at(x, y);
    }
  }
  return expectation;
}

double karlin_lambda(const SubstitutionMatrix& matrix,
                     std::span<const double> frequencies, double tolerance) {
  validate_frequencies(matrix, frequencies);
  if (expected_pair_score(matrix, frequencies) >= 0.0) {
    throw std::invalid_argument(
        "Karlin-Altschul lambda requires a negative expected pair score");
  }
  if (matrix.max_score() <= 0) {
    throw std::invalid_argument(
        "Karlin-Altschul lambda requires at least one positive score");
  }
  // f(lambda) = restriction_sum - 1: f(0) = 0, f'(0) = E[s] < 0, and
  // f -> +inf as lambda grows (the positive scores dominate), so a unique
  // positive root exists. Bracket it, then bisect.
  double high = 1.0 / matrix.max_score();
  while (restriction_sum(matrix, frequencies, high) < 1.0) {
    high *= 2.0;
    FLSA_REQUIRE(high < 1e6);
  }
  double low = 0.0;
  while (high - low > tolerance) {
    const double mid = 0.5 * (low + high);
    if (restriction_sum(matrix, frequencies, mid) < 1.0) {
      low = mid;
    } else {
      high = mid;
    }
  }
  return 0.5 * (low + high);
}

KarlinParams karlin_params(const SubstitutionMatrix& matrix,
                           std::span<const double> frequencies) {
  KarlinParams params;
  params.lambda = karlin_lambda(matrix, frequencies);
  return params;
}

double bit_score(Score raw, const KarlinParams& params) {
  FLSA_REQUIRE(params.lambda > 0.0 && params.k > 0.0);
  return (params.lambda * raw - std::log(params.k)) / std::log(2.0);
}

double e_value(Score raw, std::size_t m, std::size_t n,
               const KarlinParams& params) {
  FLSA_REQUIRE(params.lambda > 0.0 && params.k > 0.0);
  return params.k * static_cast<double>(m) * static_cast<double>(n) *
         std::exp(-params.lambda * raw);
}

}  // namespace scoring
}  // namespace flsa
