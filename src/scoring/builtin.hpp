// Built-in substitution matrices.
//
// mdm78() reconstructs the scoring table of the paper: the paper uses the
// PepTool-modified Dayhoff MDM78 matrix "scaled so that each entry is a
// non-negative integer" and publishes a 6-residue excerpt (its Table 1).
// The exact full table is proprietary, so entries outside the excerpt follow
// a documented monotone transform of PAM250 chosen to agree with every
// published entry:
//   diagonal:     16 when PAM250(x,x) <= 2, else 20
//   off-diagonal: 0 when PAM250(x,y) <= 1,
//                 else min(16, 12 + 4*(PAM250(x,y) - 2))
// (the cap keeps every diagonal entry dominant in its row, as in the
// published excerpt)
// This matches Table 1 exactly (A=16; D,K,L,T,V=20; L-V=12; K-L=0 and the
// remaining excerpt zeros) and is unit-tested against it.
#pragma once

#include "scoring/matrix.hpp"

namespace flsa {
namespace scoring {

/// Paper scoring table (see file comment). Protein alphabet, non-negative.
const SubstitutionMatrix& mdm78();

/// Standard Dayhoff PAM250 log-odds matrix (may be negative).
const SubstitutionMatrix& pam250();

/// Standard BLOSUM62 matrix (may be negative).
const SubstitutionMatrix& blosum62();

/// DNA match/mismatch matrix, defaults to the BLAST megablast-style +5/-4.
SubstitutionMatrix dna(Score match = 5, Score mismatch = -4);

/// DNA with ambiguity code N over Alphabet::dna_n(): N against anything
/// (including N) scores `n_score` (neutral by default), other pairs
/// match/mismatch.
SubstitutionMatrix dna_n(Score match = 5, Score mismatch = -4,
                         Score n_score = 0);

/// Identity matrix over any alphabet: `match` on the diagonal, `mismatch`
/// elsewhere. With match=1, mismatch=0 and gap 0 this turns global alignment
/// into longest-common-subsequence, Hirschberg's original problem.
SubstitutionMatrix identity(const Alphabet& alphabet, Score match = 1,
                            Score mismatch = 0);

}  // namespace scoring
}  // namespace flsa
