#include "scoring/matrix_io.hpp"

#include <cctype>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace flsa {
namespace scoring {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("matrix parse error: " + what);
}

}  // namespace

LoadedMatrix read_matrix(std::istream& is, const std::string& name) {
  std::string line;
  std::string header_letters;
  std::vector<std::vector<Score>> rows;
  std::string row_labels;

  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Skip blank and comment lines.
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;

    std::istringstream fields(line);
    if (header_letters.empty()) {
      // Header: the column letters.
      std::string token;
      while (fields >> token) {
        if (token.size() != 1 ||
            !std::isalpha(static_cast<unsigned char>(token[0]))) {
          fail("header must list single letters, got '" + token + "'");
        }
        header_letters.push_back(token[0]);
      }
      if (header_letters.empty()) fail("empty header line");
      continue;
    }
    // Data row: letter then |A| integers.
    std::string label;
    fields >> label;
    if (label.size() != 1) fail("row label must be one letter");
    row_labels.push_back(label[0]);
    std::vector<Score> scores;
    Score value;
    while (fields >> value) scores.push_back(value);
    if (!fields.eof()) fail("non-integer score in row " + label);
    if (scores.size() != header_letters.size()) {
      fail("row " + label + " has " + std::to_string(scores.size()) +
           " scores, expected " + std::to_string(header_letters.size()));
    }
    rows.push_back(std::move(scores));
  }

  if (header_letters.empty()) fail("no header found");
  if (row_labels.size() != header_letters.size()) {
    fail("expected " + std::to_string(header_letters.size()) +
         " rows, found " + std::to_string(row_labels.size()));
  }
  for (std::size_t i = 0; i < row_labels.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(row_labels[i])) !=
        std::toupper(static_cast<unsigned char>(header_letters[i]))) {
      fail(std::string("row label '") + row_labels[i] +
           "' does not match header order");
    }
  }

  LoadedMatrix loaded;
  loaded.alphabet =
      std::make_shared<Alphabet>(header_letters, name + "-alphabet");
  std::vector<Score> flat;
  flat.reserve(rows.size() * rows.size());
  for (const auto& row : rows) {
    flat.insert(flat.end(), row.begin(), row.end());
  }
  loaded.matrix = std::make_shared<SubstitutionMatrix>(
      *loaded.alphabet, name, std::move(flat));
  return loaded;
}

LoadedMatrix read_matrix_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open matrix file: " + path);
  // Derive the matrix name from the file name.
  const auto slash = path.find_last_of('/');
  return read_matrix(in, slash == std::string::npos
                             ? path
                             : path.substr(slash + 1));
}

void write_matrix(std::ostream& os, const SubstitutionMatrix& matrix) {
  const Alphabet& alphabet = matrix.alphabet();
  os << "# " << matrix.name() << "\n  ";
  for (Residue c = 0; c < alphabet.size(); ++c) {
    os << std::setw(4) << alphabet.letter(c);
  }
  os << '\n';
  for (Residue r = 0; r < alphabet.size(); ++r) {
    os << alphabet.letter(r) << ' ';
    for (Residue c = 0; c < alphabet.size(); ++c) {
      os << std::setw(4) << matrix.at(r, c);
    }
    os << '\n';
  }
}

}  // namespace scoring
}  // namespace flsa
