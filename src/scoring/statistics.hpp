// Local-alignment score statistics (Karlin-Altschul).
//
// Homology search needs more than a raw Smith-Waterman score: under the
// Karlin-Altschul theory, ungapped local scores for random sequences
// follow an extreme-value distribution with parameters (lambda, K) derived
// from the scoring matrix and residue frequencies. This module computes
// lambda (the unique positive root of sum_ij p_i p_j e^{lambda*s_ij} = 1),
// the derived bit score, and E-values, giving the bench/example search
// pipelines a principled ranking statistic.
#pragma once

#include <span>
#include <vector>

#include "scoring/matrix.hpp"

namespace flsa {
namespace scoring {

/// Uniform residue frequencies for an alphabet of the given size.
std::vector<double> uniform_frequencies(std::size_t alphabet_size);

/// Expected per-pair score sum_ij p_i p_j s_ij. Karlin-Altschul statistics
/// require this to be negative (otherwise local alignments grow without
/// bound and lambda does not exist).
double expected_pair_score(const SubstitutionMatrix& matrix,
                           std::span<const double> frequencies);

/// Solves sum_ij p_i p_j e^{lambda s_ij} = 1 for lambda > 0 by bisection.
/// Requires a negative expected score and at least one positive entry;
/// throws std::invalid_argument otherwise.
double karlin_lambda(const SubstitutionMatrix& matrix,
                     std::span<const double> frequencies,
                     double tolerance = 1e-9);

/// Karlin-Altschul parameter bundle. K is approximated by the common
/// ungapped heuristic K ~ 0.1 (exact K needs the full Karlin sum); the
/// field is exposed so callers with better estimates can override it.
struct KarlinParams {
  double lambda = 0.0;
  double k = 0.1;
};

KarlinParams karlin_params(const SubstitutionMatrix& matrix,
                           std::span<const double> frequencies);

/// Normalized bit score: (lambda * raw - ln K) / ln 2.
double bit_score(Score raw, const KarlinParams& params);

/// Expected number of chance alignments scoring >= raw in an m x n search
/// space: E = K * m * n * e^{-lambda * raw}.
double e_value(Score raw, std::size_t m, std::size_t n,
               const KarlinParams& params);

}  // namespace scoring
}  // namespace flsa
