#include "scoring/scheme.hpp"

#include "scoring/builtin.hpp"
#include "support/assert.hpp"

namespace flsa {

ScoringScheme::ScoringScheme(const SubstitutionMatrix& matrix,
                             Score gap_per_residue)
    : matrix_(&matrix), gap_open_(0), gap_extend_(gap_per_residue) {
  FLSA_REQUIRE(gap_per_residue <= 0);
}

ScoringScheme::ScoringScheme(const SubstitutionMatrix& matrix, Score gap_open,
                             Score gap_extend)
    : matrix_(&matrix), gap_open_(gap_open), gap_extend_(gap_extend) {
  FLSA_REQUIRE(gap_open <= 0);
  FLSA_REQUIRE(gap_extend <= 0);
}

const ScoringScheme& ScoringScheme::paper_default() {
  static const ScoringScheme instance(scoring::mdm78(), kDefaultGapExtend);
  return instance;
}

}  // namespace flsa
