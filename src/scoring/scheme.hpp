// A full scoring scheme: substitution matrix plus gap model.
//
// The paper uses a linear gap penalty (a constant per gap residue, -10 in
// its examples). The affine model (open + extend, Gotoh) is supported as the
// natural extension; a scheme with gap_open == 0 is linear and every
// algorithm then runs its cheaper linear-gap kernel.
#pragma once

#include "scoring/matrix.hpp"

namespace flsa {

/// The paper's default gap model: linear gaps at -10 per residue
/// (gap_open == 0 selects linear). Every surface that defaults penalties
/// — ScoringScheme::paper_default(), the service wire protocol's
/// AlignRequest, and the CLI tools' --gap/--gap-open flags — reads these
/// two constants, so an AlignRequest that omits penalties aligns with
/// exactly the scheme flsa_align uses by default.
inline constexpr Score kDefaultGapOpen = 0;
inline constexpr Score kDefaultGapExtend = -10;

/// Substitution matrix + gap penalties. Gap penalties are non-positive:
/// a gap of length L costs gap_open + L * gap_extend.
class ScoringScheme {
 public:
  /// Linear gaps: every gap residue costs `gap_per_residue` (must be <= 0).
  ScoringScheme(const SubstitutionMatrix& matrix, Score gap_per_residue);

  /// Affine gaps: a length-L gap costs gap_open + L * gap_extend
  /// (both must be <= 0).
  ScoringScheme(const SubstitutionMatrix& matrix, Score gap_open,
                Score gap_extend);

  const SubstitutionMatrix& matrix() const { return *matrix_; }
  const Alphabet& alphabet() const { return matrix_->alphabet(); }

  Score substitution(Residue x, Residue y) const { return matrix_->at(x, y); }

  bool is_linear() const { return gap_open_ == 0; }
  Score gap_open() const { return gap_open_; }
  Score gap_extend() const { return gap_extend_; }

  /// Total cost of a gap of `length` residues (length >= 1).
  Score gap_cost(std::size_t length) const {
    return gap_open_ + static_cast<Score>(length) * gap_extend_;
  }

  /// The paper's default scheme: MDM78 similarity with linear gap -10.
  static const ScoringScheme& paper_default();

 private:
  const SubstitutionMatrix* matrix_;
  Score gap_open_;
  Score gap_extend_;
};

}  // namespace flsa
