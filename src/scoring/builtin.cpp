#include "scoring/builtin.hpp"

#include <algorithm>
#include <array>

#include "support/assert.hpp"

namespace flsa {
namespace scoring {

namespace {

// Residue order of Alphabet::protein(): ARNDCQEGHILKMFPSTWYV.
constexpr int kNumAmino = 20;

// Published Dayhoff PAM250 log-odds table, row-major in the order above.
constexpr std::array<Score, kNumAmino * kNumAmino> kPam250 = {
    //  A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
/*A*/   2, -2,  0,  0, -2,  0,  0,  1, -1, -1, -2, -1, -1, -3,  1,  1,  1, -6, -3,  0,
/*R*/  -2,  6,  0, -1, -4,  1, -1, -3,  2, -2, -3,  3,  0, -4,  0,  0, -1,  2, -4, -2,
/*N*/   0,  0,  2,  2, -4,  1,  1,  0,  2, -2, -3,  1, -2, -3,  0,  1,  0, -4, -2, -2,
/*D*/   0, -1,  2,  4, -5,  2,  3,  1,  1, -2, -4,  0, -3, -6, -1,  0,  0, -7, -4, -2,
/*C*/  -2, -4, -4, -5, 12, -5, -5, -3, -3, -2, -6, -5, -5, -4, -3,  0, -2, -8,  0, -2,
/*Q*/   0,  1,  1,  2, -5,  4,  2, -1,  3, -2, -2,  1, -1, -5,  0, -1, -1, -5, -4, -2,
/*E*/   0, -1,  1,  3, -5,  2,  4,  0,  1, -2, -3,  0, -2, -5, -1,  0,  0, -7, -4, -2,
/*G*/   1, -3,  0,  1, -3, -1,  0,  5, -2, -3, -4, -2, -3, -5,  0,  1,  0, -7, -5, -1,
/*H*/  -1,  2,  2,  1, -3,  3,  1, -2,  6, -2, -2,  0, -2, -2,  0, -1, -1, -3,  0, -2,
/*I*/  -1, -2, -2, -2, -2, -2, -2, -3, -2,  5,  2, -2,  2,  1, -2, -1,  0, -5, -1,  4,
/*L*/  -2, -3, -3, -4, -6, -2, -3, -4, -2,  2,  6, -3,  4,  2, -3, -3, -2, -2, -1,  2,
/*K*/  -1,  3,  1,  0, -5,  1,  0, -2,  0, -2, -3,  5,  0, -5, -1,  0,  0, -3, -4, -2,
/*M*/  -1,  0, -2, -3, -5, -1, -2, -3, -2,  2,  4,  0,  6,  0, -2, -2, -1, -4, -2,  2,
/*F*/  -3, -4, -3, -6, -4, -5, -5, -5, -2,  1,  2, -5,  0,  9, -5, -3, -3,  0,  7, -1,
/*P*/   1,  0,  0, -1, -3,  0, -1,  0,  0, -2, -3, -1, -2, -5,  6,  1,  0, -6, -5, -1,
/*S*/   1,  0,  1,  0,  0, -1,  0,  1, -1, -1, -3,  0, -2, -3,  1,  2,  1, -2, -3, -1,
/*T*/   1, -1,  0,  0, -2, -1,  0,  0, -1,  0, -2,  0, -1, -3,  0,  1,  3, -5, -3,  0,
/*W*/  -6,  2, -4, -7, -8, -5, -7, -7, -3, -5, -2, -3, -4,  0, -6, -2, -5, 17,  0, -6,
/*Y*/  -3, -4, -2, -4,  0, -4, -4, -5,  0, -1, -1, -4, -2,  7, -5, -3, -3,  0, 10, -4,
/*V*/   0, -2, -2, -2, -2, -2, -2, -1, -2,  4,  2, -2,  2, -1, -1, -1,  0, -6, -4,  4,
};

// Published BLOSUM62 table, row-major in the same residue order.
constexpr std::array<Score, kNumAmino * kNumAmino> kBlosum62 = {
    //  A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
/*A*/   4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0,
/*R*/  -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3,
/*N*/  -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3,
/*D*/  -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3,
/*C*/   0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1,
/*Q*/  -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2,
/*E*/  -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2,
/*G*/   0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3,
/*H*/  -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3,
/*I*/  -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3,
/*L*/  -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1,
/*K*/  -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2,
/*M*/  -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1,
/*F*/  -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1,
/*P*/  -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2,
/*S*/   1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2,
/*T*/   0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0,
/*W*/  -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3,
/*Y*/  -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1,
/*V*/   0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4,
};

SubstitutionMatrix build_from_table(
    const std::array<Score, kNumAmino * kNumAmino>& table, std::string name) {
  const Alphabet& protein = Alphabet::protein();
  FLSA_ASSERT(protein.size() == kNumAmino);
  return SubstitutionMatrix(protein, std::move(name),
                            std::vector<Score>(table.begin(), table.end()));
}

SubstitutionMatrix build_mdm78() {
  const Alphabet& protein = Alphabet::protein();
  SubstitutionMatrix m(protein, "mdm78");
  for (Residue x = 0; x < protein.size(); ++x) {
    for (Residue y = 0; y < protein.size(); ++y) {
      const Score pam = kPam250[static_cast<std::size_t>(x) * kNumAmino + y];
      Score value;
      if (x == y) {
        value = pam <= 2 ? 16 : 20;
      } else {
        value = pam <= 1 ? 0 : std::min<Score>(16, 12 + 4 * (pam - 2));
      }
      m.set(x, y, value);
    }
  }
  return m;
}

}  // namespace

const SubstitutionMatrix& mdm78() {
  static const SubstitutionMatrix instance = build_mdm78();
  return instance;
}

const SubstitutionMatrix& pam250() {
  static const SubstitutionMatrix instance =
      build_from_table(kPam250, "pam250");
  return instance;
}

const SubstitutionMatrix& blosum62() {
  static const SubstitutionMatrix instance =
      build_from_table(kBlosum62, "blosum62");
  return instance;
}

SubstitutionMatrix dna(Score match, Score mismatch) {
  const Alphabet& alphabet = Alphabet::dna();
  SubstitutionMatrix m(alphabet, "dna");
  for (Residue x = 0; x < alphabet.size(); ++x) {
    for (Residue y = 0; y < alphabet.size(); ++y) {
      m.set(x, y, x == y ? match : mismatch);
    }
  }
  return m;
}

SubstitutionMatrix dna_n(Score match, Score mismatch, Score n_score) {
  const Alphabet& alphabet = Alphabet::dna_n();
  SubstitutionMatrix m(alphabet, "dna-n");
  const Residue n_code = alphabet.code('N');
  for (Residue x = 0; x < alphabet.size(); ++x) {
    for (Residue y = 0; y < alphabet.size(); ++y) {
      if (x == n_code || y == n_code) {
        m.set(x, y, n_score);
      } else {
        m.set(x, y, x == y ? match : mismatch);
      }
    }
  }
  return m;
}

SubstitutionMatrix identity(const Alphabet& alphabet, Score match,
                            Score mismatch) {
  SubstitutionMatrix m(alphabet, "identity");
  for (Residue x = 0; x < alphabet.size(); ++x) {
    for (Residue y = 0; y < alphabet.size(); ++y) {
      m.set(x, y, x == y ? match : mismatch);
    }
  }
  return m;
}

}  // namespace scoring
}  // namespace flsa
