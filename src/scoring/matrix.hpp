// Substitution (similarity) matrices: per-residue-pair scores over an
// alphabet. Higher scores denote higher similarity, as in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sequence/alphabet.hpp"

namespace flsa {

/// Alignment score type. 32-bit signed; all kernels use kNegInf as the
/// "unreachable" sentinel, chosen far from the INT32 boundary so that adding
/// a handful of gap penalties can never overflow.
using Score = std::int32_t;

inline constexpr Score kNegInf = INT32_MIN / 4;

/// Dense |A|x|A| score table over an alphabet.
class SubstitutionMatrix {
 public:
  /// All-zero matrix (scores are then set individually).
  SubstitutionMatrix(const Alphabet& alphabet, std::string name);

  /// Builds from a row-major table of size |A|*|A| (row = first residue).
  SubstitutionMatrix(const Alphabet& alphabet, std::string name,
                     std::vector<Score> row_major);

  const Alphabet& alphabet() const { return *alphabet_; }
  const std::string& name() const { return name_; }

  Score at(Residue x, Residue y) const {
    return table_[static_cast<std::size_t>(x) * size_ + y];
  }

  /// Row-major |A|*|A| table (entry (x, y) at x*|A| + y); the SIMD kernels
  /// gather substitution scores straight out of it.
  const Score* data() const { return table_.data(); }

  /// Score of two letters (convenience; validates both characters).
  Score score(char x, char y) const;

  /// Sets one entry (not symmetrized automatically).
  void set(Residue x, Residue y, Score value);

  /// Sets entry (x, y) and its mirror (y, x).
  void set_symmetric(Residue x, Residue y, Score value);

  bool is_symmetric() const;

  Score min_score() const;
  Score max_score() const;

 private:
  const Alphabet* alphabet_;
  std::string name_;
  std::size_t size_;
  std::vector<Score> table_;
};

}  // namespace flsa
