// Myers-Miller linear-space alignment with affine gaps.
//
// Hirschberg's split must account for vertical gap runs that cross the
// split row: the forward/backward passes therefore carry the full affine
// lane triples, the join considers both a vertex crossing (type 1,
// D_f + D_b) and a gap crossing (type 2, Ix_f + Ix_b - gap_open, refunding
// the doubly charged open), and sub-problems receive boundary gap-open
// charges (tb at the top-left corner, te at the bottom-right corner) so a
// run continuing across a junction is charged its open exactly once.
#pragma once

#include "dp/alignment.hpp"
#include "dp/counters.hpp"
#include "hirschberg/hirschberg.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// Optimal global alignment with affine gaps in linear space.
/// Also accepts linear schemes (gap_open == 0), where it reduces to the
/// plain algorithm.
Alignment hirschberg_align_affine(const Sequence& a, const Sequence& b,
                                  const ScoringScheme& scheme,
                                  const HirschbergOptions& options = {},
                                  DpCounters* counters = nullptr);

}  // namespace flsa
