#include "hirschberg/hirschberg.hpp"

#include <algorithm>
#include <vector>

#include "dp/fullmatrix.hpp"
#include "dp/kernel.hpp"
#include "dp/matrix.hpp"
#include "dp/path.hpp"
#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace flsa {

namespace {

std::vector<Residue> reversed_copy(std::span<const Residue> s) {
  return std::vector<Residue>(s.rbegin(), s.rend());
}

/// Appends the forward moves of the optimal alignment of `a` x `b`
/// (a self-contained global sub-problem) to `out`.
void recurse(std::span<const Residue> a, std::span<const Residue> b,
             const ScoringScheme& scheme, const HirschbergOptions& options,
             std::vector<Move>& out, DpCounters* counters) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  if (m == 0) {
    out.insert(out.end(), n, Move::kLeft);
    return;
  }
  if (n == 0) {
    out.insert(out.end(), m, Move::kUp);
    return;
  }
  if (m <= 2 || n <= 2 || m * n <= std::max<std::size_t>(options.base_case_cells, 2)) {
    // Full-matrix base case, as the paper suggests for small sub-problems.
    std::vector<Score> top(n + 1);
    std::vector<Score> left(m + 1);
    init_global_boundary_linear(scheme, top);
    init_global_boundary_linear(scheme, left);
    Matrix2D<Score> dpm;
    fill_full_matrix_linear(a, b, scheme, top, left, dpm, counters);
    Path path(Cell{m, n});
    traceback_rectangle_linear(a, b, scheme, dpm, m, n, path, counters);
    extend_path_to_origin(path);
    const std::vector<Move> forward = path.forward_moves();
    out.insert(out.end(), forward.begin(), forward.end());
    return;
  }

  // Split `a` at its midpoint; align the top half forwards and the bottom
  // half backwards against `b`, then find the column where the two meet
  // with maximal total score.
  const std::size_t mid = m / 2;
  const std::vector<Score> fwd =
      last_row_linear(options.kernel, a.subspan(0, mid), b, scheme, counters);
  const std::vector<Residue> bottom_rev = reversed_copy(a.subspan(mid));
  const std::vector<Residue> b_rev = reversed_copy(b);
  const std::vector<Score> bwd =
      last_row_linear(options.kernel, bottom_rev, b_rev, scheme, counters);

  std::size_t best_j = 0;
  Score best = kNegInf;
  for (std::size_t j = 0; j <= n; ++j) {
    const Score total = fwd[j] + bwd[n - j];
    if (total > best) {
      best = total;
      best_j = j;
    }
  }

  recurse(a.subspan(0, mid), b.subspan(0, best_j), scheme, options, out,
          counters);
  recurse(a.subspan(mid), b.subspan(best_j), scheme, options, out, counters);
}

}  // namespace

Alignment hirschberg_align(const Sequence& a, const Sequence& b,
                           const ScoringScheme& scheme,
                           const HirschbergOptions& options,
                           DpCounters* counters) {
  FLSA_REQUIRE(scheme.is_linear());
  // Count into a local when the caller does not ask for counters, so the
  // phase timer can still report cells and throughput.
  DpCounters local_counters;
  if (counters == nullptr) counters = &local_counters;
  FLSA_OBS_PHASE(obs_phase, obs::Phase::kHirschberg);
  [[maybe_unused]] const std::uint64_t cells_before =
      counters->total_cells();
  std::vector<Move> forward;
  forward.reserve(a.size() + b.size());
  recurse(a.residues(), b.residues(), scheme, options, forward, counters);
  FLSA_OBS_PHASE_CELLS(obs_phase, counters->total_cells() - cells_before);

  // Re-anchor the forward moves as a Path to reuse the shared validation
  // and alignment construction.
  Path path(Cell{a.size(), b.size()});
  for (auto it = forward.rbegin(); it != forward.rend(); ++it) {
    path.push_traceback(*it);
  }
  FLSA_REQUIRE(path.reaches_origin());
  return alignment_from_path(a, b, path, scheme);
}

}  // namespace flsa
