#include "hirschberg/hirschberg_affine.hpp"

#include <algorithm>
#include <vector>

#include "dp/fullmatrix.hpp"
#include "dp/gotoh.hpp"
#include "dp/matrix.hpp"
#include "dp/path.hpp"
#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace flsa {

namespace {

std::vector<Residue> reversed_copy(std::span<const Residue> s) {
  return std::vector<Residue>(s.rbegin(), s.rend());
}

/// Builds the sub-problem boundaries: the top row is an ordinary horizontal
/// gap ramp; the left column is a vertical gap run whose open charge is
/// `tb` (0 when a run already open above the sub-problem's top-left corner
/// continues into it, gap_open otherwise).
void make_boundaries(const ScoringScheme& scheme, std::size_t rows,
                     std::size_t cols, Score tb,
                     std::vector<AffineCell>& top,
                     std::vector<AffineCell>& left) {
  const Score open = scheme.gap_open();
  const Score ext = scheme.gap_extend();
  top.assign(cols + 1, AffineCell{});
  left.assign(rows + 1, AffineCell{});
  top[0] = AffineCell{0, kNegInf, kNegInf};
  for (std::size_t j = 1; j <= cols; ++j) {
    const Score run = open + static_cast<Score>(j) * ext;
    top[j] = AffineCell{run, kNegInf, run};
  }
  left[0] = top[0];
  for (std::size_t r = 1; r <= rows; ++r) {
    const Score run = tb + static_cast<Score>(r) * ext;
    left[r] = AffineCell{run, run, kNegInf};
  }
}

/// Last DPM row of the sub-problem with top-left vertical open charge `tb`.
std::vector<AffineCell> affine_pass(KernelKind kernel,
                                    std::span<const Residue> a,
                                    std::span<const Residue> b,
                                    const ScoringScheme& scheme, Score tb,
                                    DpCounters* counters) {
  std::vector<AffineCell> top, left;
  make_boundaries(scheme, a.size(), b.size(), tb, top, left);
  std::vector<AffineCell> bottom(b.size() + 1);
  sweep_rectangle_affine(kernel, a, b, scheme, top, left, bottom, {},
                         counters);
  return bottom;
}

/// Full-matrix base case honouring both boundary charges. Appends forward
/// moves of the optimal sub-alignment to `out`.
void base_case(std::span<const Residue> a, std::span<const Residue> b,
               const ScoringScheme& scheme, Score tb, Score te,
               std::vector<Move>& out, DpCounters* counters) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  std::vector<AffineCell> top, left;
  make_boundaries(scheme, m, n, tb, top, left);
  Matrix2D<AffineCell> dpm;
  fill_full_matrix_affine(a, b, scheme, top, left, dpm, counters);

  // A vertical run ending exactly at the bottom-right corner may have its
  // open charge replaced by `te` (the run continues below the junction).
  const AffineCell& corner = dpm(m, n);
  const Score open = scheme.gap_open();
  AffineState state = AffineState::kD;
  if (corner.ix != kNegInf && corner.ix - open + te > corner.d) {
    state = AffineState::kIx;
  }
  Path path(Cell{m, n});
  traceback_rectangle_affine(a, b, scheme, dpm, m, n, state, path, counters);
  extend_path_to_origin(path);
  const std::vector<Move> forward = path.forward_moves();
  out.insert(out.end(), forward.begin(), forward.end());
}

void recurse(std::span<const Residue> a, std::span<const Residue> b,
             const ScoringScheme& scheme, Score tb, Score te,
             const HirschbergOptions& options, std::vector<Move>& out,
             DpCounters* counters) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  if (m == 0) {
    out.insert(out.end(), n, Move::kLeft);
    return;
  }
  if (n == 0) {
    out.insert(out.end(), m, Move::kUp);
    return;
  }
  if (m <= 2 || n <= 2 ||
      m * n <= std::max<std::size_t>(options.base_case_cells, 2)) {
    base_case(a, b, scheme, tb, te, out, counters);
    return;
  }

  const Score open = scheme.gap_open();
  const std::size_t mid = m / 2;
  const std::vector<AffineCell> fwd =
      affine_pass(options.kernel, a.subspan(0, mid), b, scheme, tb, counters);
  const std::vector<Residue> bottom_rev = reversed_copy(a.subspan(mid));
  const std::vector<Residue> b_rev = reversed_copy(b);
  const std::vector<AffineCell> bwd =
      affine_pass(options.kernel, bottom_rev, b_rev, scheme, te, counters);

  // Type 1: the optimal path passes through vertex (mid, j).
  // Type 2: a vertical gap run crosses row mid at column j; its open was
  // charged in both halves, so refund one.
  std::size_t best_j = 0;
  Score best = kNegInf;
  bool crossing = false;
  for (std::size_t j = 0; j <= n; ++j) {
    const Score type1 = fwd[j].d + bwd[n - j].d;
    if (type1 > best) {
      best = type1;
      best_j = j;
      crossing = false;
    }
  }
  for (std::size_t j = 0; j <= n; ++j) {
    const Score type2 = fwd[j].ix + bwd[n - j].ix - open;
    if (type2 > best) {
      best = type2;
      best_j = j;
      crossing = true;
    }
  }

  if (!crossing) {
    recurse(a.subspan(0, mid), b.subspan(0, best_j), scheme, tb, open,
            options, out, counters);
    recurse(a.subspan(mid), b.subspan(best_j), scheme, open, te, options, out,
            counters);
  } else {
    // The crossing run deletes at least a[mid-1] and a[mid]; emit those two
    // moves directly and let the sub-problems continue the run with an
    // exempted (already paid) open charge at the junction corners.
    recurse(a.subspan(0, mid - 1), b.subspan(0, best_j), scheme, tb, 0,
            options, out, counters);
    out.push_back(Move::kUp);
    out.push_back(Move::kUp);
    recurse(a.subspan(mid + 1), b.subspan(best_j), scheme, 0, te, options,
            out, counters);
  }
}

}  // namespace

Alignment hirschberg_align_affine(const Sequence& a, const Sequence& b,
                                  const ScoringScheme& scheme,
                                  const HirschbergOptions& options,
                                  DpCounters* counters) {
  // Count into a local when the caller does not ask for counters, so the
  // phase timer can still report cells and throughput.
  DpCounters local_counters;
  if (counters == nullptr) counters = &local_counters;
  FLSA_OBS_PHASE(obs_phase, obs::Phase::kHirschberg);
  [[maybe_unused]] const std::uint64_t cells_before =
      counters->total_cells();
  std::vector<Move> forward;
  forward.reserve(a.size() + b.size());
  recurse(a.residues(), b.residues(), scheme, scheme.gap_open(),
          scheme.gap_open(), options, forward, counters);
  FLSA_OBS_PHASE_CELLS(obs_phase, counters->total_cells() - cells_before);

  Path path(Cell{a.size(), b.size()});
  for (auto it = forward.rbegin(); it != forward.rend(); ++it) {
    path.push_traceback(*it);
  }
  FLSA_REQUIRE(path.reaches_origin());
  return alignment_from_path(a, b, path, scheme);
}

}  // namespace flsa
