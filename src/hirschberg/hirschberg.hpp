// Hirschberg's linear-space alignment algorithm (Myers-Miller formulation
// for sequence alignment): the paper's linear-space baseline.
//
// Divide and conquer: split `a` at its midpoint, run a forward LastRow pass
// of the top half against all of `b` and a backward pass of the (reversed)
// bottom half, pick the split column maximizing the sum, recurse on the two
// sub-problems. Uses O(min over the recursion of rows+cols) working memory
// and roughly doubles the FindScore operations of the full-matrix
// algorithm, exactly as discussed in the paper's Section 2.2.
#pragma once

#include "dp/alignment.hpp"
#include "dp/counters.hpp"
#include "dp/kernel.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {

/// Tuning knobs for the Hirschberg baseline.
struct HirschbergOptions {
  /// Sub-problems with at most this many DPM cells are finished with the
  /// full-matrix algorithm instead of recursing to size one (the paper
  /// notes the recursion "could be terminated sooner by using a FM
  /// algorithm when the problem size is small enough"). Minimum 2.
  std::size_t base_case_cells = 4096;

  /// Sweep kernel for the forward/backward LastRow passes. kAuto picks
  /// the fastest one the CPU supports; the alignment is identical.
  KernelKind kernel = KernelKind::kAuto;
};

/// Optimal global alignment with linear gaps in linear space.
Alignment hirschberg_align(const Sequence& a, const Sequence& b,
                           const ScoringScheme& scheme,
                           const HirschbergOptions& options = {},
                           DpCounters* counters = nullptr);

}  // namespace flsa
