// Scoring exploration: align the same protein pair under different
// substitution matrices and gap models and compare the alignments — the
// kind of sensitivity check a practitioner runs before trusting a homology
// call.
//
//   ./examples/scoring_exploration [seqA seqB]
#include <iostream>

#include "flsa/flsa.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const std::string sa =
      argc > 2 ? argv[1] : "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ";
  const std::string sb =
      argc > 2 ? argv[2] : "MKSAYIAKQRQISFVKSHFSRQLEERLGMIEVQAPILSRVGDG";
  try {
    const flsa::Sequence a(flsa::Alphabet::protein(), sa, "a");
    const flsa::Sequence b(flsa::Alphabet::protein(), sb, "b");

    struct Config {
      std::string name;
      flsa::ScoringScheme scheme;
    };
    const Config configs[] = {
        {"mdm78, linear -10",
         flsa::ScoringScheme(flsa::scoring::mdm78(), -10)},
        {"pam250, linear -6",
         flsa::ScoringScheme(flsa::scoring::pam250(), -6)},
        {"blosum62, linear -6",
         flsa::ScoringScheme(flsa::scoring::blosum62(), -6)},
        {"blosum62, affine -11/-1",
         flsa::ScoringScheme(flsa::scoring::blosum62(), -11, -1)},
        {"pam250, affine -10/-2",
         flsa::ScoringScheme(flsa::scoring::pam250(), -10, -2)},
    };

    flsa::Table table({"scheme", "score", "identity %", "gaps", "cigar"});
    for (const Config& config : configs) {
      const flsa::Alignment aln = flsa::align(a, b, config.scheme);
      table.add_row({config.name, std::to_string(aln.score),
                     flsa::Table::num(100.0 * aln.identity(), 1),
                     std::to_string(aln.gap_count()), aln.cigar()});
    }
    std::cout << "aligning:\n  " << sa << "\n  " << sb << "\n\n";
    table.print(std::cout);

    std::cout << "\nblosum62 affine alignment in full:\n";
    const flsa::Alignment aln = flsa::align(
        a, b, flsa::ScoringScheme(flsa::scoring::blosum62(), -11, -1));
    std::cout << aln.pretty() << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
