// Reference-indexed search demo: find a (mutated) gene inside a large
// synthetic chromosome without ever computing the full m x n matrix.
// Default is the chained pipeline (k-mer anchors -> colinear chaining ->
// banded gap fill); --simple falls back to single-seed seed-and-extend.
// Reports hits BLAST-style with E-values.
//
//   ./examples/genome_search --chromosome 200000 --gene 300
#include <iostream>

#include "flsa/flsa.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  flsa::CliParser cli("Reference-indexed gene search demo");
  cli.add_int("chromosome", 200000, "chromosome length (bp)");
  cli.add_int("gene", 300, "gene length (bp)");
  cli.add_int("copies", 2, "planted (mutated) copies");
  cli.add_int("seed-k", 12, "seed k-mer length");
  cli.add_int("seed", 5, "PRNG seed");
  cli.add_flag("simple", false,
               "use single-seed seed-and-extend instead of chaining");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto chr_len = static_cast<std::size_t>(cli.get_int("chromosome"));
    const auto gene_len = static_cast<std::size_t>(cli.get_int("gene"));
    const auto copies = static_cast<std::size_t>(cli.get_int("copies"));
    const auto seed_k = static_cast<std::size_t>(cli.get_int("seed-k"));

    flsa::Xoshiro256 rng(static_cast<std::uint64_t>(cli.get_int("seed")));
    const flsa::Alphabet& dna = flsa::Alphabet::dna();
    const flsa::Sequence gene = flsa::random_sequence(dna, gene_len, rng,
                                                      "gene");
    flsa::MutationModel drift;
    drift.substitution_rate = 0.06;
    drift.insertion_rate = 0.01;
    drift.deletion_rate = 0.01;

    std::string chromosome =
        flsa::random_sequence(dna, chr_len, rng, "chr").to_string();
    std::vector<std::size_t> planted_at;
    for (std::size_t c = 0; c < copies; ++c) {
      const flsa::Sequence copy = flsa::mutate(gene, drift, rng);
      const std::size_t at =
          (c + 1) * chr_len / (copies + 1) - copy.size() / 2;
      chromosome.replace(at, copy.size(), copy.to_string());
      planted_at.push_back(at);
    }
    const flsa::Sequence subject(dna, chromosome, "chr1");

    const flsa::SubstitutionMatrix matrix = flsa::scoring::dna();
    const flsa::ScoringScheme scheme(matrix, -10);

    flsa::Timer timer;
    const flsa::search::ReferenceIndex index(subject, seed_k);
    const double index_s = timer.seconds();
    timer.reset();
    std::vector<flsa::search::SearchHit> hits;
    flsa::search::ChainedSearchStats stats;
    if (cli.get_flag("simple")) {
      flsa::search::SearchParams params;
      params.k = seed_k;
      hits = flsa::search::seed_and_extend(gene, index.kmers(), scheme,
                                           params);
    } else {
      hits = flsa::search::chained_search(gene, index, scheme, {}, &stats);
    }
    const double search_s = timer.seconds();

    const auto stats_params = flsa::scoring::karlin_params(
        matrix, flsa::scoring::uniform_frequencies(dna.size()));

    std::cout << "indexed " << index.size() << " bp ("
              << index.kmers().distinct_kmers() << " distinct " << seed_k
              << "-mers) in " << index_s * 1e3 << " ms\n"
              << "search took " << search_s * 1e3 << " ms";
    if (!cli.get_flag("simple")) {
      std::cout << " (" << stats.anchors << " anchors, " << stats.chains
                << " chains)";
    }
    std::cout << "; planted copies at:";
    for (std::size_t at : planted_at) std::cout << ' ' << at;
    std::cout << "\n\n";
    for (std::size_t i = 0; i < hits.size(); ++i) {
      const flsa::Alignment& aln = hits[i].alignment;
      std::cout << "--- hit " << i + 1 << ": subject " << aln.b_begin
                << ".." << aln.b_end << ", bit score "
                << flsa::scoring::bit_score(aln.score, stats_params)
                << ", E = "
                << flsa::scoring::e_value(aln.score, gene.size(),
                                          subject.size(), stats_params)
                << "\n"
                << flsa::format_blast(aln, gene.id(), subject.id()) << "\n";
    }
    std::cout << (hits.size() >= copies
                      ? "all planted copies recovered\n"
                      : "warning: some copies missed\n");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
