// Seed-and-extend search demo: find a (mutated) gene inside a large
// synthetic chromosome without ever computing the full m x n matrix —
// k-mer seeds, X-drop extension, then windowed local alignment. Reports
// hits BLAST-style with E-values.
//
//   ./examples/genome_search --chromosome 200000 --gene 300
#include <iostream>

#include "flsa/flsa.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  flsa::CliParser cli("Seed-and-extend gene search demo");
  cli.add_int("chromosome", 200000, "chromosome length (bp)");
  cli.add_int("gene", 300, "gene length (bp)");
  cli.add_int("copies", 2, "planted (mutated) copies");
  cli.add_int("seed-k", 10, "seed k-mer length");
  cli.add_int("seed", 5, "PRNG seed");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto chr_len = static_cast<std::size_t>(cli.get_int("chromosome"));
    const auto gene_len = static_cast<std::size_t>(cli.get_int("gene"));
    const auto copies = static_cast<std::size_t>(cli.get_int("copies"));

    flsa::Xoshiro256 rng(static_cast<std::uint64_t>(cli.get_int("seed")));
    const flsa::Alphabet& dna = flsa::Alphabet::dna();
    const flsa::Sequence gene = flsa::random_sequence(dna, gene_len, rng,
                                                      "gene");
    flsa::MutationModel drift;
    drift.substitution_rate = 0.06;
    drift.insertion_rate = 0.01;
    drift.deletion_rate = 0.01;

    std::string chromosome =
        flsa::random_sequence(dna, chr_len, rng, "chr").to_string();
    std::vector<std::size_t> planted_at;
    for (std::size_t c = 0; c < copies; ++c) {
      const flsa::Sequence copy = flsa::mutate(gene, drift, rng);
      const std::size_t at =
          (c + 1) * chr_len / (copies + 1) - copy.size() / 2;
      chromosome.replace(at, copy.size(), copy.to_string());
      planted_at.push_back(at);
    }
    const flsa::Sequence subject(dna, chromosome, "chr1");

    const flsa::SubstitutionMatrix matrix = flsa::scoring::dna();
    const flsa::ScoringScheme scheme(matrix, -10);

    flsa::Timer timer;
    const flsa::search::KmerIndex index(
        subject, static_cast<std::size_t>(cli.get_int("seed-k")));
    const double index_s = timer.seconds();
    timer.reset();
    flsa::search::SearchParams params;
    params.k = static_cast<std::size_t>(cli.get_int("seed-k"));
    const auto hits =
        flsa::search::seed_and_extend(gene, index, scheme, params);
    const double search_s = timer.seconds();

    const auto stats_params = flsa::scoring::karlin_params(
        matrix, flsa::scoring::uniform_frequencies(dna.size()));

    std::cout << "indexed " << subject.size() << " bp ("
              << index.distinct_kmers() << " distinct " << params.k
              << "-mers) in " << index_s * 1e3 << " ms\n"
              << "search took " << search_s * 1e3 << " ms; planted copies"
              << " at:";
    for (std::size_t at : planted_at) std::cout << ' ' << at;
    std::cout << "\n\n";
    for (std::size_t i = 0; i < hits.size(); ++i) {
      const flsa::Alignment& aln = hits[i].alignment;
      std::cout << "--- hit " << i + 1 << ": subject " << aln.b_begin
                << ".." << aln.b_end << ", bit score "
                << flsa::scoring::bit_score(aln.score, stats_params)
                << ", E = "
                << flsa::scoring::e_value(aln.score, gene.size(),
                                          subject.size(), stats_params)
                << "\n"
                << flsa::format_blast(aln, gene.id(), subject.id()) << "\n";
    }
    std::cout << (hits.size() >= copies
                      ? "all planted copies recovered\n"
                      : "warning: some copies missed\n");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
