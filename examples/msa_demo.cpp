// Multiple sequence alignment demo: evolve a family of sequences from a
// common ancestor and reconstruct their alignment with center-star.
//
//   ./examples/msa_demo --members 6 --length 80
#include <iostream>

#include "flsa/flsa.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  flsa::CliParser cli("Center-star multiple alignment demo");
  cli.add_int("members", 6, "family size");
  cli.add_int("length", 80, "ancestor length");
  cli.add_double("divergence", 0.12, "per-branch substitution rate");
  cli.add_int("seed", 3, "PRNG seed");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto members = static_cast<std::size_t>(cli.get_int("members"));

    flsa::Xoshiro256 rng(static_cast<std::uint64_t>(cli.get_int("seed")));
    flsa::MutationModel model;
    model.substitution_rate = cli.get_double("divergence");
    model.insertion_rate = 0.02;
    model.deletion_rate = 0.02;
    const flsa::Sequence ancestor = flsa::random_sequence(
        flsa::Alphabet::protein(),
        static_cast<std::size_t>(cli.get_int("length")), rng, "ancestor");
    std::vector<flsa::Sequence> sequences;
    for (std::size_t i = 0; i < members; ++i) {
      sequences.push_back(
          flsa::mutate(ancestor, model, rng, "seq" + std::to_string(i)));
    }

    const flsa::ScoringScheme& scheme = flsa::ScoringScheme::paper_default();
    const flsa::msa::MultipleAlignment star =
        flsa::msa::center_star_align(sequences, scheme);
    const flsa::msa::MultipleAlignment aln =
        flsa::msa::progressive_align(sequences, scheme);

    const flsa::Score star_sp = flsa::msa::sum_of_pairs_score(
        star, scheme, flsa::Alphabet::protein());
    const flsa::Score prog_sp = flsa::msa::sum_of_pairs_score(
        aln, scheme, flsa::Alphabet::protein());
    std::cout << "center-star SP : " << star_sp << " (center "
              << sequences[star.center_index].id() << ", width "
              << star.width() << ")\n"
              << "progressive SP : " << prog_sp << " (UPGMA guide tree, "
              << "width " << aln.width() << ")\n\n"
              << "progressive alignment:\n";
    for (std::size_t i = 0; i < aln.rows.size(); ++i) {
      std::cout << aln.rows[i] << "  " << sequences[i].id() << "\n";
    }
    // Conservation track: '*' fully conserved, ':' majority >= 75%.
    const auto conservation =
        flsa::msa::column_conservation(aln, flsa::Alphabet::protein());
    std::string track;
    for (double c : conservation) {
      track.push_back(c >= 1.0 ? '*' : (c >= 0.75 ? ':' : ' '));
    }
    std::cout << track << "\n\nconsensus: "
              << flsa::msa::consensus(aln, flsa::Alphabet::protein())
              << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
