// Demonstrates the paper's central claim: FastLSA *adapts* to available
// memory, trading recomputation for space. Aligns the same pair under a
// ladder of memory budgets and reports work and peak memory for each.
//
//   ./examples/memory_budget --length 4000
#include <iostream>

#include "flsa/flsa.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  flsa::CliParser cli("FastLSA memory-adaptivity demonstration");
  cli.add_int("length", 4000, "sequence length");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto length = static_cast<std::size_t>(cli.get_int("length"));

    flsa::Xoshiro256 rng(7);
    flsa::MutationModel model;
    const flsa::SequencePair pair =
        flsa::homologous_pair(flsa::Alphabet::protein(), length, model, rng);
    const flsa::ScoringScheme& scheme = flsa::ScoringScheme::paper_default();

    const std::size_t full_dpm =
        (pair.a.size() + 1) * (pair.b.size() + 1) * sizeof(flsa::Score);
    std::cout << "pair: " << pair.a.size() << " x " << pair.b.size()
              << " residues; full DPM = " << full_dpm / 1024 << " KiB\n\n";

    flsa::Table table({"budget", "strategy", "score", "cells (x m*n)",
                       "peak KiB", "time ms"});
    const double mn = static_cast<double>(pair.a.size()) *
                      static_cast<double>(pair.b.size());
    for (std::size_t budget_kb :
         {full_dpm / 1024 + 512, 4096ul, 1024ul, 256ul, 64ul}) {
      flsa::AlignOptions options;
      options.memory_limit_bytes = budget_kb * 1024;
      flsa::AlignReport report;
      flsa::Timer timer;
      const flsa::Alignment aln =
          flsa::align(pair.a, pair.b, scheme, options, &report);
      table.add_row(
          {std::to_string(budget_kb) + " KiB",
           flsa::to_string(report.chosen), std::to_string(aln.score),
           flsa::Table::num(
               static_cast<double>(report.stats.counters.total_cells()) /
               mn),
           std::to_string(report.stats.peak_bytes / 1024),
           flsa::Table::num(timer.millis())});
    }
    table.print(std::cout);
    std::cout << "\nSame optimal score at every budget; only the work/space"
                 " trade-off moves.\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
