// Homology search mini-pipeline: one query against a database of targets,
// aligned in parallel with the batch API, ranked by score — the workload
// the paper's introduction motivates ("homology search in
// bioinformatics").
//
//   ./examples/batch_search --targets 32 --query-length 400
#include <algorithm>
#include <iostream>

#include "flsa/flsa.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  flsa::CliParser cli("One-vs-many homology search with the batch API");
  cli.add_int("targets", 32, "database size");
  cli.add_int("query-length", 400, "query length");
  cli.add_int("threads", 4, "worker threads");
  cli.add_int("homologs", 5, "how many targets are true homologs");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto n_targets = static_cast<std::size_t>(cli.get_int("targets"));
    const auto qlen = static_cast<std::size_t>(cli.get_int("query-length"));
    const auto homologs =
        std::min(static_cast<std::size_t>(cli.get_int("homologs")),
                 n_targets);

    flsa::Xoshiro256 rng(31);
    const flsa::Sequence query =
        flsa::random_sequence(flsa::Alphabet::protein(), qlen, rng, "query");

    // Database: a few mutated homologs of the query hidden among decoys.
    std::vector<flsa::Sequence> targets;
    flsa::MutationModel model;
    model.substitution_rate = 0.25;
    for (std::size_t i = 0; i < n_targets; ++i) {
      if (i < homologs) {
        targets.push_back(flsa::mutate(query, model, rng,
                                       "homolog-" + std::to_string(i)));
      } else {
        targets.push_back(flsa::random_sequence(
            flsa::Alphabet::protein(), qlen / 2 + rng.bounded(qlen), rng,
            "decoy-" + std::to_string(i)));
      }
    }

    const flsa::ScoringScheme& scheme = flsa::ScoringScheme::paper_default();
    flsa::AlignOptions options;
    options.memory_limit_bytes = 8u << 20;

    flsa::Timer timer;
    const std::vector<flsa::BatchResult> results = flsa::align_one_vs_many(
        query, targets, scheme, options,
        static_cast<unsigned>(cli.get_int("threads")));
    const double seconds = timer.seconds();

    // Rank by score.
    std::vector<std::size_t> order(results.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return results[x].alignment.score > results[y].alignment.score;
    });

    flsa::Table table({"rank", "target", "score", "identity %",
                       "similar %", "strategy"});
    for (std::size_t rank = 0; rank < std::min<std::size_t>(10, order.size());
         ++rank) {
      const std::size_t i = order[rank];
      const flsa::Alignment& aln = results[i].alignment;
      const double columns = std::max<double>(1.0, static_cast<double>(
                                                       aln.length()));
      table.add_row(
          {std::to_string(rank + 1), targets[i].id(),
           std::to_string(aln.score),
           flsa::Table::num(100.0 * aln.identity(), 1),
           flsa::Table::num(
               100.0 *
                   static_cast<double>(flsa::similar_columns(
                       aln, scheme.matrix(), flsa::Alphabet::protein())) /
                   columns,
               1),
           flsa::to_string(results[i].report.chosen)});
    }
    std::cout << "aligned " << results.size() << " pairs in " << seconds
              << " s\n\n";
    table.print(std::cout);
    std::cout << "\nTrue homologs should occupy the top " << homologs
              << " ranks.\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
