// Quickstart: align two protein sequences with the default (auto) strategy
// and print the alignment — the paper's running example.
//
//   ./examples/quickstart [seqA seqB]
#include <iostream>

#include "flsa/flsa.hpp"

int main(int argc, char** argv) {
  const std::string sa = argc > 2 ? argv[1] : "TLDKLLKD";
  const std::string sb = argc > 2 ? argv[2] : "TDVLKAD";

  try {
    const flsa::Sequence a(flsa::Alphabet::protein(), sa, "a");
    const flsa::Sequence b(flsa::Alphabet::protein(), sb, "b");

    // The paper's scoring function: MDM78 similarity, linear gap -10.
    const flsa::ScoringScheme& scheme = flsa::ScoringScheme::paper_default();

    flsa::AlignReport report;
    const flsa::Alignment aln = flsa::align(a, b, scheme, {}, &report);

    std::cout << "strategy : " << flsa::to_string(report.chosen) << "\n"
              << "score    : " << aln.score << "\n"
              << "identity : " << 100.0 * aln.identity() << "%\n"
              << "cigar    : " << aln.cigar() << "\n\n"
              << aln.pretty() << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
