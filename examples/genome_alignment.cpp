// Whole-genome-scale alignment: generate a large homologous DNA pair (a
// stand-in for the chromosome-scale comparisons the paper motivates) and
// align it with FastLSA under a strict memory budget — a problem size whose
// full DPM would not fit.
//
//   ./examples/genome_alignment --length 20000 --memory-kb 2048
#include <iostream>

#include "flsa/flsa.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  flsa::CliParser cli(
      "Align a large synthetic DNA pair with FastLSA under a memory budget");
  cli.add_int("length", 20000, "parent sequence length");
  cli.add_int("memory-kb", 2048, "DPM memory budget in KiB");
  cli.add_int("k", 8, "FastLSA division factor");
  cli.add_int("seed", 1, "workload seed");
  try {
    if (!cli.parse(argc, argv)) return 0;

    const auto length = static_cast<std::size_t>(cli.get_int("length"));
    const auto budget =
        static_cast<std::size_t>(cli.get_int("memory-kb")) * 1024;

    flsa::Xoshiro256 rng(static_cast<std::uint64_t>(cli.get_int("seed")));
    flsa::MutationModel model;
    model.substitution_rate = 0.05;
    model.insertion_rate = 0.01;
    model.deletion_rate = 0.01;
    std::cout << "generating homologous DNA pair, parent length " << length
              << "...\n";
    const flsa::SequencePair pair =
        flsa::homologous_pair(flsa::Alphabet::dna(), length, model, rng);

    const flsa::SubstitutionMatrix matrix = flsa::scoring::dna();
    const flsa::ScoringScheme scheme(matrix, -10);

    const double dpm_mb = static_cast<double>(pair.a.size() + 1) *
                          static_cast<double>(pair.b.size() + 1) *
                          sizeof(flsa::Score) / 1048576.0;
    std::cout << "full DPM would need " << dpm_mb << " MiB; budget is "
              << static_cast<double>(budget) / 1048576.0 << " MiB\n";

    flsa::AlignOptions options;
    options.strategy = flsa::Strategy::kAuto;
    options.memory_limit_bytes = budget;
    options.fastlsa.k = static_cast<unsigned>(cli.get_int("k"));

    flsa::Timer timer;
    flsa::AlignReport report;
    const flsa::Alignment aln =
        flsa::align(pair.a, pair.b, scheme, options, &report);
    const double seconds = timer.seconds();

    std::cout << "strategy       : " << flsa::to_string(report.chosen)
              << "\n"
              << "score          : " << aln.score << "\n"
              << "identity       : " << 100.0 * aln.identity() << "%\n"
              << "length         : " << aln.length() << " columns\n"
              << "time           : " << seconds << " s\n"
              << "cells computed : " << report.stats.counters.total_cells()
              << " ("
              << static_cast<double>(report.stats.counters.total_cells()) /
                     (static_cast<double>(pair.a.size()) *
                      static_cast<double>(pair.b.size()))
              << "x the m*n minimum)\n"
              << "peak DPM memory: "
              << static_cast<double>(report.stats.peak_bytes) / 1048576.0
              << " MiB\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
