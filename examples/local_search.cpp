// Local alignment in linear space: plant a shared motif inside two
// otherwise unrelated DNA sequences and recover it with the linear-space
// Smith-Waterman built on FastLSA.
//
//   ./examples/local_search --length 5000 --motif 200
#include <iostream>

#include "flsa/flsa.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  flsa::CliParser cli("Linear-space local alignment demonstration");
  cli.add_int("length", 5000, "host sequence length");
  cli.add_int("motif", 200, "planted motif length");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto length = static_cast<std::size_t>(cli.get_int("length"));
    const auto motif_len = static_cast<std::size_t>(cli.get_int("motif"));

    flsa::Xoshiro256 rng(21);
    const flsa::Alphabet& dna = flsa::Alphabet::dna();
    const flsa::Sequence motif =
        flsa::random_sequence(dna, motif_len, rng, "motif");
    // Two hosts with the motif planted at different offsets, lightly
    // mutated in the second.
    flsa::MutationModel light;
    light.substitution_rate = 0.03;
    light.insertion_rate = 0.005;
    light.deletion_rate = 0.005;
    const flsa::Sequence motif2 = flsa::mutate(motif, light, rng);

    auto plant = [&](const flsa::Sequence& m, std::size_t at) {
      const flsa::Sequence host =
          flsa::random_sequence(dna, length, rng, "host");
      std::string s = host.to_string();
      s.replace(at, m.size(), m.to_string());
      return flsa::Sequence(dna, s, "planted");
    };
    const flsa::Sequence a = plant(motif, length / 4);
    const flsa::Sequence b = plant(motif2, length / 2);

    const flsa::SubstitutionMatrix matrix = flsa::scoring::dna();
    const flsa::ScoringScheme scheme(matrix, -10);

    flsa::FastLsaStats stats;
    const flsa::Alignment aln = flsa::local_align(a, b, scheme, {}, &stats);

    std::cout << "planted motif of " << motif_len << " bp at offsets "
              << length / 4 << " and " << length / 2 << "\n"
              << "local alignment found: a[" << aln.a_begin << ", "
              << aln.a_end << ") x b[" << aln.b_begin << ", " << aln.b_end
              << ")\n"
              << "score    : " << aln.score << "\n"
              << "identity : " << 100.0 * aln.identity() << "%\n"
              << "cells    : " << stats.counters.total_cells() << " (vs "
              << a.size() * b.size() << " full-matrix Smith-Waterman)\n";
    const bool found = aln.a_begin >= length / 4 - 5 &&
                       aln.a_end <= length / 4 + motif_len + 5;
    std::cout << (found ? "motif recovered at the planted location\n"
                        : "warning: recovered region differs\n");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
