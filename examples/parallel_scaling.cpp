// Parallel FastLSA demonstration: real threads (wall time) plus the
// virtual-time processor model that reproduces the paper's speedup curves
// independent of the host's core count.
//
//   ./examples/parallel_scaling --length 3000 --max-threads 4
#include <iostream>

#include "flsa/flsa.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  flsa::CliParser cli("Parallel FastLSA scaling demonstration");
  cli.add_int("length", 3000, "sequence length");
  cli.add_int("max-threads", 4, "largest real thread count to run");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto length = static_cast<std::size_t>(cli.get_int("length"));
    const auto max_threads = static_cast<unsigned>(cli.get_int("max-threads"));

    flsa::Xoshiro256 rng(11);
    flsa::MutationModel model;
    const flsa::SequencePair pair =
        flsa::homologous_pair(flsa::Alphabet::protein(), length, model, rng);
    const flsa::ScoringScheme& scheme = flsa::ScoringScheme::paper_default();
    flsa::FastLsaOptions options;
    options.k = 8;
    options.base_case_cells = 1u << 16;

    std::cout << "pair: " << pair.a.size() << " x " << pair.b.size()
              << ", k=" << options.k << "\n\n";

    std::cout << "real threads (wall time; speedups depend on this host's "
                 "core count):\n";
    flsa::Table real({"threads", "time ms", "score"});
    for (unsigned threads = 1; threads <= max_threads; threads *= 2) {
      flsa::ParallelOptions parallel;
      parallel.threads = threads;
      flsa::Timer timer;
      const flsa::Alignment aln = flsa::parallel_fastlsa_align(
          pair.a, pair.b, scheme, options, parallel);
      real.add_row({std::to_string(threads),
                    flsa::Table::num(timer.millis()),
                    std::to_string(aln.score)});
    }
    real.print(std::cout);

    std::cout << "\nvirtual-time model (tile-DAG replay; the paper's "
                 "speedup-shape experiment):\n";
    const flsa::SimulatedRun run = flsa::record_fastlsa(
        pair.a, pair.b, scheme, options, /*simulated_threads=*/8);
    flsa::Table virt({"P", "speedup", "efficiency"});
    for (unsigned p : {1u, 2u, 4u, 8u, 16u}) {
      const flsa::SpeedupPoint point = flsa::speedup_at(
          run.trace, p, flsa::SchedulerKind::kDependencyCounter);
      virt.add_row({std::to_string(p), flsa::Table::num(point.speedup),
                    flsa::Table::num(point.efficiency)});
    }
    virt.print(std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
