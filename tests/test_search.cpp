// Tests for the k-mer index and the seed-and-extend search pipeline.
#include <gtest/gtest.h>

#include <memory>

#include "dp/alignment.hpp"
#include "dp/local.hpp"
#include "scoring/builtin.hpp"
#include "search/seed_extend.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

ScoringScheme scheme() {
  static const SubstitutionMatrix m = scoring::dna(5, -4);
  return ScoringScheme(m, -6);
}

TEST(KmerIndex, FindsEveryOccurrence) {
  const Sequence subject(Alphabet::dna(), "ACGTACGTAACGT");
  const search::KmerIndex index(subject, 4);
  const Sequence probe(Alphabet::dna(), "ACGT");
  const auto& hits = index.lookup(probe.residues());
  EXPECT_EQ(hits, (std::vector<std::uint32_t>{0, 4, 9}));
  const Sequence absent(Alphabet::dna(), "TTTT");
  EXPECT_TRUE(index.lookup(absent.residues()).empty());
}

TEST(KmerIndex, RollingPackMatchesDirectPack) {
  Xoshiro256 rng(261);
  const Sequence subject = random_sequence(Alphabet::dna(), 200, rng);
  const search::KmerIndex index(subject, 6);
  // Every indexed position must round-trip through lookup.
  for (std::size_t pos = 0; pos + 6 <= subject.size(); pos += 17) {
    const auto& hits = index.lookup(subject.residues().subspan(pos, 6));
    EXPECT_NE(std::find(hits.begin(), hits.end(),
                        static_cast<std::uint32_t>(pos)),
              hits.end())
        << "position " << pos;
  }
}

TEST(KmerIndex, ProteinAlphabetWorks) {
  Xoshiro256 rng(262);
  const Sequence subject = random_sequence(Alphabet::protein(), 300, rng);
  const search::KmerIndex index(subject, 4);  // 20^4 = 160k keys
  EXPECT_GT(index.distinct_kmers(), 200u);
  const auto& hits = index.lookup(subject.residues().subspan(100, 4));
  EXPECT_FALSE(hits.empty());
}

TEST(KmerIndex, Validation) {
  const Sequence s(Alphabet::protein(), "ACDEFG");
  EXPECT_THROW(search::KmerIndex(s, 0), std::invalid_argument);
  EXPECT_THROW(search::KmerIndex(s, 20), std::invalid_argument);  // 20^20
  const search::KmerIndex tiny(Sequence(Alphabet::dna(), "AC"), 4);
  EXPECT_EQ(tiny.distinct_kmers(), 0u);  // subject shorter than k
}

TEST(KmerIndex, SharedSubjectOutlivesTheCallersHandle) {
  // The index co-owns its subject: the caller may drop every other
  // reference (or pass a temporary) and keep searching safely.
  std::unique_ptr<search::KmerIndex> index;
  {
    auto subject = std::make_shared<const Sequence>(Alphabet::dna(),
                                                    "ACGTACGTAACGT");
    index = std::make_unique<search::KmerIndex>(subject, 4);
  }
  EXPECT_EQ(index->subject().size(), 13u);
  const Sequence probe(Alphabet::dna(), "ACGT");
  EXPECT_EQ(index->lookup(probe.residues()),
            (std::vector<std::uint32_t>{0, 4, 9}));
  // The copying convenience constructor is just as safe with temporaries.
  const search::KmerIndex copied(Sequence(Alphabet::dna(), "ACGTACGT"), 4);
  EXPECT_EQ(copied.lookup(probe.residues()).size(), 2u);
}

TEST(KmerIndex, SubjectsPastUint32PositionsAreATypedError) {
  // lookup() returns uint32_t positions; a subject whose positions do not
  // fit must be rejected loudly, never silently truncated.
  constexpr std::size_t kLimit = search::KmerIndex::kMaxSubjectResidues;
  EXPECT_EQ(kLimit, (std::uint64_t{1} << 32) - 1);
  EXPECT_NO_THROW(search::KmerIndex::require_indexable(kLimit));
  try {
    search::KmerIndex::require_indexable(kLimit + 1);
    FAIL() << "expected SubjectTooLarge";
  } catch (const search::SubjectTooLarge& e) {
    EXPECT_EQ(e.residues(), kLimit + 1);
    EXPECT_NE(std::string(e.what()).find("4294967296"), std::string::npos);
  }
}

TEST(XDrop, ExtendsThroughMatchesStopsAtNoise) {
  // Seed inside a 20-bp identical block flanked by mismatching context.
  Xoshiro256 rng(263);
  const Sequence core = random_sequence(Alphabet::dna(), 20, rng);
  const Sequence query(Alphabet::dna(), "TTTTTTTT" + core.to_string() +
                                            "GGGGGGGG");
  const Sequence subject(Alphabet::dna(), "CCCCCCCC" + core.to_string() +
                                              "AAAAAAAA");
  // Seed at the middle of the core (offset 8 in both).
  const search::UngappedHit hit = search::xdrop_extend(
      query, 14, subject, 14, 6, scheme(), /*x_drop=*/10);
  EXPECT_EQ(hit.q_begin, 8u);
  EXPECT_EQ(hit.q_end, 28u);
  EXPECT_EQ(hit.s_begin, 8u);
  EXPECT_EQ(hit.score, 20 * 5 - /*at most two noise steps*/ 0);
}

TEST(XDrop, ScoreNeverBelowSeedScore) {
  Xoshiro256 rng(264);
  for (int trial = 0; trial < 20; ++trial) {
    const Sequence q = random_sequence(Alphabet::dna(), 60, rng);
    const Sequence s = random_sequence(Alphabet::dna(), 60, rng);
    const std::size_t qp = rng.bounded(50);
    const std::size_t sp = rng.bounded(50);
    const search::UngappedHit hit =
        search::xdrop_extend(q, qp, s, sp, 8, scheme(), 15);
    Score seed_score = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      seed_score += scheme().substitution(q[qp + i], s[sp + i]);
    }
    EXPECT_GE(hit.score, seed_score);
    EXPECT_LE(hit.q_begin, qp);
    EXPECT_GE(hit.q_end, qp + 8);
  }
}

TEST(SeedExtend, FindsPlantedGene) {
  Xoshiro256 rng(265);
  const Sequence gene = random_sequence(Alphabet::dna(), 120, rng);
  MutationModel light;
  light.substitution_rate = 0.04;
  const Sequence mutated = mutate(gene, light, rng);
  const Sequence subject(
      Alphabet::dna(),
      random_sequence(Alphabet::dna(), 2000, rng).to_string() +
          mutated.to_string() +
          random_sequence(Alphabet::dna(), 1500, rng).to_string());
  const search::KmerIndex index(subject, 8);
  const auto hits = search::seed_and_extend(gene, index, scheme());
  ASSERT_FALSE(hits.empty());
  const Alignment& best = hits[0].alignment;
  // The top hit covers the planted region (2000 .. 2000 + |mutated|).
  EXPECT_GE(best.b_end, 2000u);
  EXPECT_LE(best.b_begin, 2000u + mutated.size());
  EXPECT_GT(best.score, 400);
  EXPECT_GT(best.identity(), 0.85);
}

TEST(SeedExtend, NoHitsInUnrelatedSequences) {
  Xoshiro256 rng(266);
  const Sequence query = random_sequence(Alphabet::dna(), 100, rng);
  const Sequence subject = random_sequence(Alphabet::dna(), 3000, rng);
  const search::KmerIndex index(subject, 10);  // long seeds: chance ~0
  search::SearchParams params;
  params.k = 10;
  params.min_ungapped_score = 60;
  const auto hits = search::seed_and_extend(query, index, scheme(), params);
  EXPECT_TRUE(hits.empty());
}

TEST(SeedExtend, MultipleCopiesReportedSeparately) {
  Xoshiro256 rng(267);
  const Sequence motif = random_sequence(Alphabet::dna(), 80, rng);
  const Sequence spacer1 = random_sequence(Alphabet::dna(), 700, rng);
  const Sequence spacer2 = random_sequence(Alphabet::dna(), 600, rng);
  const Sequence subject(Alphabet::dna(),
                         spacer1.to_string() + motif.to_string() +
                             spacer2.to_string() + motif.to_string());
  const search::KmerIndex index(subject, 8);
  const auto hits = search::seed_and_extend(motif, index, scheme());
  ASSERT_GE(hits.size(), 2u);
  // Two disjoint subject regions, both near-perfect.
  EXPECT_TRUE(hits[0].alignment.b_end <= hits[1].alignment.b_begin ||
              hits[1].alignment.b_end <= hits[0].alignment.b_begin);
  EXPECT_GT(hits[1].alignment.identity(), 0.95);
}

TEST(SeedExtend, HitScoreMatchesLocalAlignmentOfRegion) {
  Xoshiro256 rng(268);
  const Sequence gene = random_sequence(Alphabet::dna(), 60, rng);
  const Sequence subject(
      Alphabet::dna(),
      random_sequence(Alphabet::dna(), 400, rng).to_string() +
          gene.to_string() +
          random_sequence(Alphabet::dna(), 300, rng).to_string());
  const search::KmerIndex index(subject, 8);
  const auto hits = search::seed_and_extend(gene, index, scheme());
  ASSERT_FALSE(hits.empty());
  // Full Smith-Waterman over the whole subject agrees with the pipeline's
  // best score (the planted copy is the global optimum).
  EXPECT_EQ(hits[0].alignment.score,
            local_align_full_matrix(gene, subject, scheme()).score);
}

TEST(SeedExtend, OverlappingRealignedWindowsAreDeduplicatedOnFinalExtent) {
  // Regression: stage 3 must deduplicate on where the *gapped* alignment
  // actually landed, not on the ungapped candidate extent. Construction:
  // the subject carries the full motif M and, 20 bp later, a copy of
  // M's suffix. The suffix candidate's ungapped extent is disjoint from
  // the reported M hit, but its padded window still contains M's tail —
  // where its local alignment scores higher and lands. Dedup on the
  // candidate extent reports both, i.e. two overlapping hits.
  Xoshiro256 rng(271);
  const Sequence motif = random_sequence(Alphabet::dna(), 120, rng);
  const Sequence suffix = motif.subsequence(60, 60);
  const Sequence subject(
      Alphabet::dna(),
      random_sequence(Alphabet::dna(), 500, rng).to_string() +
          motif.to_string() +
          random_sequence(Alphabet::dna(), 20, rng).to_string() +
          suffix.to_string() +
          random_sequence(Alphabet::dna(), 400, rng).to_string());
  const search::KmerIndex index(subject, 8);
  const auto hits = search::seed_and_extend(motif, index, scheme());
  ASSERT_FALSE(hits.empty());
  // The top hit is the planted full motif.
  EXPECT_LE(hits[0].alignment.b_begin, 500u);
  EXPECT_GE(hits[0].alignment.b_end, 620u);
  // The regression property: reported subject extents never overlap.
  for (std::size_t i = 0; i < hits.size(); ++i) {
    for (std::size_t j = i + 1; j < hits.size(); ++j) {
      const Alignment& a = hits[i].alignment;
      const Alignment& b = hits[j].alignment;
      EXPECT_TRUE(a.b_end <= b.b_begin || b.b_end <= a.b_begin)
          << "hits " << i << " [" << a.b_begin << "," << a.b_end
          << ") and " << j << " [" << b.b_begin << "," << b.b_end
          << ") overlap in the subject";
    }
  }
}

TEST(SeedExtend, PropertySweepHitsAreSortedDisjointAndBoundedBySw) {
  // Fixed-seed sweep over mutated pairs: reported hits are sorted by
  // score, pairwise disjoint in the subject, self-consistent (the score
  // matches the emitted gapped rows), and never beat the full
  // Smith-Waterman optimum over the whole subject.
  Xoshiro256 rng(272);
  for (std::size_t trial = 0; trial < 6; ++trial) {
    const Sequence gene =
        random_sequence(Alphabet::dna(), 70 + 15 * trial, rng);
    MutationModel model;
    model.substitution_rate = 0.05;
    const Sequence mutated = mutate(gene, model, rng);
    const Sequence subject(
        Alphabet::dna(),
        random_sequence(Alphabet::dna(), 800, rng).to_string() +
            mutated.to_string() +
            random_sequence(Alphabet::dna(), 600, rng).to_string());
    const search::KmerIndex index(subject, 8);
    const auto hits = search::seed_and_extend(gene, index, scheme());
    const Score optimum =
        local_align_full_matrix(gene, subject, scheme()).score;
    for (std::size_t i = 0; i < hits.size(); ++i) {
      const Alignment& a = hits[i].alignment;
      EXPECT_LE(a.score, optimum) << "trial " << trial;
      EXPECT_EQ(a.score, score_alignment(a, scheme(), Alphabet::dna()))
          << "trial " << trial;
      if (i + 1 < hits.size()) {
        EXPECT_GE(a.score, hits[i + 1].alignment.score) << "trial " << trial;
      }
      for (std::size_t j = i + 1; j < hits.size(); ++j) {
        const Alignment& b = hits[j].alignment;
        EXPECT_TRUE(a.b_end <= b.b_begin || b.b_end <= a.b_begin)
            << "trial " << trial;
      }
    }
    ASSERT_FALSE(hits.empty()) << "trial " << trial;
    EXPECT_EQ(hits[0].alignment.score, optimum) << "trial " << trial;
  }
}

TEST(SeedExtend, Validation) {
  const Sequence q(Alphabet::dna(), "ACGTACGTACGT");
  const search::KmerIndex index(q, 4);
  search::SearchParams params;
  params.k = 5;  // mismatched with the index
  EXPECT_THROW(search::seed_and_extend(q, index, scheme(), params),
               std::invalid_argument);
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme affine(m, -5, -1);
  search::SearchParams ok;
  ok.k = 4;
  EXPECT_THROW(search::seed_and_extend(q, index, affine, ok),
               std::invalid_argument);
}

}  // namespace
}  // namespace flsa
