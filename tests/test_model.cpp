// Tests for the paper's analytical model functions.
#include <gtest/gtest.h>

#include "simexec/model.hpp"
#include "simexec/recording.hpp"
#include "simexec/virtual_time.hpp"

namespace flsa {
namespace {

TEST(Model, AlphaReducesToOneOverPWithManyTiles) {
  // R*C >> P^2: alpha ~ 1/P (perfect parallelism).
  EXPECT_NEAR(model::alpha(8, 1000, 1000), 1.0 / 8.0, 1e-4);
}

TEST(Model, AlphaIsOneForOneProcessor) {
  EXPECT_DOUBLE_EQ(model::alpha(1, 10, 10), 1.0);
  EXPECT_DOUBLE_EQ(model::alpha(1, 1, 1), 1.0);
}

TEST(Model, AlphaKnownValue) {
  // Eq. 32 with P=4, R=C=8: (1/4)(1 + 12/64) = 0.296875.
  EXPECT_DOUBLE_EQ(model::alpha(4, 8, 8), 0.296875);
}

TEST(Model, FillCacheTimeScalesWithArea) {
  const double t1 = model::parallel_fill_cache_time(100, 100, 4, 16, 16);
  const double t2 = model::parallel_fill_cache_time(200, 100, 4, 16, 16);
  EXPECT_DOUBLE_EQ(t2, 2 * t1);
}

TEST(Model, SequentialBoundDecreasesInK) {
  const std::size_t m = 1000, n = 1000;
  // (k/(k-1))^2: k=2 -> 4x, k=3 -> 2.25x, k->inf -> 1x.
  EXPECT_DOUBLE_EQ(model::sequential_ops_bound(m, n, 2), 4e6);
  EXPECT_DOUBLE_EQ(model::sequential_ops_bound(m, n, 3), 2.25e6);
  EXPECT_GT(model::sequential_ops_bound(m, n, 3),
            model::sequential_ops_bound(m, n, 4));
  EXPECT_NEAR(model::sequential_ops_bound(m, n, 1000), 1e6, 3e3);
}

TEST(Model, SequentialEstimateConvergesToBound) {
  const std::size_t m = 500, n = 400;
  const unsigned k = 4;
  const double bound = model::sequential_ops_bound(m, n, k);
  double previous = 0;
  for (unsigned levels : {0u, 1u, 2u, 5u, 30u}) {
    const double estimate = model::sequential_ops_estimate(m, n, k, levels);
    EXPECT_GT(estimate, previous);
    EXPECT_LE(estimate, bound * (1 + 1e-9));
    previous = estimate;
  }
  EXPECT_NEAR(previous, bound, bound * 1e-6);
}

TEST(Model, TotalBoundComposes) {
  // WT bound = sequential bound * alpha.
  const double expected =
      model::sequential_ops_bound(100, 100, 4) * model::alpha(8, 32, 32);
  EXPECT_DOUBLE_EQ(model::total_time_bound(100, 100, 4, 8, 32, 32),
                   expected);
}

TEST(Model, EfficiencyBoundBetweenZeroAndOne) {
  for (unsigned p : {1u, 2u, 8u, 32u}) {
    for (std::size_t rc : {4u, 16u, 64u, 256u}) {
      const double e = model::efficiency_bound(p, rc, rc);
      EXPECT_GT(e, 0.0);
      EXPECT_LE(e, 1.0);
    }
  }
  // More tiles -> higher efficiency at fixed P.
  EXPECT_GT(model::efficiency_bound(8, 64, 64),
            model::efficiency_bound(8, 8, 8));
}

TEST(Model, HirschbergEstimate) {
  EXPECT_DOUBLE_EQ(model::hirschberg_ops_estimate(100, 50), 10000.0);
}

TEST(Model, InvalidArgumentsThrow) {
  EXPECT_THROW(model::alpha(0, 4, 4), std::invalid_argument);
  EXPECT_THROW(model::alpha(4, 0, 4), std::invalid_argument);
  EXPECT_THROW(model::sequential_ops_bound(10, 10, 1),
               std::invalid_argument);
}

TEST(Model, BarrierMakespanWithinAlphaModelForUniformTiles) {
  // For a uniform R x C grid the paper's PFillCacheT = M*N*alpha is an
  // upper-ish approximation of the simulated barrier makespan; check the
  // simulation lands within a modest factor of the model.
  TileGridRecord grid;
  grid.rows = 24;
  grid.cols = 24;
  const std::uint64_t tile_cost = 100;
  grid.costs.assign(grid.rows * grid.cols, tile_cost);
  const double mn =
      static_cast<double>(grid.total_cost());  // M*N in cell units
  for (unsigned p : {2u, 4u, 8u}) {
    const double predicted = mn * model::alpha(p, grid.rows, grid.cols);
    const double simulated = static_cast<double>(
        grid_makespan(grid, p, SchedulerKind::kBarrierStaged));
    EXPECT_GT(simulated, 0.8 * predicted) << "P=" << p;
    EXPECT_LT(simulated, 1.5 * predicted) << "P=" << p;
  }
}

}  // namespace
}  // namespace flsa
