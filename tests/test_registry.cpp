// Unit tests for the FLSAREG1 handle registry: the append-only manifest
// that makes sealed handles survive a restart. The writer side is
// exercised through RegistryWriter; the corruption matrix below edits
// the file bytes directly against the documented layout (16-byte
// header, then per record: u32 sync marker, u32 body length, body,
// u64 FNV-1a of the body — all little-endian), because crash damage
// does not arrive through the API.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "store/registry.hpp"
#include "support/fnv.hpp"

namespace flsa {
namespace store {
namespace {

constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kFrameBytes = 8;    // sync marker + body length
constexpr std::size_t kChecksumBytes = 8;

std::string registry_path(const std::string& name) {
  return testing::TempDir() + "flsa_registry_" + name + ".flsareg";
}

RegistryEntry sample_entry(std::uint64_t id) {
  RegistryEntry entry;
  entry.ref_id = id;
  entry.content_token = 0x1000 + id;
  entry.matrix = 3;  // WireMatrix::kDna
  entry.build_k = static_cast<std::uint32_t>(id % 2 == 0 ? 12 : 0);
  entry.residues = 100 * id;
  entry.file = "ref_" + std::to_string(id) + ".flsa";
  entry.name = id % 2 == 0 ? "chr" + std::to_string(id) : "";
  return entry;
}

void write_entries(const std::string& path,
                   const std::vector<RegistryEntry>& entries) {
  RegistryWriter writer(path);
  for (const RegistryEntry& entry : entries) writer.append(entry);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// Byte length of one encoded record (frame + body + checksum), so the
/// corruption tests can locate record boundaries without re-parsing.
std::size_t record_bytes(const RegistryEntry& entry) {
  const std::size_t body = 8 + 8 + 1 + 4 + 8 + (4 + entry.file.size()) +
                           (4 + entry.name.size());
  return kFrameBytes + body + kChecksumBytes;
}

void expect_same(const RegistryEntry& got, const RegistryEntry& want) {
  EXPECT_EQ(got.ref_id, want.ref_id);
  EXPECT_EQ(got.content_token, want.content_token);
  EXPECT_EQ(got.matrix, want.matrix);
  EXPECT_EQ(got.build_k, want.build_k);
  EXPECT_EQ(got.residues, want.residues);
  EXPECT_EQ(got.file, want.file);
  EXPECT_EQ(got.name, want.name);
}

TEST(Registry, RoundTripsEveryField) {
  const std::string path = registry_path("roundtrip");
  ::remove(path.c_str());
  const std::vector<RegistryEntry> wrote = {sample_entry(1), sample_entry(2),
                                            sample_entry(3)};
  write_entries(path, wrote);

  RegistryReplayReport report;
  const std::vector<RegistryEntry> got = replay_registry(path, &report);
  ASSERT_EQ(got.size(), 3u);
  for (std::size_t i = 0; i < got.size(); ++i) expect_same(got[i], wrote[i]);
  EXPECT_EQ(report.records, 3u);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_FALSE(report.truncated_tail);
  EXPECT_TRUE(report.warnings.empty());
}

TEST(Registry, ReopeningAppendsInsteadOfRewritingTheHeader) {
  const std::string path = registry_path("reopen");
  ::remove(path.c_str());
  write_entries(path, {sample_entry(1)});
  write_entries(path, {sample_entry(2)});  // second writer, same file

  const std::vector<RegistryEntry> got = replay_registry(path, nullptr);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].ref_id, 1u);
  EXPECT_EQ(got[1].ref_id, 2u);
}

TEST(Registry, MissingFileIsAnEmptyFirstBoot) {
  const std::string path = registry_path("missing");
  ::remove(path.c_str());
  RegistryReplayReport report;
  EXPECT_TRUE(replay_registry(path, &report).empty());
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_TRUE(report.warnings.empty());
}

TEST(Registry, TruncatedTailAtEveryBoundaryKeepsEarlierRecords) {
  // A crash mid-append leaves a partial final record. Wherever the cut
  // lands inside record 2 — mid-marker, mid-length, mid-body, mid-
  // checksum — record 1 must survive and the tail must be flagged, not
  // thrown.
  const std::string path = registry_path("truncated");
  ::remove(path.c_str());
  const RegistryEntry first = sample_entry(1);
  const RegistryEntry second = sample_entry(2);
  write_entries(path, {first, second});
  const std::string full = read_file(path);
  const std::size_t second_start = kHeaderBytes + record_bytes(first);
  ASSERT_EQ(full.size(), second_start + record_bytes(second));

  for (std::size_t cut = second_start + 1; cut < full.size(); ++cut) {
    write_file(path, full.substr(0, cut));
    RegistryReplayReport report;
    const std::vector<RegistryEntry> got = replay_registry(path, &report);
    ASSERT_EQ(got.size(), 1u) << "cut at byte " << cut;
    expect_same(got[0], first);
    EXPECT_TRUE(report.truncated_tail) << "cut at byte " << cut;
  }
}

TEST(Registry, CorruptMiddleRecordIsSkippedAndTheNextRecovered) {
  // Flip one body byte of record 2 of 3: its checksum fails, replay
  // rescans and must still find record 3 by its sync marker.
  const std::string path = registry_path("corrupt");
  ::remove(path.c_str());
  const std::vector<RegistryEntry> wrote = {sample_entry(1), sample_entry(2),
                                            sample_entry(3)};
  write_entries(path, wrote);
  std::string bytes = read_file(path);
  const std::size_t second_body =
      kHeaderBytes + record_bytes(wrote[0]) + kFrameBytes;
  bytes[second_body + 3] = static_cast<char>(bytes[second_body + 3] ^ 0x40);
  write_file(path, bytes);

  RegistryReplayReport report;
  const std::vector<RegistryEntry> got = replay_registry(path, &report);
  ASSERT_EQ(got.size(), 2u);
  expect_same(got[0], wrote[0]);
  expect_same(got[1], wrote[2]);
  EXPECT_GE(report.skipped, 1u);
  EXPECT_FALSE(report.warnings.empty());
}

TEST(Registry, ImplausibleLengthFieldDoesNotSwallowTheNextRecord) {
  // Corrupt record 1's length field to a huge value: the record is
  // untrustworthy, but the rescan must still land on record 2.
  const std::string path = registry_path("badlen");
  ::remove(path.c_str());
  const std::vector<RegistryEntry> wrote = {sample_entry(1), sample_entry(2)};
  write_entries(path, wrote);
  std::string bytes = read_file(path);
  const std::size_t length_field = kHeaderBytes + 4;
  bytes[length_field + 3] = static_cast<char>(0x7f);  // ~2 GiB body claim
  write_file(path, bytes);

  RegistryReplayReport report;
  const std::vector<RegistryEntry> got = replay_registry(path, &report);
  ASSERT_EQ(got.size(), 1u);
  expect_same(got[0], wrote[1]);
  EXPECT_GE(report.skipped, 1u);
}

TEST(Registry, GarbageFileIsIgnoredWithAWarning) {
  const std::string path = registry_path("garbage");
  write_file(path, "this is not a registry at all");
  RegistryReplayReport report;
  EXPECT_TRUE(replay_registry(path, &report).empty());
  ASSERT_EQ(report.warnings.size(), 1u);
  EXPECT_NE(report.warnings[0].find("bad magic"), std::string::npos);
}

TEST(Registry, UnknownVersionIsIgnoredWithAWarning) {
  const std::string path = registry_path("version");
  ::remove(path.c_str());
  write_entries(path, {sample_entry(1)});
  std::string bytes = read_file(path);
  bytes[8] = 9;  // version u32 little-endian low byte
  write_file(path, bytes);

  RegistryReplayReport report;
  EXPECT_TRUE(replay_registry(path, &report).empty());
  ASSERT_EQ(report.warnings.size(), 1u);
  EXPECT_NE(report.warnings[0].find("unknown version"), std::string::npos);
}

TEST(Registry, DuplicateRefIdKeepsTheFirstRecord) {
  // Restart-collision damage model: if two records ever claim one id,
  // the first (the one that was acknowledged first) wins.
  const std::string path = registry_path("duplicate");
  ::remove(path.c_str());
  RegistryEntry first = sample_entry(7);
  RegistryEntry second = sample_entry(7);
  second.residues = 9999;
  second.file = "ref_other.flsa";
  write_entries(path, {first, second});

  RegistryReplayReport report;
  const std::vector<RegistryEntry> got = replay_registry(path, &report);
  ASSERT_EQ(got.size(), 1u);
  expect_same(got[0], first);
  EXPECT_EQ(report.skipped, 1u);
}

TEST(Registry, ChecksumCoversTheWholeBody) {
  // Sanity-pin the layout itself: the trailing u64 must equal
  // fnv1a64(body). If the encoding ever drifts, this fails before any
  // crash test does.
  const std::string path = registry_path("layout");
  ::remove(path.c_str());
  const RegistryEntry entry = sample_entry(5);
  write_entries(path, {entry});
  const std::string bytes = read_file(path);
  ASSERT_EQ(bytes.size(), kHeaderBytes + record_bytes(entry));
  const std::size_t body_begin = kHeaderBytes + kFrameBytes;
  const std::size_t body_size =
      record_bytes(entry) - kFrameBytes - kChecksumBytes;
  const std::uint64_t want = fnv1a64(bytes.data() + body_begin, body_size);
  std::uint64_t got = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    got |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(
               bytes[body_begin + body_size + i]))
           << (8 * i);
  }
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace store
}  // namespace flsa
