// Tests for the anti-diagonal score kernel (cell-level wavefront).
#include <gtest/gtest.h>

#include "dp/antidiagonal.hpp"
#include "dp/kernel.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

ScoringScheme scheme() {
  static const SubstitutionMatrix m = scoring::dna(5, -4);
  return ScoringScheme(m, -6);
}

TEST(Antidiagonal, PaperExampleScore) {
  const Sequence a(Alphabet::protein(), "TLDKLLKD");
  const Sequence b(Alphabet::protein(), "TDVLKAD");
  EXPECT_EQ(global_score_antidiagonal(a.residues(), b.residues(),
                                      ScoringScheme::paper_default()),
            82);
}

TEST(Antidiagonal, MatchesRowKernelOnRandomPairs) {
  Xoshiro256 rng(161);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m = rng.bounded(50);
    const std::size_t n = rng.bounded(50);
    const Sequence a = random_sequence(Alphabet::dna(), m, rng);
    const Sequence b = random_sequence(Alphabet::dna(), n, rng);
    EXPECT_EQ(
        global_score_antidiagonal(a.residues(), b.residues(), scheme()),
        global_score_linear(a.residues(), b.residues(), scheme()))
        << m << "x" << n;
  }
}

TEST(Antidiagonal, LastRowMatchesRowKernel) {
  Xoshiro256 rng(162);
  for (const auto& [m, n] : {std::pair<std::size_t, std::size_t>{13, 29},
                             {29, 13},
                             {1, 10},
                             {10, 1},
                             {7, 7}}) {
    const Sequence a = random_sequence(Alphabet::dna(), m, rng);
    const Sequence b = random_sequence(Alphabet::dna(), n, rng);
    EXPECT_EQ(last_row_antidiagonal(a.residues(), b.residues(), scheme()),
              last_row_linear(a.residues(), b.residues(), scheme()))
        << m << "x" << n;
  }
}

TEST(Antidiagonal, EmptyInputs) {
  const Sequence empty(Alphabet::dna(), "");
  const Sequence acgt(Alphabet::dna(), "ACGT");
  EXPECT_EQ(global_score_antidiagonal(empty.residues(), empty.residues(),
                                      scheme()),
            0);
  EXPECT_EQ(global_score_antidiagonal(acgt.residues(), empty.residues(),
                                      scheme()),
            -24);
  EXPECT_EQ(global_score_antidiagonal(empty.residues(), acgt.residues(),
                                      scheme()),
            -24);
}

TEST(Antidiagonal, CountsCells) {
  Xoshiro256 rng(163);
  const Sequence a = random_sequence(Alphabet::dna(), 11, rng);
  const Sequence b = random_sequence(Alphabet::dna(), 13, rng);
  DpCounters counters;
  global_score_antidiagonal(a.residues(), b.residues(), scheme(),
                            &counters);
  EXPECT_EQ(counters.cells_scored, 143u);
}

TEST(Antidiagonal, RejectsAffine) {
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme affine(m, -5, -1);
  const Sequence a(Alphabet::dna(), "ACG");
  EXPECT_THROW(
      global_score_antidiagonal(a.residues(), a.residues(), affine),
      std::invalid_argument);
}

}  // namespace
}  // namespace flsa
