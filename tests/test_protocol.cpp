// Serialization round-trip and hostile-input tests for the service wire
// protocol. Every message type must survive encode -> decode bit-exactly,
// and every malformed payload must produce a typed ProtocolError — the
// daemon's first line of defence against untrusted bytes.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <limits>
#include <string>
#include <variant>

#include "scoring/scheme.hpp"
#include "service/protocol.hpp"

namespace flsa {
namespace service {
namespace {

AlignRequest sample_align_request() {
  AlignRequest request;
  request.request_id = 0x1122334455667788ULL;
  request.matrix = WireMatrix::kBlosum62;
  request.gap_open = -11;
  request.gap_extend = -1;
  request.k = 4;
  request.base_case_cells = 1 << 16;
  request.deadline_ms = 250;
  request.score_only = true;
  request.a = "HEAGAWGHEE";
  request.b = "PAWHEAE";
  return request;
}

TEST(Protocol, AlignRequestRoundTrip) {
  const AlignRequest request = sample_align_request();
  const Request decoded = decode_request(encode(request));
  const auto* align = std::get_if<AlignRequest>(&decoded);
  ASSERT_NE(align, nullptr);
  EXPECT_EQ(align->request_id, request.request_id);
  EXPECT_EQ(align->matrix, request.matrix);
  EXPECT_EQ(align->gap_open, request.gap_open);
  EXPECT_EQ(align->gap_extend, request.gap_extend);
  EXPECT_EQ(align->k, request.k);
  EXPECT_EQ(align->base_case_cells, request.base_case_cells);
  EXPECT_EQ(align->deadline_ms, request.deadline_ms);
  EXPECT_EQ(align->score_only, request.score_only);
  EXPECT_EQ(align->a, request.a);
  EXPECT_EQ(align->b, request.b);
}

TEST(Protocol, AlignRequestDefaultsRoundTrip) {
  AlignRequest request;
  request.a = "A";
  request.b = "C";
  const Request decoded = decode_request(encode(request));
  const auto* align = std::get_if<AlignRequest>(&decoded);
  ASSERT_NE(align, nullptr);
  EXPECT_EQ(align->request_id, 0u);
  EXPECT_EQ(align->gap_open, 0);
  EXPECT_FALSE(align->score_only);
}

TEST(Protocol, DefaultGapModelMatchesEngineDefaults) {
  // Regression: the wire defaults and the engine's paper_default() scheme
  // are sourced from one header (scoring/scheme.hpp); a request that
  // omits penalties must mean exactly the scheme flsa_align defaults to.
  const AlignRequest request;  // penalties omitted
  EXPECT_EQ(request.gap_open, ScoringScheme::paper_default().gap_open());
  EXPECT_EQ(request.gap_extend,
            ScoringScheme::paper_default().gap_extend());
  EXPECT_EQ(request.gap_open, kDefaultGapOpen);
  EXPECT_EQ(request.gap_extend, kDefaultGapExtend);

  // And the defaults survive the wire bit-exactly.
  AlignRequest on_wire;
  on_wire.a = "HEAGAWGHEE";
  on_wire.b = "PAWHEAE";
  const Request decoded = decode_request(encode(on_wire));
  const auto* align = std::get_if<AlignRequest>(&decoded);
  ASSERT_NE(align, nullptr);
  EXPECT_EQ(align->gap_open, kDefaultGapOpen);
  EXPECT_EQ(align->gap_extend, kDefaultGapExtend);
}

TEST(Protocol, StatsRequestRoundTrip) {
  StatsRequest request;
  request.request_id = 7;
  const Request decoded = decode_request(encode(request));
  const auto* stats = std::get_if<StatsRequest>(&decoded);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->request_id, 7u);
}

TEST(Protocol, AlignResponseRoundTrip) {
  AlignResponse response;
  response.request_id = 42;
  response.score = -12345;
  response.cigar = "3M1I2M1D4M";
  response.cells = 99;
  response.queue_micros = 1234;
  response.exec_micros = 56789;
  response.deadline_remaining_ms = 17;
  const Response decoded = decode_response(encode(response));
  const auto* ok = std::get_if<AlignResponse>(&decoded);
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->request_id, 42u);
  EXPECT_EQ(ok->score, -12345);
  EXPECT_EQ(ok->cigar, "3M1I2M1D4M");
  EXPECT_EQ(ok->cells, 99u);
  EXPECT_EQ(ok->queue_micros, 1234u);
  EXPECT_EQ(ok->exec_micros, 56789u);
  EXPECT_EQ(ok->deadline_remaining_ms, 17);
}

TEST(Protocol, AlignResponseNoDeadlineSentinelRoundTrip) {
  AlignResponse response;  // deadline_remaining_ms defaults to -1
  const Response decoded = decode_response(encode(response));
  const auto* ok = std::get_if<AlignResponse>(&decoded);
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->deadline_remaining_ms, -1);
}

TEST(Protocol, ErrorResponseRoundTripAllCodes) {
  for (ErrorCode code :
       {ErrorCode::kBadRequest, ErrorCode::kTooLarge, ErrorCode::kOverloaded,
        ErrorCode::kDeadlineExceeded, ErrorCode::kShuttingDown,
        ErrorCode::kInternal, ErrorCode::kConnectionLimit,
        ErrorCode::kRefNotFound}) {
    ErrorResponse response;
    response.request_id = 9;
    response.code = code;
    response.message = std::string("why: ") + to_string(code);
    const Response decoded = decode_response(encode(response));
    const auto* error = std::get_if<ErrorResponse>(&decoded);
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->code, code);
    EXPECT_EQ(error->message, response.message);
  }
}

TEST(Protocol, StatsResponseRoundTrip) {
  StatsResponse response;
  response.request_id = 3;
  response.entries = {{"service.requests", 10.0},
                      {"service.exec_seconds.p99", 0.125},
                      {"negative", -1.5}};
  const Response decoded = decode_response(encode(response));
  const auto* stats = std::get_if<StatsResponse>(&decoded);
  ASSERT_NE(stats, nullptr);
  ASSERT_EQ(stats->entries.size(), 3u);
  EXPECT_EQ(stats->entries[0].first, "service.requests");
  EXPECT_DOUBLE_EQ(stats->entries[0].second, 10.0);
  EXPECT_DOUBLE_EQ(stats->entries[1].second, 0.125);
  EXPECT_DOUBLE_EQ(stats->entries[2].second, -1.5);
}

TEST(Protocol, EmptySequencesRoundTrip) {
  AlignRequest request;  // both sequences empty
  const Request decoded = decode_request(encode(request));
  const auto* align = std::get_if<AlignRequest>(&decoded);
  ASSERT_NE(align, nullptr);
  EXPECT_TRUE(align->a.empty());
  EXPECT_TRUE(align->b.empty());
}

TEST(Protocol, RejectsEmptyPayload) {
  EXPECT_THROW(decode_request(""), ProtocolError);
  EXPECT_THROW(decode_response(""), ProtocolError);
}

TEST(Protocol, RejectsUnknownVersion) {
  std::string payload = encode(sample_align_request());
  payload[0] = static_cast<char>(kProtocolVersion + 1);
  EXPECT_THROW(decode_request(payload), ProtocolError);
}

TEST(Protocol, RejectsUnknownVerb) {
  std::string payload = encode(sample_align_request());
  payload[1] = '\x7f';
  EXPECT_THROW(decode_request(payload), ProtocolError);
}

TEST(Protocol, RejectsResponseVerbInRequestAndViceVersa) {
  EXPECT_THROW(decode_request(encode(AlignResponse{})), ProtocolError);
  EXPECT_THROW(decode_response(encode(sample_align_request())),
               ProtocolError);
}

TEST(Protocol, RejectsTruncationAtEveryPrefix) {
  const std::string payload = encode(sample_align_request());
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_THROW(decode_request(payload.substr(0, cut)), ProtocolError)
        << "prefix of " << cut << " bytes decoded successfully";
  }
}

TEST(Protocol, RejectsTrailingGarbage) {
  std::string payload = encode(sample_align_request());
  payload.push_back('\0');
  EXPECT_THROW(decode_request(payload), ProtocolError);
}

TEST(Protocol, RejectsStringLengthPastEnd) {
  // Corrupt the final string's length field to point past the payload.
  AlignRequest request = sample_align_request();
  request.b = "XYZ";
  std::string payload = encode(request);
  // b's length field is the 4 bytes preceding its 3 characters.
  const std::size_t len_offset = payload.size() - 3 - 4;
  payload[len_offset] = '\xff';
  payload[len_offset + 1] = '\xff';
  EXPECT_THROW(decode_request(payload), ProtocolError);
}

TEST(Protocol, RejectsUnknownMatrixAndErrorCode) {
  std::string align = encode(sample_align_request());
  // Layout after version+verb: u64 request_id, then the matrix byte.
  align[2 + 8] = '\x63';
  EXPECT_THROW(decode_request(align), ProtocolError);

  ErrorResponse error;
  error.code = ErrorCode::kOverloaded;
  std::string encoded = encode(error);
  encoded[2 + 8] = '\x63';  // same offset: request_id then code byte
  EXPECT_THROW(decode_response(encoded), ProtocolError);
}

TEST(Protocol, RefPutRequestRoundTrip) {
  RefPutRequest request;
  request.request_id = 0xdeadbeefULL;
  request.matrix = WireMatrix::kDnaN;
  request.k = 11;
  request.name = "chr7";
  request.sequence = "ACGTNACGT";
  const Request decoded = decode_request(encode(request));
  const auto* put = std::get_if<RefPutRequest>(&decoded);
  ASSERT_NE(put, nullptr);
  EXPECT_EQ(put->request_id, request.request_id);
  EXPECT_EQ(put->matrix, request.matrix);
  EXPECT_EQ(put->k, request.k);
  EXPECT_EQ(put->name, request.name);
  EXPECT_EQ(put->sequence, request.sequence);
}

TEST(Protocol, SearchRequestRoundTrip) {
  SearchRequest request;
  request.request_id = 77;
  request.ref_id = 0x0102030405060708ULL;
  request.matrix = WireMatrix::kBlosum62;
  request.gap_extend = -7;
  request.max_hits = 3;
  request.x_drop = 25;
  request.gap_weight = 2;
  request.min_chain_score = 40;
  request.band_pad = 9;
  request.max_overlap = 4;
  request.max_positions_per_kmer = 128;
  request.deadline_ms = 1500;
  request.score_only = true;
  request.query = "HEAGAWGHEE";
  const Request decoded = decode_request(encode(request));
  const auto* search = std::get_if<SearchRequest>(&decoded);
  ASSERT_NE(search, nullptr);
  EXPECT_EQ(search->request_id, request.request_id);
  EXPECT_EQ(search->ref_id, request.ref_id);
  EXPECT_EQ(search->matrix, request.matrix);
  EXPECT_EQ(search->gap_extend, request.gap_extend);
  EXPECT_EQ(search->max_hits, request.max_hits);
  EXPECT_EQ(search->x_drop, request.x_drop);
  EXPECT_EQ(search->gap_weight, request.gap_weight);
  EXPECT_EQ(search->min_chain_score, request.min_chain_score);
  EXPECT_EQ(search->band_pad, request.band_pad);
  EXPECT_EQ(search->max_overlap, request.max_overlap);
  EXPECT_EQ(search->max_positions_per_kmer, request.max_positions_per_kmer);
  EXPECT_EQ(search->deadline_ms, request.deadline_ms);
  EXPECT_EQ(search->score_only, request.score_only);
  EXPECT_EQ(search->query, request.query);
}

TEST(Protocol, RefPutResponseRoundTrip) {
  RefPutResponse response;
  response.request_id = 5;
  response.ref_id = 12;
  response.residues = 6200;
  response.distinct_kmers = 6189;
  response.build_micros = 1042;
  const Response decoded = decode_response(encode(response));
  const auto* put = std::get_if<RefPutResponse>(&decoded);
  ASSERT_NE(put, nullptr);
  EXPECT_EQ(put->ref_id, response.ref_id);
  EXPECT_EQ(put->residues, response.residues);
  EXPECT_EQ(put->distinct_kmers, response.distinct_kmers);
  EXPECT_EQ(put->build_micros, response.build_micros);
}

TEST(Protocol, SearchResponseRoundTrip) {
  SearchResponse response;
  response.request_id = 6;
  response.hits.push_back({928, 0, 200, 3000, 3200, "7=1X192="});
  response.hits.push_back({600, 0, 120, 9000, 9120, ""});  // score_only
  response.anchors = 7;
  response.chains = 2;
  response.queue_micros = 11;
  response.exec_micros = 222;
  response.deadline_remaining_ms = 480;
  const Response decoded = decode_response(encode(response));
  const auto* search = std::get_if<SearchResponse>(&decoded);
  ASSERT_NE(search, nullptr);
  ASSERT_EQ(search->hits.size(), 2u);
  EXPECT_EQ(search->hits[0].score, 928);
  EXPECT_EQ(search->hits[0].q_end, 200u);
  EXPECT_EQ(search->hits[0].s_begin, 3000u);
  EXPECT_EQ(search->hits[0].cigar, "7=1X192=");
  EXPECT_EQ(search->hits[1].score, 600);
  EXPECT_TRUE(search->hits[1].cigar.empty());
  EXPECT_EQ(search->anchors, 7u);
  EXPECT_EQ(search->chains, 2u);
  EXPECT_EQ(search->deadline_remaining_ms, 480);

  SearchResponse empty;  // zero hits must round-trip too
  const Response decoded_empty = decode_response(encode(empty));
  const auto* no_hits = std::get_if<SearchResponse>(&decoded_empty);
  ASSERT_NE(no_hits, nullptr);
  EXPECT_TRUE(no_hits->hits.empty());
  EXPECT_EQ(no_hits->deadline_remaining_ms, -1);
}

TEST(Protocol, SearchMessagesRejectTruncationAtEveryPrefix) {
  SearchRequest request;
  request.query = "ACGT";
  const std::string req_payload = encode(request);
  for (std::size_t cut = 0; cut < req_payload.size(); ++cut) {
    EXPECT_THROW(decode_request(req_payload.substr(0, cut)), ProtocolError);
  }
  SearchResponse response;
  response.hits.push_back({1, 0, 4, 10, 14, "4="});
  const std::string resp_payload = encode(response);
  for (std::size_t cut = 0; cut < resp_payload.size(); ++cut) {
    EXPECT_THROW(decode_response(resp_payload.substr(0, cut)),
                 ProtocolError);
  }
}

TEST(Protocol, AlignBatchRequestRoundTrip) {
  AlignBatchRequest batch;
  batch.request_id = 0xB00Fu;
  batch.jobs.push_back(sample_align_request());
  AlignRequest second;
  second.request_id = 99;
  second.a = "AC";
  second.b = "AG";
  second.matrix = WireMatrix::kDna;
  batch.jobs.push_back(second);

  const Request decoded = decode_request(encode(batch));
  const auto* out = std::get_if<AlignBatchRequest>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->request_id, batch.request_id);
  ASSERT_EQ(out->jobs.size(), 2u);
  EXPECT_EQ(out->jobs[0].request_id, batch.jobs[0].request_id);
  EXPECT_EQ(out->jobs[0].a, batch.jobs[0].a);
  EXPECT_EQ(out->jobs[0].deadline_ms, batch.jobs[0].deadline_ms);
  EXPECT_EQ(out->jobs[1].request_id, 99u);
  EXPECT_EQ(out->jobs[1].matrix, WireMatrix::kDna);
}

TEST(Protocol, AlignBatchResponseRoundTripMixesOkAndError) {
  AlignBatchResponse batch;
  batch.request_id = 0xBEEFu;
  AlignResponse ok;
  ok.request_id = 1;
  ok.score = 82;
  ok.cigar = "8=";
  ok.cells = 81;
  batch.items.emplace_back(ok);
  ErrorResponse error;
  error.request_id = 2;
  error.code = ErrorCode::kDeadlineExceeded;
  error.message = "late";
  batch.items.emplace_back(error);

  const Response decoded = decode_response(encode(batch));
  const auto* out = std::get_if<AlignBatchResponse>(&decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->request_id, batch.request_id);
  ASSERT_EQ(out->items.size(), 2u);
  const auto* item_ok = std::get_if<AlignResponse>(&out->items[0]);
  ASSERT_NE(item_ok, nullptr);
  EXPECT_EQ(item_ok->request_id, 1u);
  EXPECT_EQ(item_ok->score, 82);
  EXPECT_EQ(item_ok->cigar, "8=");
  const auto* item_err = std::get_if<ErrorResponse>(&out->items[1]);
  ASSERT_NE(item_err, nullptr);
  EXPECT_EQ(item_err->request_id, 2u);
  EXPECT_EQ(item_err->code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(item_err->message, "late");
}

TEST(Protocol, AlignBatchMessagesRejectTruncationAtEveryPrefix) {
  AlignBatchRequest request;
  request.jobs.push_back(sample_align_request());
  const std::string req_payload = encode(request);
  for (std::size_t cut = 0; cut < req_payload.size(); ++cut) {
    EXPECT_THROW(decode_request(req_payload.substr(0, cut)), ProtocolError);
  }
  AlignBatchResponse response;
  response.items.emplace_back(AlignResponse{});
  response.items.emplace_back(ErrorResponse{});
  const std::string resp_payload = encode(response);
  for (std::size_t cut = 0; cut < resp_payload.size(); ++cut) {
    EXPECT_THROW(decode_response(resp_payload.substr(0, cut)),
                 ProtocolError);
  }
}

TEST(Protocol, AlignBatchRejectsHostileJobCount) {
  // A count field claiming more jobs than the payload could possibly
  // hold must be rejected up front (guarding the decoder's reserve), not
  // by running off the end job by job.
  AlignBatchRequest request;
  request.jobs.push_back(sample_align_request());
  std::string payload = encode(request);
  // Layout: version, verb, u64 envelope id, u32 count.
  const std::size_t count_offset = 2 + 8;
  for (std::size_t i = 0; i < 4; ++i) {
    payload[count_offset + i] = '\xff';
  }
  EXPECT_THROW(decode_request(payload), ProtocolError);
}

TEST(Protocol, AlignBatchResponseRejectsUnknownItemTag) {
  AlignBatchResponse response;
  response.items.emplace_back(AlignResponse{});
  std::string payload = encode(response);
  // Layout: version, verb, u64 envelope id, u32 count, then the first
  // item's tag byte.
  payload[2 + 8 + 4] = '\x07';
  EXPECT_THROW(decode_response(payload), ProtocolError);
}

TEST(Protocol, EstimatedCellsForBatchSumsItsJobs) {
  AlignBatchRequest batch;
  AlignRequest a;
  a.a = std::string(9, 'A');
  a.b = std::string(4, 'C');
  batch.jobs.push_back(a);
  batch.jobs.push_back(AlignRequest{});
  EXPECT_EQ(estimated_cells(batch), 51u);  // 50 + 1
}

TEST(Protocol, EstimatedCellsForSearchIsQuerySquared) {
  // SEARCH admission uses the worst-case degenerate gap fill, (|q|+1)^2 —
  // the same DPM-cell currency as the ALIGN budget.
  SearchRequest request;
  request.query = std::string(9, 'A');
  EXPECT_EQ(estimated_cells(request), 100u);
  SearchRequest empty;
  EXPECT_EQ(estimated_cells(empty), 1u);
}

TEST(Protocol, EstimatedCellsCountsDpmEntries) {
  AlignRequest request;
  request.a = std::string(9, 'A');
  request.b = std::string(4, 'C');
  EXPECT_EQ(estimated_cells(request), 50u);  // (9+1) * (4+1)
  AlignRequest empty;
  EXPECT_EQ(estimated_cells(empty), 1u);
}

TEST(Protocol, MatrixNamesRoundTrip) {
  for (WireMatrix matrix :
       {WireMatrix::kMdm78, WireMatrix::kPam250, WireMatrix::kBlosum62,
        WireMatrix::kDna, WireMatrix::kDnaN}) {
    WireMatrix parsed = WireMatrix::kMdm78;
    ASSERT_TRUE(parse_wire_matrix(to_string(matrix), &parsed));
    EXPECT_EQ(parsed, matrix);
  }
  WireMatrix out = WireMatrix::kDna;
  EXPECT_FALSE(parse_wire_matrix("nonsense", &out));
  EXPECT_EQ(out, WireMatrix::kDna);  // untouched on failure
}

TEST(Protocol, VerbAndCodeNamesAreStable) {
  EXPECT_STREQ(to_string(Verb::kAlign), "ALIGN");
  EXPECT_STREQ(to_string(Verb::kStats), "STATS");
  EXPECT_STREQ(to_string(Verb::kRefPut), "REF_PUT");
  EXPECT_STREQ(to_string(Verb::kSearch), "SEARCH");
  EXPECT_STREQ(to_string(Verb::kAlignBatch), "ALIGN_BATCH");
  EXPECT_STREQ(to_string(Verb::kAlignBatchOk), "ALIGN_BATCH_OK");
  EXPECT_STREQ(to_string(ErrorCode::kRefNotFound), "REF_NOT_FOUND");
  EXPECT_STREQ(to_string(ErrorCode::kOverloaded), "OVERLOADED");
  EXPECT_STREQ(to_string(ErrorCode::kTooLarge), "TOO_LARGE");
  EXPECT_STREQ(to_string(ErrorCode::kDeadlineExceeded), "DEADLINE_EXCEEDED");
  EXPECT_STREQ(to_string(ErrorCode::kShuttingDown), "SHUTTING_DOWN");
  EXPECT_STREQ(to_string(ErrorCode::kConnectionLimit), "CONNECTION_LIMIT");
}

TEST(Protocol, RetryableClassificationIsIdempotentSafe) {
  // Retry is only safe when the server provably did not run the job.
  EXPECT_TRUE(is_retryable(ErrorCode::kOverloaded));
  EXPECT_TRUE(is_retryable(ErrorCode::kShuttingDown));
  EXPECT_TRUE(is_retryable(ErrorCode::kConnectionLimit));
  EXPECT_FALSE(is_retryable(ErrorCode::kBadRequest));
  EXPECT_FALSE(is_retryable(ErrorCode::kTooLarge));
  EXPECT_FALSE(is_retryable(ErrorCode::kDeadlineExceeded));
  EXPECT_FALSE(is_retryable(ErrorCode::kInternal));
  // REF_NOT_FOUND is deterministic until someone registers the reference;
  // blind retry would just repeat the miss.
  EXPECT_FALSE(is_retryable(ErrorCode::kRefNotFound));
}

// A reader guarded against hanging forever if the partial-write tests fail.
void arm_read_deadline(int fd) {
  struct timeval tv {};
  tv.tv_sec = 5;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

// The fault-injected partial-write path: the server dies (or is killed by
// the injector) after writing only a prefix of a frame. For every possible
// cut point the client-side reader must surface a typed TransportError —
// never a hang, never a garbage score. Cut 0 is the one clean case: EOF on
// a frame boundary, reported as an orderly false.
TEST(Protocol, PartialWriteAtEveryPrefixIsATypedTransportError) {
  AlignResponse response;
  response.request_id = 7;
  response.score = 82;
  response.cigar = "10M";
  const std::string wire = frame_bytes(encode(response));
  ASSERT_GT(wire.size(), 4u);

  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    int fds[2] = {-1, -1};
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    arm_read_deadline(fds[0]);
    ASSERT_TRUE(write_all(fds[1], std::string_view(wire).substr(0, cut)));
    close(fds[1]);  // server gone mid-frame

    std::string payload;
    if (cut == 0) {
      EXPECT_FALSE(read_frame(fds[0], &payload))
          << "EOF on a frame boundary must be an orderly close";
    } else if (cut == wire.size()) {
      ASSERT_TRUE(read_frame(fds[0], &payload));
      const Response decoded = decode_response(payload);
      const auto* ok = std::get_if<AlignResponse>(&decoded);
      ASSERT_NE(ok, nullptr);
      EXPECT_EQ(ok->score, 82);
    } else {
      EXPECT_THROW(read_frame(fds[0], &payload), TransportError)
          << "prefix of " << cut << " of " << wire.size()
          << " bytes did not produce a typed transport error";
    }
    close(fds[0]);
  }
}

TEST(Protocol, SeqBeginRequestRoundTrip) {
  SeqBeginRequest request;
  request.request_id = 0xa1b2c3d4e5f60718ULL;
  request.upload_token = 0x0f0e0d0c0b0a0908ULL;
  request.placement = 42;
  request.matrix = WireMatrix::kDnaN;
  request.total_residues = 3'200'000'000ULL;
  request.name = "chr1";
  const Request decoded = decode_request(encode(request));
  const auto* begin = std::get_if<SeqBeginRequest>(&decoded);
  ASSERT_NE(begin, nullptr);
  EXPECT_EQ(begin->request_id, request.request_id);
  EXPECT_EQ(begin->upload_token, request.upload_token);
  EXPECT_EQ(begin->placement, request.placement);
  EXPECT_EQ(begin->matrix, request.matrix);
  EXPECT_EQ(begin->total_residues, request.total_residues);
  EXPECT_EQ(begin->name, request.name);
}

TEST(Protocol, SeqChunkRequestRoundTrip) {
  SeqChunkRequest request;
  request.request_id = 9;
  request.upload_token = 0xfeedULL;
  request.offset = (std::uint64_t{1} << 40) + 17;
  request.prefix_hash = 0x123456789abcdef0ULL;
  request.data = "ACGTACGTACGT";
  const Request decoded = decode_request(encode(request));
  const auto* chunk = std::get_if<SeqChunkRequest>(&decoded);
  ASSERT_NE(chunk, nullptr);
  EXPECT_EQ(chunk->request_id, request.request_id);
  EXPECT_EQ(chunk->upload_token, request.upload_token);
  EXPECT_EQ(chunk->offset, request.offset);
  EXPECT_EQ(chunk->prefix_hash, request.prefix_hash);
  EXPECT_EQ(chunk->data, request.data);
}

TEST(Protocol, SeqEndRequestRoundTrip) {
  SeqEndRequest request;
  request.request_id = 10;
  request.upload_token = 0xfeedULL;
  request.total_residues = 2'200'000ULL;
  request.total_hash = 0x0dedbeefcafef00dULL;
  request.k = 13;
  request.build_index = true;
  const Request decoded = decode_request(encode(request));
  const auto* end = std::get_if<SeqEndRequest>(&decoded);
  ASSERT_NE(end, nullptr);
  EXPECT_EQ(end->request_id, request.request_id);
  EXPECT_EQ(end->upload_token, request.upload_token);
  EXPECT_EQ(end->total_residues, request.total_residues);
  EXPECT_EQ(end->total_hash, request.total_hash);
  EXPECT_EQ(end->k, request.k);
  EXPECT_EQ(end->build_index, request.build_index);
}

TEST(Protocol, AlignRefRequestRoundTrip) {
  AlignRefRequest request;
  request.request_id = 11;
  request.ref_a = 3;
  request.ref_b = 4;
  request.matrix = WireMatrix::kDna;
  request.gap_open = 0;
  request.gap_extend = -2;
  request.k = 6;
  request.base_case_cells = 1 << 18;
  request.band = 512;
  request.deadline_ms = 30000;
  request.score_only = true;
  request.b = "";
  const Request decoded = decode_request(encode(request));
  const auto* align = std::get_if<AlignRefRequest>(&decoded);
  ASSERT_NE(align, nullptr);
  EXPECT_EQ(align->request_id, request.request_id);
  EXPECT_EQ(align->ref_a, request.ref_a);
  EXPECT_EQ(align->ref_b, request.ref_b);
  EXPECT_EQ(align->matrix, request.matrix);
  EXPECT_EQ(align->gap_open, request.gap_open);
  EXPECT_EQ(align->gap_extend, request.gap_extend);
  EXPECT_EQ(align->k, request.k);
  EXPECT_EQ(align->base_case_cells, request.base_case_cells);
  EXPECT_EQ(align->band, request.band);
  EXPECT_EQ(align->deadline_ms, request.deadline_ms);
  EXPECT_EQ(align->score_only, request.score_only);
  EXPECT_EQ(align->b, request.b);
}

TEST(Protocol, AlignRefInlineBRoundTrip) {
  AlignRefRequest request;
  request.ref_a = 1;
  request.ref_b = 0;
  request.b = "HEAGAWGHEE";
  const Request decoded = decode_request(encode(request));
  const auto* align = std::get_if<AlignRefRequest>(&decoded);
  ASSERT_NE(align, nullptr);
  EXPECT_EQ(align->ref_b, 0u);
  EXPECT_EQ(align->b, "HEAGAWGHEE");
}

TEST(Protocol, SeqOkResponseRoundTrip) {
  SeqOkResponse response;
  response.request_id = 12;
  response.upload_token = 0xfeedULL;
  response.next_offset = 1'048'576;
  response.ref_id = 7;
  response.residues = 1'048'576;
  const Response decoded = decode_response(encode(response));
  const auto* ok = std::get_if<SeqOkResponse>(&decoded);
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->request_id, response.request_id);
  EXPECT_EQ(ok->upload_token, response.upload_token);
  EXPECT_EQ(ok->next_offset, response.next_offset);
  EXPECT_EQ(ok->ref_id, response.ref_id);
  EXPECT_EQ(ok->residues, response.residues);
}

TEST(Protocol, AlignPartResponseRoundTrip) {
  AlignPartResponse response;
  response.request_id = 13;
  response.seq = 3;
  response.last = true;
  response.score = -12345;
  response.cells = std::numeric_limits<std::uint64_t>::max();
  response.queue_micros = 17;
  response.exec_micros = 90210;
  response.deadline_remaining_ms = 250;
  response.cigar_part = "100M2D40M";
  const Response decoded = decode_response(encode(response));
  const auto* part = std::get_if<AlignPartResponse>(&decoded);
  ASSERT_NE(part, nullptr);
  EXPECT_EQ(part->request_id, response.request_id);
  EXPECT_EQ(part->seq, response.seq);
  EXPECT_EQ(part->last, response.last);
  EXPECT_EQ(part->score, response.score);
  EXPECT_EQ(part->cells, response.cells);
  EXPECT_EQ(part->queue_micros, response.queue_micros);
  EXPECT_EQ(part->exec_micros, response.exec_micros);
  EXPECT_EQ(part->deadline_remaining_ms, response.deadline_remaining_ms);
  EXPECT_EQ(part->cigar_part, response.cigar_part);
}

TEST(Protocol, RefPutContentTokenRoundTrip) {
  RefPutRequest request;
  request.request_id = 14;
  request.matrix = WireMatrix::kDna;
  request.sequence = "ACGT";
  request.content_token = 0x00c0ffee00c0ffeeULL;
  const Request decoded = decode_request(encode(request));
  const auto* put = std::get_if<RefPutRequest>(&decoded);
  ASSERT_NE(put, nullptr);
  EXPECT_EQ(put->content_token, request.content_token);
}

TEST(Protocol, StreamingMessagesRejectTruncationAtEveryPrefix) {
  SeqChunkRequest chunk;
  chunk.upload_token = 1;
  chunk.data = "ACGTAC";
  const std::string chunk_payload = encode(chunk);
  for (std::size_t cut = 0; cut < chunk_payload.size(); ++cut) {
    EXPECT_THROW(decode_request(chunk_payload.substr(0, cut)), ProtocolError);
  }
  AlignRefRequest align;
  align.ref_a = 1;
  align.b = "AW";
  const std::string align_payload = encode(align);
  for (std::size_t cut = 0; cut < align_payload.size(); ++cut) {
    EXPECT_THROW(decode_request(align_payload.substr(0, cut)), ProtocolError);
  }
  AlignPartResponse part;
  part.cigar_part = "5M";
  const std::string part_payload = encode(part);
  for (std::size_t cut = 0; cut < part_payload.size(); ++cut) {
    EXPECT_THROW(decode_response(part_payload.substr(0, cut)), ProtocolError);
  }
  SeqOkResponse ok;
  const std::string ok_payload = encode(ok);
  for (std::size_t cut = 0; cut < ok_payload.size(); ++cut) {
    EXPECT_THROW(decode_response(ok_payload.substr(0, cut)), ProtocolError);
  }
}

TEST(Protocol, ContentTokenIsDeterministicAndIgnoresTheName) {
  RefPutRequest a;
  a.matrix = WireMatrix::kDna;
  a.k = 12;
  a.name = "chr1";
  a.sequence = "ACGTACGTACGT";
  RefPutRequest b = a;
  b.name = "renamed";
  b.request_id = 999;  // ids must not perturb the token either
  EXPECT_EQ(content_token_for(a), content_token_for(b));
  EXPECT_NE(content_token_for(a), 0u);

  RefPutRequest different_k = a;
  different_k.k = 13;
  EXPECT_NE(content_token_for(a), content_token_for(different_k));

  RefPutRequest different_matrix = a;
  different_matrix.matrix = WireMatrix::kDnaN;
  EXPECT_NE(content_token_for(a), content_token_for(different_matrix));

  RefPutRequest different_sequence = a;
  different_sequence.sequence = "ACGTACGTACGA";
  EXPECT_NE(content_token_for(a), content_token_for(different_sequence));

  RefPutRequest empty;
  EXPECT_NE(content_token_for(empty), 0u);
}

TEST(Protocol, EstimatedCellsSaturatesInsteadOfWrapping) {
  const std::uint64_t max64 = std::numeric_limits<std::uint64_t>::max();
  // Ordinary sizes are exact.
  EXPECT_EQ(estimated_cells(0, 0), 1u);
  EXPECT_EQ(estimated_cells(10, 20), 11u * 21u);
  // (2^32)^2 == 2^64 wraps to 0 in naive arithmetic; the estimate must
  // pin to the ceiling so admission rejects instead of admitting.
  const std::uint64_t just_past = std::uint64_t{1} << 32;
  EXPECT_EQ(estimated_cells(just_past, just_past), max64);
  EXPECT_EQ(estimated_cells(max64, 1), max64);
  EXPECT_EQ(estimated_cells(max64, max64), max64);
  // Below the boundary stays exact: (2^32 - 1 + 1) * 2 == 2^33.
  EXPECT_EQ(estimated_cells((std::uint64_t{1} << 32) - 1, 1),
            std::uint64_t{1} << 33);
}

TEST(Protocol, EstimatedBandedCellsSaturatesInsteadOfWrapping) {
  const std::uint64_t max64 = std::numeric_limits<std::uint64_t>::max();
  // 2 Mbp pair at half-width 32: (m+1) * (|n-m| + 2w + 1), small & exact.
  EXPECT_EQ(estimated_banded_cells(2'000'000, 2'000'100, 32),
            2'000'001ULL * (100 + 64 + 1));
  EXPECT_EQ(estimated_banded_cells(2'000'100, 2'000'000, 32),
            2'000'101ULL * (100 + 64 + 1));
  // Huge m with a wide band must saturate, not wrap.
  EXPECT_EQ(estimated_banded_cells(max64 - 1, max64 - 1,
                                   std::numeric_limits<std::uint32_t>::max()),
            max64);
  EXPECT_EQ(estimated_banded_cells(max64, 0, 0), max64);
}

TEST(Protocol, CorruptedVersionByteIsAProtocolErrorNotAScore) {
  // The injector's corrupt fault XORs the version byte; the client must
  // get a typed decode failure, never a plausible wrong answer.
  AlignResponse response;
  response.score = 82;
  std::string payload = encode(response);
  payload[0] = static_cast<char>(payload[0] ^ 0xA5);
  EXPECT_THROW(decode_response(payload), ProtocolError);
}

}  // namespace
}  // namespace service
}  // namespace flsa
