// Tests for the center-star multiple sequence aligner.
#include <gtest/gtest.h>

#include <algorithm>

#include "dp/fullmatrix.hpp"
#include "msa/center_star.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

ScoringScheme scheme() {
  static const SubstitutionMatrix m = scoring::dna(5, -4);
  return ScoringScheme(m, -6);
}

std::string degap(const std::string& row) {
  std::string out;
  for (char c : row) {
    if (c != '-') out.push_back(c);
  }
  return out;
}

std::vector<Sequence> family(std::size_t count, std::size_t length,
                             std::uint64_t seed) {
  Xoshiro256 rng(seed);
  MutationModel model;
  model.substitution_rate = 0.1;
  model.insertion_rate = 0.02;
  model.deletion_rate = 0.02;
  const Sequence ancestor = random_sequence(Alphabet::dna(), length, rng);
  std::vector<Sequence> sequences;
  for (std::size_t i = 0; i < count; ++i) {
    sequences.push_back(
        mutate(ancestor, model, rng, "member-" + std::to_string(i)));
  }
  return sequences;
}

TEST(CenterStar, SingleSequenceIsItself) {
  const std::vector<Sequence> seqs{Sequence(Alphabet::dna(), "ACGT")};
  const msa::MultipleAlignment aln = msa::center_star_align(seqs, scheme());
  ASSERT_EQ(aln.rows.size(), 1u);
  EXPECT_EQ(aln.rows[0], "ACGT");
}

TEST(CenterStar, TwoSequencesEqualPairwise) {
  Xoshiro256 rng(211);
  MutationModel model;
  const SequencePair pair = homologous_pair(Alphabet::dna(), 80, model, rng);
  const std::vector<Sequence> seqs{pair.a, pair.b};
  const msa::MultipleAlignment aln = msa::center_star_align(seqs, scheme());
  ASSERT_EQ(aln.rows.size(), 2u);
  const Score sp =
      msa::sum_of_pairs_score(aln, scheme(), Alphabet::dna());
  EXPECT_EQ(sp, full_matrix_score(pair.a, pair.b, scheme()));
}

TEST(CenterStar, RowsEqualWidthAndDegapToInputs) {
  const std::vector<Sequence> seqs = family(6, 120, 212);
  const msa::MultipleAlignment aln = msa::center_star_align(seqs, scheme());
  ASSERT_EQ(aln.rows.size(), 6u);
  for (const std::string& row : aln.rows) {
    EXPECT_EQ(row.size(), aln.width());
  }
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(degap(aln.rows[i]), seqs[i].to_string()) << "row " << i;
  }
  EXPECT_LT(aln.center_index, seqs.size());
}

TEST(CenterStar, NoAllGapColumns) {
  const std::vector<Sequence> seqs = family(5, 60, 213);
  const msa::MultipleAlignment aln = msa::center_star_align(seqs, scheme());
  for (std::size_t col = 0; col < aln.width(); ++col) {
    bool any_residue = false;
    for (const std::string& row : aln.rows) {
      any_residue |= row[col] != '-';
    }
    EXPECT_TRUE(any_residue) << "column " << col;
  }
}

TEST(CenterStar, IdenticalSequencesAlignPerfectly) {
  const Sequence s(Alphabet::dna(), "ACGTACGTACGT");
  const std::vector<Sequence> seqs{s, s, s, s};
  const msa::MultipleAlignment aln = msa::center_star_align(seqs, scheme());
  EXPECT_EQ(aln.width(), s.size());
  for (const std::string& row : aln.rows) {
    EXPECT_EQ(row, s.to_string());
  }
  // SP score: 6 pairs x 12 matches x 5.
  EXPECT_EQ(msa::sum_of_pairs_score(aln, scheme(), Alphabet::dna()),
            6 * 12 * 5);
}

TEST(CenterStar, CenterPairRowsScoreOptimally) {
  // Projecting (center, j) out of the MSA reproduces the optimal pairwise
  // score — the merge must not distort the star's own alignments.
  const std::vector<Sequence> seqs = family(5, 100, 214);
  const msa::MultipleAlignment aln = msa::center_star_align(seqs, scheme());
  const std::size_t c = aln.center_index;
  for (std::size_t j = 0; j < seqs.size(); ++j) {
    if (j == c) continue;
    Alignment pair;
    for (std::size_t col = 0; col < aln.width(); ++col) {
      const char cx = aln.rows[c][col];
      const char cy = aln.rows[j][col];
      if (cx == '-' && cy == '-') continue;
      pair.gapped_a.push_back(cx);
      pair.gapped_b.push_back(cy);
    }
    EXPECT_EQ(score_alignment(pair, scheme(), Alphabet::dna()),
              full_matrix_score(seqs[c], seqs[j], scheme()))
        << "pair (center," << j << ")";
  }
}

TEST(CenterStar, SumOfPairsBeatsUnalignedBaseline) {
  // The MSA's SP score must dominate the trivial no-gap left-justified
  // "alignment" padded with end gaps.
  const std::vector<Sequence> seqs = family(4, 90, 215);
  const msa::MultipleAlignment aln = msa::center_star_align(seqs, scheme());
  std::size_t width = 0;
  for (const Sequence& s : seqs) width = std::max(width, s.size());
  msa::MultipleAlignment naive;
  for (const Sequence& s : seqs) {
    std::string row = s.to_string();
    row.resize(width, '-');
    naive.rows.push_back(std::move(row));
  }
  EXPECT_GE(msa::sum_of_pairs_score(aln, scheme(), Alphabet::dna()),
            msa::sum_of_pairs_score(naive, scheme(), Alphabet::dna()));
}

TEST(CenterStar, ThreadedBuildMatchesSerial) {
  const std::vector<Sequence> seqs = family(7, 80, 216);
  msa::CenterStarOptions serial;
  serial.threads = 1;
  msa::CenterStarOptions threaded;
  threaded.threads = 4;
  const msa::MultipleAlignment a =
      msa::center_star_align(seqs, scheme(), serial);
  const msa::MultipleAlignment b =
      msa::center_star_align(seqs, scheme(), threaded);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.center_index, b.center_index);
}

TEST(CenterStar, RejectsBadInput) {
  EXPECT_THROW(msa::center_star_align({}, scheme()),
               std::invalid_argument);
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme affine(m, -5, -1);
  const std::vector<Sequence> seqs{Sequence(Alphabet::dna(), "ACG"),
                                   Sequence(Alphabet::dna(), "ACC")};
  EXPECT_THROW(msa::center_star_align(seqs, affine),
               std::invalid_argument);
  const std::vector<Sequence> mixed{
      Sequence(Alphabet::dna(), "ACG"),
      Sequence(Alphabet::protein(), "ACD")};
  EXPECT_THROW(msa::center_star_align(mixed, scheme()),
               std::invalid_argument);
}

}  // namespace
}  // namespace flsa
