// Tests for the 2-bit packed-traceback FM variant (paper Section 2.1's
// "two bits can be used to encode the three path choices").
#include <gtest/gtest.h>

#include "dp/fullmatrix.hpp"
#include "dp/packed_traceback.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

TEST(PackedDirectionMatrix, RoundTripsAllMoves) {
  PackedDirectionMatrix m(5, 7);
  const Move moves[] = {Move::kDiag, Move::kUp, Move::kLeft};
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 7; ++c) {
      m.set(r, c, moves[(r * 7 + c) % 3]);
    }
  }
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 7; ++c) {
      EXPECT_EQ(m.get(r, c), moves[(r * 7 + c) % 3]) << r << "," << c;
    }
  }
}

TEST(PackedDirectionMatrix, UsesQuarterByterPerCell) {
  PackedDirectionMatrix m(100, 100);
  EXPECT_EQ(m.byte_size(), 2500u);
  PackedDirectionMatrix odd(3, 3);  // 9 cells -> 3 bytes
  EXPECT_EQ(odd.byte_size(), 3u);
}

TEST(PackedDirectionMatrix, NeighboringCellsDoNotClobber) {
  PackedDirectionMatrix m(1, 8);
  for (std::size_t c = 0; c < 8; ++c) m.set(0, c, Move::kLeft);
  m.set(0, 3, Move::kUp);
  EXPECT_EQ(m.get(0, 2), Move::kLeft);
  EXPECT_EQ(m.get(0, 3), Move::kUp);
  EXPECT_EQ(m.get(0, 4), Move::kLeft);
}

TEST(Packed, PaperExample) {
  const Sequence a(Alphabet::protein(), "TLDKLLKD");
  const Sequence b(Alphabet::protein(), "TDVLKAD");
  const Alignment aln =
      packed_full_matrix_align(a, b, ScoringScheme::paper_default());
  EXPECT_EQ(aln.score, 82);
}

TEST(Packed, IdenticalPathToUnpackedFullMatrix) {
  Xoshiro256 rng(151);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t m = 1 + rng.bounded(60);
    const std::size_t n = 1 + rng.bounded(60);
    const Sequence a = random_sequence(Alphabet::protein(), m, rng);
    const Sequence b = random_sequence(Alphabet::protein(), n, rng);
    const Alignment unpacked = full_matrix_align(a, b, scheme);
    const Alignment packed = packed_full_matrix_align(a, b, scheme);
    EXPECT_EQ(packed.score, unpacked.score);
    EXPECT_EQ(packed.gapped_a, unpacked.gapped_a) << m << "x" << n;
    EXPECT_EQ(packed.gapped_b, unpacked.gapped_b);
  }
}

TEST(Packed, EmptyInputs) {
  const SubstitutionMatrix m = scoring::dna(1, -1);
  const ScoringScheme scheme(m, -2);
  const Sequence empty(Alphabet::dna(), "");
  const Sequence acg(Alphabet::dna(), "ACG");
  EXPECT_EQ(packed_full_matrix_align(empty, empty, scheme).score, 0);
  EXPECT_EQ(packed_full_matrix_align(acg, empty, scheme).score, -6);
  EXPECT_EQ(packed_full_matrix_align(empty, acg, scheme).score, -6);
}

TEST(Packed, CountsScoredNotStoredCells) {
  Xoshiro256 rng(152);
  const Sequence a = random_sequence(Alphabet::dna(), 10, rng);
  const Sequence b = random_sequence(Alphabet::dna(), 12, rng);
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme scheme(m, -3);
  DpCounters counters;
  packed_full_matrix_align(a, b, scheme, &counters);
  EXPECT_EQ(counters.cells_scored, 120u);
  EXPECT_EQ(counters.cells_stored, 0u);
  // The traceback walks from (m, n) to the origin: between max(m, n) and
  // m + n steps.
  EXPECT_GE(counters.traceback_steps, 12u);
  EXPECT_LE(counters.traceback_steps, 22u);
}

TEST(Packed, RejectsAffine) {
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme affine(m, -5, -1);
  const Sequence a(Alphabet::dna(), "ACG");
  EXPECT_THROW(packed_full_matrix_align(a, a, affine),
               std::invalid_argument);
}

}  // namespace
}  // namespace flsa
