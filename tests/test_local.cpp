// Tests for Smith-Waterman local alignment (full matrix and score pass).
#include <gtest/gtest.h>

#include "dp/fullmatrix.hpp"
#include "dp/local.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

ScoringScheme local_scheme() {
  static const SubstitutionMatrix m = scoring::dna(5, -4);
  return ScoringScheme(m, -6);
}

TEST(Local, FindsEmbeddedCommonSubstring) {
  const Sequence a(Alphabet::dna(), "TTTTACGTACGTTTTT");
  const Sequence b(Alphabet::dna(), "GGGGGACGTACGGGGG");
  const Alignment aln = local_align_full_matrix(a, b, local_scheme());
  EXPECT_EQ(aln.score, 35);  // the shared ACGTACG core, 7 matches at +5
  EXPECT_GE(aln.matches(), 7u);
  // The aligned region covers the shared core.
  const std::string sub_a = a.to_string().substr(
      aln.a_begin, aln.a_end - aln.a_begin);
  EXPECT_NE(sub_a.find("ACGTACG"), std::string::npos);
}

TEST(Local, ScorePassAgreesWithFullMatrix) {
  Xoshiro256 rng(51);
  const ScoringScheme scheme = local_scheme();
  for (int trial = 0; trial < 20; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(60), rng);
    const Sequence b =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(60), rng);
    const LocalScoreResult pass =
        local_score_linear(a.residues(), b.residues(), scheme);
    const Alignment aln = local_align_full_matrix(a, b, scheme);
    EXPECT_EQ(pass.score, aln.score);
  }
}

TEST(Local, LocalScoreAtLeastGlobalScore) {
  Xoshiro256 rng(52);
  const ScoringScheme scheme = local_scheme();
  for (int trial = 0; trial < 10; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(40), rng);
    const Sequence b =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(40), rng);
    EXPECT_GE(local_align_full_matrix(a, b, scheme).score,
              full_matrix_score(a, b, scheme));
  }
}

TEST(Local, AllMismatchesYieldEmptyAlignment) {
  const SubstitutionMatrix m = scoring::dna(-1, -5);
  const ScoringScheme scheme(m, -6);
  const Sequence a(Alphabet::dna(), "AAAA");
  const Sequence b(Alphabet::dna(), "CCCC");
  const Alignment aln = local_align_full_matrix(a, b, scheme);
  EXPECT_EQ(aln.score, 0);
  EXPECT_EQ(aln.length(), 0u);
}

TEST(Local, RegionBoundsAreConsistent) {
  Xoshiro256 rng(53);
  const ScoringScheme scheme = local_scheme();
  MutationModel model;
  const SequencePair pair = homologous_pair(Alphabet::dna(), 80, model, rng);
  const Alignment aln = local_align_full_matrix(pair.a, pair.b, scheme);
  EXPECT_LE(aln.a_begin, aln.a_end);
  EXPECT_LE(aln.a_end, pair.a.size());
  EXPECT_LE(aln.b_begin, aln.b_end);
  EXPECT_LE(aln.b_end, pair.b.size());
  // Gapped rows consume exactly the aligned region.
  std::size_t a_res = 0, b_res = 0;
  for (char c : aln.gapped_a) a_res += (c != '-');
  for (char c : aln.gapped_b) b_res += (c != '-');
  EXPECT_EQ(a_res, aln.a_end - aln.a_begin);
  EXPECT_EQ(b_res, aln.b_end - aln.b_begin);
}

TEST(Local, LocalAlignmentScoreIsRescorable) {
  Xoshiro256 rng(54);
  const ScoringScheme scheme = local_scheme();
  for (int trial = 0; trial < 10; ++trial) {
    MutationModel model;
    const SequencePair pair =
        homologous_pair(Alphabet::dna(), 50 + rng.bounded(50), model, rng);
    const Alignment aln = local_align_full_matrix(pair.a, pair.b, scheme);
    if (aln.length() == 0) continue;
    EXPECT_EQ(score_alignment(aln, scheme, Alphabet::dna()), aln.score);
  }
}

TEST(Local, IdenticalSequencesAlignFully) {
  Xoshiro256 rng(55);
  const Sequence s = random_sequence(Alphabet::dna(), 40, rng);
  const Alignment aln = local_align_full_matrix(s, s, local_scheme());
  EXPECT_EQ(aln.score, static_cast<Score>(40 * 5));
  EXPECT_EQ(aln.a_begin, 0u);
  EXPECT_EQ(aln.a_end, 40u);
}

// ---------- affine-gap Smith-Waterman ----------

ScoringScheme affine_local_scheme() {
  static const SubstitutionMatrix m = scoring::dna(5, -4);
  return ScoringScheme(m, -8, -2);
}

TEST(LocalAffine, ScorePassAgreesWithFullMatrix) {
  Xoshiro256 rng(56);
  const ScoringScheme scheme = affine_local_scheme();
  for (int trial = 0; trial < 20; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(50), rng);
    const Sequence b =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(50), rng);
    EXPECT_EQ(local_score_affine(a.residues(), b.residues(), scheme).score,
              local_align_full_matrix_affine(a, b, scheme).score);
  }
}

TEST(LocalAffine, ReducesToLinearWhenOpenIsZero) {
  Xoshiro256 rng(57);
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const ScoringScheme affine(m, 0, -6);
  const ScoringScheme linear(m, -6);
  for (int trial = 0; trial < 12; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(40), rng);
    const Sequence b =
        random_sequence(Alphabet::dna(), 1 + rng.bounded(40), rng);
    EXPECT_EQ(local_align_full_matrix_affine(a, b, affine).score,
              local_align_full_matrix(a, b, linear).score);
  }
}

TEST(LocalAffine, AlignmentIsRescorable) {
  Xoshiro256 rng(58);
  const ScoringScheme scheme = affine_local_scheme();
  MutationModel model;
  model.extension_prob = 0.7;
  for (int trial = 0; trial < 10; ++trial) {
    const SequencePair pair =
        homologous_pair(Alphabet::dna(), 60 + rng.bounded(60), model, rng);
    const Alignment aln =
        local_align_full_matrix_affine(pair.a, pair.b, scheme);
    if (aln.length() == 0) continue;
    EXPECT_EQ(score_alignment(aln, scheme, Alphabet::dna()), aln.score);
  }
}

TEST(LocalAffine, LocalScoreAtLeastLinearLocalWithHarsherGaps) {
  // Affine with open+extend == linear gap on length-1 runs, cheaper on
  // longer runs: the affine local optimum dominates the linear one whose
  // per-residue penalty equals open+extend.
  Xoshiro256 rng(59);
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const ScoringScheme affine(m, -4, -2);
  const ScoringScheme linear(m, -6);
  for (int trial = 0; trial < 10; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::dna(), 10 + rng.bounded(60), rng);
    const Sequence b =
        random_sequence(Alphabet::dna(), 10 + rng.bounded(60), rng);
    EXPECT_GE(local_align_full_matrix_affine(a, b, affine).score,
              local_align_full_matrix(a, b, linear).score);
  }
}

TEST(LocalAffine, EmptyOnAllNegative) {
  const SubstitutionMatrix m = scoring::dna(-1, -5);
  const ScoringScheme scheme(m, -6, -2);
  const Sequence a(Alphabet::dna(), "AAAA");
  const Sequence b(Alphabet::dna(), "CCCC");
  const Alignment aln = local_align_full_matrix_affine(a, b, scheme);
  EXPECT_EQ(aln.score, 0);
  EXPECT_EQ(aln.length(), 0u);
}

TEST(Local, DeterministicTieBreak) {
  // Two identical copies of the motif: the earliest end in row-major order
  // wins, deterministically.
  const Sequence a(Alphabet::dna(), "ACGACG");
  const Sequence b(Alphabet::dna(), "ACG");
  const Alignment first = local_align_full_matrix(a, b, local_scheme());
  const Alignment second = local_align_full_matrix(a, b, local_scheme());
  EXPECT_EQ(first.a_begin, second.a_begin);
  EXPECT_EQ(first.a_end, second.a_end);
  EXPECT_EQ(first.a_end, 3u);  // the first copy
}

}  // namespace
}  // namespace flsa
