// Tests for the Hirschberg / Myers-Miller linear-space baselines, linear
// and affine, validated against the full-matrix algorithms.
#include <gtest/gtest.h>

#include "dp/fullmatrix.hpp"
#include "dp/gotoh.hpp"
#include "hirschberg/hirschberg.hpp"
#include "hirschberg/hirschberg_affine.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace flsa {
namespace {

HirschbergOptions tiny_base() {
  HirschbergOptions options;
  options.base_case_cells = 2;  // force deep recursion
  return options;
}

TEST(Hirschberg, PaperExample) {
  const Sequence a(Alphabet::protein(), "TLDKLLKD");
  const Sequence b(Alphabet::protein(), "TDVLKAD");
  const Alignment aln =
      hirschberg_align(a, b, ScoringScheme::paper_default(), tiny_base());
  EXPECT_EQ(aln.score, 82);
}

TEST(Hirschberg, MatchesFullMatrixOnRandomPairs) {
  Xoshiro256 rng(71);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m = 1 + rng.bounded(60);
    const std::size_t n = 1 + rng.bounded(60);
    const Sequence a = random_sequence(Alphabet::protein(), m, rng);
    const Sequence b = random_sequence(Alphabet::protein(), n, rng);
    const Alignment fm = full_matrix_align(a, b, scheme);
    const Alignment h = hirschberg_align(a, b, scheme, tiny_base());
    EXPECT_EQ(h.score, fm.score) << "m=" << m << " n=" << n;
    EXPECT_EQ(score_alignment(h, scheme, Alphabet::protein()), h.score);
  }
}

TEST(Hirschberg, EmptyInputs) {
  const SubstitutionMatrix m = scoring::dna(1, -1);
  const ScoringScheme scheme(m, -2);
  const Sequence empty(Alphabet::dna(), "");
  const Sequence acg(Alphabet::dna(), "ACG");
  EXPECT_EQ(hirschberg_align(empty, empty, scheme).score, 0);
  EXPECT_EQ(hirschberg_align(acg, empty, scheme).score, -6);
  EXPECT_EQ(hirschberg_align(empty, acg, scheme).score, -6);
}

TEST(Hirschberg, RoughlyDoublesTheScoredCells) {
  // The classic result: Hirschberg recomputes, costing ~2x the FM cell
  // count (paper Section 2.2).
  Xoshiro256 rng(72);
  const Sequence a = random_sequence(Alphabet::protein(), 300, rng);
  const Sequence b = random_sequence(Alphabet::protein(), 280, rng);
  DpCounters counters;
  HirschbergOptions options;
  options.base_case_cells = 128;
  hirschberg_align(a, b, ScoringScheme::paper_default(), options, &counters);
  const double cells = static_cast<double>(counters.total_cells());
  const double mn = 300.0 * 280.0;
  EXPECT_GT(cells, 1.6 * mn);
  EXPECT_LT(cells, 2.2 * mn);
}

TEST(Hirschberg, LargerBaseCaseSameAnswer) {
  Xoshiro256 rng(73);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 200, model, rng);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  const Score expected = full_matrix_score(pair.a, pair.b, scheme);
  for (std::size_t base : {2u, 64u, 1024u, 65536u}) {
    HirschbergOptions options;
    options.base_case_cells = base;
    EXPECT_EQ(hirschberg_align(pair.a, pair.b, scheme, options).score,
              expected)
        << "base=" << base;
  }
}

TEST(Hirschberg, RejectsAffineScheme) {
  const SubstitutionMatrix m = scoring::dna();
  const ScoringScheme affine(m, -5, -1);
  const Sequence a(Alphabet::dna(), "ACG");
  EXPECT_THROW(hirschberg_align(a, a, affine), std::invalid_argument);
}

// ---------- Affine (Myers-Miller) ----------

TEST(HirschbergAffine, MatchesGotohOnRandomPairs) {
  Xoshiro256 rng(74);
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const ScoringScheme scheme(m, -8, -2);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t la = 1 + rng.bounded(40);
    const std::size_t lb = 1 + rng.bounded(40);
    const Sequence a = random_sequence(Alphabet::dna(), la, rng);
    const Sequence b = random_sequence(Alphabet::dna(), lb, rng);
    const Score expected =
        global_score_affine(a.residues(), b.residues(), scheme);
    const Alignment aln = hirschberg_align_affine(a, b, scheme, tiny_base());
    EXPECT_EQ(aln.score, expected) << "la=" << la << " lb=" << lb;
    EXPECT_EQ(score_alignment(aln, scheme, Alphabet::dna()), aln.score);
  }
}

TEST(HirschbergAffine, GapCrossingSplitIsHandled) {
  // Construct a pair whose optimal alignment contains one long vertical
  // gap spanning the middle of `a` — the Myers-Miller type-2 case.
  const SubstitutionMatrix m = scoring::dna(10, -10);
  const ScoringScheme scheme(m, -9, -1);
  const Sequence a(Alphabet::dna(), "ACGTGGGGGGGGACGT");
  const Sequence b(Alphabet::dna(), "ACGTACGT");
  const Score expected =
      global_score_affine(a.residues(), b.residues(), scheme);
  const Alignment aln = hirschberg_align_affine(a, b, scheme, tiny_base());
  EXPECT_EQ(aln.score, expected);
  // One 8-long deletion: 8 matches (80) + open (-9) + 8 * extend (-8).
  EXPECT_EQ(expected, 80 - 9 - 8);
  EXPECT_EQ(score_alignment(aln, scheme, Alphabet::dna()), aln.score);
}

TEST(HirschbergAffine, EmptyAndDegenerate) {
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const ScoringScheme scheme(m, -8, -2);
  const Sequence empty(Alphabet::dna(), "");
  const Sequence acg(Alphabet::dna(), "ACG");
  EXPECT_EQ(hirschberg_align_affine(empty, empty, scheme).score, 0);
  EXPECT_EQ(hirschberg_align_affine(acg, empty, scheme).score, -14);
  EXPECT_EQ(hirschberg_align_affine(empty, acg, scheme).score, -14);
  const Sequence one(Alphabet::dna(), "A");
  EXPECT_EQ(hirschberg_align_affine(one, one, scheme).score, 5);
}

TEST(HirschbergAffine, LinearSchemeReducesToPlainHirschberg) {
  Xoshiro256 rng(75);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  for (int trial = 0; trial < 10; ++trial) {
    const Sequence a =
        random_sequence(Alphabet::protein(), 1 + rng.bounded(50), rng);
    const Sequence b =
        random_sequence(Alphabet::protein(), 1 + rng.bounded(50), rng);
    EXPECT_EQ(hirschberg_align_affine(a, b, scheme, tiny_base()).score,
              hirschberg_align(a, b, scheme, tiny_base()).score);
  }
}

TEST(HirschbergAffine, HomologousPairsManyPenaltyCombos) {
  Xoshiro256 rng(76);
  const SubstitutionMatrix m = scoring::dna(5, -4);
  MutationModel model;
  model.substitution_rate = 0.2;
  model.insertion_rate = 0.05;
  model.deletion_rate = 0.05;
  for (const auto& [open, extend] :
       {std::pair<Score, Score>{-2, -2}, {-12, -1}, {-6, -3}, {-20, -1}}) {
    const ScoringScheme scheme(m, open, extend);
    const SequencePair pair =
        homologous_pair(Alphabet::dna(), 60 + rng.bounded(60), model, rng);
    const Score expected = global_score_affine(pair.a.residues(),
                                               pair.b.residues(), scheme);
    EXPECT_EQ(
        hirschberg_align_affine(pair.a, pair.b, scheme, tiny_base()).score,
        expected)
        << "open=" << open << " extend=" << extend;
  }
}

// Exhaustive micro-pairs: every DNA pair of lengths up to 4 x 4 — affine
// Myers-Miller must equal Gotoh everywhere (catches boundary-charge bugs).
class HirschbergAffineExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(HirschbergAffineExhaustive, TinyPairsMatchGotoh) {
  const int seed = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  const SubstitutionMatrix m = scoring::dna(6, -3);
  const ScoringScheme scheme(m, -7, -2);
  for (std::size_t la = 0; la <= 4; ++la) {
    for (std::size_t lb = 0; lb <= 4; ++lb) {
      const Sequence a = random_sequence(Alphabet::dna(), la, rng);
      const Sequence b = random_sequence(Alphabet::dna(), lb, rng);
      const Score expected =
          global_score_affine(a.residues(), b.residues(), scheme);
      const Alignment aln =
          hirschberg_align_affine(a, b, scheme, tiny_base());
      ASSERT_EQ(aln.score, expected)
          << "la=" << la << " lb=" << lb << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HirschbergAffineExhaustive,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace flsa
