// Tests for the allocation-recycling arena (core/arena.hpp): VectorPool
// bucket mechanics, PooledVector RAII, and the headline property — with a
// reused workspace, steady-state align() performs zero engine heap
// allocations (verified with a counting global allocator).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/aligner.hpp"
#include "core/arena.hpp"
#include "core/fastlsa.hpp"
#include "dp/fullmatrix.hpp"
#include "scoring/builtin.hpp"
#include "sequence/generate.hpp"

namespace {

// Counting global allocator. Interposing operator new/delete is the
// classic instrumented-allocator trick; the counter covers every heap
// allocation in the process, so tests measure deltas around the calls
// they care about.
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace flsa {
namespace {

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(VectorPool, AcquireSizesAndPowerOfTwoCapacity) {
  detail::VectorPool<int> pool;
  std::vector<int> v = pool.acquire(5);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v.capacity(), 8u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 0u);
}

TEST(VectorPool, ReleasedBuffersAreRecycledBySizeBucket) {
  detail::VectorPool<int> pool;
  std::vector<int> v = pool.acquire(100);  // bucket 7 (128)
  int* data = v.data();
  pool.release(std::move(v));
  // Any size with the same ceil-log2 bucket reuses the same buffer.
  std::vector<int> w = pool.acquire(65);
  EXPECT_EQ(w.data(), data);
  EXPECT_EQ(w.size(), 65u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  // A different bucket misses.
  std::vector<int> x = pool.acquire(200);
  EXPECT_EQ(pool.misses(), 2u);
  pool.release(std::move(w));
  pool.release(std::move(x));
}

TEST(VectorPool, SteadyStateLoopNeverAllocates) {
  detail::VectorPool<int> pool;
  // Warm up with the largest size, then churn mixed sizes in-bucket.
  pool.release(pool.acquire(1000));
  const std::uint64_t before = allocations();
  for (std::size_t i = 0; i < 100; ++i) {
    std::vector<int> v = pool.acquire(513 + i);  // all in bucket 10
    v[0] = static_cast<int>(i);
    pool.release(std::move(v));
  }
  EXPECT_EQ(allocations(), before);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(PooledVector, ReturnsBufferOnDestruction) {
  detail::VectorPool<int> pool;
  {
    detail::PooledVector<int> handle(pool.acquire(10), &pool);
    EXPECT_EQ(handle.vec().size(), 10u);
  }
  EXPECT_EQ(pool.acquire(10).capacity(), 16u);
  EXPECT_EQ(pool.hits(), 1u);  // the destructor returned the buffer
}

TEST(PooledVector, MoveTransfersOwnership) {
  detail::VectorPool<int> pool;
  detail::PooledVector<int> a(pool.acquire(4), &pool);
  detail::PooledVector<int> b = std::move(a);
  EXPECT_EQ(b.vec().size(), 4u);
  EXPECT_TRUE(a.vec().empty());  // NOLINT(bugprone-use-after-move)
  a.release();                   // no-op, must not double-release
  b.release();
  EXPECT_EQ(pool.hits() + pool.misses(), 1u);  // exactly one real buffer
  EXPECT_EQ(pool.acquire(4).size(), 4u);
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(Arena, ReusedWorkspaceReportsZeroPoolMissesOnceWarm) {
  Xoshiro256 rng(42);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  const Sequence a = random_sequence(Alphabet::protein(), 400, rng);
  const Sequence b = random_sequence(Alphabet::protein(), 380, rng);

  FastLsaWorkspace workspace;
  FastLsaOptions options;
  options.k = 4;
  options.base_case_cells = 256;
  options.workspace = &workspace;

  FastLsaStats cold;
  const Alignment first = fastlsa_align(a, b, scheme, options, &cold);
  EXPECT_GT(cold.arena_pool_misses, 0u);  // warm-up grows the pool

  FastLsaStats warm;
  const Alignment second = fastlsa_align(a, b, scheme, options, &warm);
  EXPECT_EQ(warm.arena_pool_misses, 0u);
  EXPECT_GT(warm.arena_pool_hits, 0u);
  EXPECT_EQ(second.score, first.score);
  EXPECT_EQ(second.gapped_a, first.gapped_a);
}

TEST(Arena, SteadyStateAlignIsAllocationFreeInsideTheEngine) {
  // The acceptance test: repeated align() calls on one Aligner stop
  // allocating once warm. The engine itself allocates nothing (pool
  // misses == 0); the per-call allocation count is flat, and what remains
  // is only the returned Alignment (gapped strings + move vectors).
  Xoshiro256 rng(43);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  const Sequence a = random_sequence(Alphabet::protein(), 500, rng);
  const Sequence b = random_sequence(Alphabet::protein(), 450, rng);

  AlignOptions options;
  options.strategy = Strategy::kFastLsa;
  options.fastlsa.k = 4;
  options.fastlsa.base_case_cells = 512;
  Aligner aligner(options);

  // Warm-up calls populate the pool and every grow-only buffer.
  AlignReport report;
  const Alignment expected = aligner.align(a, b, scheme, &report);
  aligner.align(a, b, scheme, &report);

  // Baseline: allocations of one fully-warm call.
  const std::uint64_t before_first = allocations();
  aligner.align(a, b, scheme, &report);
  const std::uint64_t per_call = allocations() - before_first;
  EXPECT_EQ(report.stats.arena_pool_misses, 0u);

  // Steady state: every further call costs exactly the same, and the
  // engine contributes none of it (misses stay 0).
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t before = allocations();
    const Alignment result = aligner.align(a, b, scheme, &report);
    EXPECT_EQ(allocations() - before, per_call) << "call " << i;
    EXPECT_EQ(report.stats.arena_pool_misses, 0u) << "call " << i;
    EXPECT_EQ(result.score, expected.score);
  }

  // The flat per-call cost is only the returned Alignment: aligning into
  // a sink that immediately discards it costs the same handful of
  // allocations, far below one grid line per recursion level.
  EXPECT_LT(per_call, 32u);
}

TEST(Arena, FreeAlignAndAlignerAgree) {
  Xoshiro256 rng(44);
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  AlignOptions options;
  options.strategy = Strategy::kFastLsa;
  options.fastlsa.k = 3;
  options.fastlsa.base_case_cells = 128;
  Aligner aligner(options);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t m = 30 + rng.bounded(300);
    const std::size_t n = 30 + rng.bounded(300);
    const Sequence a = random_sequence(Alphabet::protein(), m, rng);
    const Sequence b = random_sequence(Alphabet::protein(), n, rng);
    const Alignment plain = align(a, b, scheme, options);
    const Alignment reused = aligner.align(a, b, scheme);
    EXPECT_EQ(reused.score, plain.score);
    EXPECT_EQ(reused.gapped_a, plain.gapped_a);
    EXPECT_EQ(reused.gapped_b, plain.gapped_b);
    EXPECT_EQ(plain.score, full_matrix_score(a, b, scheme));
  }
}

TEST(Arena, AffineWorkspaceRecyclesIndependently) {
  Xoshiro256 rng(45);
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const ScoringScheme scheme(m, -8, -2);
  const Sequence a = random_sequence(Alphabet::dna(), 300, rng);
  const Sequence b = random_sequence(Alphabet::dna(), 280, rng);

  FastLsaWorkspace workspace;
  FastLsaOptions options;
  options.k = 3;
  options.base_case_cells = 200;
  options.workspace = &workspace;

  FastLsaStats cold, warm;
  const Alignment first = fastlsa_align_affine(a, b, scheme, options, &cold);
  const Alignment second = fastlsa_align_affine(a, b, scheme, options, &warm);
  EXPECT_GT(cold.arena_pool_misses, 0u);
  EXPECT_EQ(warm.arena_pool_misses, 0u);
  EXPECT_EQ(second.score, first.score);
  EXPECT_EQ(second.gapped_a, first.gapped_a);
}

}  // namespace
}  // namespace flsa
