// Tests for the observability subsystem: metrics primitives, the
// registry, the Chrome-trace recorder, phase timers, and the tile-span
// funnel shared by all executors. Runs under TSan in CI, so the
// concurrency tests double as data-race checks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "core/tile_executor.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace flsa {
namespace obs {
namespace {

// The registry, enabled flag and active trace are process globals; every
// test starts and ends from a clean slate.
class Obs : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    set_active_trace(nullptr);
    metrics().reset();
  }
  void TearDown() override {
    set_enabled(false);
    set_active_trace(nullptr);
    metrics().reset();
  }
};

TEST_F(Obs, CounterBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(Obs, GaugeHoldsLatestValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-2.0);
  EXPECT_EQ(g.value(), -2.0);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST_F(Obs, HistogramSnapshotStats) {
  Histogram h;
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  for (double v : {1.0, 2.0, 4.0, 8.0}) h.observe(v);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 15.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.75);
  h.reset();
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST_F(Obs, HistogramQuantilesAreMonotonic) {
  Histogram h;
  // Values spread over many power-of-two buckets, including sub-1.0
  // timings and giga-scale throughputs.
  for (int i = 0; i < 200; ++i) {
    h.observe(1e-6 * static_cast<double>(1 + i));
    h.observe(1e9 / static_cast<double>(1 + i));
  }
  const double q10 = h.quantile(0.10);
  const double q50 = h.quantile(0.50);
  const double q99 = h.quantile(0.99);
  EXPECT_GT(q10, 0.0);
  EXPECT_LE(q10, q50);
  EXPECT_LE(q50, q99);
  // Quantiles are bucket upper bounds, so they can be off by at most one
  // power of two: the true p99 here is ~2.5e8, whose bucket ends at 2^28.
  EXPECT_GE(q99, static_cast<double>(1u << 28) * 0.99);
  EXPECT_LE(q99, 1e9);
}

TEST_F(Obs, UptimeIsMonotonicAndSurvivesReset) {
  const std::uint64_t before = metrics().uptime_ms();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const std::uint64_t after = metrics().uptime_ms();
  EXPECT_GE(after, before + 4) << "uptime_ms is not advancing";
  // reset() zeroes instruments but never the clock — a monitor comparing
  // two snapshots must be able to tell "restarted" from "counters were
  // zeroed".
  metrics().reset();
  EXPECT_GE(metrics().uptime_ms(), after);
}

TEST_F(Obs, SnapshotAlwaysCarriesUptime) {
  bool found = false;
  double value = -1.0;
  for (const MetricsRegistry::Sample& sample : metrics().snapshot()) {
    if (sample.name == "uptime_ms") {
      found = true;
      value = sample.value;
    }
  }
  EXPECT_TRUE(found) << "snapshot() lost the synthetic uptime_ms sample";
  EXPECT_GE(value, 0.0);
}

TEST_F(Obs, RegistryReturnsStableInstruments) {
  Counter& a = metrics().counter("test.registry.counter");
  Counter& b = metrics().counter("test.registry.counter");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
  Gauge& g = metrics().gauge("test.registry.gauge");
  EXPECT_EQ(&g, &metrics().gauge("test.registry.gauge"));
  Histogram& h = metrics().histogram("test.registry.hist");
  EXPECT_EQ(&h, &metrics().histogram("test.registry.hist"));
  // reset() zeroes values but keeps references valid.
  metrics().reset();
  EXPECT_EQ(a.value(), 0u);
  a.add(1);
  EXPECT_EQ(metrics().counter("test.registry.counter").value(), 1u);
}

TEST_F(Obs, RegistryReportListsInstruments) {
  metrics().counter("test.report.jobs").add(3);
  metrics().gauge("test.report.threads").set(8);
  metrics().histogram("test.report.seconds").observe(0.25);
  std::ostringstream os;
  metrics().report(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("test.report.jobs"), std::string::npos);
  EXPECT_NE(text.find("test.report.threads"), std::string::npos);
  EXPECT_NE(text.find("test.report.seconds"), std::string::npos);
  EXPECT_NE(text.find("3"), std::string::npos);
}

TEST_F(Obs, ConcurrentCountersAndHistograms) {
  Counter& c = metrics().counter("test.concurrent.counter");
  Histogram& h = metrics().histogram("test.concurrent.hist");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 10000; ++i) {
        c.add(1);
        if (i % 100 == 0) h.observe(static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
  EXPECT_EQ(h.snapshot().count, 400u);
}

TEST_F(Obs, TraceRecorderCollectsSpans) {
  TraceRecorder trace;
  EXPECT_EQ(trace.size(), 0u);
  const auto start = TraceRecorder::now();
  TraceSpan span;
  span.name = "tile";
  span.category = "fill-grid";
  span.tid = 2;
  span.tile_row = 1;
  span.tile_col = 3;
  span.cells = 4096;
  trace.record(span, start, TraceRecorder::now());
  ASSERT_EQ(trace.size(), 1u);
  const std::vector<TraceSpan> spans = trace.spans();
  EXPECT_STREQ(spans[0].name, "tile");
  EXPECT_EQ(spans[0].tid, 2u);
  EXPECT_EQ(spans[0].tile_row, 1);
  EXPECT_EQ(spans[0].cells, 4096);
  EXPECT_GE(spans[0].ts_us, 0.0);
  EXPECT_GE(spans[0].dur_us, 0.0);
}

TEST_F(Obs, ChromeTraceJsonShape) {
  TraceRecorder trace;
  const auto t0 = TraceRecorder::now();
  TraceSpan worker_span;
  worker_span.name = "tile";
  worker_span.category = "base-case";
  worker_span.tid = 0;
  worker_span.tile_row = 0;
  worker_span.tile_col = 1;
  worker_span.cells = 64;
  trace.record(worker_span, t0, TraceRecorder::now());
  TraceSpan phase_span;
  phase_span.name = "align";
  phase_span.category = "phase";
  phase_span.tid = kPhaseLane;
  trace.record(phase_span, t0, TraceRecorder::now());

  std::ostringstream os;
  trace.write_chrome_trace(os);
  const std::string json = os.str();

  // Structural sanity: one top-level object, balanced braces/brackets,
  // the traceEvents array, and both lane names.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  std::ptrdiff_t braces = 0, brackets = 0;
  for (char ch : json) {
    braces += (ch == '{') - (ch == '}');
    brackets += (ch == '[') - (ch == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("worker 0"), std::string::npos);
  EXPECT_NE(json.find("phases"), std::string::npos);
  // Optional args present only when set: the phase span has no tile args.
  EXPECT_NE(json.find("\"tile_row\":0"), std::string::npos);
  EXPECT_EQ(json.find("\"tile_row\":-1"), std::string::npos);
}

TEST_F(Obs, ChromeTraceEscapesStrings) {
  TraceRecorder trace;
  const auto t0 = TraceRecorder::now();
  TraceSpan span;
  span.name = "we\"ird\\name\n";
  span.category = "cat";
  trace.record(span, t0, TraceRecorder::now());
  std::ostringstream os;
  trace.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("we\\\"ird\\\\name\\u000a"), std::string::npos);
}

TEST_F(Obs, ConcurrentTraceRecording) {
  TraceRecorder trace;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&trace, t] {
      for (int i = 0; i < 500; ++i) {
        const auto start = TraceRecorder::now();
        TraceSpan span;
        span.name = "tile";
        span.category = "fill-grid";
        span.tid = t;
        trace.record(span, start, TraceRecorder::now());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(trace.size(), 2000u);
}

TEST_F(Obs, PhaseNames) {
  EXPECT_STREQ(to_string(Phase::kAlign), "align");
  EXPECT_STREQ(to_string(Phase::kFillGrid), "fill-grid");
  EXPECT_STREQ(to_string(Phase::kBaseCase), "base-case");
  EXPECT_STREQ(to_string(Phase::kRecursion), "recursion");
  EXPECT_STREQ(to_string(Phase::kHirschberg), "hirschberg");
  EXPECT_STREQ(to_string(Phase::kBatchJob), "batch-job");
}

#if !defined(FLSA_OBS_OFF)

TEST_F(Obs, DisabledRecordingIsDropped) {
  ASSERT_FALSE(enabled());
  {
    PhaseTimer timer(Phase::kBaseCase);
    timer.add_cells(100);
  }
  count("test.disabled.counter", 5);
  EXPECT_EQ(metrics().counter("phase.base-case.invocations").value(), 0u);
  EXPECT_EQ(metrics().counter("test.disabled.counter").value(), 0u);
}

TEST_F(Obs, PhaseTimerRecordsMetrics) {
  set_enabled(true);
  {
    PhaseTimer timer(Phase::kFillGrid);
    timer.add_cells(1u << 20);
  }
  { PhaseTimer timer(Phase::kFillGrid); }
  EXPECT_EQ(metrics().counter("phase.fill-grid.invocations").value(), 2u);
  EXPECT_EQ(metrics().counter("phase.fill-grid.cells").value(), 1u << 20);
  EXPECT_EQ(metrics().histogram("phase.fill-grid.seconds").snapshot().count,
            2u);
  const Histogram::Snapshot throughput =
      metrics().histogram("phase.fill-grid.cells_per_s").snapshot();
  EXPECT_EQ(throughput.count, 1u);  // cells attributed once
  EXPECT_GT(throughput.min, 0.0);
}

TEST_F(Obs, PhaseTimerSuppressedMetricsStillTrace) {
  set_enabled(true);
  TraceRecorder trace;
  set_active_trace(&trace);
  {
    PhaseTimer timer(Phase::kRecursion, kPhaseLane, /*depth=*/3,
                     /*record_metrics=*/false);
  }
  set_active_trace(nullptr);
  EXPECT_EQ(metrics().counter("phase.recursion.invocations").value(), 0u);
  ASSERT_EQ(trace.size(), 1u);
  const TraceSpan span = trace.spans()[0];
  EXPECT_STREQ(span.name, "recursion");
  EXPECT_EQ(span.depth, 3);
  EXPECT_EQ(span.tid, kPhaseLane);
}

TEST_F(Obs, ConvenienceRecorders) {
  set_enabled(true);
  count("test.conv.counter", 2);
  count("test.conv.counter");
  observe("test.conv.hist", 4.0);
  set_gauge("test.conv.gauge", 12.0);
  EXPECT_EQ(metrics().counter("test.conv.counter").value(), 3u);
  EXPECT_EQ(metrics().histogram("test.conv.hist").snapshot().count, 1u);
  EXPECT_EQ(metrics().gauge("test.conv.gauge").value(), 12.0);
}

TEST_F(Obs, RunTileEmitsWorkerSpans) {
  TraceRecorder trace;
  set_active_trace(&trace);
  SequentialExecutor exec;
  exec.run(
      2, 3, [](std::size_t ti, std::size_t tj) { return ti == 1 && tj == 2; },
      [](std::size_t ti, std::size_t tj, unsigned) {
        return static_cast<std::uint64_t>(10 * ti + tj);
      },
      TilePhase::kFillCache);
  set_active_trace(nullptr);
  const std::vector<TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 5u);  // 6 tiles, 1 skipped
  for (const TraceSpan& span : spans) {
    EXPECT_STREQ(span.name, "tile");
    EXPECT_STREQ(span.category, "fill-grid");
    EXPECT_EQ(span.tid, 0u);  // sequential executor: one worker lane
    EXPECT_EQ(span.cells, 10 * span.tile_row + span.tile_col);
  }
}

TEST_F(Obs, RunTileWithoutTraceIsDirectCall) {
  ASSERT_EQ(active_trace(), nullptr);
  std::size_t calls = 0;
  const auto work = [&](std::size_t, std::size_t, unsigned) {
    ++calls;
    return std::uint64_t{7};
  };
  EXPECT_EQ(run_tile(work, 0, 0, 0, TilePhase::kBaseCase), 7u);
  EXPECT_EQ(calls, 1u);
}

#endif  // !defined(FLSA_OBS_OFF)

}  // namespace
}  // namespace obs
}  // namespace flsa
