// Cross-module integration tests: every aligner in the library against
// every other on shared workloads, end-to-end through the public umbrella
// header, including FASTA round-trips.
#include <gtest/gtest.h>

#include <sstream>

#include "flsa/flsa.hpp"

namespace flsa {
namespace {

// All linear-gap global aligners must produce the same optimal score (and,
// given the shared tie-breaking, the same path) on any input.
struct IntegrationCase {
  std::size_t len;
  double divergence;
  std::uint64_t seed;
};

class AllAlgorithmsAgree : public ::testing::TestWithParam<IntegrationCase> {
};

TEST_P(AllAlgorithmsAgree, LinearGapGlobal) {
  const IntegrationCase c = GetParam();
  Xoshiro256 rng(c.seed);
  MutationModel model;
  model.substitution_rate = c.divergence;
  model.insertion_rate = c.divergence / 5;
  model.deletion_rate = c.divergence / 5;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), c.len, model, rng);
  const ScoringScheme& scheme = ScoringScheme::paper_default();

  const Alignment fm = full_matrix_align(pair.a, pair.b, scheme);
  const Alignment h = hirschberg_align(pair.a, pair.b, scheme);

  FastLsaOptions fl_options;
  fl_options.k = 4;
  fl_options.base_case_cells = 512;
  const Alignment fl = fastlsa_align(pair.a, pair.b, scheme, fl_options);

  ParallelOptions par;
  par.threads = 3;
  const Alignment pfl =
      parallel_fastlsa_align(pair.a, pair.b, scheme, fl_options, par);

  EXPECT_EQ(fm.score, h.score);
  EXPECT_EQ(fm.score, fl.score);
  EXPECT_EQ(fm.score, pfl.score);
  EXPECT_EQ(fl.gapped_a, fm.gapped_a);
  EXPECT_EQ(pfl.gapped_a, fm.gapped_a);
  // Banded with a full-width band agrees too.
  const Alignment banded = banded_align(
      pair.a, pair.b, scheme, std::max(pair.a.size(), pair.b.size()));
  EXPECT_EQ(banded.score, fm.score);
  // Every alignment rescoreable to its claimed score.
  for (const Alignment* aln : {&fm, &h, &fl, &pfl, &banded}) {
    EXPECT_EQ(score_alignment(*aln, scheme, Alphabet::protein()),
              aln->score);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AllAlgorithmsAgree,
    ::testing::Values(IntegrationCase{60, 0.05, 1},
                      IntegrationCase{137, 0.15, 2},
                      IntegrationCase{200, 0.30, 3},
                      IntegrationCase{333, 0.50, 4},
                      IntegrationCase{512, 0.15, 5}),
    [](const ::testing::TestParamInfo<IntegrationCase>& param_info) {
      return "len" + std::to_string(param_info.param.len) + "_seed" +
             std::to_string(param_info.param.seed);
    });

TEST(Integration, AffineAlgorithmsAgree) {
  Xoshiro256 rng(141);
  MutationModel model;
  model.extension_prob = 0.75;
  const SequencePair pair = homologous_pair(Alphabet::dna(), 180, model, rng);
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const ScoringScheme scheme(m, -10, -1);

  const Alignment fm = full_matrix_align_affine(pair.a, pair.b, scheme);
  const Alignment mm = hirschberg_align_affine(pair.a, pair.b, scheme);
  FastLsaOptions options;
  options.k = 3;
  options.base_case_cells = 128;
  const Alignment fl =
      fastlsa_align_affine(pair.a, pair.b, scheme, options);
  ParallelOptions par;
  par.threads = 2;
  const Alignment pfl = parallel_fastlsa_align_affine(pair.a, pair.b,
                                                      scheme, options, par);
  EXPECT_EQ(fm.score, mm.score);
  EXPECT_EQ(fm.score, fl.score);
  EXPECT_EQ(fm.score, pfl.score);
}

TEST(Integration, FastaToAlignmentPipeline) {
  // FASTA in, aligned pretty-print out — the quickstart path end to end.
  std::istringstream fasta(
      ">query sample protein\nTLDKLLKD\n>target\nTDVLKAD\n");
  const auto records = read_fasta(fasta, Alphabet::protein());
  ASSERT_EQ(records.size(), 2u);
  AlignReport report;
  const Alignment aln = align(records[0], records[1],
                              ScoringScheme::paper_default(), {}, &report);
  EXPECT_EQ(aln.score, 82);
  EXPECT_EQ(report.chosen, Strategy::kFullMatrix);
  const std::string pretty = aln.pretty();
  EXPECT_NE(pretty.find("TLDKLLK-D"), std::string::npos);
}

TEST(Integration, LargeAlignmentUnderMemoryBudgetMatchesUnbounded) {
  Xoshiro256 rng(142);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 1000, model, rng);
  const ScoringScheme& scheme = ScoringScheme::paper_default();

  AlignOptions unbounded;
  const Alignment reference = align(pair.a, pair.b, scheme, unbounded);

  AlignOptions bounded;
  bounded.memory_limit_bytes = 200 * 1024;
  AlignReport report;
  const Alignment constrained =
      align(pair.a, pair.b, scheme, bounded, &report);
  EXPECT_EQ(report.chosen, Strategy::kFastLsa);
  EXPECT_EQ(constrained.score, reference.score);
  EXPECT_LE(report.stats.peak_bytes, bounded.memory_limit_bytes);
}

TEST(Integration, VirtualTimeSpeedupOnRealRun) {
  Xoshiro256 rng(143);
  MutationModel model;
  const SequencePair pair =
      homologous_pair(Alphabet::protein(), 500, model, rng);
  FastLsaOptions options;
  options.k = 8;
  options.base_case_cells = 1024;
  const SimulatedRun run = record_fastlsa(
      pair.a, pair.b, ScoringScheme::paper_default(), options, 8);
  const SpeedupPoint p8 =
      speedup_at(run.trace, 8, SchedulerKind::kDependencyCounter);
  EXPECT_GT(p8.speedup, 2.0);
  EXPECT_LE(p8.speedup, 8.0);
}

TEST(Integration, LocalAndGlobalConsistency) {
  // Local score >= global score; on a perfectly matching pair they agree.
  Xoshiro256 rng(144);
  const SubstitutionMatrix m = scoring::dna(5, -4);
  const ScoringScheme scheme(m, -6);
  const Sequence s = random_sequence(Alphabet::dna(), 120, rng);
  EXPECT_EQ(local_align(s, s, scheme).score,
            full_matrix_align(s, s, scheme).score);
}

}  // namespace
}  // namespace flsa
