// Tests for substitution matrices and scoring schemes, including an exact
// check of the paper's published Table 1 excerpt of the MDM78 table.
#include <gtest/gtest.h>

#include "dp/fullmatrix.hpp"
#include "scoring/builtin.hpp"
#include "scoring/scheme.hpp"
#include "sequence/sequence.hpp"

namespace flsa {
namespace {

TEST(Mdm78, MatchesPaperTable1Exactly) {
  const SubstitutionMatrix& m = scoring::mdm78();
  // Diagonal of the excerpt: A=16, D=K=L=T=V=20.
  EXPECT_EQ(m.score('A', 'A'), 16);
  EXPECT_EQ(m.score('D', 'D'), 20);
  EXPECT_EQ(m.score('K', 'K'), 20);
  EXPECT_EQ(m.score('L', 'L'), 20);
  EXPECT_EQ(m.score('T', 'T'), 20);
  EXPECT_EQ(m.score('V', 'V'), 20);
  // The one nonzero off-diagonal of the excerpt: L-V = 12 (similar
  // function), and the highlighted zero: K-L = 0 (dissimilar function).
  EXPECT_EQ(m.score('L', 'V'), 12);
  EXPECT_EQ(m.score('K', 'L'), 0);
  // Remaining excerpt entries are all zero.
  const char letters[] = {'A', 'D', 'K', 'L', 'T', 'V'};
  for (char x : letters) {
    for (char y : letters) {
      if (x == y) continue;
      if ((x == 'L' && y == 'V') || (x == 'V' && y == 'L')) continue;
      EXPECT_EQ(m.score(x, y), 0) << x << " vs " << y;
    }
  }
}

TEST(Mdm78, NonNegativeAndSymmetric) {
  const SubstitutionMatrix& m = scoring::mdm78();
  EXPECT_GE(m.min_score(), 0);
  EXPECT_TRUE(m.is_symmetric());
}

TEST(Mdm78, DiagonalDominatesItsRow) {
  const SubstitutionMatrix& m = scoring::mdm78();
  for (Residue x = 0; x < 20; ++x) {
    for (Residue y = 0; y < 20; ++y) {
      if (x == y) continue;
      EXPECT_GE(m.at(x, x), m.at(x, y));
    }
  }
}

TEST(Pam250, KnownValuesAndSymmetry) {
  const SubstitutionMatrix& m = scoring::pam250();
  EXPECT_EQ(m.score('A', 'A'), 2);
  EXPECT_EQ(m.score('W', 'W'), 17);
  EXPECT_EQ(m.score('L', 'V'), 2);
  EXPECT_EQ(m.score('K', 'L'), -3);
  EXPECT_EQ(m.score('C', 'W'), -8);
  EXPECT_TRUE(m.is_symmetric());
}

TEST(Blosum62, KnownValuesAndSymmetry) {
  const SubstitutionMatrix& m = scoring::blosum62();
  EXPECT_EQ(m.score('A', 'A'), 4);
  EXPECT_EQ(m.score('W', 'W'), 11);
  EXPECT_EQ(m.score('I', 'V'), 3);
  EXPECT_EQ(m.score('E', 'Q'), 2);
  EXPECT_EQ(m.score('G', 'I'), -4);
  EXPECT_TRUE(m.is_symmetric());
}

TEST(DnaMatrix, MatchMismatchStructure) {
  const SubstitutionMatrix m = scoring::dna(5, -4);
  for (Residue x = 0; x < 4; ++x) {
    for (Residue y = 0; y < 4; ++y) {
      EXPECT_EQ(m.at(x, y), x == y ? 5 : -4);
    }
  }
  EXPECT_TRUE(m.is_symmetric());
}

TEST(DnaNMatrix, AmbiguityCodeIsNeutral) {
  const SubstitutionMatrix m = scoring::dna_n(5, -4, 0);
  const Alphabet& alphabet = Alphabet::dna_n();
  EXPECT_EQ(alphabet.size(), 5u);
  EXPECT_EQ(m.score('A', 'A'), 5);
  EXPECT_EQ(m.score('A', 'C'), -4);
  EXPECT_EQ(m.score('A', 'N'), 0);
  EXPECT_EQ(m.score('N', 'N'), 0);  // N-N is unknown, not a match
  EXPECT_TRUE(m.is_symmetric());
}

TEST(DnaNMatrix, AlignsReadsWithUnknownBases) {
  // An N in a read should neither reward nor punish the alignment.
  const SubstitutionMatrix m = scoring::dna_n(5, -4, 0);
  const ScoringScheme scheme(m, -6);
  const Sequence ref(Alphabet::dna_n(), "ACGTACGT");
  const Sequence read(Alphabet::dna_n(), "ACGNACGT");
  const Sequence bad(Alphabet::dna_n(), "ACGGACGT");  // real mismatch
  const Score with_n = full_matrix_score(ref, read, scheme);
  const Score with_mismatch = full_matrix_score(ref, bad, scheme);
  EXPECT_EQ(with_n, 7 * 5 + 0);
  EXPECT_GT(with_n, with_mismatch);
}

TEST(IdentityMatrix, LcsConfiguration) {
  const SubstitutionMatrix m = scoring::identity(Alphabet::dna(), 1, 0);
  EXPECT_EQ(m.at(0, 0), 1);
  EXPECT_EQ(m.at(0, 1), 0);
}

TEST(SubstitutionMatrix, SetAndSymmetrize) {
  SubstitutionMatrix m(Alphabet::dna(), "custom");
  m.set_symmetric(0, 2, 7);
  EXPECT_EQ(m.at(0, 2), 7);
  EXPECT_EQ(m.at(2, 0), 7);
  m.set(1, 3, -2);
  EXPECT_EQ(m.at(1, 3), -2);
  EXPECT_EQ(m.at(3, 1), 0);
  EXPECT_FALSE(m.is_symmetric());
  EXPECT_EQ(m.min_score(), -2);
  EXPECT_EQ(m.max_score(), 7);
}

TEST(SubstitutionMatrix, RowMajorConstructorValidatesSize) {
  EXPECT_THROW(SubstitutionMatrix(Alphabet::dna(), "bad",
                                  std::vector<Score>(15, 0)),
               std::invalid_argument);
}

TEST(ScoringScheme, LinearGapProperties) {
  const ScoringScheme scheme(scoring::mdm78(), -10);
  EXPECT_TRUE(scheme.is_linear());
  EXPECT_EQ(scheme.gap_open(), 0);
  EXPECT_EQ(scheme.gap_extend(), -10);
  EXPECT_EQ(scheme.gap_cost(3), -30);
}

TEST(ScoringScheme, AffineGapProperties) {
  const ScoringScheme scheme(scoring::blosum62(), -11, -1);
  EXPECT_FALSE(scheme.is_linear());
  EXPECT_EQ(scheme.gap_cost(1), -12);
  EXPECT_EQ(scheme.gap_cost(5), -16);
}

TEST(ScoringScheme, RejectsPositiveGapPenalties) {
  EXPECT_THROW(ScoringScheme(scoring::mdm78(), 10), std::invalid_argument);
  EXPECT_THROW(ScoringScheme(scoring::mdm78(), -1, 5),
               std::invalid_argument);
}

TEST(ScoringScheme, PaperDefaultIsMdm78WithGap10) {
  const ScoringScheme& scheme = ScoringScheme::paper_default();
  EXPECT_TRUE(scheme.is_linear());
  EXPECT_EQ(scheme.gap_extend(), -10);
  EXPECT_EQ(scheme.matrix().name(), "mdm78");
}

}  // namespace
}  // namespace flsa
